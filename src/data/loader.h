#ifndef EMP_DATA_LOADER_H_
#define EMP_DATA_LOADER_H_

#include <string>

#include "common/result.h"
#include "data/area_set.h"

namespace emp {

/// Options for building an AreaSet from a CSV of attributes + WKT
/// geometry (the workflow the paper performed with QGIS joins).
struct LoaderOptions {
  /// Name of the CSV column holding each area's polygon as WKT
  /// ("POLYGON ((x y, ...))").
  std::string geometry_column = "WKT";
  /// Attribute used as the dissimilarity attribute d_i. Empty = the first
  /// non-geometry column.
  std::string dissimilarity_attribute;
  /// Two areas are contiguous (rook adjacency) when their shared border is
  /// at least this long, in the CSV's coordinate units. Values <= 0 fall
  /// back to a fraction of the median polygon "diameter".
  double min_shared_border = -1.0;
  /// Queen contiguity: also connect polygons that merely share a corner
  /// vertex (within `vertex_eps`). PySAL/GeoDa's "queen" weights; the
  /// paper's census setting corresponds to rook (default false).
  bool queen = false;
  /// Distance tolerance for the queen shared-vertex test.
  double vertex_eps = 1e-9;
  /// Dataset name recorded on the AreaSet.
  std::string name = "csv";
  /// For compact (.emp) inputs: recompute the instance digest from the
  /// decoded data and fail on a header mismatch. Anything that keys caches
  /// or dedupes by digest must set this — the header value alone is
  /// untrusted input. Costs one O(n + E + cells) walk per load.
  bool verify_compact_digest = false;
};

/// Parses a CSV document (header + rows) into an AreaSet: one row per
/// area, one WKT geometry column, every other column a numeric attribute.
/// The contiguity graph is derived geometrically — candidate neighbor
/// pairs from a bounding-box grid index, confirmed by shared-border
/// length — exactly what a shapefile-based pipeline does.
Result<AreaSet> LoadAreaSetFromCsvText(const std::string& csv_text,
                                       const LoaderOptions& options = {});

/// Reads `path` and delegates to LoadAreaSetFromCsvText.
Result<AreaSet> LoadAreaSetFromCsvFile(const std::string& path,
                                       const LoaderOptions& options = {});

/// Loads an instance file of either format: compact binary (sniffed by
/// magic, mmap'd zero-copy) or CSV (parsed per `options`). The single
/// entry point the CLI and solve service use for file inputs.
Result<AreaSet> LoadAreaSetAuto(const std::string& path,
                                const LoaderOptions& options = {});

/// Serializes an AreaSet back to the loader's CSV format (geometry as WKT
/// plus all attribute columns). Requires geometry. Round-trips with
/// LoadAreaSetFromCsvText up to floating-point formatting.
Result<std::string> AreaSetToCsvText(
    const AreaSet& areas, const std::string& geometry_column = "WKT");

/// Derives the contiguity graph from polygon geometry alone: bounding-box
/// sweep for candidate pairs, confirmed by shared-border length (rook) and
/// optionally shared corner vertices (queen) per `options`. Shared by the
/// CSV and GeoJSON loaders.
Result<ContiguityGraph> DeriveContiguity(const std::vector<Polygon>& polygons,
                                         const LoaderOptions& options = {});

}  // namespace emp

#endif  // EMP_DATA_LOADER_H_
