#ifndef EMP_DATA_AREA_SET_H_
#define EMP_DATA_AREA_SET_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/attribute_table.h"
#include "geometry/polygon.h"
#include "graph/contiguity_graph.h"

namespace emp {

/// The EMP problem input: a set of n areas, each with an id (its index), a
/// spatial polygon, spatially extensive attributes, and a dissimilarity
/// attribute (paper §III). Geometry is optional — the algorithms consume
/// only the contiguity graph and attributes, so graph-only instances (as in
/// many tests) are first-class.
class AreaSet {
 public:
  AreaSet() = default;

  AreaSet(const AreaSet& other) { *this = other; }
  AreaSet& operator=(const AreaSet& other);
  AreaSet(AreaSet&& other) noexcept { *this = std::move(other); }
  AreaSet& operator=(AreaSet&& other) noexcept;

  /// Builds a geometry-backed area set. `polygons.size()` must equal
  /// `graph.num_nodes()` and `attributes.num_rows()`.
  static Result<AreaSet> Create(std::string name,
                                std::vector<Polygon> polygons,
                                ContiguityGraph graph,
                                AttributeTable attributes,
                                std::string dissimilarity_attribute);

  /// Builds a graph-only area set (no polygons).
  static Result<AreaSet> CreateWithoutGeometry(
      std::string name, ContiguityGraph graph, AttributeTable attributes,
      std::string dissimilarity_attribute);

  const std::string& name() const { return name_; }
  int32_t num_areas() const { return graph_.num_nodes(); }
  bool has_geometry() const { return !polygons_.empty(); }

  const std::vector<Polygon>& polygons() const { return polygons_; }
  /// Polygon of `id` (bounds-checked by assert in debug builds).
  const Polygon& polygon(int32_t id) const {
    assert(id >= 0 && static_cast<size_t>(id) < polygons_.size());
    return polygons_[static_cast<size_t>(id)];
  }
  const ContiguityGraph& graph() const { return graph_; }
  const AttributeTable& attributes() const { return attributes_; }

  /// Name of the attribute feeding the heterogeneity objective.
  const std::string& dissimilarity_attribute() const {
    return dissimilarity_attribute_;
  }
  /// The dissimilarity value d_i for every area.
  std::span<const double> dissimilarity() const {
    return attributes_.Column(dissimilarity_column_);
  }

  /// 64-bit FNV-1a fingerprint of the instance: name, node/edge counts,
  /// the adjacency structure, attribute column names, and every
  /// attribute value's bit pattern. Two runs whose journals carry the
  /// same digest solved the same instance. Computed once on first call
  /// (O(n + edges + cells)) and memoized; compact instances seed it from
  /// the file header, so for them it is free.
  uint64_t InstanceDigest() const;

  /// Seeds the memoized digest with a precomputed value (the compact
  /// loader's file header carries it). Must equal what InstanceDigest()
  /// would compute — callers that cannot guarantee that must not seed.
  void SeedInstanceDigest(uint64_t digest);

 private:
  uint64_t ComputeInstanceDigest() const;

  std::string name_;
  std::vector<Polygon> polygons_;
  ContiguityGraph graph_;
  AttributeTable attributes_;
  std::string dissimilarity_attribute_;
  int dissimilarity_column_ = -1;
  // Memoized digest. The flag is set with release ordering after the value
  // is stored; a racing duplicate compute is benign (same input, same hash).
  mutable std::atomic<bool> digest_valid_{false};
  mutable std::atomic<uint64_t> digest_{0};
};

}  // namespace emp

#endif  // EMP_DATA_AREA_SET_H_
