#ifndef EMP_DATA_GEOJSON_H_
#define EMP_DATA_GEOJSON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/area_set.h"

namespace emp {

/// Serializes an area set as a GeoJSON FeatureCollection. Each feature
/// carries the area id, all attribute columns, and — when `region_of` is
/// non-empty — the region assignment (`-1` = unassigned), so the output can
/// be dropped into QGIS/geojson.io to inspect a regionalization visually.
/// `region_of`, when provided, must have one entry per area.
Result<std::string> ToGeoJson(const AreaSet& areas,
                              const std::vector<int32_t>& region_of = {});

/// Serializes a region assignment as CSV with columns `area_id,region_id`.
std::string AssignmentToCsv(const std::vector<int32_t>& region_of);

/// Options for the GeoJSON importer.
struct GeoJsonImportOptions {
  /// Dissimilarity attribute name; empty = the first numeric property.
  std::string dissimilarity_attribute;
  std::string name = "geojson";
  /// Contiguity derivation (shared with the CSV loader).
  double min_shared_border = -1.0;
  bool queen = false;
};

/// Parses a GeoJSON FeatureCollection of Polygon features into an AreaSet:
/// the first (exterior) ring of each polygon becomes the area geometry,
/// every numeric property becomes an attribute column, and contiguity is
/// re-derived geometrically. Features with an `area_id` property are
/// ordered by it (must form 0..n-1); `region_id` properties, when present,
/// are returned through `region_of_out` (pass nullptr to ignore), so a
/// ToGeoJson export round-trips including the solution. MultiPolygon
/// features and holes are rejected (the synthetic substrate never emits
/// them).
Result<AreaSet> FromGeoJson(const std::string& text,
                            const GeoJsonImportOptions& options = {},
                            std::vector<int32_t>* region_of_out = nullptr);

}  // namespace emp

#endif  // EMP_DATA_GEOJSON_H_
