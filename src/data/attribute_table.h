#ifndef EMP_DATA_ATTRIBUTE_TABLE_H_
#define EMP_DATA_ATTRIBUTE_TABLE_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace emp {

/// Column-major table of named numeric attributes, one row per area.
/// Spatially extensive attributes (POP16UP, EMPLOYED, TOTALPOP, ...) and
/// the dissimilarity attribute (HOUSEHOLDS) live here.
///
/// A column either owns its values or views external read-only memory
/// (typically an mmap'd compact instance image) kept alive by a shared
/// backing handle; accessors hand out `std::span` views either way.
class AttributeTable {
 public:
  AttributeTable() = default;
  explicit AttributeTable(int64_t num_rows) : num_rows_(num_rows) {}

  AttributeTable(const AttributeTable& other) { *this = other; }
  AttributeTable& operator=(const AttributeTable& other);
  AttributeTable(AttributeTable&&) = default;
  AttributeTable& operator=(AttributeTable&&) = default;

  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const std::vector<std::string>& column_names() const { return names_; }

  /// Adds an owned column; fails if the name exists or the size mismatches.
  Status AddColumn(const std::string& name, std::vector<double> values);

  /// Adds a column viewing external storage without copying it. `backing`
  /// keeps the storage alive for the lifetime of the table and its copies.
  Status AddColumnView(const std::string& name, std::span<const double> values,
                       std::shared_ptr<const void> backing);

  /// True if a column with this name exists.
  bool HasColumn(const std::string& name) const;

  /// Column index by name.
  Result<int> ColumnIndex(const std::string& name) const;

  /// Whole column by index (bounds-checked by assert in debug builds).
  std::span<const double> Column(int index) const {
    assert(index >= 0 && index < num_columns());
    const ColumnStorage& c = columns_[static_cast<size_t>(index)];
    return {c.data, c.size};
  }

  /// Whole column by name.
  Result<std::span<const double>> ColumnByName(const std::string& name) const;

  /// Single cell (bounds-checked by assert in debug builds).
  double Value(int column, int64_t row) const {
    assert(column >= 0 && column < num_columns());
    assert(row >= 0 && row < num_rows_);
    return columns_[static_cast<size_t>(column)].data[static_cast<size_t>(row)];
  }

  /// Summary statistics of a column.
  struct ColumnStats {
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double mean = 0.0;
  };
  Result<ColumnStats> Stats(const std::string& name) const;

 private:
  struct ColumnStorage {
    // Owned values; empty when the column views external memory.
    std::vector<double> store;
    // Keeps external storage alive. Null for owned columns.
    std::shared_ptr<const void> backing;
    const double* data = nullptr;
    size_t size = 0;
  };

  int64_t num_rows_ = 0;
  std::vector<std::string> names_;
  std::vector<ColumnStorage> columns_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace emp

#endif  // EMP_DATA_ATTRIBUTE_TABLE_H_
