#ifndef EMP_DATA_ATTRIBUTE_TABLE_H_
#define EMP_DATA_ATTRIBUTE_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace emp {

/// Column-major table of named numeric attributes, one row per area.
/// Spatially extensive attributes (POP16UP, EMPLOYED, TOTALPOP, ...) and
/// the dissimilarity attribute (HOUSEHOLDS) live here.
class AttributeTable {
 public:
  AttributeTable() = default;
  explicit AttributeTable(int64_t num_rows) : num_rows_(num_rows) {}

  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const std::vector<std::string>& column_names() const { return names_; }

  /// Adds a column; fails if the name exists or the size mismatches.
  Status AddColumn(const std::string& name, std::vector<double> values);

  /// True if a column with this name exists.
  bool HasColumn(const std::string& name) const;

  /// Column index by name.
  Result<int> ColumnIndex(const std::string& name) const;

  /// Whole column by index (bounds-checked by assert in debug builds).
  const std::vector<double>& Column(int index) const {
    return columns_[static_cast<size_t>(index)];
  }

  /// Whole column by name.
  Result<const std::vector<double>*> ColumnByName(
      const std::string& name) const;

  /// Single cell.
  double Value(int column, int64_t row) const {
    return columns_[static_cast<size_t>(column)][static_cast<size_t>(row)];
  }

  /// Summary statistics of a column.
  struct ColumnStats {
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double mean = 0.0;
  };
  Result<ColumnStats> Stats(const std::string& name) const;

 private:
  int64_t num_rows_ = 0;
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace emp

#endif  // EMP_DATA_ATTRIBUTE_TABLE_H_
