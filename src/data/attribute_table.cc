#include "data/attribute_table.h"

#include <algorithm>
#include <utility>

namespace emp {

AttributeTable& AttributeTable::operator=(const AttributeTable& other) {
  if (this == &other) return *this;
  num_rows_ = other.num_rows_;
  names_ = other.names_;
  index_ = other.index_;
  columns_ = other.columns_;
  // Owned columns must view their own copied store, not the source's.
  for (ColumnStorage& c : columns_) {
    if (!c.store.empty()) c.data = c.store.data();
  }
  return *this;
}

Status AttributeTable::AddColumn(const std::string& name,
                                 std::vector<double> values) {
  if (index_.count(name) != 0) {
    return Status::InvalidArgument("duplicate attribute column: " + name);
  }
  if (static_cast<int64_t>(values.size()) != num_rows_) {
    return Status::InvalidArgument(
        "column '" + name + "' has " + std::to_string(values.size()) +
        " rows, table has " + std::to_string(num_rows_));
  }
  index_[name] = static_cast<int>(columns_.size());
  names_.push_back(name);
  ColumnStorage c;
  c.store = std::move(values);
  c.data = c.store.data();
  c.size = c.store.size();
  columns_.push_back(std::move(c));
  return Status::OK();
}

Status AttributeTable::AddColumnView(const std::string& name,
                                     std::span<const double> values,
                                     std::shared_ptr<const void> backing) {
  if (index_.count(name) != 0) {
    return Status::InvalidArgument("duplicate attribute column: " + name);
  }
  if (static_cast<int64_t>(values.size()) != num_rows_) {
    return Status::InvalidArgument(
        "column '" + name + "' has " + std::to_string(values.size()) +
        " rows, table has " + std::to_string(num_rows_));
  }
  index_[name] = static_cast<int>(columns_.size());
  names_.push_back(name);
  ColumnStorage c;
  c.backing = std::move(backing);
  c.data = values.data();
  c.size = values.size();
  columns_.push_back(std::move(c));
  return Status::OK();
}

bool AttributeTable::HasColumn(const std::string& name) const {
  return index_.count(name) != 0;
}

Result<int> AttributeTable::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no attribute column named '" + name + "'");
  }
  return it->second;
}

Result<std::span<const double>> AttributeTable::ColumnByName(
    const std::string& name) const {
  EMP_ASSIGN_OR_RETURN(int idx, ColumnIndex(name));
  return Column(idx);
}

Result<AttributeTable::ColumnStats> AttributeTable::Stats(
    const std::string& name) const {
  EMP_ASSIGN_OR_RETURN(int idx, ColumnIndex(name));
  const auto col = Column(idx);
  if (col.empty()) {
    return Status::FailedPrecondition("stats of an empty column");
  }
  ColumnStats s;
  s.min = *std::min_element(col.begin(), col.end());
  s.max = *std::max_element(col.begin(), col.end());
  s.sum = 0.0;
  for (double v : col) s.sum += v;
  s.mean = s.sum / static_cast<double>(col.size());
  return s;
}

}  // namespace emp
