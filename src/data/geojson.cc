#include "data/geojson.h"

#include <algorithm>
#include <sstream>

#include "common/json.h"
#include "common/str_util.h"
#include "data/loader.h"

namespace emp {

namespace {

void AppendPolygonCoords(const Polygon& poly, std::string* out) {
  out->append("[[");
  const auto& v = poly.vertices();
  for (size_t i = 0; i <= v.size(); ++i) {
    const Point& p = v[i % v.size()];  // repeat first vertex to close ring
    if (i > 0) out->append(",");
    out->append("[");
    out->append(FormatDouble(p.x, 6));
    out->append(",");
    out->append(FormatDouble(p.y, 6));
    out->append("]");
  }
  out->append("]]");
}

}  // namespace

Result<std::string> ToGeoJson(const AreaSet& areas,
                              const std::vector<int32_t>& region_of) {
  if (!areas.has_geometry()) {
    return Status::FailedPrecondition(
        "ToGeoJson requires an area set with polygons");
  }
  if (!region_of.empty() &&
      static_cast<int32_t>(region_of.size()) != areas.num_areas()) {
    return Status::InvalidArgument(
        "region assignment size != number of areas");
  }
  const auto& attrs = areas.attributes();
  std::string out;
  out.reserve(static_cast<size_t>(areas.num_areas()) * 256);
  out.append("{\"type\":\"FeatureCollection\",\"features\":[");
  for (int32_t i = 0; i < areas.num_areas(); ++i) {
    if (i > 0) out.append(",");
    out.append("{\"type\":\"Feature\",\"properties\":{\"area_id\":");
    out.append(std::to_string(i));
    for (int c = 0; c < attrs.num_columns(); ++c) {
      out.append(",\"");
      out.append(attrs.column_names()[static_cast<size_t>(c)]);
      out.append("\":");
      out.append(FormatDouble(attrs.Value(c, i), 6));
    }
    if (!region_of.empty()) {
      out.append(",\"region_id\":");
      out.append(std::to_string(region_of[static_cast<size_t>(i)]));
    }
    out.append("},\"geometry\":{\"type\":\"Polygon\",\"coordinates\":");
    AppendPolygonCoords(areas.polygon(i), &out);
    out.append("}}");
  }
  out.append("]}");
  return out;
}

Result<AreaSet> FromGeoJson(const std::string& text,
                            const GeoJsonImportOptions& options,
                            std::vector<int32_t>* region_of_out) {
  EMP_ASSIGN_OR_RETURN(json::Value doc, json::Parse(text));
  const json::Value* type = doc.Find("type");
  if (type == nullptr || !type->is_string() ||
      type->AsString() != "FeatureCollection") {
    return Status::IOError("GeoJSON root must be a FeatureCollection");
  }
  const json::Value* features = doc.Find("features");
  if (features == nullptr || !features->is_array()) {
    return Status::IOError("FeatureCollection without a features array");
  }
  const int64_t n = static_cast<int64_t>(features->AsArray().size());
  if (n == 0) {
    return Status::IOError("GeoJSON has no features");
  }

  struct ParsedFeature {
    Polygon polygon;
    std::vector<std::pair<std::string, double>> properties;
    int64_t area_id = -1;
    int32_t region_id = -1;
  };
  std::vector<ParsedFeature> parsed;
  parsed.reserve(static_cast<size_t>(n));
  bool any_area_id = false;

  for (int64_t fi = 0; fi < n; ++fi) {
    const json::Value& feature = features->AsArray()[static_cast<size_t>(fi)];
    ParsedFeature out;

    const json::Value* geometry = feature.Find("geometry");
    if (geometry == nullptr) {
      return Status::IOError("feature " + std::to_string(fi) +
                             " has no geometry");
    }
    const json::Value* gtype = geometry->Find("type");
    if (gtype == nullptr || !gtype->is_string() ||
        gtype->AsString() != "Polygon") {
      return Status::IOError("feature " + std::to_string(fi) +
                             ": only Polygon geometries are supported");
    }
    const json::Value* coords = geometry->Find("coordinates");
    if (coords == nullptr || !coords->is_array() ||
        coords->AsArray().empty()) {
      return Status::IOError("feature " + std::to_string(fi) +
                             ": malformed coordinates");
    }
    if (coords->AsArray().size() > 1) {
      return Status::IOError("feature " + std::to_string(fi) +
                             ": polygons with holes are not supported");
    }
    std::vector<Point> ring;
    for (const json::Value& pt : coords->AsArray()[0].AsArray()) {
      if (!pt.is_array() || pt.AsArray().size() < 2 ||
          !pt.AsArray()[0].is_number() || !pt.AsArray()[1].is_number()) {
        return Status::IOError("feature " + std::to_string(fi) +
                               ": malformed coordinate pair");
      }
      ring.push_back({pt.AsArray()[0].AsNumber(), pt.AsArray()[1].AsNumber()});
    }
    if (ring.size() >= 2 && ring.front() == ring.back()) {
      ring.pop_back();  // GeoJSON repeats the closing vertex.
    }
    if (ring.size() < 3) {
      return Status::IOError("feature " + std::to_string(fi) +
                             ": ring has fewer than 3 vertices");
    }
    out.polygon = Polygon(std::move(ring));

    const json::Value* properties = feature.Find("properties");
    if (properties != nullptr && properties->is_object()) {
      for (const auto& [key, value] : properties->AsObject()) {
        if (!value.is_number()) continue;  // skip non-numeric props
        if (key == "area_id") {
          out.area_id = static_cast<int64_t>(value.AsNumber());
          any_area_id = true;
        } else if (key == "region_id") {
          out.region_id = static_cast<int32_t>(value.AsNumber());
        } else {
          out.properties.emplace_back(key, value.AsNumber());
        }
      }
    }
    parsed.push_back(std::move(out));
  }

  // Order by area_id when provided (must be the full 0..n-1 range).
  if (any_area_id) {
    std::vector<ParsedFeature> ordered(parsed.size());
    std::vector<char> seen(parsed.size(), 0);
    for (auto& f : parsed) {
      if (f.area_id < 0 || f.area_id >= n ||
          seen[static_cast<size_t>(f.area_id)]) {
        return Status::IOError("area_id properties must cover 0..n-1 "
                               "without duplicates");
      }
      seen[static_cast<size_t>(f.area_id)] = 1;
      ordered[static_cast<size_t>(f.area_id)] = std::move(f);
    }
    parsed = std::move(ordered);
  }

  // Attribute columns: union of numeric property keys, in first-seen
  // order; missing values error (all features must agree).
  std::vector<std::string> column_names;
  for (const auto& f : parsed) {
    for (const auto& [key, value] : f.properties) {
      (void)value;
      if (std::find(column_names.begin(), column_names.end(), key) ==
          column_names.end()) {
        column_names.push_back(key);
      }
    }
  }
  if (column_names.empty()) {
    return Status::IOError(
        "GeoJSON features carry no numeric attribute properties");
  }
  AttributeTable table(n);
  for (const std::string& name : column_names) {
    std::vector<double> values(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const auto& props = parsed[static_cast<size_t>(i)].properties;
      auto it = std::find_if(props.begin(), props.end(),
                             [&](const auto& kv) { return kv.first == name; });
      if (it == props.end()) {
        return Status::IOError("feature " + std::to_string(i) +
                               " is missing property '" + name + "'");
      }
      values[static_cast<size_t>(i)] = it->second;
    }
    EMP_RETURN_IF_ERROR(table.AddColumn(name, std::move(values)));
  }

  std::vector<Polygon> polygons;
  polygons.reserve(parsed.size());
  for (auto& f : parsed) polygons.push_back(std::move(f.polygon));
  LoaderOptions loader_options;
  loader_options.min_shared_border = options.min_shared_border;
  loader_options.queen = options.queen;
  EMP_ASSIGN_OR_RETURN(ContiguityGraph graph,
                       DeriveContiguity(polygons, loader_options));

  if (region_of_out != nullptr) {
    region_of_out->resize(parsed.size());
    for (size_t i = 0; i < parsed.size(); ++i) {
      (*region_of_out)[i] = parsed[i].region_id;
    }
  }

  std::string diss = options.dissimilarity_attribute.empty()
                         ? column_names.front()
                         : options.dissimilarity_attribute;
  return AreaSet::Create(options.name, std::move(polygons), std::move(graph),
                         std::move(table), diss);
}

std::string AssignmentToCsv(const std::vector<int32_t>& region_of) {
  std::string out = "area_id,region_id\n";
  for (size_t i = 0; i < region_of.size(); ++i) {
    out += std::to_string(i);
    out += ',';
    out += std::to_string(region_of[i]);
    out += '\n';
  }
  return out;
}

}  // namespace emp
