#include "data/transforms.h"

#include <cmath>
#include <span>

namespace emp {

namespace {

Result<std::pair<double, double>> MeanStddev(
    const std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("transform of an empty column");
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  return std::make_pair(mean, std::sqrt(var));
}

}  // namespace

Result<std::vector<double>> ZScore(const std::vector<double>& values) {
  EMP_ASSIGN_OR_RETURN(auto ms, MeanStddev(values));
  auto [mean, stddev] = ms;
  if (stddev <= 0.0) {
    return Status::InvalidArgument("z-score of a constant column");
  }
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = (values[i] - mean) / stddev;
  }
  return out;
}

Result<std::vector<double>> MinMaxScale(const std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("transform of an empty column");
  }
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) {
    return Status::InvalidArgument("min-max scale of a constant column");
  }
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = (values[i] - lo) / (hi - lo);
  }
  return out;
}

Result<std::vector<double>> LogTransform(const std::vector<double>& values,
                                         double offset) {
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    double v = values[i] + offset;
    if (v <= 0.0) {
      return Status::InvalidArgument(
          "log transform of a non-positive value at row " +
          std::to_string(i));
    }
    out[i] = std::log(v);
  }
  return out;
}

Result<AreaSet> WithCompositeAttribute(const AreaSet& areas,
                                       const std::string& name,
                                       const std::vector<CompositeTerm>& terms,
                                       bool use_as_dissimilarity) {
  if (terms.empty()) {
    return Status::InvalidArgument("composite attribute needs >= 1 term");
  }
  if (areas.attributes().HasColumn(name)) {
    return Status::InvalidArgument("column '" + name + "' already exists");
  }
  const size_t n = static_cast<size_t>(areas.num_areas());
  std::vector<double> composite(n, 0.0);
  for (const CompositeTerm& term : terms) {
    EMP_ASSIGN_OR_RETURN(const std::span<const double> column,
                         areas.attributes().ColumnByName(term.attribute));
    std::vector<double> values(column.begin(), column.end());
    if (term.standardize) {
      EMP_ASSIGN_OR_RETURN(values, ZScore(values));
    }
    for (size_t i = 0; i < n; ++i) {
      composite[i] += term.weight * values[i];
    }
  }

  // Rebuild the attribute table with the extra column.
  AttributeTable table(areas.num_areas());
  for (int c = 0; c < areas.attributes().num_columns(); ++c) {
    const auto column = areas.attributes().Column(c);
    EMP_RETURN_IF_ERROR(table.AddColumn(
        areas.attributes().column_names()[static_cast<size_t>(c)],
        std::vector<double>(column.begin(), column.end())));
  }
  EMP_RETURN_IF_ERROR(table.AddColumn(name, std::move(composite)));

  std::string diss =
      use_as_dissimilarity ? name : areas.dissimilarity_attribute();
  // Graph and polygons are copied; AreaSet owns value semantics.
  std::vector<Polygon> polygons = areas.polygons();
  ContiguityGraph graph = areas.graph();
  return AreaSet::Create(areas.name(), std::move(polygons), std::move(graph),
                         std::move(table), diss);
}

}  // namespace emp
