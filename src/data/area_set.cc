#include "data/area_set.h"

namespace emp {

Result<AreaSet> AreaSet::Create(std::string name,
                                std::vector<Polygon> polygons,
                                ContiguityGraph graph,
                                AttributeTable attributes,
                                std::string dissimilarity_attribute) {
  if (!polygons.empty() &&
      static_cast<int32_t>(polygons.size()) != graph.num_nodes()) {
    return Status::InvalidArgument(
        "polygon count (" + std::to_string(polygons.size()) +
        ") != graph node count (" + std::to_string(graph.num_nodes()) + ")");
  }
  if (attributes.num_rows() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "attribute row count (" + std::to_string(attributes.num_rows()) +
        ") != graph node count (" + std::to_string(graph.num_nodes()) + ")");
  }
  EMP_ASSIGN_OR_RETURN(int diss_col,
                       attributes.ColumnIndex(dissimilarity_attribute));
  AreaSet out;
  out.name_ = std::move(name);
  out.polygons_ = std::move(polygons);
  out.graph_ = std::move(graph);
  out.attributes_ = std::move(attributes);
  out.dissimilarity_attribute_ = std::move(dissimilarity_attribute);
  out.dissimilarity_column_ = diss_col;
  return out;
}

Result<AreaSet> AreaSet::CreateWithoutGeometry(
    std::string name, ContiguityGraph graph, AttributeTable attributes,
    std::string dissimilarity_attribute) {
  return Create(std::move(name), {}, std::move(graph), std::move(attributes),
                std::move(dissimilarity_attribute));
}

}  // namespace emp
