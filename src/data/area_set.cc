#include "data/area_set.h"

#include <cstring>
#include <utility>

namespace emp {

AreaSet& AreaSet::operator=(const AreaSet& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  polygons_ = other.polygons_;
  graph_ = other.graph_;
  attributes_ = other.attributes_;
  dissimilarity_attribute_ = other.dissimilarity_attribute_;
  dissimilarity_column_ = other.dissimilarity_column_;
  const bool valid = other.digest_valid_.load(std::memory_order_acquire);
  digest_.store(valid ? other.digest_.load(std::memory_order_relaxed) : 0,
                std::memory_order_relaxed);
  digest_valid_.store(valid, std::memory_order_release);
  return *this;
}

AreaSet& AreaSet::operator=(AreaSet&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  polygons_ = std::move(other.polygons_);
  graph_ = std::move(other.graph_);
  attributes_ = std::move(other.attributes_);
  dissimilarity_attribute_ = std::move(other.dissimilarity_attribute_);
  dissimilarity_column_ = other.dissimilarity_column_;
  const bool valid = other.digest_valid_.load(std::memory_order_acquire);
  digest_.store(valid ? other.digest_.load(std::memory_order_relaxed) : 0,
                std::memory_order_relaxed);
  digest_valid_.store(valid, std::memory_order_release);
  return *this;
}

Result<AreaSet> AreaSet::Create(std::string name,
                                std::vector<Polygon> polygons,
                                ContiguityGraph graph,
                                AttributeTable attributes,
                                std::string dissimilarity_attribute) {
  if (!polygons.empty() &&
      static_cast<int32_t>(polygons.size()) != graph.num_nodes()) {
    return Status::InvalidArgument(
        "polygon count (" + std::to_string(polygons.size()) +
        ") != graph node count (" + std::to_string(graph.num_nodes()) + ")");
  }
  if (attributes.num_rows() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "attribute row count (" + std::to_string(attributes.num_rows()) +
        ") != graph node count (" + std::to_string(graph.num_nodes()) + ")");
  }
  EMP_ASSIGN_OR_RETURN(int diss_col,
                       attributes.ColumnIndex(dissimilarity_attribute));
  AreaSet out;
  out.name_ = std::move(name);
  out.polygons_ = std::move(polygons);
  out.graph_ = std::move(graph);
  out.attributes_ = std::move(attributes);
  out.dissimilarity_attribute_ = std::move(dissimilarity_attribute);
  out.dissimilarity_column_ = diss_col;
  return out;
}

Result<AreaSet> AreaSet::CreateWithoutGeometry(
    std::string name, ContiguityGraph graph, AttributeTable attributes,
    std::string dissimilarity_attribute) {
  return Create(std::move(name), {}, std::move(graph), std::move(attributes),
                std::move(dissimilarity_attribute));
}

namespace {

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

void FnvMix(uint64_t* h, uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    *h ^= (v >> (byte * 8)) & 0xFF;
    *h *= kFnvPrime;
  }
}

void FnvMixString(uint64_t* h, const std::string& s) {
  for (unsigned char c : s) {
    *h ^= c;
    *h *= kFnvPrime;
  }
  FnvMix(h, s.size());  // delimiter so {"ab","c"} != {"a","bc"}
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t AreaSet::InstanceDigest() const {
  if (digest_valid_.load(std::memory_order_acquire)) {
    return digest_.load(std::memory_order_relaxed);
  }
  const uint64_t h = ComputeInstanceDigest();
  digest_.store(h, std::memory_order_relaxed);
  digest_valid_.store(true, std::memory_order_release);
  return h;
}

void AreaSet::SeedInstanceDigest(uint64_t digest) {
  digest_.store(digest, std::memory_order_relaxed);
  digest_valid_.store(true, std::memory_order_release);
}

uint64_t AreaSet::ComputeInstanceDigest() const {
  uint64_t h = kFnvOffset;
  FnvMixString(&h, name_);
  FnvMix(&h, static_cast<uint64_t>(graph_.num_nodes()));
  FnvMix(&h, static_cast<uint64_t>(graph_.num_edges()));
  for (int32_t node = 0; node < graph_.num_nodes(); ++node) {
    for (int32_t neighbor : graph_.NeighborsOf(node)) {
      if (neighbor > node) {
        FnvMix(&h, (static_cast<uint64_t>(node) << 32) |
                       static_cast<uint64_t>(neighbor));
      }
    }
  }
  FnvMixString(&h, dissimilarity_attribute_);
  for (const std::string& column : attributes_.column_names()) {
    FnvMixString(&h, column);
    auto values = attributes_.ColumnByName(column);
    if (!values.ok()) continue;
    for (double v : *values) FnvMix(&h, DoubleBits(v));
  }
  return h;
}

}  // namespace emp
