#include "data/synthetic/scenarios.h"

#include <cmath>

#include "data/synthetic/census_synthesizer.h"

namespace emp {
namespace synthetic {

Result<AreaSet> MakeCovidCity(int32_t num_areas, uint64_t seed) {
  MapSpec spec;
  spec.name = "covid-city";
  spec.num_areas = num_areas;
  spec.seed = seed;
  spec.attributes = DefaultCensusAttributes();

  AttributeSpec income;
  income.name = "INCOME";
  income.marginal = Marginal::kLogNormal;
  income.param_a = std::log(3800.0);  // median monthly income
  income.param_b = 0.35;
  income.clamp_min = 800.0;
  income.spatial_weight = 0.75;  // income clusters strongly in cities
  spec.attributes.push_back(income);

  AttributeSpec transit;
  transit.name = "TRANSIT";
  transit.marginal = Marginal::kLogNormal;
  transit.param_a = std::log(900.0);  // daily riders per tract
  transit.param_b = 0.8;
  transit.clamp_min = 0.0;
  spec.attributes.push_back(transit);

  spec.dissimilarity_attribute = "INCOME";
  return SynthesizeMap(spec);
}

Result<AreaSet> MakeGrowthState(int32_t num_areas, uint64_t seed) {
  MapSpec spec;
  spec.name = "growth-state";
  spec.num_areas = num_areas;
  spec.seed = seed;
  spec.attributes = DefaultCensusAttributes();

  AttributeSpec dropout;
  dropout.name = "DROPOUT";  // percent
  dropout.marginal = Marginal::kNormal;
  dropout.param_a = 11.0;
  dropout.param_b = 5.0;
  dropout.clamp_min = 0.0;
  dropout.clamp_max = 40.0;
  spec.attributes.push_back(dropout);

  AttributeSpec age;
  age.name = "AVGAGE";
  age.marginal = Marginal::kNormal;
  age.param_a = 37.0;
  age.param_b = 6.0;
  age.clamp_min = 18.0;
  age.clamp_max = 70.0;
  spec.attributes.push_back(age);

  AttributeSpec unemployed;
  unemployed.name = "UNEMPLOYED";
  unemployed.marginal = Marginal::kLogNormal;
  unemployed.param_a = std::log(220.0);
  unemployed.param_b = 0.6;
  unemployed.clamp_min = 0.0;
  spec.attributes.push_back(unemployed);

  spec.dissimilarity_attribute = "HOUSEHOLDS";
  return SynthesizeMap(spec);
}

Result<AreaSet> MakePatrolCity(int32_t num_areas, uint64_t seed) {
  MapSpec spec;
  spec.name = "patrol-city";
  spec.num_areas = num_areas;
  spec.seed = seed;

  AttributeSpec calls;
  calls.name = "CALLS";  // annual emergency calls per beat
  calls.marginal = Marginal::kLogNormal;
  calls.param_a = std::log(120.0);
  calls.param_b = 0.55;
  calls.clamp_min = 5.0;
  calls.spatial_weight = 0.7;  // crime clusters spatially
  spec.attributes.push_back(calls);

  AttributeSpec response;
  response.name = "RESPONSE_MIN";  // average response time, minutes
  response.marginal = Marginal::kNormal;
  response.param_a = 8.0;
  response.param_b = 2.5;
  response.clamp_min = 2.0;
  response.clamp_max = 25.0;
  spec.attributes.push_back(response);

  spec.dissimilarity_attribute = "RESPONSE_MIN";
  return SynthesizeMap(spec);
}

}  // namespace synthetic
}  // namespace emp
