#include "data/synthetic/noise_field.h"

#include <cmath>

namespace emp {
namespace synthetic {

namespace {

uint64_t Mix64(uint64_t x) {
  // SplitMix64 finalizer — good avalanche for lattice hashing.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double SmoothStep(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace

NoiseField::NoiseField(uint64_t seed, double frequency, int octaves)
    : seed_(seed), frequency_(frequency), octaves_(octaves < 1 ? 1 : octaves) {}

double NoiseField::LatticeValue(int64_t ix, int64_t iy, uint64_t salt) const {
  uint64_t h = Mix64(
      seed_ ^ salt ^
      Mix64(static_cast<uint64_t>(ix) * 0x9E3779B97F4A7C15ULL ^
            static_cast<uint64_t>(iy)));
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^53
}

double NoiseField::SampleOctave(double x, double y, uint64_t salt) const {
  double fx = std::floor(x);
  double fy = std::floor(y);
  int64_t ix = static_cast<int64_t>(fx);
  int64_t iy = static_cast<int64_t>(fy);
  double tx = SmoothStep(x - fx);
  double ty = SmoothStep(y - fy);
  double v00 = LatticeValue(ix, iy, salt);
  double v10 = LatticeValue(ix + 1, iy, salt);
  double v01 = LatticeValue(ix, iy + 1, salt);
  double v11 = LatticeValue(ix + 1, iy + 1, salt);
  double a = v00 + (v10 - v00) * tx;
  double b = v01 + (v11 - v01) * tx;
  return a + (b - a) * ty;
}

double NoiseField::Sample(double x, double y) const {
  double total = 0.0;
  double amplitude = 1.0;
  double amplitude_sum = 0.0;
  double freq = frequency_;
  for (int o = 0; o < octaves_; ++o) {
    total += amplitude *
             SampleOctave(x * freq, y * freq, static_cast<uint64_t>(o) + 1);
    amplitude_sum += amplitude;
    amplitude *= 0.5;
    freq *= 2.0;
  }
  return total / amplitude_sum;
}

double InverseNormalCdf(double p) {
  // Peter Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;

  if (p <= 0.0) return -1e308;
  if (p >= 1.0) return 1e308;

  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    double q = p - 0.5;
    double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace synthetic
}  // namespace emp
