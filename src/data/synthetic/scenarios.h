#ifndef EMP_DATA_SYNTHETIC_SCENARIOS_H_
#define EMP_DATA_SYNTHETIC_SCENARIOS_H_

#include <cstdint>

#include "common/result.h"
#include "data/area_set.h"

namespace emp {
namespace synthetic {

/// Pre-packaged synthetic maps for the paper's three motivating
/// applications (§I). Each returns a fully attributed AreaSet whose
/// columns line up with the corresponding example query; the example
/// binaries and tests share these builders.

/// Urban map for COVID policy regions: census defaults plus
///   INCOME  — lognormal monthly income, strongly spatially clustered
///   TRANSIT — lognormal daily transit riders, heavy tail
/// Dissimilarity: INCOME.
Result<AreaSet> MakeCovidCity(int32_t num_areas = 1200,
                              uint64_t seed = 20200301);

/// State-level map for population-growth studies: census defaults plus
///   DROPOUT    — school drop-out percentage, clamped normal
///   AVGAGE     — average age (spatially intensive stand-in attribute)
///   UNEMPLOYED — lognormal unemployment counts
/// Dissimilarity: HOUSEHOLDS.
Result<AreaSet> MakeGrowthState(int32_t num_areas = 1500,
                                uint64_t seed = 1965);

/// Police-beat map for patrol districting:
///   CALLS        — annual emergency calls per beat, clustered lognormal
///   RESPONSE_MIN — average response time in minutes
/// Dissimilarity: RESPONSE_MIN.
Result<AreaSet> MakePatrolCity(int32_t num_areas = 900,
                               uint64_t seed = 911);

}  // namespace synthetic
}  // namespace emp

#endif  // EMP_DATA_SYNTHETIC_SCENARIOS_H_
