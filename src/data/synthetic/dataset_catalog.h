#ifndef EMP_DATA_SYNTHETIC_DATASET_CATALOG_H_
#define EMP_DATA_SYNTHETIC_DATASET_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/area_set.h"

namespace emp {
namespace synthetic {

/// One catalog entry mirroring the paper's evaluation datasets (§VII-A,
/// Table I): name, exact area count, and the states the original covered.
struct DatasetInfo {
  std::string name;
  int32_t num_areas = 0;
  std::string description;
};

/// The paper's nine datasets (1k=1012 ... 50k=49943) plus "tiny" (120
/// areas) and "small" (400), which the tests and the quickstart use.
const std::vector<DatasetInfo>& DatasetCatalog();

/// Info for a named dataset.
Result<DatasetInfo> FindDataset(const std::string& name);

/// Synthesizes a catalog dataset with the paper's default attribute suite
/// (POP16UP / EMPLOYED / TOTALPOP / HOUSEHOLDS). Deterministic: the seed is
/// derived from the dataset name, so repeated calls (and different
/// processes) produce identical maps.
///
/// `size_scale` in (0, 1] shrinks the area count (benchmark quick mode);
/// the default 1.0 reproduces the paper's exact sizes.
Result<AreaSet> MakeCatalogDataset(const std::string& name,
                                   double size_scale = 1.0);

/// Synthesizes an arbitrary-size dataset with the default attribute suite.
Result<AreaSet> MakeDefaultDataset(const std::string& name, int32_t num_areas,
                                   uint64_t seed, int32_t num_components = 1);

}  // namespace synthetic
}  // namespace emp

#endif  // EMP_DATA_SYNTHETIC_DATASET_CATALOG_H_
