#ifndef EMP_DATA_SYNTHETIC_NOISE_FIELD_H_
#define EMP_DATA_SYNTHETIC_NOISE_FIELD_H_

#include <cstdint>

namespace emp {
namespace synthetic {

/// Deterministic fractal value-noise field over the plane, returning values
/// in [0, 1]. Census attributes are spatially autocorrelated (rich tracts
/// neighbor rich tracts); sampling this field at area centroids provides
/// that correlation for the synthetic attribute generator. Hash-based, so
/// evaluation needs no precomputed lattice and is thread-safe.
class NoiseField {
 public:
  /// `frequency` is the reciprocal correlation length in map units; higher
  /// means faster spatial variation. `octaves` adds finer detail layers.
  NoiseField(uint64_t seed, double frequency, int octaves = 3);

  /// Field value at (x, y), in [0, 1].
  double Sample(double x, double y) const;

 private:
  /// Pseudo-random value in [0, 1] for the lattice point (ix, iy).
  double LatticeValue(int64_t ix, int64_t iy, uint64_t salt) const;
  /// Single-octave smooth interpolation of lattice values.
  double SampleOctave(double x, double y, uint64_t salt) const;

  uint64_t seed_;
  double frequency_;
  int octaves_;
};

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |error| < 1.2e-9). Used to map uniform ranks onto target attribute
/// marginals. `p` must lie in (0, 1).
double InverseNormalCdf(double p);

}  // namespace synthetic
}  // namespace emp

#endif  // EMP_DATA_SYNTHETIC_NOISE_FIELD_H_
