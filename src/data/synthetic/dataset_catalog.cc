#include "data/synthetic/dataset_catalog.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "data/synthetic/census_synthesizer.h"

namespace emp {
namespace synthetic {

const std::vector<DatasetInfo>& DatasetCatalog() {
  // Area counts are the paper's exact Table I / §VII-A numbers; the state
  // lists document what the originals covered.
  static const std::vector<DatasetInfo>* kCatalog =
      new std::vector<DatasetInfo>{
          {"tiny", 120, "test-size map (not in the paper)"},
          {"small", 400, "test-size map (not in the paper)"},
          {"1k", 1012, "Los Angeles City census tracts"},
          {"2k", 2344, "Los Angeles County census tracts (paper default)"},
          {"4k", 3947, "Southern California (SCAG)"},
          {"8k", 8049, "State of California"},
          {"10k", 10255, "CA, NV, AZ"},
          {"20k", 20570, "10k + OR WA ID UT MT WY CO NM OK NE SD ND"},
          {"30k", 29887, "20k + TX LA AR MO IA"},
          {"40k", 40214, "30k + MN MS AL TN KY IL WI"},
          {"50k", 49943, "40k + GA IN MI OH WV"},
          // Beyond the paper: the compact-instance-store scale regime
          // (ROADMAP "1M-area"). Sized like multi-state tract unions.
          {"250k", 250000,
           "synthetic eastern-US-scale union (not in the paper)"},
          {"500k", 500000,
           "synthetic continental-US-scale union (not in the paper)"},
          {"1m", 1000000, "synthetic 1M-area stress map (not in the paper)"},
      };
  return *kCatalog;
}

Result<DatasetInfo> FindDataset(const std::string& name) {
  for (const DatasetInfo& info : DatasetCatalog()) {
    if (info.name == name) return info;
  }
  return Status::NotFound("unknown dataset '" + name + "'");
}

Result<AreaSet> MakeCatalogDataset(const std::string& name,
                                   double size_scale) {
  EMP_ASSIGN_OR_RETURN(DatasetInfo info, FindDataset(name));
  if (size_scale <= 0.0 || size_scale > 1.0) {
    return Status::InvalidArgument("size_scale must be in (0, 1]");
  }
  int32_t n = std::max<int32_t>(
      50, static_cast<int32_t>(std::lround(info.num_areas * size_scale)));
  if (size_scale == 1.0) n = info.num_areas;
  return MakeDefaultDataset(name, n, StableHash64(name));
}

Result<AreaSet> MakeDefaultDataset(const std::string& name, int32_t num_areas,
                                   uint64_t seed, int32_t num_components) {
  MapSpec spec;
  spec.name = name;
  spec.num_areas = num_areas;
  spec.seed = seed;
  spec.num_components = num_components;
  spec.attributes = DefaultCensusAttributes();
  spec.dissimilarity_attribute = "HOUSEHOLDS";
  return SynthesizeMap(spec);
}

}  // namespace synthetic
}  // namespace emp
