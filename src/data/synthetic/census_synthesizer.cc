#include "data/synthetic/census_synthesizer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

#include "common/rng.h"
#include "data/synthetic/noise_field.h"
#include "geometry/voronoi.h"

namespace emp {
namespace synthetic {

namespace {

/// Quantile function of a marginal at probability p in (0, 1).
double Quantile(const AttributeSpec& spec, double p) {
  switch (spec.marginal) {
    case Marginal::kNormal:
      return spec.param_a + spec.param_b * InverseNormalCdf(p);
    case Marginal::kLogNormal:
      return std::exp(spec.param_a + spec.param_b * InverseNormalCdf(p));
    case Marginal::kUniform:
      return spec.param_a + (spec.param_b - spec.param_a) * p;
  }
  return 0.0;
}

struct Island {
  std::vector<Point> sites;
  Box frame;
};

/// Lays out `n` jittered-grid sites inside a frame whose origin is shifted
/// by `x_offset`, producing tract-like irregular Voronoi cells.
Island LayOutIsland(int32_t n, double x_offset, double jitter, Rng* rng) {
  Island island;
  const int cols = std::max(1, static_cast<int>(std::ceil(std::sqrt(
                                    static_cast<double>(n)))));
  const int rows = (n + cols - 1) / cols;
  const double pitch = 1.0;
  island.sites.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    int r = static_cast<int>(i) / cols;
    int c = static_cast<int>(i) % cols;
    double jx = rng->Uniform(-jitter, jitter) * pitch;
    double jy = rng->Uniform(-jitter, jitter) * pitch;
    island.sites.push_back(
        {x_offset + (c + 0.5) * pitch + jx, (r + 0.5) * pitch + jy});
  }
  island.frame.Extend(Point{x_offset, 0.0});
  island.frame.Extend(Point{x_offset + cols * pitch, rows * pitch});
  return island;
}

}  // namespace

std::vector<AttributeSpec> DefaultCensusAttributes() {
  std::vector<AttributeSpec> specs;

  AttributeSpec pop16up;
  pop16up.name = "POP16UP";
  pop16up.marginal = Marginal::kNormal;
  pop16up.param_a = 3200.0;
  pop16up.param_b = 1100.0;
  pop16up.clamp_min = 50.0;
  specs.push_back(pop16up);

  AttributeSpec employed;
  employed.name = "EMPLOYED";
  employed.marginal = Marginal::kLogNormal;
  employed.param_a = std::log(1800.0);
  employed.param_b = 0.36;
  employed.clamp_min = 50.0;
  specs.push_back(employed);

  AttributeSpec totalpop;
  totalpop.name = "TOTALPOP";
  totalpop.marginal = Marginal::kNormal;
  totalpop.param_a = 4200.0;
  totalpop.param_b = 1500.0;
  totalpop.clamp_min = 300.0;
  specs.push_back(totalpop);

  AttributeSpec households;
  households.name = "HOUSEHOLDS";
  households.derive_from = "TOTALPOP";
  households.derive_scale = 1.0 / 2.8;
  households.derive_noise = 180.0;
  households.clamp_min = 100.0;
  specs.push_back(households);

  return specs;
}

Result<AreaSet> SynthesizeMap(const MapSpec& spec) {
  if (spec.num_areas < 1) {
    return Status::InvalidArgument("num_areas must be >= 1");
  }
  if (spec.num_components < 1 || spec.num_components > spec.num_areas) {
    return Status::InvalidArgument(
        "num_components must be in [1, num_areas]");
  }
  if (spec.jitter <= 0.0 || spec.jitter > 0.5) {
    return Status::InvalidArgument("jitter must be in (0, 0.5]");
  }
  if (spec.attributes.empty()) {
    return Status::InvalidArgument("at least one attribute is required");
  }

  Rng rng(spec.seed);

  // --- Geometry: one Voronoi tessellation per island. -----------------
  const int32_t k = spec.num_components;
  std::vector<Polygon> polygons;
  polygons.reserve(static_cast<size_t>(spec.num_areas));
  std::vector<std::vector<int32_t>> neighbors(
      static_cast<size_t>(spec.num_areas));
  std::vector<Point> centroids;
  centroids.reserve(static_cast<size_t>(spec.num_areas));

  double x_cursor = 0.0;
  int32_t id_offset = 0;
  const double kIslandGap = 3.0;  // Blank water between islands.
  for (int32_t c = 0; c < k; ++c) {
    int32_t n_c = spec.num_areas / k + (c < spec.num_areas % k ? 1 : 0);
    Island island = LayOutIsland(n_c, x_cursor, spec.jitter, &rng);
    EMP_ASSIGN_OR_RETURN(VoronoiDiagram diagram,
                         ComputeVoronoi(island.sites, island.frame));
    for (int32_t i = 0; i < n_c; ++i) {
      polygons.push_back(std::move(diagram.cells[static_cast<size_t>(i)]));
      centroids.push_back(polygons.back().Centroid());
      auto& out = neighbors[static_cast<size_t>(id_offset + i)];
      for (int32_t nb : diagram.neighbors[static_cast<size_t>(i)]) {
        out.push_back(id_offset + nb);
      }
    }
    x_cursor += island.frame.Width() + kIslandGap;
    id_offset += n_c;
  }

  EMP_ASSIGN_OR_RETURN(
      ContiguityGraph graph,
      ContiguityGraph::FromNeighborLists(std::move(neighbors)));

  // --- Attributes: correlated latents, rank-mapped marginals. ---------
  AttributeTable table(spec.num_areas);
  const size_t n = static_cast<size_t>(spec.num_areas);
  for (const AttributeSpec& attr : spec.attributes) {
    std::vector<double> values(n);
    if (!attr.derive_from.empty()) {
      EMP_ASSIGN_OR_RETURN(const std::span<const double> base,
                           [&]() -> Result<std::span<const double>> {
                             auto r = table.ColumnByName(attr.derive_from);
                             if (!r.ok()) {
                               return Status::InvalidArgument(
                                   "attribute '" + attr.name +
                                   "' derives from unknown column '" +
                                   attr.derive_from + "'");
                             }
                             return r;
                           }());
      for (size_t i = 0; i < n; ++i) {
        double v = attr.derive_scale * base[i];
        if (attr.derive_noise > 0.0) v += rng.Normal(0.0, attr.derive_noise);
        values[i] = std::clamp(v, attr.clamp_min, attr.clamp_max);
      }
    } else {
      if (attr.spatial_weight < 0.0 || attr.spatial_weight > 1.0) {
        return Status::InvalidArgument("spatial_weight must be in [0, 1]");
      }
      NoiseField field(spec.seed ^ StableHash64(attr.name), /*frequency=*/0.12,
                       /*octaves=*/3);
      // Sample the field at centroids, then rank-normalize to uniform so
      // the smooth and i.i.d. components have equal variance — otherwise
      // the fractal field's compressed range lets noise dominate the blend.
      std::vector<double> smooth(n);
      for (size_t i = 0; i < n; ++i) {
        smooth[i] = field.Sample(centroids[i].x, centroids[i].y);
      }
      std::vector<int32_t> smooth_order(n);
      std::iota(smooth_order.begin(), smooth_order.end(), 0);
      std::sort(smooth_order.begin(), smooth_order.end(),
                [&](int32_t a, int32_t b) {
                  return smooth[static_cast<size_t>(a)] <
                         smooth[static_cast<size_t>(b)];
                });
      std::vector<double> smooth_u(n);
      for (size_t rank = 0; rank < n; ++rank) {
        smooth_u[static_cast<size_t>(smooth_order[rank])] =
            (static_cast<double>(rank) + 0.5) / static_cast<double>(n);
      }
      std::vector<double> latent(n);
      for (size_t i = 0; i < n; ++i) {
        double noise = rng.Uniform(0.0, 1.0);
        latent[i] = attr.spatial_weight * smooth_u[i] +
                    (1.0 - attr.spatial_weight) * noise;
      }
      // Rank-map: i-th smallest latent receives the i-th marginal quantile,
      // making the output marginal exact regardless of the latent's shape.
      std::vector<int32_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
        return latent[static_cast<size_t>(a)] < latent[static_cast<size_t>(b)];
      });
      for (size_t rank = 0; rank < n; ++rank) {
        double p = (static_cast<double>(rank) + 0.5) / static_cast<double>(n);
        values[static_cast<size_t>(order[rank])] =
            std::clamp(Quantile(attr, p), attr.clamp_min, attr.clamp_max);
      }
    }
    EMP_RETURN_IF_ERROR(table.AddColumn(attr.name, std::move(values)));
  }

  std::string diss = spec.dissimilarity_attribute;
  if (diss.empty()) diss = spec.attributes.back().name;
  return AreaSet::Create(spec.name, std::move(polygons), std::move(graph),
                         std::move(table), diss);
}

}  // namespace synthetic
}  // namespace emp
