#ifndef EMP_DATA_SYNTHETIC_CENSUS_SYNTHESIZER_H_
#define EMP_DATA_SYNTHETIC_CENSUS_SYNTHESIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/area_set.h"

namespace emp {
namespace synthetic {

/// Marginal distribution an attribute should follow.
enum class Marginal {
  kNormal,     // params: a = mean, b = stddev
  kLogNormal,  // params: a = log-mean, b = log-stddev
  kUniform,    // params: a = lo, b = hi
};

/// Specification of one synthesized attribute column.
///
/// Values are produced by (1) drawing a spatially correlated latent score
/// per area — a blend of a smooth noise field sampled at the area centroid
/// and i.i.d. noise, weighted by `spatial_weight` — then (2) rank-mapping
/// the scores through the requested marginal's quantile function, so the
/// output matches the marginal *exactly* while neighboring areas remain
/// correlated, as in real census data.
struct AttributeSpec {
  std::string name;
  Marginal marginal = Marginal::kNormal;
  double param_a = 0.0;
  double param_b = 1.0;
  /// Share of the latent score taken from the smooth spatial field
  /// ([0, 1]; 0 = i.i.d., 1 = purely spatial).
  double spatial_weight = 0.6;
  /// Values are clamped into [clamp_min, clamp_max] after generation.
  double clamp_min = 0.0;
  double clamp_max = 1e18;
  /// If non-empty, the column is instead derived from an earlier column:
  /// value = derive_scale * other + N(0, derive_noise), clamped. Used for
  /// HOUSEHOLDS ~ TOTALPOP / household-size.
  std::string derive_from;
  double derive_scale = 1.0;
  double derive_noise = 0.0;
};

/// Full synthetic-map specification.
struct MapSpec {
  std::string name = "synthetic";
  /// Number of areas (census tracts).
  int32_t num_areas = 1000;
  /// RNG seed; every output is a pure function of the spec.
  uint64_t seed = 1;
  /// Number of disconnected "islands" (>= 1). Each island is tessellated in
  /// its own frame so the contiguity graph has exactly this many connected
  /// components (paper §I: FaCT supports multiple components).
  int32_t num_components = 1;
  /// Site jitter as a fraction of grid pitch in (0, 0.5]; higher = more
  /// irregular, tract-like cells.
  double jitter = 0.45;
  std::vector<AttributeSpec> attributes;
  std::string dissimilarity_attribute;
};

/// The paper's default attribute suite (Table II semantics):
///   POP16UP    ~ Normal(3200, 1100)   — MIN/MAX threshold band 2k..5k
///   EMPLOYED   ~ LogNormal(ln 1800, 0.36) — positively skewed, max ≈ 6.1k
///                                       (Fig. 8's distribution)
///   TOTALPOP   ~ Normal(4200, 1500)   — SUM threshold band 1k..40k
///   HOUSEHOLDS = TOTALPOP / 2.8 + noise — dissimilarity attribute
std::vector<AttributeSpec> DefaultCensusAttributes();

/// Synthesizes a complete area set (polygons + contiguity graph +
/// attributes) from a spec. Fails on invalid specs (num_areas < 1,
/// num_components < 1 or > num_areas, unknown derive_from, ...).
Result<AreaSet> SynthesizeMap(const MapSpec& spec);

}  // namespace synthetic
}  // namespace emp

#endif  // EMP_DATA_SYNTHETIC_CENSUS_SYNTHESIZER_H_
