#ifndef EMP_DATA_COMPACT_WRITER_H_
#define EMP_DATA_COMPACT_WRITER_H_

#include <string>

#include "common/result.h"
#include "data/area_set.h"

namespace emp::compact {

struct PackOptions {
  /// Drop polygons even when the instance has them. The solve path never
  /// reads geometry, so geometry-free images are smaller and still produce
  /// bit-identical assignments; report metrics that need shapes differ.
  bool strip_geometry = false;
};

/// Serializes an AreaSet to the compact binary format (format.h). The
/// header records the instance's FNV-1a digest, which geometry does not
/// enter — packed and in-memory builds of the same instance share it.
Result<std::string> PackAreaSet(const AreaSet& areas,
                                const PackOptions& options = {});

/// PackAreaSet + atomic write to `path` (conventionally "<name>.emp").
Status WriteCompactFile(const AreaSet& areas, const std::string& path,
                        const PackOptions& options = {});

}  // namespace emp::compact

#endif  // EMP_DATA_COMPACT_WRITER_H_
