#ifndef EMP_DATA_COMPACT_LOADER_H_
#define EMP_DATA_COMPACT_LOADER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/area_set.h"

namespace emp::compact {

struct LoadOptions {
  /// Recompute the FNV-1a digest from the decoded instance and fail on a
  /// mismatch with the header. Costs the full O(n + E + cells) walk the
  /// header exists to avoid, so it is off by default; `emp inspect
  /// --verify`, the scale-smoke CI job, and the solve service's
  /// digest-keyed instance cache turn it on.
  bool verify_digest = false;
};

/// Maps a compact instance file and exposes it as a normal AreaSet. The
/// CSR adjacency and raw-f64 attribute columns are consumed in place from
/// the read-only mapping (shared between all AreaSet copies and, via the
/// page cache, between processes); varint columns and geometry are
/// materialized. The digest is seeded from the header, so
/// `InstanceDigest()` on the result never recomputes.
Result<AreaSet> LoadCompactAreaSet(const std::string& path,
                                   const LoadOptions& options = {});

/// Header-level summary of a compact file, decoded without touching the
/// section payloads (beyond the string blob).
struct CompactInfo {
  uint64_t digest = 0;
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  bool has_geometry = false;
  std::string name;
  std::vector<std::string> column_names;
  std::string dissimilarity_attribute;
  uint64_t file_bytes = 0;
  // Per-column encoding ("raw_f64" or "delta_varint"), in column order.
  std::vector<std::string> column_encodings;
};
Result<CompactInfo> InspectCompactFile(const std::string& path);

/// True when `path` starts with the compact-format magic (cheap sniff for
/// loader auto-dispatch; reads at most 8 bytes).
bool IsCompactFile(const std::string& path);

}  // namespace emp::compact

#endif  // EMP_DATA_COMPACT_LOADER_H_
