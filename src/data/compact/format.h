#ifndef EMP_DATA_COMPACT_FORMAT_H_
#define EMP_DATA_COMPACT_FORMAT_H_

#include <cstdint>

namespace emp::compact {

/// On-disk layout of a compact instance (".emp" file), little-endian:
///
///   [CompactHeader]                      64 bytes
///   [SectionEntry x header.num_sections] 24 bytes each
///   [section payloads]                   each padded to 8-byte alignment
///
/// Sections appear in the order listed in the table. The string-blob,
/// CSR, and raw-f64 column sections are consumed in place from the
/// mapping (zero-copy); varint columns and geometry are materialized on
/// load. The header carries the FNV-1a InstanceDigest of the decoded
/// instance so services can key caches — and skip the O(n + E + cells)
/// recompute — without decoding anything past the first 64 bytes.

// "EMPCIST1" read as a little-endian u64.
inline constexpr uint64_t kMagic = 0x3154534943504D45ULL;
inline constexpr uint32_t kFormatVersion = 1;

// Header flag bits.
inline constexpr uint32_t kFlagHasGeometry = 1u << 0;

enum class SectionKind : uint32_t {
  // u32-length-prefixed strings: instance name, then each column name.
  kStringBlob = 1,
  // int64[num_nodes + 1] CSR row offsets, raw.
  kCsrOffsets = 2,
  // int32[2 * num_edges] CSR neighbor ids, raw.
  kCsrNeighbors = 3,
  // One per attribute column, in column order.
  kColumn = 4,
  // u64[num_nodes + 1] vertex-count prefix sums, then f64 x,y pairs.
  kGeometry = 5,
};

enum class ColumnEncoding : uint32_t {
  // f64[num_nodes] value bit patterns, raw (mmap'd in place).
  kRawF64 = 0,
  // Delta + zigzag + LEB128 varints of integer-valued doubles; chosen by
  // the writer only when every value is integral and round-trips through
  // int64 exactly. Decoded to an owned column on load.
  kDeltaVarint = 1,
};

#pragma pack(push, 1)
struct CompactHeader {
  uint64_t magic = kMagic;
  uint32_t version = kFormatVersion;
  uint32_t flags = 0;
  uint64_t digest = 0;
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  uint32_t num_columns = 0;
  uint32_t dissimilarity_column = 0;
  uint32_t num_sections = 0;
  uint32_t reserved0 = 0;
  uint64_t reserved1 = 0;
};
static_assert(sizeof(CompactHeader) == 64, "header must stay 64 bytes");

struct SectionEntry {
  uint32_t kind = 0;      // SectionKind
  uint32_t encoding = 0;  // ColumnEncoding for kColumn sections, else 0
  uint64_t offset = 0;    // from file start; 8-byte aligned
  uint64_t length = 0;    // payload bytes, before padding
};
static_assert(sizeof(SectionEntry) == 24, "section entry must stay 24 bytes");
#pragma pack(pop)

}  // namespace emp::compact

#endif  // EMP_DATA_COMPACT_FORMAT_H_
