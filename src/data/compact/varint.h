#ifndef EMP_DATA_COMPACT_VARINT_H_
#define EMP_DATA_COMPACT_VARINT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace emp::compact {

/// ZigZag maps signed deltas to small unsigned codes so LEB128 stays short
/// for values near zero in either direction.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Appends one LEB128 varint (1–10 bytes) to `out`.
void AppendVarint(uint64_t v, std::string* out);

/// Encodes a sequence as zigzag varints of consecutive deltas. Sorted or
/// slowly-varying sequences (attribute columns of counts, id lists)
/// compress to 1–2 bytes per value.
std::string DeltaEncode(std::span<const int64_t> values);

/// Inverse of DeltaEncode. `count` is the expected number of values; fails
/// on truncated input, trailing bytes, or a varint longer than 10 bytes.
Result<std::vector<int64_t>> DeltaDecode(std::span<const uint8_t> bytes,
                                         size_t count);

}  // namespace emp::compact

#endif  // EMP_DATA_COMPACT_VARINT_H_
