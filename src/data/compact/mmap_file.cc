#include "data/compact/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace emp::compact {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("fstat('" + path + "'): " + std::strerror(err));
  }
  MmapFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ > 0) {
    void* p = ::mmap(nullptr, out.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (p == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::Internal("mmap('" + path + "'): " + std::strerror(err));
    }
    out.data_ = p;
  }
  // The mapping holds its own reference to the file; the descriptor is no
  // longer needed.
  ::close(fd);
  return out;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace emp::compact
