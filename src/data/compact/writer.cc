#include "data/compact/writer.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "common/csv.h"
#include "data/compact/format.h"
#include "data/compact/varint.h"

namespace emp::compact {

namespace {

void AppendRaw(const void* data, size_t bytes, std::string* out) {
  out->append(static_cast<const char*>(data), bytes);
}

template <typename T>
void AppendPod(const T& value, std::string* out) {
  AppendRaw(&value, sizeof(T), out);
}

void PadTo8(std::string* out) {
  while (out->size() % 8 != 0) out->push_back('\0');
}

/// True when every value is an integer whose double representation
/// round-trips bit-exactly through int64 — the condition under which
/// varint decoding reproduces the original bit patterns (and thus the
/// digest). Rules out -0.0, NaN, and magnitudes past 2^53.
bool ColumnIsIntegral(std::span<const double> values,
                      std::vector<int64_t>* out) {
  out->clear();
  out->reserve(values.size());
  for (double v : values) {
    if (!(std::abs(v) <= 9.007199254740992e15)) return false;  // 2^53
    const int64_t i = static_cast<int64_t>(v);
    const double back = static_cast<double>(i);
    if (std::memcmp(&back, &v, sizeof(double)) != 0) return false;
    out->push_back(i);
  }
  return true;
}

}  // namespace

Result<std::string> PackAreaSet(const AreaSet& areas,
                                const PackOptions& options) {
  const ContiguityGraph& graph = areas.graph();
  const AttributeTable& attrs = areas.attributes();
  const bool with_geometry = areas.has_geometry() && !options.strip_geometry;

  EMP_ASSIGN_OR_RETURN(int diss_col,
                       attrs.ColumnIndex(areas.dissimilarity_attribute()));

  CompactHeader header;
  header.flags = with_geometry ? kFlagHasGeometry : 0;
  header.digest = areas.InstanceDigest();
  header.num_nodes = graph.num_nodes();
  header.num_edges = graph.num_edges();
  header.num_columns = static_cast<uint32_t>(attrs.num_columns());
  header.dissimilarity_column = static_cast<uint32_t>(diss_col);
  header.num_sections = 3 + header.num_columns + (with_geometry ? 1 : 0);

  // Build each section payload, then lay the file out in one pass.
  struct Section {
    SectionKind kind = SectionKind::kStringBlob;
    uint32_t encoding = 0;
    std::string payload;
  };
  std::vector<Section> sections;
  sections.reserve(header.num_sections);

  {
    Section s;
    s.kind = SectionKind::kStringBlob;
    auto append_string = [&s](const std::string& str) {
      const uint32_t len = static_cast<uint32_t>(str.size());
      AppendPod(len, &s.payload);
      s.payload.append(str);
    };
    append_string(areas.name());
    for (const std::string& column : attrs.column_names()) {
      append_string(column);
    }
    sections.push_back(std::move(s));
  }
  {
    Section s;
    s.kind = SectionKind::kCsrOffsets;
    const auto offsets = graph.csr_offsets();
    AppendRaw(offsets.data(), offsets.size_bytes(), &s.payload);
    sections.push_back(std::move(s));
  }
  {
    Section s;
    s.kind = SectionKind::kCsrNeighbors;
    const auto neighbors = graph.csr_neighbors();
    AppendRaw(neighbors.data(), neighbors.size_bytes(), &s.payload);
    sections.push_back(std::move(s));
  }
  std::vector<int64_t> integral;
  for (int c = 0; c < attrs.num_columns(); ++c) {
    Section s;
    s.kind = SectionKind::kColumn;
    const auto values = attrs.Column(c);
    if (ColumnIsIntegral(values, &integral)) {
      s.encoding = static_cast<uint32_t>(ColumnEncoding::kDeltaVarint);
      s.payload = DeltaEncode(integral);
    } else {
      s.encoding = static_cast<uint32_t>(ColumnEncoding::kRawF64);
      AppendRaw(values.data(), values.size_bytes(), &s.payload);
    }
    sections.push_back(std::move(s));
  }
  if (with_geometry) {
    Section s;
    s.kind = SectionKind::kGeometry;
    const auto& polygons = areas.polygons();
    std::vector<uint64_t> prefix(polygons.size() + 1, 0);
    for (size_t i = 0; i < polygons.size(); ++i) {
      prefix[i + 1] = prefix[i] + polygons[i].size();
    }
    AppendRaw(prefix.data(), prefix.size() * sizeof(uint64_t), &s.payload);
    for (const Polygon& poly : polygons) {
      AppendRaw(poly.vertices().data(),
                poly.vertices().size() * sizeof(Point), &s.payload);
    }
    sections.push_back(std::move(s));
  }

  std::string out;
  AppendPod(header, &out);
  // Reserve the section table; entries are filled in as payloads land.
  const size_t table_at = out.size();
  out.resize(out.size() + sections.size() * sizeof(SectionEntry), '\0');
  PadTo8(&out);
  for (size_t i = 0; i < sections.size(); ++i) {
    SectionEntry entry;
    entry.kind = static_cast<uint32_t>(sections[i].kind);
    entry.encoding = sections[i].encoding;
    entry.offset = out.size();
    entry.length = sections[i].payload.size();
    std::memcpy(out.data() + table_at + i * sizeof(SectionEntry), &entry,
                sizeof(SectionEntry));
    out.append(sections[i].payload);
    PadTo8(&out);
  }
  return out;
}

Status WriteCompactFile(const AreaSet& areas, const std::string& path,
                        const PackOptions& options) {
  EMP_ASSIGN_OR_RETURN(std::string bytes, PackAreaSet(areas, options));
  return WriteFileAtomic(path, bytes);
}

}  // namespace emp::compact
