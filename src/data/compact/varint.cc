#include "data/compact/varint.h"

namespace emp::compact {

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

namespace {

Result<uint64_t> ReadVarint(std::span<const uint8_t> bytes, size_t* pos) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= bytes.size()) {
      return Status::InvalidArgument("truncated varint");
    }
    const uint8_t b = bytes[(*pos)++];
    // Only one payload bit fits at shift 63; anything above it would be
    // silently dropped, so reject non-canonical encodings outright
    // (mirrors protobuf's 10th-byte overflow check).
    if (shift == 63 && (b & 0xFE) != 0) {
      return Status::InvalidArgument("varint overflows 64 bits");
    }
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
  }
  return Status::InvalidArgument("varint longer than 10 bytes");
}

}  // namespace

std::string DeltaEncode(std::span<const int64_t> values) {
  std::string out;
  out.reserve(values.size() * 2);
  int64_t prev = 0;
  for (int64_t v : values) {
    // Deltas are two's-complement differences: compute in uint64 so
    // extreme pairs (INT64_MIN − INT64_MAX) wrap instead of overflowing.
    const int64_t delta = static_cast<int64_t>(static_cast<uint64_t>(v) -
                                               static_cast<uint64_t>(prev));
    AppendVarint(ZigZagEncode(delta), &out);
    prev = v;
  }
  return out;
}

Result<std::vector<int64_t>> DeltaDecode(std::span<const uint8_t> bytes,
                                         size_t count) {
  std::vector<int64_t> out;
  out.reserve(count);
  size_t pos = 0;
  int64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    EMP_ASSIGN_OR_RETURN(uint64_t code, ReadVarint(bytes, &pos));
    prev = static_cast<int64_t>(static_cast<uint64_t>(prev) +
                                static_cast<uint64_t>(ZigZagDecode(code)));
    out.push_back(prev);
  }
  if (pos != bytes.size()) {
    return Status::InvalidArgument("trailing bytes after varint sequence");
  }
  return out;
}

}  // namespace emp::compact
