#include "data/compact/loader.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "data/compact/format.h"
#include "data/compact/mmap_file.h"
#include "data/compact/varint.h"
#include "obs/journal.h"

namespace emp::compact {

namespace {

struct ParsedFile {
  CompactHeader header;
  std::vector<SectionEntry> sections;
};

/// Validates the fixed-size header and section table against the file
/// size. Payload interpretation happens later, section by section.
Result<ParsedFile> ParseEnvelope(std::span<const uint8_t> bytes,
                                 const std::string& path) {
  ParsedFile out;
  if (bytes.size() < sizeof(CompactHeader)) {
    return Status::InvalidArgument("'" + path +
                                   "' is too small for a compact header");
  }
  std::memcpy(&out.header, bytes.data(), sizeof(CompactHeader));
  if (out.header.magic != kMagic) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a compact instance file");
  }
  if (out.header.version != kFormatVersion) {
    return Status::InvalidArgument(
        "'" + path + "' has compact format version " +
        std::to_string(out.header.version) + ", expected " +
        std::to_string(kFormatVersion));
  }
  // num_edges is bounded by the file size (the neighbors section stores
  // 2 * num_edges int32s), so later `2 * num_edges * sizeof(int32_t)`
  // arithmetic cannot wrap modulo 2^64 on a crafted header.
  if (out.header.num_nodes < 0 || out.header.num_edges < 0 ||
      out.header.num_nodes > INT32_MAX ||
      static_cast<uint64_t>(out.header.num_edges) >
          bytes.size() / (2 * sizeof(int32_t))) {
    return Status::InvalidArgument("compact header counts out of range");
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(out.header.num_sections) * sizeof(SectionEntry);
  if (sizeof(CompactHeader) + table_bytes > bytes.size()) {
    return Status::InvalidArgument("compact section table truncated");
  }
  out.sections.resize(out.header.num_sections);
  std::memcpy(out.sections.data(), bytes.data() + sizeof(CompactHeader),
              table_bytes);
  for (const SectionEntry& s : out.sections) {
    if (s.offset % 8 != 0) {
      return Status::InvalidArgument("compact section offset not 8-aligned");
    }
    if (s.offset > bytes.size() || s.length > bytes.size() - s.offset) {
      return Status::InvalidArgument("compact section out of file bounds");
    }
  }
  return out;
}

std::span<const uint8_t> SectionBytes(std::span<const uint8_t> bytes,
                                      const SectionEntry& s) {
  return bytes.subspan(s.offset, s.length);
}

Result<std::vector<std::string>> ParseStringBlob(std::span<const uint8_t> blob,
                                                 size_t expected) {
  // Each string costs at least its u32 length prefix, so a blob shorter
  // than 4 * expected cannot hold them; checking first keeps a crafted
  // num_columns from turning the reserve below into a huge allocation.
  if (expected > blob.size() / sizeof(uint32_t)) {
    return Status::InvalidArgument("compact string blob truncated");
  }
  std::vector<std::string> out;
  out.reserve(expected);
  size_t pos = 0;
  for (size_t i = 0; i < expected; ++i) {
    if (pos + sizeof(uint32_t) > blob.size()) {
      return Status::InvalidArgument("compact string blob truncated");
    }
    uint32_t len = 0;
    std::memcpy(&len, blob.data() + pos, sizeof(uint32_t));
    pos += sizeof(uint32_t);
    if (len > blob.size() - pos) {
      return Status::InvalidArgument("compact string blob truncated");
    }
    out.emplace_back(reinterpret_cast<const char*>(blob.data() + pos), len);
    pos += len;
  }
  return out;
}

}  // namespace

Result<AreaSet> LoadCompactAreaSet(const std::string& path,
                                   const LoadOptions& options) {
  EMP_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  auto backing = std::make_shared<MmapFile>(std::move(file));
  const std::span<const uint8_t> bytes = backing->bytes();
  EMP_ASSIGN_OR_RETURN(ParsedFile parsed, ParseEnvelope(bytes, path));
  const CompactHeader& header = parsed.header;

  const size_t n = static_cast<size_t>(header.num_nodes);
  const size_t num_columns = header.num_columns;
  if (header.dissimilarity_column >= num_columns) {
    return Status::InvalidArgument(
        "compact dissimilarity column index out of range");
  }

  std::vector<std::string> strings;
  std::span<const int64_t> csr_offsets;
  std::span<const int32_t> csr_neighbors;
  bool have_offsets = false, have_neighbors = false;
  std::vector<const SectionEntry*> column_sections;
  const SectionEntry* geometry_section = nullptr;

  for (const SectionEntry& s : parsed.sections) {
    switch (static_cast<SectionKind>(s.kind)) {
      case SectionKind::kStringBlob: {
        EMP_ASSIGN_OR_RETURN(
            strings, ParseStringBlob(SectionBytes(bytes, s), 1 + num_columns));
        break;
      }
      case SectionKind::kCsrOffsets: {
        if (s.length != (n + 1) * sizeof(int64_t)) {
          return Status::InvalidArgument("compact CSR offsets size mismatch");
        }
        csr_offsets = {reinterpret_cast<const int64_t*>(bytes.data() +
                                                        s.offset),
                       n + 1};
        have_offsets = true;
        break;
      }
      case SectionKind::kCsrNeighbors: {
        const size_t count = 2 * static_cast<size_t>(header.num_edges);
        if (s.length != count * sizeof(int32_t)) {
          return Status::InvalidArgument(
              "compact CSR neighbors size mismatch");
        }
        csr_neighbors = {
            reinterpret_cast<const int32_t*>(bytes.data() + s.offset), count};
        have_neighbors = true;
        break;
      }
      case SectionKind::kColumn:
        column_sections.push_back(&s);
        break;
      case SectionKind::kGeometry:
        geometry_section = &s;
        break;
      default:
        // Unknown sections are skipped for forward compatibility.
        break;
    }
  }
  if (strings.size() != 1 + num_columns || !have_offsets || !have_neighbors) {
    return Status::InvalidArgument(
        "compact file is missing a required section");
  }
  if (column_sections.size() != num_columns) {
    return Status::InvalidArgument(
        "compact file has " + std::to_string(column_sections.size()) +
        " column sections, header says " + std::to_string(num_columns));
  }
  if ((header.flags & kFlagHasGeometry) != 0 && geometry_section == nullptr) {
    return Status::InvalidArgument("compact geometry section missing");
  }

  EMP_ASSIGN_OR_RETURN(
      ContiguityGraph graph,
      ContiguityGraph::FromCsr(csr_offsets, csr_neighbors, backing));
  if (graph.num_edges() != header.num_edges) {
    return Status::InvalidArgument("compact edge count mismatch");
  }

  AttributeTable table(header.num_nodes);
  for (size_t c = 0; c < num_columns; ++c) {
    const SectionEntry& s = *column_sections[c];
    const std::string& name = strings[1 + c];
    switch (static_cast<ColumnEncoding>(s.encoding)) {
      case ColumnEncoding::kRawF64: {
        if (s.length != n * sizeof(double)) {
          return Status::InvalidArgument("compact column '" + name +
                                         "' size mismatch");
        }
        EMP_RETURN_IF_ERROR(table.AddColumnView(
            name,
            {reinterpret_cast<const double*>(bytes.data() + s.offset), n},
            backing));
        break;
      }
      case ColumnEncoding::kDeltaVarint: {
        EMP_ASSIGN_OR_RETURN(std::vector<int64_t> ints,
                             DeltaDecode(SectionBytes(bytes, s), n));
        std::vector<double> values(ints.begin(), ints.end());
        EMP_RETURN_IF_ERROR(table.AddColumn(name, std::move(values)));
        break;
      }
      default:
        return Status::InvalidArgument("compact column '" + name +
                                       "' has unknown encoding " +
                                       std::to_string(s.encoding));
    }
  }

  std::vector<Polygon> polygons;
  if (geometry_section != nullptr) {
    const auto geo = SectionBytes(bytes, *geometry_section);
    const size_t prefix_bytes = (n + 1) * sizeof(uint64_t);
    if (geo.size() < prefix_bytes) {
      return Status::InvalidArgument("compact geometry section truncated");
    }
    std::vector<uint64_t> prefix(n + 1);
    std::memcpy(prefix.data(), geo.data(), prefix_bytes);
    // Divide instead of multiplying: `prefix[n] * sizeof(Point)` wraps for
    // a crafted prefix[n] >= 2^60, which would pass an equality check
    // against a near-empty payload while the per-polygon slices below
    // index far past the mapping.
    const size_t payload_bytes = geo.size() - prefix_bytes;
    const uint64_t total_points = prefix[n];
    if (payload_bytes % sizeof(Point) != 0 ||
        total_points != payload_bytes / sizeof(Point)) {
      return Status::InvalidArgument("compact geometry size mismatch");
    }
    const Point* points =
        reinterpret_cast<const Point*>(geo.data() + prefix_bytes);
    polygons.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (prefix[i] > prefix[i + 1] || prefix[i + 1] > total_points) {
        return Status::InvalidArgument("compact geometry prefix not monotone");
      }
      polygons.emplace_back(std::vector<Point>(points + prefix[i],
                                               points + prefix[i + 1]));
    }
  }

  EMP_ASSIGN_OR_RETURN(
      AreaSet areas,
      AreaSet::Create(strings[0], std::move(polygons), std::move(graph),
                      std::move(table),
                      strings[1 + header.dissimilarity_column]));
  if (options.verify_digest) {
    const uint64_t computed = areas.InstanceDigest();
    if (computed != header.digest) {
      return Status::InvalidArgument(
          "compact digest mismatch: header " + obs::DigestHex(header.digest) +
          ", recomputed " + obs::DigestHex(computed));
    }
  } else {
    areas.SeedInstanceDigest(header.digest);
  }
  return areas;
}

Result<CompactInfo> InspectCompactFile(const std::string& path) {
  EMP_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  const std::span<const uint8_t> bytes = file.bytes();
  EMP_ASSIGN_OR_RETURN(ParsedFile parsed, ParseEnvelope(bytes, path));
  const CompactHeader& header = parsed.header;

  // Widen before the +1: computed in uint32, a crafted UINT32_MAX
  // num_columns wraps to 0 and the empty-blob checks below all pass.
  const size_t num_columns = header.num_columns;

  CompactInfo info;
  info.digest = header.digest;
  info.num_nodes = header.num_nodes;
  info.num_edges = header.num_edges;
  info.has_geometry = (header.flags & kFlagHasGeometry) != 0;
  info.file_bytes = bytes.size();

  std::vector<std::string> strings;
  for (const SectionEntry& s : parsed.sections) {
    if (static_cast<SectionKind>(s.kind) == SectionKind::kStringBlob) {
      EMP_ASSIGN_OR_RETURN(
          strings, ParseStringBlob(SectionBytes(bytes, s), 1 + num_columns));
    } else if (static_cast<SectionKind>(s.kind) == SectionKind::kColumn) {
      info.column_encodings.push_back(
          s.encoding == static_cast<uint32_t>(ColumnEncoding::kDeltaVarint)
              ? "delta_varint"
              : "raw_f64");
    }
  }
  if (strings.size() != 1 + num_columns) {
    return Status::InvalidArgument("compact string blob missing");
  }
  info.name = strings[0];
  info.column_names.assign(strings.begin() + 1, strings.end());
  if (header.dissimilarity_column < num_columns) {
    info.dissimilarity_attribute =
        info.column_names[header.dissimilarity_column];
  }
  return info;
}

bool IsCompactFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  uint64_t magic = 0;
  const size_t got = std::fread(&magic, 1, sizeof(magic), f);
  std::fclose(f);
  return got == sizeof(magic) && magic == kMagic;
}

}  // namespace emp::compact
