#ifndef EMP_DATA_COMPACT_MMAP_FILE_H_
#define EMP_DATA_COMPACT_MMAP_FILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/result.h"

namespace emp::compact {

/// A read-only memory mapping of a whole file. The kernel shares the
/// physical pages between every process and thread that maps the same
/// file, which is what lets N service workers serve one instance image.
/// Move-only; the mapping is released on destruction.
class MmapFile {
 public:
  /// Maps `path` read-only. Fails on open/stat/mmap errors; an empty file
  /// maps to an empty span without error.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  std::span<const uint8_t> bytes() const {
    return {static_cast<const uint8_t*>(data_), size_};
  }
  size_t size() const { return size_; }

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace emp::compact

#endif  // EMP_DATA_COMPACT_MMAP_FILE_H_
