#include "data/loader.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/csv.h"
#include "common/str_util.h"
#include "data/compact/loader.h"
#include "geometry/wkt.h"

namespace emp {

namespace {

/// Box-overlap candidate pairs via a sweep over min_x. O(n log n + k) for
/// the k overlapping pairs — ample for shapefile-scale inputs.
std::vector<std::pair<int32_t, int32_t>> BoxOverlapPairs(
    const std::vector<Box>& boxes) {
  const int32_t n = static_cast<int32_t>(boxes.size());
  std::vector<int32_t> order(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return boxes[static_cast<size_t>(a)].min_x <
           boxes[static_cast<size_t>(b)].min_x;
  });

  std::vector<std::pair<int32_t, int32_t>> pairs;
  std::vector<int32_t> active;  // sorted-by-insertion sweep set
  for (int32_t idx : order) {
    const Box& box = boxes[static_cast<size_t>(idx)];
    // Evict boxes that ended before this one starts.
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](int32_t other) {
                                  return boxes[static_cast<size_t>(other)]
                                             .max_x < box.min_x;
                                }),
                 active.end());
    for (int32_t other : active) {
      if (boxes[static_cast<size_t>(other)].Intersects(box)) {
        pairs.emplace_back(other, idx);
      }
    }
    active.push_back(idx);
  }
  return pairs;
}

}  // namespace

Result<AreaSet> LoadAreaSetFromCsvText(const std::string& csv_text,
                                       const LoaderOptions& options) {
  EMP_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(csv_text));
  const int geom_col = table.ColumnIndex(options.geometry_column);
  if (geom_col < 0) {
    return Status::InvalidArgument("no geometry column '" +
                                   options.geometry_column + "' in CSV");
  }
  if (table.header.size() < 2) {
    return Status::InvalidArgument(
        "CSV needs at least one attribute column besides geometry");
  }
  const int64_t n = static_cast<int64_t>(table.rows.size());
  if (n == 0) {
    return Status::InvalidArgument("CSV has no data rows");
  }

  // Geometry.
  std::vector<Polygon> polygons;
  polygons.reserve(static_cast<size_t>(n));
  for (int64_t row = 0; row < n; ++row) {
    // The CSV dialect is unquoted, so WKT coordinate separators are
    // written as ';' (see AreaSetToCsvText); restore them before parsing.
    std::string wkt =
        table.rows[static_cast<size_t>(row)][static_cast<size_t>(geom_col)];
    for (char& c : wkt) {
      if (c == ';') c = ',';
    }
    auto poly = PolygonFromWkt(wkt);
    if (!poly.ok()) {
      return Status::IOError("row " + std::to_string(row) + ": " +
                             poly.status().message());
    }
    polygons.push_back(std::move(poly).value());
  }

  // Attributes (all non-geometry columns must be numeric).
  AttributeTable attributes(n);
  for (size_t col = 0; col < table.header.size(); ++col) {
    if (static_cast<int>(col) == geom_col) continue;
    std::vector<double> values(static_cast<size_t>(n));
    for (int64_t row = 0; row < n; ++row) {
      auto v = ParseDouble(table.rows[static_cast<size_t>(row)][col]);
      if (!v.ok()) {
        return Status::IOError("row " + std::to_string(row) + ", column '" +
                               table.header[col] + "': " +
                               v.status().message());
      }
      values[static_cast<size_t>(row)] = *v;
    }
    EMP_RETURN_IF_ERROR(attributes.AddColumn(table.header[col],
                                             std::move(values)));
  }

  EMP_ASSIGN_OR_RETURN(ContiguityGraph graph,
                       DeriveContiguity(polygons, options));

  std::string diss = options.dissimilarity_attribute;
  if (diss.empty()) diss = attributes.column_names().front();
  return AreaSet::Create(options.name, std::move(polygons), std::move(graph),
                         std::move(attributes), diss);
}

Result<ContiguityGraph> DeriveContiguity(const std::vector<Polygon>& polygons,
                                         const LoaderOptions& options) {
  const int64_t n = static_cast<int64_t>(polygons.size());
  std::vector<Box> boxes;
  boxes.reserve(static_cast<size_t>(n));
  std::vector<double> diags;
  for (const Polygon& poly : polygons) {
    Box b = poly.BoundingBox();
    boxes.push_back(b);
    diags.push_back(std::hypot(b.Width(), b.Height()));
  }
  double threshold = options.min_shared_border;
  if (threshold <= 0.0 && !diags.empty()) {
    std::vector<double> sorted = diags;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    threshold = 1e-4 * sorted[sorted.size() / 2];
  }

  auto share_vertex = [&](const Polygon& pa, const Polygon& pb) {
    const double eps2 = options.vertex_eps * options.vertex_eps;
    for (const Point& va : pa.vertices()) {
      for (const Point& vb : pb.vertices()) {
        if (DistanceSquared(va, vb) <= eps2) return true;
      }
    }
    return false;
  };

  std::vector<std::pair<int32_t, int32_t>> edges;
  for (const auto& [a, b] : BoxOverlapPairs(boxes)) {
    const Polygon& pa = polygons[static_cast<size_t>(a)];
    const Polygon& pb = polygons[static_cast<size_t>(b)];
    if (SharedBorderLength(pa, pb) >= threshold ||
        (options.queen && share_vertex(pa, pb))) {
      edges.emplace_back(a, b);
    }
  }
  return ContiguityGraph::FromEdges(static_cast<int32_t>(n), edges);
}

Result<AreaSet> LoadAreaSetFromCsvFile(const std::string& path,
                                       const LoaderOptions& options) {
  EMP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return LoadAreaSetFromCsvText(text, options);
}

Result<AreaSet> LoadAreaSetAuto(const std::string& path,
                                const LoaderOptions& options) {
  if (compact::IsCompactFile(path)) {
    compact::LoadOptions compact_options;
    compact_options.verify_digest = options.verify_compact_digest;
    return compact::LoadCompactAreaSet(path, compact_options);
  }
  return LoadAreaSetFromCsvFile(path, options);
}

Result<std::string> AreaSetToCsvText(const AreaSet& areas,
                                     const std::string& geometry_column) {
  if (!areas.has_geometry()) {
    return Status::FailedPrecondition(
        "AreaSetToCsvText requires polygon geometry");
  }
  const AttributeTable& attrs = areas.attributes();
  CsvTable table;
  table.header.push_back(geometry_column);
  for (const std::string& name : attrs.column_names()) {
    table.header.push_back(name);
  }
  for (int32_t row = 0; row < areas.num_areas(); ++row) {
    std::vector<std::string> cells;
    // Unquoted CSV dialect: emit WKT with ';' in place of ',' so the
    // geometry survives field splitting; the loader translates back.
    std::string wkt = ToWkt(areas.polygon(row));
    for (char& c : wkt) {
      if (c == ',') c = ';';
    }
    cells.push_back(wkt);
    for (int col = 0; col < attrs.num_columns(); ++col) {
      cells.push_back(FormatDouble(attrs.Value(col, row), 9));
    }
    table.rows.push_back(std::move(cells));
  }
  return WriteCsv(table);
}

}  // namespace emp
