#ifndef EMP_DATA_TRANSFORMS_H_
#define EMP_DATA_TRANSFORMS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/area_set.h"

namespace emp {

/// Column transformations used to prepare attributes for constraints and
/// dissimilarity objectives (social-science practice: normalize incomparable
/// attributes before combining them).

/// z-score standardization: (v − mean) / stddev. Fails on constant columns.
Result<std::vector<double>> ZScore(const std::vector<double>& values);

/// Min-max scaling into [0, 1]. Fails on constant columns.
Result<std::vector<double>> MinMaxScale(const std::vector<double>& values);

/// Natural log of (v + offset); fails when any v + offset <= 0.
Result<std::vector<double>> LogTransform(const std::vector<double>& values,
                                         double offset = 0.0);

/// One term of a composite attribute.
struct CompositeTerm {
  std::string attribute;
  double weight = 1.0;
  /// Standardize the column (z-score) before weighting, so attributes on
  /// different scales contribute comparably.
  bool standardize = true;
};

/// Builds a new AreaSet that carries every column of `areas` plus a
/// composite column `name` = Σ weight_i · (standardized) attribute_i, and
/// optionally makes it the dissimilarity attribute. This is how a
/// multi-criteria heterogeneity objective (paper §III: "balancing multiple
/// criteria") is expressed without touching the solver.
Result<AreaSet> WithCompositeAttribute(const AreaSet& areas,
                                       const std::string& name,
                                       const std::vector<CompositeTerm>& terms,
                                       bool use_as_dissimilarity = true);

}  // namespace emp

#endif  // EMP_DATA_TRANSFORMS_H_
