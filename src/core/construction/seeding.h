#ifndef EMP_CORE_CONSTRUCTION_SEEDING_H_
#define EMP_CORE_CONSTRUCTION_SEEDING_H_

#include <cstdint>
#include <vector>

#include "constraints/constraint_set.h"
#include "core/feasibility.h"

namespace emp {

/// Output of Step 1 (Filtering and Seeding): the seed-area set that upper
/// bounds p, plus the remaining valid non-seed areas.
struct SeedingResult {
  /// Valid areas within [l, u] of at least one extrema constraint (every
  /// valid area when there are no extrema constraints), ascending ids.
  std::vector<int32_t> seeds;
  /// Valid areas that are not seeds, ascending ids.
  std::vector<int32_t> non_seeds;
  /// Per-area seed flag (false for invalid areas).
  std::vector<char> is_seed;
};

/// Derives Step 1's seed classification from the feasibility report, which
/// already piggybacked invalid/seed flags in its single pass (§V-B Step 1).
SeedingResult SelectSeeds(const BoundConstraints& bound,
                          const FeasibilityReport& feasibility);

}  // namespace emp

#endif  // EMP_CORE_CONSTRUCTION_SEEDING_H_
