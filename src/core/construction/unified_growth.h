#ifndef EMP_CORE_CONSTRUCTION_UNIFIED_GROWTH_H_
#define EMP_CORE_CONSTRUCTION_UNIFIED_GROWTH_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "core/construction/growth_scratch.h"
#include "core/construction/seeding.h"
#include "core/partition.h"
#include "core/run_context.h"
#include "core/solver_options.h"

namespace emp {

/// Counters reported by the unified-growth strategy.
struct UnifiedGrowthStats {
  int64_t regions_committed = 0;
  int64_t regions_abandoned = 0;
  int64_t areas_absorbed = 0;
  int64_t leftover_assignments = 0;
};

/// Single-step construction baseline: grow one region at a time from a
/// seed area, greedily absorbing whichever unassigned neighbor most
/// reduces the region's total (normalized) constraint violation, commit
/// when every constraint holds, abandon on dead ends; finally sweep
/// leftovers into adjacent regions when that preserves satisfaction.
///
/// This is the "obvious" alternative to FaCT's three-step construction
/// and exists as an ablation baseline (bench/ablation_strategy): it
/// handles all enriched constraint types but, lacking FaCT's
/// family-by-family decomposition, wastes seeds and overshoots —
/// select it via SolverOptions::construction_strategy.
///
/// `supervisor` (optional) is polled per absorb and per leftover sweep
/// step; a trip abandons the in-flight (still violating) region and
/// returns the committed-regions-only partition, which is feasible by
/// construction.
///
/// `scratch` (optional) is the reusable construction arena; falls back to
/// a local scratch when null.
Status GrowUnified(const SeedingResult& seeding, const SolverOptions& options,
                   Rng* rng, Partition* partition,
                   UnifiedGrowthStats* stats = nullptr,
                   PhaseSupervisor* supervisor = nullptr,
                   GrowthScratch* scratch = nullptr);

/// Total normalized violation of a region's stats against every
/// constraint: 0 iff all satisfied; each violated bound contributes its
/// relative breach. Exposed for tests and the growth heuristic.
double ConstraintViolation(const BoundConstraints& bound,
                           const RegionStats& stats);

}  // namespace emp

#endif  // EMP_CORE_CONSTRUCTION_UNIFIED_GROWTH_H_
