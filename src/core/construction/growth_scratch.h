#ifndef EMP_CORE_CONSTRUCTION_GROWTH_SCRATCH_H_
#define EMP_CORE_CONSTRUCTION_GROWTH_SCRATCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/partition.h"

namespace emp {

/// Reusable allocation-free scratch for the construction inner loops
/// (DESIGN.md §14). Generalizes the Partition::NeighborRegionsOfArea
/// epoch-dedup trick to area ids — marking an area and testing "seen this
/// epoch?" is O(1) with no clearing between calls — and pools the id
/// buffers (frontiers, neighbor-region lists, alive-region sweeps) so the
/// grow/adjust hot loops allocate nothing after warm-up. One scratch per
/// construction attempt: attempts may run concurrently on the worker pool,
/// so the scratch is never shared across threads.
struct GrowthScratch {
  /// Starts a fresh dedup epoch over area ids [0, num_areas).
  void BeginAreaEpoch(int32_t num_areas) {
    if (area_seen.size() < static_cast<size_t>(num_areas)) {
      area_seen.resize(static_cast<size_t>(num_areas), 0);
    }
    ++area_epoch;
    if (area_epoch == 0) {
      // Wrapped around: reset tags once per ~4 billion epochs.
      std::fill(area_seen.begin(), area_seen.end(), 0);
      area_epoch = 1;
    }
  }

  /// First sighting of `area` this epoch? Marks it seen either way.
  bool FirstSeen(int32_t area) {
    if (area_seen[static_cast<size_t>(area)] == area_epoch) return false;
    area_seen[static_cast<size_t>(area)] = area_epoch;
    return true;
  }

  std::vector<uint32_t> area_seen;
  uint32_t area_epoch = 0;

  /// Pooled id buffers. Callers within one phase must use distinct members
  /// for nested loops (e.g. iterate `sweep` while filling `regions`).
  std::vector<int32_t> frontier;
  std::vector<int32_t> regions;
  std::vector<int32_t> regions2;
  std::vector<int32_t> sweep;
};

/// Unassigned active areas adjacent to region `rid`, written into
/// `scratch->frontier` in first-seen member order (identical order to the
/// previous find-over-output dedup, which was quadratic in frontier size).
inline void UnassignedNeighborsInto(const Partition& partition, int32_t rid,
                                    GrowthScratch* scratch) {
  scratch->frontier.clear();
  scratch->BeginAreaEpoch(partition.num_areas());
  const auto& graph = partition.bound().areas().graph();
  for (int32_t area : partition.region(rid).areas) {
    for (int32_t nb : graph.NeighborsOf(area)) {
      if (partition.IsActive(nb) && partition.RegionOf(nb) == -1 &&
          scratch->FirstSeen(nb)) {
        scratch->frontier.push_back(nb);
      }
    }
  }
}

}  // namespace emp

#endif  // EMP_CORE_CONSTRUCTION_GROWTH_SCRATCH_H_
