#include "core/construction/monotonic_adjust.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace emp {

namespace {

bool BelowCountingLower(const BoundConstraints& bound,
                        const RegionStats& stats) {
  for (int ci : bound.counting_indices()) {
    if (stats.AggregateValue(ci) < bound.constraint(ci).lower) return true;
  }
  return false;
}

bool AboveCountingUpper(const BoundConstraints& bound,
                        const RegionStats& stats) {
  for (int ci : bound.counting_indices()) {
    if (stats.AggregateValue(ci) > bound.constraint(ci).upper) return true;
  }
  return false;
}

bool NonCountingOk(const BoundConstraints& bound, const RegionStats& stats) {
  for (int ci : bound.extrema_indices()) {
    if (!bound.constraint(ci).Contains(stats.AggregateValue(ci))) return false;
  }
  for (int ci : bound.centrality_indices()) {
    if (!bound.constraint(ci).Contains(stats.AggregateValue(ci))) return false;
  }
  return true;
}

/// Donor-side validity for removing `area`: the donor must keep satisfying
/// every non-counting constraint and every counting LOWER bound. A counting
/// upper-bound violation is tolerated because removal strictly improves it.
bool DonorOkAfterRemove(const BoundConstraints& bound,
                        const RegionStats& stats, int32_t area) {
  if (stats.count() <= 1) return false;
  for (int ci : bound.extrema_indices()) {
    if (!bound.constraint(ci).Contains(stats.AggregateAfterRemove(ci, area))) {
      return false;
    }
  }
  for (int ci : bound.centrality_indices()) {
    if (!bound.constraint(ci).Contains(stats.AggregateAfterRemove(ci, area))) {
      return false;
    }
  }
  for (int ci : bound.counting_indices()) {
    if (stats.AggregateAfterRemove(ci, area) < bound.constraint(ci).lower) {
      return false;
    }
  }
  return true;
}

/// Receiver-side validity for adding `area`: every non-counting constraint
/// must stay satisfied, no counting upper bound may be crossed, and at
/// least one violated counting lower bound must strictly improve.
bool ReceiverOkAfterAdd(const BoundConstraints& bound,
                        const RegionStats& stats, int32_t area) {
  for (int ci : bound.extrema_indices()) {
    if (!bound.constraint(ci).Contains(stats.AggregateAfterAdd(ci, area))) {
      return false;
    }
  }
  for (int ci : bound.centrality_indices()) {
    if (!bound.constraint(ci).Contains(stats.AggregateAfterAdd(ci, area))) {
      return false;
    }
  }
  bool progress = false;
  for (int ci : bound.counting_indices()) {
    const Constraint& c = bound.constraint(ci);
    const double after = stats.AggregateAfterAdd(ci, area);
    if (after > c.upper) return false;
    if (stats.AggregateValue(ci) < c.lower &&
        after > stats.AggregateValue(ci)) {
      progress = true;
    }
  }
  return progress;
}

/// Attempts one swap of a boundary area from some neighbor region into the
/// under-bound region `rid`. Returns the swapped area id or -1.
int32_t TrySwapInto(const BoundConstraints& bound,
                    ConnectivityChecker* connectivity, Partition* partition,
                    int32_t rid, const std::vector<char>& already_swapped,
                    GrowthScratch* scratch) {
  const auto& graph = bound.areas().graph();
  const RegionStats& receiver = partition->region(rid).stats;
  partition->NeighborRegionsOfInto(rid, &scratch->regions);
  for (int32_t nb : scratch->regions) {
    const Region& donor = partition->region(nb);
    if (donor.size() <= 1) continue;
    for (int32_t area : donor.areas) {
      if (already_swapped[static_cast<size_t>(area)]) continue;
      // The area must border the receiver to preserve its contiguity.
      bool borders_receiver = false;
      for (int32_t g : graph.NeighborsOf(area)) {
        if (partition->RegionOf(g) == rid) {
          borders_receiver = true;
          break;
        }
      }
      if (!borders_receiver) continue;
      if (!ReceiverOkAfterAdd(bound, receiver, area)) continue;
      if (!DonorOkAfterRemove(bound, donor.stats, area)) continue;
      if (!connectivity->IsConnectedWithout(donor.areas, area)) continue;
      partition->Move(area, rid);
      return area;
    }
  }
  return -1;
}

}  // namespace

Status AdjustForCounting(ConnectivityChecker* connectivity,
                         Partition* partition,
                         MonotonicAdjustStats* stats_out,
                         PhaseSupervisor* supervisor,
                         GrowthScratch* scratch) {
  if (connectivity == nullptr || partition == nullptr) {
    return Status::InvalidArgument("AdjustForCounting: null argument");
  }
  MonotonicAdjustStats local;
  MonotonicAdjustStats* stats = stats_out != nullptr ? stats_out : &local;
  GrowthScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  const BoundConstraints& bound = partition->bound();
  if (!bound.has_counting()) return Status::OK();
  const auto interrupted = [supervisor] {
    return supervisor != nullptr && supervisor->tripped().has_value();
  };

  // --- Phase A: swap boundary areas into under-bound regions. Each area
  // moves at most once (the paper's termination argument).
  std::vector<char> swapped(static_cast<size_t>(partition->num_areas()), 0);
  partition->AliveRegionIdsInto(&scratch->sweep);
  for (int32_t rid : scratch->sweep) {
    if (interrupted()) break;
    while (partition->IsAlive(rid) &&
           BelowCountingLower(bound, partition->region(rid).stats)) {
      if (supervisor != nullptr && supervisor->Check()) break;
      int32_t moved = TrySwapInto(bound, connectivity, partition, rid, swapped,
                                  scratch);
      if (moved == -1) break;
      swapped[static_cast<size_t>(moved)] = 1;
      ++stats->swaps;
    }
  }

  // --- Phase B: merge regions still under a lower bound with a neighbor,
  // provided the union keeps non-counting constraints and counting upper
  // bounds intact. Repeat until no under-bound region can merge.
  bool changed = !interrupted();
  while (changed && !interrupted()) {
    changed = false;
    partition->AliveRegionIdsInto(&scratch->sweep);
    for (int32_t rid : scratch->sweep) {
      if (supervisor != nullptr && supervisor->Check()) break;
      if (!partition->IsAlive(rid) || partition->region(rid).size() == 0) {
        continue;
      }
      if (!BelowCountingLower(bound, partition->region(rid).stats)) continue;
      // Among feasible merge partners, take the SMALLEST (by the primary
      // counting attribute): greedy small steps approach the lower bound
      // with minimal overshoot, which is what keeps p near the MP-regions
      // baseline's on single-SUM queries.
      const int primary = bound.counting_indices().front();
      int32_t best_nb = -1;
      double best_size = std::numeric_limits<double>::infinity();
      partition->NeighborRegionsOfInto(rid, &scratch->regions);
      for (int32_t nb : scratch->regions) {
        const RegionStats& a = partition->region(rid).stats;
        const RegionStats& b = partition->region(nb).stats;
        bool ok = true;
        for (int ci : bound.extrema_indices()) {
          if (!bound.constraint(ci).Contains(a.AggregateAfterMerge(ci, b))) {
            ok = false;
            break;
          }
        }
        if (ok) {
          for (int ci : bound.centrality_indices()) {
            if (!bound.constraint(ci).Contains(a.AggregateAfterMerge(ci, b))) {
              ok = false;
              break;
            }
          }
        }
        if (ok) {
          for (int ci : bound.counting_indices()) {
            if (a.AggregateAfterMerge(ci, b) > bound.constraint(ci).upper) {
              ok = false;
              break;
            }
          }
        }
        if (ok) {
          const Constraint& pc = bound.constraint(primary);
          double size = pc.aggregate == Aggregate::kCount
                            ? b.count()
                            : b.RawSum(primary);
          if (size < best_size) {
            best_size = size;
            best_nb = nb;
          }
        }
      }
      if (best_nb != -1) {
        partition->MergeRegions(rid, best_nb);
        ++stats->merges;
        changed = true;
      }
    }
  }

  // --- Phase C: evict areas from regions above a counting upper bound.
  partition->AliveRegionIdsInto(&scratch->sweep);
  for (int32_t rid : scratch->sweep) {
    if (interrupted()) break;
    while (partition->IsAlive(rid) &&
           AboveCountingUpper(bound, partition->region(rid).stats)) {
      if (supervisor != nullptr && supervisor->Check()) break;
      const Region& r = partition->region(rid);
      // Prefer evicting the area with the largest primary counting value
      // for fastest convergence toward the cap. Any member qualifies as
      // long as the remainder stays contiguous (evicted areas join U0).
      const int primary = bound.counting_indices().front();
      int32_t best = -1;
      double best_value = -1.0;
      for (int32_t area : r.areas) {
        if (!DonorOkAfterRemove(bound, r.stats, area)) continue;
        if (!connectivity->IsConnectedWithout(r.areas, area)) continue;
        double v = bound.ValueOf(primary, area);
        if (v > best_value) {
          best_value = v;
          best = area;
        }
      }
      if (best == -1) break;
      partition->Unassign(best);
      ++stats->removals;
    }
  }

  // --- Phase D: whatever still violates any constraint is dissolved.
  // Deliberately NOT supervised: it is cheap (one pass) and is the
  // best-effort finalizer that keeps the postcondition true after a trip.
  partition->AliveRegionIdsInto(&scratch->sweep);
  for (int32_t rid : scratch->sweep) {
    const RegionStats& rs = partition->region(rid).stats;
    if (!rs.SatisfiesAll() || !NonCountingOk(bound, rs)) {
      partition->DissolveRegion(rid);
      ++stats->regions_dissolved;
    }
  }
  return Status::OK();
}

}  // namespace emp
