#include "core/construction/region_growing.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace emp {

namespace {

/// Orders areas per the configured pickup criterion. Ascending/descending
/// sort by the primary AVG attribute (falling back to area id when no AVG
/// constraint exists).
void OrderAreas(const BoundConstraints& bound, PickupOrder order, Rng* rng,
                std::vector<int32_t>* areas) {
  switch (order) {
    case PickupOrder::kRandom:
      rng->Shuffle(areas);
      return;
    case PickupOrder::kAscending:
    case PickupOrder::kDescending: {
      if (bound.centrality_indices().empty()) {
        std::sort(areas->begin(), areas->end());
      } else {
        const int ci = bound.centrality_indices().front();
        std::stable_sort(areas->begin(), areas->end(),
                         [&](int32_t a, int32_t b) {
                           return bound.ValueOf(ci, a) < bound.ValueOf(ci, b);
                         });
      }
      if (order == PickupOrder::kDescending) {
        std::reverse(areas->begin(), areas->end());
      }
      return;
    }
  }
}

/// Classification of an area against the centrality (AVG) constraints:
/// 0 = inside every AVG range, -1 = below a violated range, +1 = above.
/// With no AVG constraints every area classifies as 0 (§V-D).
int CentralityClass(const BoundConstraints& bound, int32_t area) {
  for (int ci : bound.centrality_indices()) {
    const Constraint& c = bound.constraint(ci);
    const double v = bound.ValueOf(ci, area);
    if (v < c.lower) return -1;
    if (v > c.upper) return +1;
  }
  return 0;
}

bool CentralitySatisfied(const BoundConstraints& bound,
                         const RegionStats& stats) {
  for (int ci : bound.centrality_indices()) {
    if (!bound.constraint(ci).Contains(stats.AggregateValue(ci))) {
      return false;
    }
  }
  return true;
}

bool CentralityOkAfterAdd(const BoundConstraints& bound,
                          const RegionStats& stats, int32_t area) {
  for (int ci : bound.centrality_indices()) {
    if (!bound.constraint(ci).Contains(stats.AggregateAfterAdd(ci, area))) {
      return false;
    }
  }
  return true;
}

bool ExtremaSatisfied(const BoundConstraints& bound,
                      const RegionStats& stats) {
  for (int ci : bound.extrema_indices()) {
    if (!bound.constraint(ci).Contains(stats.AggregateValue(ci))) {
      return false;
    }
  }
  return true;
}

/// True when merging regions `a` and `b` keeps every non-counting
/// constraint satisfied (counting violations are Step 3's job).
bool NonCountingOkAfterMerge(const BoundConstraints& bound,
                             const RegionStats& a, const RegionStats& b) {
  for (int ci : bound.extrema_indices()) {
    if (!bound.constraint(ci).Contains(a.AggregateAfterMerge(ci, b))) {
      return false;
    }
  }
  for (int ci : bound.centrality_indices()) {
    if (!bound.constraint(ci).Contains(a.AggregateAfterMerge(ci, b))) {
      return false;
    }
  }
  return true;
}

/// Algorithm 1's neighbor-selection rule, generalized to open-ended
/// ranges: when the region average sits below the range, only areas valued
/// beyond the opposite (upper) bound can pull it inside fast enough, and
/// symmetrically above. With an open opposite bound we accept any area
/// strictly beyond the violated bound.
bool PullsAverageInside(const Constraint& c, double region_avg, double v) {
  if (region_avg < c.lower) {
    return c.upper != kNoUpperBound ? v > c.upper : v > c.lower;
  }
  if (region_avg > c.upper) {
    return c.lower != kNoLowerBound ? v < c.lower : v < c.upper;
  }
  return false;
}

/// Substep 2.1: initialize regions from seed areas. In-range seeds become
/// singleton regions; below/above-range seeds grow via Algorithm 1. On
/// supervisor trip the in-flight Algorithm-1 region (never yet satisfying
/// centrality) is reverted, so every committed region stays feasible.
void InitializeRegions(const BoundConstraints& bound,
                       const SeedingResult& seeding,
                       const SolverOptions& options, Rng* rng,
                       Partition* partition, RegionGrowingStats* stats,
                       PhaseSupervisor* supervisor, GrowthScratch* scratch) {
  std::vector<int32_t> ordered = seeding.seeds;
  OrderAreas(bound, options.pickup_order, rng, &ordered);

  std::vector<int32_t> off_range;  // unassigned_low ∪ unassigned_high
  for (int32_t a : ordered) {
    if (supervisor != nullptr && supervisor->Check()) return;
    if (CentralityClass(bound, a) == 0) {
      const int32_t rid = partition->CreateRegion();
      partition->Assign(a, rid);
      ++stats->regions_from_avg_seeds;
    } else {
      off_range.push_back(a);
    }
  }

  // Algorithm 1: grow a temporary region around each off-range seed by
  // repeatedly absorbing opposite-extreme unassigned neighbors until the
  // averages land inside every AVG range; revert on dead ends.
  const int primary =
      bound.centrality_indices().empty() ? -1
                                         : bound.centrality_indices().front();
  for (int32_t a : off_range) {
    if (partition->RegionOf(a) != -1) continue;  // Absorbed earlier.
    const int32_t rid = partition->CreateRegion();
    partition->Assign(a, rid);
    bool committed = false;
    while (true) {
      if (supervisor != nullptr && supervisor->Check()) break;
      const RegionStats& rs = partition->region(rid).stats;
      if (CentralitySatisfied(bound, rs)) {
        committed = true;
        break;
      }
      const Constraint& c = bound.constraint(primary);
      const double avg = rs.AggregateValue(primary);
      int32_t pick = -1;
      UnassignedNeighborsInto(*partition, rid, scratch);
      for (int32_t nb : scratch->frontier) {
        if (PullsAverageInside(c, avg, bound.ValueOf(primary, nb))) {
          pick = nb;
          break;
        }
      }
      if (pick == -1) break;
      partition->Assign(pick, rid);
    }
    if (committed) {
      ++stats->regions_from_merging;
    } else {
      partition->DissolveRegion(rid);
      ++stats->algorithm1_reverts;
    }
    if (supervisor != nullptr && supervisor->tripped()) return;
  }
}

/// Substep 2.2 round 1: sweep unassigned areas into adjacent regions
/// whenever the addition keeps every AVG constraint satisfied; repeat to a
/// fixpoint because each assignment can unlock neighbors.
bool AssignEnclavesRound1(const BoundConstraints& bound,
                          const std::vector<int32_t>& order,
                          Partition* partition, RegionGrowingStats* stats,
                          PhaseSupervisor* supervisor,
                          GrowthScratch* scratch) {
  bool any_change = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int32_t a : order) {
      if (supervisor != nullptr && supervisor->Check()) return any_change;
      if (!partition->IsActive(a) || partition->RegionOf(a) != -1) continue;
      partition->NeighborRegionsOfAreaInto(a, &scratch->regions);
      for (int32_t rid : scratch->regions) {
        if (CentralityOkAfterAdd(bound, partition->region(rid).stats, a)) {
          partition->Assign(a, rid);
          ++stats->round1_assignments;
          changed = true;
          any_change = true;
          break;
        }
      }
    }
  }
  return any_change;
}

/// Substep 2.2 round 2: an off-range enclave `a` that no single region can
/// absorb may fit the union of two adjacent regions — per the paper, try
/// merging one of `a`'s neighbor regions R with one of R's own neighbor
/// regions and test whether R ∪ R2 ∪ {a} satisfies every AVG range.
///
/// `merge_budget` caps how many round-2 merges any single region may
/// accumulate (the paper's merge limit, "set to prevent the formation of
/// oversized regions"): merging two regions costs the union the sum of
/// their counters plus one, and unions over the budget are skipped.
/// Without this cap a single blob region chains merges across enclaves and
/// swallows the entire map (p collapses to 1 on the paper's hard 3k±1k
/// range).
bool AssignEnclavesRound2(const BoundConstraints& bound,
                          const std::vector<int32_t>& order, int merge_budget,
                          std::vector<int>* merge_count, Partition* partition,
                          RegionGrowingStats* stats,
                          PhaseSupervisor* supervisor,
                          GrowthScratch* scratch) {
  const auto& centrality = bound.centrality_indices();
  auto count_of = [&](int32_t rid) -> int& {
    if (static_cast<size_t>(rid) >= merge_count->size()) {
      merge_count->resize(static_cast<size_t>(rid) + 1, 0);
    }
    return (*merge_count)[static_cast<size_t>(rid)];
  };

  bool any_change = false;
  for (int32_t a : order) {
    if (supervisor != nullptr && supervisor->Check()) return any_change;
    if (!partition->IsActive(a) || partition->RegionOf(a) != -1) continue;

    bool assigned = false;
    partition->NeighborRegionsOfAreaInto(a, &scratch->regions);
    for (int32_t rid : scratch->regions) {
      if (assigned) break;
      const RegionStats& rs1 = partition->region(rid).stats;
      partition->NeighborRegionsOfInto(rid, &scratch->regions2);
      for (int32_t r2 : scratch->regions2) {
        const int merged_cost = count_of(rid) + count_of(r2) + 1;
        if (merged_cost > merge_budget) continue;
        const RegionStats& rs2 = partition->region(r2).stats;
        bool ok = true;
        for (size_t k = 0; k < centrality.size() && ok; ++k) {
          const int ci = centrality[k];
          const Constraint& c = bound.constraint(ci);
          double avg = (rs1.RawSum(ci) + rs2.RawSum(ci) +
                        bound.ValueOf(ci, a)) /
                       (rs1.count() + rs2.count() + 1.0);
          ok = c.Contains(avg);
        }
        if (ok) {
          partition->MergeRegions(rid, r2);
          count_of(rid) = merged_cost;
          ++stats->round2_merges;
          partition->Assign(a, rid);
          ++stats->round2_assignments;
          assigned = true;
          any_change = true;
          break;
        }
      }
    }
  }
  return any_change;
}

/// Substep 2.3: combine regions until each satisfies every extrema
/// constraint; dissolve the ones that cannot be fixed. The dissolve pass
/// runs even after a supervisor trip — it is what guarantees the partition
/// stays feasible when the merge loop is cut short.
void CombineForExtrema(const BoundConstraints& bound, Partition* partition,
                       RegionGrowingStats* stats, PhaseSupervisor* supervisor,
                       GrowthScratch* scratch) {
  if (!bound.has_extrema()) return;
  bool changed = true;
  while (changed && !(supervisor != nullptr && supervisor->tripped())) {
    changed = false;
    partition->AliveRegionIdsInto(&scratch->sweep);
    for (int32_t rid : scratch->sweep) {
      if (supervisor != nullptr && supervisor->Check()) break;
      if (!partition->IsAlive(rid) || partition->region(rid).size() == 0) {
        continue;
      }
      if (ExtremaSatisfied(bound, partition->region(rid).stats)) continue;
      partition->NeighborRegionsOfInto(rid, &scratch->regions);
      for (int32_t nb : scratch->regions) {
        if (NonCountingOkAfterMerge(bound, partition->region(rid).stats,
                                    partition->region(nb).stats)) {
          partition->MergeRegions(rid, nb);
          ++stats->extrema_merges;
          changed = true;
          break;
        }
      }
    }
  }
  // Dead ends: regions that still miss an extrema seed go back to the
  // unassigned pool.
  partition->AliveRegionIdsInto(&scratch->sweep);
  for (int32_t rid : scratch->sweep) {
    if (!ExtremaSatisfied(bound, partition->region(rid).stats)) {
      partition->DissolveRegion(rid);
      ++stats->regions_dissolved;
    }
  }
}

}  // namespace

Status GrowRegions(const SeedingResult& seeding, const SolverOptions& options,
                   Rng* rng, Partition* partition,
                   RegionGrowingStats* stats_out, PhaseSupervisor* supervisor,
                   GrowthScratch* scratch) {
  if (partition == nullptr || rng == nullptr) {
    return Status::InvalidArgument("GrowRegions: null partition or rng");
  }
  if (partition->NumRegions() != 0) {
    return Status::FailedPrecondition(
        "GrowRegions requires an empty partition");
  }
  RegionGrowingStats local_stats;
  RegionGrowingStats* stats = stats_out != nullptr ? stats_out : &local_stats;
  GrowthScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  const BoundConstraints& bound = partition->bound();
  const auto interrupted = [supervisor] {
    return supervisor != nullptr && supervisor->tripped().has_value();
  };

  // Substep 2.1 — region initialization from seeds.
  InitializeRegions(bound, seeding, options, rng, partition, stats,
                    supervisor, scratch);

  // Substep 2.2 — enclave assignment. Round-2 merges can unlock new
  // round-1 assignments, so alternate until neither makes progress.
  if (!interrupted()) {
    std::vector<int32_t> order = partition->UnassignedAreas();
    OrderAreas(bound, options.pickup_order, rng, &order);
    AssignEnclavesRound1(bound, order, partition, stats, supervisor, scratch);
    if (bound.has_centrality() && !interrupted()) {
      std::vector<int> merge_count;  // Per-region round-2 merge budget use.
      while (AssignEnclavesRound2(bound, order, options.avg_merge_limit,
                                  &merge_count, partition, stats, supervisor,
                                  scratch)) {
        if (!AssignEnclavesRound1(bound, order, partition, stats, supervisor,
                                  scratch)) {
          break;
        }
        if (interrupted()) break;
      }
    }
  }

  // Substep 2.3 — every region must satisfy all extrema constraints. Runs
  // even when interrupted: its dissolve pass is the best-effort finalizer
  // that guarantees the returned partition is feasible.
  CombineForExtrema(bound, partition, stats, supervisor, scratch);
  return Status::OK();
}

}  // namespace emp
