#ifndef EMP_CORE_CONSTRUCTION_MONOTONIC_ADJUST_H_
#define EMP_CORE_CONSTRUCTION_MONOTONIC_ADJUST_H_

#include <cstdint>

#include "common/result.h"
#include "core/construction/growth_scratch.h"
#include "core/partition.h"
#include "core/run_context.h"
#include "graph/connectivity.h"

namespace emp {

/// Counters reported by Step 3 for diagnostics and tests.
struct MonotonicAdjustStats {
  int64_t swaps = 0;             // boundary-area swaps between regions
  int64_t merges = 0;            // merges to reach SUM/COUNT lower bounds
  int64_t removals = 0;          // area evictions to respect upper bounds
  int64_t regions_dissolved = 0; // regions that stayed infeasible
};

/// Step 3 of the construction phase (§V-B): repairs SUM and COUNT
/// constraints — the monotonic family — without breaking the MIN/MAX/AVG
/// satisfaction Step 2 established. In order: swap boundary areas from
/// neighbor regions into under-bound regions, merge regions still under a
/// lower bound, evict areas from regions over an upper bound, and dissolve
/// whatever remains infeasible. On return every alive region satisfies ALL
/// constraints.
///
/// `supervisor` (optional) is polled inside the repair loops (Phases A-C);
/// on a trip the remaining repairs are skipped but the dissolve pass
/// (Phase D) still runs, so the every-region-feasible postcondition holds
/// regardless of interruption.
///
/// `scratch` (optional) is the reusable construction arena; falls back to
/// a local scratch when null.
Status AdjustForCounting(ConnectivityChecker* connectivity,
                         Partition* partition,
                         MonotonicAdjustStats* stats = nullptr,
                         PhaseSupervisor* supervisor = nullptr,
                         GrowthScratch* scratch = nullptr);

}  // namespace emp

#endif  // EMP_CORE_CONSTRUCTION_MONOTONIC_ADJUST_H_
