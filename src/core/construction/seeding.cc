#include "core/construction/seeding.h"

namespace emp {

SeedingResult SelectSeeds(const BoundConstraints& bound,
                          const FeasibilityReport& feasibility) {
  const int32_t n = bound.areas().num_areas();
  SeedingResult out;
  out.is_seed = feasibility.is_seed;
  out.seeds.reserve(static_cast<size_t>(feasibility.num_seed_areas));
  for (int32_t a = 0; a < n; ++a) {
    if (feasibility.is_invalid[static_cast<size_t>(a)]) continue;
    if (feasibility.is_seed[static_cast<size_t>(a)]) {
      out.seeds.push_back(a);
    } else {
      out.non_seeds.push_back(a);
    }
  }
  return out;
}

}  // namespace emp
