#ifndef EMP_CORE_CONSTRUCTION_REGION_GROWING_H_
#define EMP_CORE_CONSTRUCTION_REGION_GROWING_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "core/construction/growth_scratch.h"
#include "core/construction/seeding.h"
#include "core/partition.h"
#include "core/run_context.h"
#include "core/solver_options.h"

namespace emp {

/// Counters reported by Step 2 for diagnostics and tests.
struct RegionGrowingStats {
  int64_t regions_from_avg_seeds = 0;   // substep 2.1 singleton inits
  int64_t regions_from_merging = 0;     // Algorithm 1 successes
  int64_t algorithm1_reverts = 0;       // Algorithm 1 dead ends
  int64_t round1_assignments = 0;       // substep 2.2 round 1
  int64_t round2_merges = 0;            // substep 2.2 round 2 region merges
  int64_t round2_assignments = 0;
  int64_t extrema_merges = 0;           // substep 2.3 merges
  int64_t regions_dissolved = 0;        // substep 2.3 dead ends
};

/// Step 2 of the construction phase (Region Growing, §V-B): initializes
/// regions from seed areas, grows them to satisfy every AVG constraint
/// without breaking MIN/MAX, and combines regions so each satisfies all
/// extrema constraints. On return every alive region satisfies all extrema
/// and centrality constraints; counting constraints are Step 3's job.
///
/// `partition` must be freshly constructed with invalid areas deactivated.
///
/// `supervisor` (optional) is polled at every substep's inner loop; when it
/// trips, growth stops at the next checkpoint and the partition is
/// finalized to a feasible best-effort state (regions violating any
/// extrema/centrality constraint are dissolved) before returning OK —
/// consult supervisor->tripped() for the verdict. Counting constraints are
/// Step 3's job either way.
/// `scratch` (optional) is the reusable construction arena; pass one per
/// attempt to keep the inner loops allocation-free. Falls back to a local
/// scratch when null.
Status GrowRegions(const SeedingResult& seeding, const SolverOptions& options,
                   Rng* rng, Partition* partition,
                   RegionGrowingStats* stats = nullptr,
                   PhaseSupervisor* supervisor = nullptr,
                   GrowthScratch* scratch = nullptr);

}  // namespace emp

#endif  // EMP_CORE_CONSTRUCTION_REGION_GROWING_H_
