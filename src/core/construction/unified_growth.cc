#include "core/construction/unified_growth.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace emp {

namespace {

/// Relative breach of one bound: how far `value` sits outside [l, u],
/// normalized by the bound's magnitude so constraints on different scales
/// are comparable.
double BoundViolation(double value, double lower, double upper) {
  if (value < lower) {
    double scale = std::max(1.0, std::fabs(lower));
    return (lower - value) / scale;
  }
  if (value > upper) {
    double scale = std::max(1.0, std::fabs(upper));
    return (value - upper) / scale;
  }
  return 0.0;
}

/// Violation if `area` joined the region.
double ViolationAfterAdd(const BoundConstraints& bound,
                         const RegionStats& stats, int32_t area) {
  double total = 0.0;
  for (int ci = 0; ci < bound.size(); ++ci) {
    const Constraint& c = bound.constraint(ci);
    total += BoundViolation(stats.AggregateAfterAdd(ci, area), c.lower,
                            c.upper);
  }
  return total;
}

}  // namespace

double ConstraintViolation(const BoundConstraints& bound,
                           const RegionStats& stats) {
  double total = 0.0;
  for (int ci = 0; ci < bound.size(); ++ci) {
    const Constraint& c = bound.constraint(ci);
    total += BoundViolation(stats.AggregateValue(ci), c.lower, c.upper);
  }
  return total;
}

Status GrowUnified(const SeedingResult& seeding, const SolverOptions& options,
                   Rng* rng, Partition* partition,
                   UnifiedGrowthStats* stats_out, PhaseSupervisor* supervisor,
                   GrowthScratch* scratch) {
  (void)options;
  if (partition == nullptr || rng == nullptr) {
    return Status::InvalidArgument("GrowUnified: null partition or rng");
  }
  if (partition->NumRegions() != 0) {
    return Status::FailedPrecondition(
        "GrowUnified requires an empty partition");
  }
  UnifiedGrowthStats local;
  UnifiedGrowthStats* stats = stats_out != nullptr ? stats_out : &local;
  GrowthScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  const BoundConstraints& bound = partition->bound();

  // Seeds anchor extrema constraints, so regions start there (random
  // order, like the paper's construction iterations).
  std::vector<int32_t> order = seeding.seeds;
  rng->Shuffle(&order);

  for (int32_t seed : order) {
    if (partition->RegionOf(seed) != -1) continue;
    const int32_t rid = partition->CreateRegion();
    partition->Assign(seed, rid);

    // Greedy descent on total violation.
    while (true) {
      if (supervisor != nullptr && supervisor->Check()) break;
      const RegionStats& rs = partition->region(rid).stats;
      double current = ConstraintViolation(bound, rs);
      if (current == 0.0) break;  // Feasible region.
      UnassignedNeighborsInto(*partition, rid, scratch);
      int32_t best = -1;
      double best_violation = current;
      for (int32_t nb : scratch->frontier) {
        double v = ViolationAfterAdd(bound, rs, nb);
        if (v < best_violation) {
          best_violation = v;
          best = nb;
        }
      }
      if (best == -1) break;  // No improving neighbor: dead end.
      partition->Assign(best, rid);
      ++stats->areas_absorbed;
    }

    if (ConstraintViolation(bound, partition->region(rid).stats) == 0.0) {
      ++stats->regions_committed;
    } else {
      partition->DissolveRegion(rid);
      ++stats->regions_abandoned;
    }
    if (supervisor != nullptr && supervisor->tripped()) return Status::OK();
  }

  // Leftover sweep: attach unassigned areas to adjacent regions whenever
  // every constraint stays satisfied; iterate to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int32_t a = 0; a < partition->num_areas(); ++a) {
      if (supervisor != nullptr && supervisor->Check()) return Status::OK();
      if (!partition->IsActive(a) || partition->RegionOf(a) != -1) continue;
      partition->NeighborRegionsOfAreaInto(a, &scratch->regions);
      for (int32_t rid : scratch->regions) {
        if (partition->region(rid).stats.SatisfiesAllAfterAdd(a)) {
          partition->Assign(a, rid);
          ++stats->leftover_assignments;
          changed = true;
          break;
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace emp
