#ifndef EMP_CORE_METRICS_H_
#define EMP_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/solution.h"
#include "data/area_set.h"

namespace emp {

/// Descriptive statistics of a regionalization, used by reports, examples,
/// and benchmark output to characterize solutions beyond p/H.
struct SolutionMetrics {
  int32_t p = 0;
  int64_t unassigned = 0;
  double unassigned_fraction = 0.0;

  // Region size (area count) distribution.
  int32_t min_region_size = 0;
  int32_t max_region_size = 0;
  double mean_region_size = 0.0;
  /// Gini coefficient of region sizes in [0, 1); 0 = perfectly balanced.
  double size_gini = 0.0;

  /// Mean isoperimetric quotient 4πA/P² over regions, in (0, 1]; higher is
  /// more compact (1 = disc). NaN-free: 0 when geometry is absent.
  double mean_compactness = 0.0;

  double heterogeneity = 0.0;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Computes metrics for a solution over its area set. Compactness uses
/// polygon geometry when available and is reported as 0 otherwise.
Result<SolutionMetrics> ComputeMetrics(const AreaSet& areas,
                                       const Solution& solution);

/// Gini coefficient of a non-negative sample (0 for empty/degenerate).
double GiniCoefficient(std::vector<double> values);

/// Isoperimetric quotient 4πA/P² of one region given its member areas'
/// polygons (exterior perimeter = Σ perimeters − 2 × internal shared
/// borders). Requires geometry.
Result<double> RegionCompactness(const AreaSet& areas,
                                 const std::vector<int32_t>& members);

}  // namespace emp

#endif  // EMP_CORE_METRICS_H_
