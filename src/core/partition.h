#ifndef EMP_CORE_PARTITION_H_
#define EMP_CORE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "constraints/constraint_set.h"
#include "core/region.h"

namespace emp {

/// Mutable assignment of areas to regions — the working state of FaCT's
/// construction and local-search phases. Maintains the area -> region
/// reverse map and every region's RegionStats under assignment, removal,
/// merge, and dissolve operations.
///
/// Areas marked inactive (filtered out by the feasibility phase) can never
/// be assigned; they belong to U0 in the final solution. The Partition does
/// NOT enforce spatial contiguity — callers validate moves through
/// ConnectivityChecker before applying them.
class Partition {
 public:
  /// `bound` must outlive the partition. All areas start active and
  /// unassigned.
  explicit Partition(const BoundConstraints* bound);

  const BoundConstraints& bound() const { return *bound_; }
  int32_t num_areas() const {
    return static_cast<int32_t>(region_of_.size());
  }

  /// Marks an area as excluded from assignment (invalid under §V-A).
  void Deactivate(int32_t area);
  bool IsActive(int32_t area) const {
    return active_[static_cast<size_t>(area)] != 0;
  }

  /// Creates a new empty region and returns its id.
  int32_t CreateRegion();

  /// Assigns an unassigned active area to a region.
  void Assign(int32_t area, int32_t region_id);

  /// Removes an assigned area back to the unassigned pool. The region may
  /// become empty; it stays alive until DissolveRegion/Compact.
  void Unassign(int32_t area);

  /// Moves an assigned area to another alive region (Tabu move).
  void Move(int32_t area, int32_t to_region);

  /// Merges region `loser` into `winner`; `loser` dies. Returns `winner`.
  int32_t MergeRegions(int32_t winner, int32_t loser);

  /// Unassigns all areas of a region and kills it.
  void DissolveRegion(int32_t region_id);

  /// Region id of an area, or -1 when unassigned.
  int32_t RegionOf(int32_t area) const {
    return region_of_[static_cast<size_t>(area)];
  }

  bool IsAlive(int32_t region_id) const {
    return regions_[static_cast<size_t>(region_id)].alive;
  }
  /// Number of region slots ever created (alive or dead) — the exclusive
  /// upper bound on raw region ids. Lets callers (the Tabu neighborhood
  /// engine, articulation cache) size id-indexed arrays without scanning.
  int32_t NumRegionSlots() const {
    return static_cast<int32_t>(regions_.size());
  }
  const Region& region(int32_t region_id) const {
    return regions_[static_cast<size_t>(region_id)];
  }

  /// Ids of alive, non-empty regions.
  std::vector<int32_t> AliveRegionIds() const;

  /// Number of alive non-empty regions (the current p).
  int32_t NumRegions() const;

  /// Active areas with no region.
  std::vector<int32_t> UnassignedAreas() const;

  /// Distinct alive regions adjacent to `area` (excluding its own region).
  std::vector<int32_t> NeighborRegionsOfArea(int32_t area) const;

  /// Distinct alive regions sharing a border with region `region_id`.
  std::vector<int32_t> NeighborRegionsOf(int32_t region_id) const;

  /// Allocation-free variants for hot loops: clear `*out` and fill it with
  /// the same result (same first-seen order) as the returning versions,
  /// letting callers reuse one buffer across calls (DESIGN.md §14).
  void NeighborRegionsOfAreaInto(int32_t area, std::vector<int32_t>* out) const;
  void NeighborRegionsOfInto(int32_t region_id,
                             std::vector<int32_t>* out) const;
  void AliveRegionIdsInto(std::vector<int32_t>* out) const;
  void UnassignedAreasInto(std::vector<int32_t>* out) const;

  /// Areas of `region_id` having at least one neighbor outside the region.
  std::vector<int32_t> BoundaryAreas(int32_t region_id) const;

  /// Deep consistency check for tests: reverse map matches region member
  /// lists, stats counts match sizes, dead regions are empty, inactive
  /// areas unassigned.
  Status ValidateInvariants() const;

  /// Final region assignment: region ids compacted to [0, p), -1 for
  /// unassigned/inactive areas.
  std::vector<int32_t> CompactAssignment() const;

 private:
  /// Starts a fresh dedup epoch over region ids and returns its tag.
  /// Backs the neighbor-region queries: marking a region id and testing
  /// "seen this call?" is O(1) without clearing between calls (the same
  /// trick as ConnectivityChecker::MarkMembers), where the previous
  /// std::find-over-output dedup was quadratic for high-degree regions.
  uint32_t BeginRegionSeenEpoch() const;

  const BoundConstraints* bound_;
  std::vector<Region> regions_;
  std::vector<int32_t> region_of_;  // -1 = unassigned
  std::vector<char> active_;
  // Epoch-tagged scratch for the neighbor-region queries (logically
  // const: pure caching, no observable state).
  mutable std::vector<uint32_t> region_seen_;
  mutable uint32_t region_seen_epoch_ = 0;
};

}  // namespace emp

#endif  // EMP_CORE_PARTITION_H_
