#include "core/fact_solver.h"

#include <algorithm>
#include <future>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "core/construction/seeding.h"
#include "core/construction/unified_growth.h"
#include "core/local_search/heterogeneity.h"
#include "core/partition.h"
#include "graph/connectivity.h"

namespace emp {

FactSolver::FactSolver(const AreaSet* areas,
                       std::vector<Constraint> constraints,
                       SolverOptions options)
    : areas_(areas),
      constraints_(std::move(constraints)),
      options_(options) {}

Result<Solution> FactSolver::Solve() {
  return Solve(MakeRunContext(options_));
}

Result<Solution> FactSolver::Solve(const RunContext& ctx) {
  EMP_RETURN_IF_ERROR(ValidateSolverOptions(options_));
  if (areas_ == nullptr) {
    return Status::InvalidArgument("FactSolver: null area set");
  }
  EMP_ASSIGN_OR_RETURN(BoundConstraints bound,
                       BoundConstraints::Create(areas_, constraints_));

  // ---- Phase 1: feasibility. ----------------------------------------
  Stopwatch feasibility_timer;
  double feasibility_seconds = 0.0;
  FeasibilityReport feasibility;
  {
    PhaseSupervisor supervisor(&ctx, "feasibility");
    EMP_ASSIGN_OR_RETURN(feasibility,
                         CheckFeasibility(bound, &supervisor));
    feasibility_seconds = feasibility_timer.ElapsedSeconds();
    if (auto reason = supervisor.tripped()) {
      // Interrupted before the verdict: the scan is incomplete, so neither
      // feasibility nor infeasibility is proven. The only safe best-effort
      // answer is the empty solution (p = 0, everything unassigned).
      Solution degraded;
      degraded.feasibility = std::move(feasibility);
      degraded.feasibility_seconds = feasibility_seconds;
      degraded.termination_reason = *reason;
      Partition empty(&bound);
      FillAssignmentFromPartition(empty, &degraded);
      return degraded;
    }
  }
  if (!feasibility.feasible) {
    return Status::Infeasible(Join(feasibility.diagnostics, "; "));
  }
  if (!options_.filter_invalid_areas && !feasibility.invalid_areas.empty()) {
    return Status::Infeasible(
        std::to_string(feasibility.invalid_areas.size()) +
        " areas are invalid under the constraints and "
        "filter_invalid_areas is disabled");
  }

  // ---- Phase 2: construction, best-of-k iterations on p. -------------
  Stopwatch construction_timer;
  SeedingResult seeding = SelectSeeds(bound, feasibility);
  ConnectivityChecker connectivity(&areas_->graph());

  // One construction try; iterations are independent so they can run on a
  // thread pool (parallelization is the paper's stated future work).
  struct IterationOutcome {
    std::optional<Partition> partition;
    RegionGrowingStats growing;
    MonotonicAdjustStats adjust;
    int32_t p = -1;
    Status status;
    /// Set when the attempt was cut short by supervision; its partial
    /// partition is still feasible and competes in best-of-k as usual.
    std::optional<TerminationReason> interrupted;
  };
  auto run_attempt = [&](int iter, int attempt) {
    IterationOutcome out;
    // Derived RNG streams: one per (iteration, retry attempt), so retries
    // explore genuinely different constructions and any (iter, attempt)
    // replays identically regardless of thread count.
    Rng rng(options_.seed +
            0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(iter) +
            0xD1B54A32D192ED03ULL * static_cast<uint64_t>(attempt));
    Partition partition(&bound);
    for (int32_t a : feasibility.invalid_areas) partition.Deactivate(a);
    PhaseSupervisor supervisor(&ctx, "construction", /*worker=*/iter);
    if (options_.construction_strategy ==
        ConstructionStrategy::kUnifiedGrowth) {
      // Ablation baseline: single-step growth already leaves every
      // committed region fully feasible; no adjustment pass needed.
      out.status = GrowUnified(seeding, options_, &rng, &partition,
                               /*stats=*/nullptr, &supervisor);
    } else {
      out.status = GrowRegions(seeding, options_, &rng, &partition,
                               &out.growing, &supervisor);
      if (out.status.ok()) {
        // ConnectivityChecker is not thread-safe; each iteration gets its
        // own when running in parallel. Runs even when the supervisor has
        // tripped: its dissolve pass finalizes the partial partition.
        ConnectivityChecker local_connectivity(&areas_->graph());
        out.status = AdjustForCounting(&local_connectivity, &partition,
                                       &out.adjust, &supervisor);
      }
    }
    out.interrupted = supervisor.tripped();
    if (out.status.ok()) {
      out.p = partition.NumRegions();
      out.partition.emplace(std::move(partition));
    }
    return out;
  };
  auto run_iteration = [&](int iter) {
    IterationOutcome out = run_attempt(iter, 0);
    // Retry policy: an attempt that errored or produced no region at all
    // re-runs under a derived RNG stream. Interrupted attempts are never
    // retried — their best-effort partial is the point.
    for (int attempt = 1; attempt <= options_.construction_retries;
         ++attempt) {
      if (out.interrupted || (out.status.ok() && out.p > 0)) break;
      out = run_attempt(iter, attempt);
    }
    return out;
  };

  const int iterations = options_.construction_iterations;
  std::vector<IterationOutcome> outcomes(static_cast<size_t>(iterations));
  const int threads =
      std::max(1, std::min(options_.construction_threads, iterations));
  if (threads <= 1) {
    for (int iter = 0; iter < iterations; ++iter) {
      outcomes[static_cast<size_t>(iter)] = run_iteration(iter);
    }
  } else {
    std::vector<std::future<IterationOutcome>> futures;
    futures.reserve(static_cast<size_t>(iterations));
    for (int iter = 0; iter < iterations; ++iter) {
      futures.push_back(
          std::async(std::launch::async, run_iteration, iter));
    }
    for (int iter = 0; iter < iterations; ++iter) {
      outcomes[static_cast<size_t>(iter)] = futures[static_cast<size_t>(iter)].get();
    }
  }

  // Deterministic selection: highest p, earliest iteration breaking ties —
  // identical regardless of thread count. Interrupted partials compete on
  // the same footing; the earliest iteration's trip verdict (also
  // thread-count independent) becomes the solution's termination reason.
  std::optional<Partition> best;
  int32_t best_p = -1;
  RegionGrowingStats best_growing;
  MonotonicAdjustStats best_adjust;
  int completed_iterations = 0;
  std::optional<TerminationReason> construction_trip;
  for (IterationOutcome& out : outcomes) {
    EMP_RETURN_IF_ERROR(out.status);
    if (out.interrupted.has_value()) {
      if (!construction_trip.has_value()) construction_trip = out.interrupted;
    } else {
      ++completed_iterations;
    }
    if (out.p > best_p) {
      best_p = out.p;
      best = std::move(out.partition);
      best_growing = out.growing;
      best_adjust = out.adjust;
    }
  }

  Solution solution;
  solution.feasibility = std::move(feasibility);
  solution.feasibility_seconds = feasibility_seconds;
  solution.growing_stats = best_growing;
  solution.adjust_stats = best_adjust;
  solution.completed_construction_iterations = completed_iterations;
  solution.construction_seconds = construction_timer.ElapsedSeconds();
  solution.heterogeneity_before_local_search = ComputeHeterogeneity(*best);
  if (construction_trip.has_value()) {
    solution.termination_reason = *construction_trip;
  }

  // ---- Phase 3: Tabu local search (p is fixed). -----------------------
  if (options_.run_local_search && best_p > 0) {
    Stopwatch tabu_timer;
    PhaseSupervisor supervisor(&ctx, "tabu");
    EMP_ASSIGN_OR_RETURN(solution.tabu_result,
                         TabuSearch(options_, &connectivity, &*best,
                                    /*objective=*/nullptr, &supervisor));
    solution.local_search_seconds = tabu_timer.ElapsedSeconds();
    solution.heterogeneity = solution.tabu_result.final_heterogeneity;
    if (solution.termination_reason == TerminationReason::kConverged) {
      solution.termination_reason = solution.tabu_result.termination;
    }
  } else {
    solution.heterogeneity = solution.heterogeneity_before_local_search;
    solution.tabu_result.initial_heterogeneity = solution.heterogeneity;
    solution.tabu_result.final_heterogeneity = solution.heterogeneity;
  }

  // ---- Extract the final assignment. ----------------------------------
  FillAssignmentFromPartition(*best, &solution);
  return solution;
}

Result<Solution> SolveEmp(const AreaSet& areas,
                          std::vector<Constraint> constraints,
                          const SolverOptions& options,
                          const RunContext* ctx) {
  FactSolver solver(&areas, std::move(constraints), options);
  if (ctx != nullptr) return solver.Solve(*ctx);
  return solver.Solve();
}

}  // namespace emp
