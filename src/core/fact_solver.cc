#include "core/fact_solver.h"

#include <algorithm>
#include <future>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "core/construction/seeding.h"
#include "core/construction/unified_growth.h"
#include "core/local_search/heterogeneity.h"
#include "core/partition.h"
#include "graph/connectivity.h"

namespace emp {

FactSolver::FactSolver(const AreaSet* areas,
                       std::vector<Constraint> constraints,
                       SolverOptions options)
    : areas_(areas),
      constraints_(std::move(constraints)),
      options_(options) {}

Result<Solution> FactSolver::Solve() {
  if (areas_ == nullptr) {
    return Status::InvalidArgument("FactSolver: null area set");
  }
  EMP_ASSIGN_OR_RETURN(BoundConstraints bound,
                       BoundConstraints::Create(areas_, constraints_));

  Stopwatch construction_timer;

  // ---- Phase 1: feasibility. ----------------------------------------
  EMP_ASSIGN_OR_RETURN(FeasibilityReport feasibility,
                       CheckFeasibility(bound));
  if (!feasibility.feasible) {
    return Status::Infeasible(Join(feasibility.diagnostics, "; "));
  }
  if (!options_.filter_invalid_areas && !feasibility.invalid_areas.empty()) {
    return Status::Infeasible(
        std::to_string(feasibility.invalid_areas.size()) +
        " areas are invalid under the constraints and "
        "filter_invalid_areas is disabled");
  }

  // ---- Phase 2: construction, best-of-k iterations on p. -------------
  SeedingResult seeding = SelectSeeds(bound, feasibility);
  ConnectivityChecker connectivity(&areas_->graph());

  // One construction try; iterations are independent so they can run on a
  // thread pool (parallelization is the paper's stated future work).
  struct IterationOutcome {
    std::optional<Partition> partition;
    RegionGrowingStats growing;
    MonotonicAdjustStats adjust;
    int32_t p = -1;
    Status status;
  };
  auto run_iteration = [&](int iter) {
    IterationOutcome out;
    Rng rng(options_.seed +
            0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(iter));
    Partition partition(&bound);
    for (int32_t a : feasibility.invalid_areas) partition.Deactivate(a);
    if (options_.construction_strategy ==
        ConstructionStrategy::kUnifiedGrowth) {
      // Ablation baseline: single-step growth already leaves every
      // committed region fully feasible; no adjustment pass needed.
      out.status = GrowUnified(seeding, options_, &rng, &partition);
    } else {
      out.status = GrowRegions(seeding, options_, &rng, &partition,
                               &out.growing);
      if (out.status.ok()) {
        // ConnectivityChecker is not thread-safe; each iteration gets its
        // own when running in parallel.
        ConnectivityChecker local_connectivity(&areas_->graph());
        out.status =
            AdjustForCounting(&local_connectivity, &partition, &out.adjust);
      }
    }
    if (out.status.ok()) {
      out.p = partition.NumRegions();
      out.partition.emplace(std::move(partition));
    }
    return out;
  };

  const int iterations =
      options_.construction_iterations < 1 ? 1
                                           : options_.construction_iterations;
  std::vector<IterationOutcome> outcomes(static_cast<size_t>(iterations));
  const int threads =
      std::max(1, std::min(options_.construction_threads, iterations));
  if (threads <= 1) {
    for (int iter = 0; iter < iterations; ++iter) {
      outcomes[static_cast<size_t>(iter)] = run_iteration(iter);
    }
  } else {
    std::vector<std::future<IterationOutcome>> futures;
    futures.reserve(static_cast<size_t>(iterations));
    for (int iter = 0; iter < iterations; ++iter) {
      futures.push_back(
          std::async(std::launch::async, run_iteration, iter));
    }
    for (int iter = 0; iter < iterations; ++iter) {
      outcomes[static_cast<size_t>(iter)] = futures[static_cast<size_t>(iter)].get();
    }
  }

  // Deterministic selection: highest p, earliest iteration breaking ties —
  // identical regardless of thread count.
  std::optional<Partition> best;
  int32_t best_p = -1;
  RegionGrowingStats best_growing;
  MonotonicAdjustStats best_adjust;
  for (IterationOutcome& out : outcomes) {
    EMP_RETURN_IF_ERROR(out.status);
    if (out.p > best_p) {
      best_p = out.p;
      best = std::move(out.partition);
      best_growing = out.growing;
      best_adjust = out.adjust;
    }
  }

  Solution solution;
  solution.feasibility = std::move(feasibility);
  solution.growing_stats = best_growing;
  solution.adjust_stats = best_adjust;
  solution.construction_seconds = construction_timer.ElapsedSeconds();
  solution.heterogeneity_before_local_search = ComputeHeterogeneity(*best);

  // ---- Phase 3: Tabu local search (p is fixed). -----------------------
  if (options_.run_local_search && best_p > 0) {
    Stopwatch tabu_timer;
    EMP_ASSIGN_OR_RETURN(solution.tabu_result,
                         TabuSearch(options_, &connectivity, &*best));
    solution.local_search_seconds = tabu_timer.ElapsedSeconds();
    solution.heterogeneity = solution.tabu_result.final_heterogeneity;
  } else {
    solution.heterogeneity = solution.heterogeneity_before_local_search;
    solution.tabu_result.initial_heterogeneity = solution.heterogeneity;
    solution.tabu_result.final_heterogeneity = solution.heterogeneity;
  }

  // ---- Extract the final assignment. ----------------------------------
  FillAssignmentFromPartition(*best, &solution);
  return solution;
}

Result<Solution> SolveEmp(const AreaSet& areas,
                          std::vector<Constraint> constraints,
                          const SolverOptions& options) {
  FactSolver solver(&areas, std::move(constraints), options);
  return solver.Solve();
}

}  // namespace emp
