#include "core/fact_solver.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "core/construction/seeding.h"
#include "core/construction/unified_growth.h"
#include "core/local_search/heterogeneity.h"
#include "core/partition.h"
#include "core/portfolio.h"
#include "graph/connectivity.h"
#include "obs/curve.h"
#include "obs/http_server.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace emp {

FactSolver::FactSolver(const AreaSet* areas,
                       std::vector<Constraint> constraints,
                       SolverOptions options)
    : areas_(areas),
      constraints_(std::move(constraints)),
      options_(options) {}

Result<FactSolver> FactSolver::Create(const AreaSet* areas,
                                      std::vector<Constraint> constraints,
                                      SolverOptions options) {
  EMP_RETURN_IF_ERROR(ValidateSolverOptions(options));
  if (areas == nullptr) {
    return Status::InvalidArgument("FactSolver: null area set");
  }
  // Binding checks constraint shape and attribute existence; the bound is
  // rebuilt in Solve() (it holds pointers into `areas` and is cheap).
  Result<BoundConstraints> bound = BoundConstraints::Create(areas, constraints);
  if (!bound.ok()) return bound.status();
  return FactSolver(areas, std::move(constraints), options);
}

Result<Solution> FactSolver::Solve() {
  RunContext ctx = MakeRunContext(options_);
  if (options_.serve_port < 0) return Solve(ctx);
  // serve_port requested on the no-context entry point: stand up a
  // self-contained observability plane (registry + board + HTTP server)
  // for the duration of the solve. None of it touches the RNG or the
  // algorithms, so the solution is bit-identical with and without it.
  obs::MetricRegistry metrics;
  obs::ProgressBoard board;
  ctx.metrics = &metrics;
  ctx.progress_board = &board;
  obs::HttpServer::Options server_options;
  server_options.port = options_.serve_port;
  server_options.metrics = &metrics;
  server_options.progress = &board;
  EMP_ASSIGN_OR_RETURN(std::unique_ptr<obs::HttpServer> server,
                       obs::HttpServer::Start(server_options));
  Result<Solution> result = Solve(ctx);
  server->Stop();
  return result;
}

Result<Solution> FactSolver::Solve(const RunContext& ctx) {
  EMP_RETURN_IF_ERROR(ValidateSolverOptions(options_));
  if (areas_ == nullptr) {
    return Status::InvalidArgument("FactSolver: null area set");
  }

  obs::ProgressBoard* board = ctx.progress_board;
  if (board != nullptr) {
    board->SetBudgets(options_.time_budget_ms, options_.max_evaluations);
    board->SetPhase("solve");
  }
  obs::RunJournal* journal = ctx.journal;
  if (journal != nullptr) {
    journal->Append("run_start", [&](JsonWriter& w) {
      w.Key("seed");
      w.Int(static_cast<int64_t>(options_.seed));
      w.Key("construction_iterations");
      w.Int(options_.construction_iterations);
      w.Key("construction_threads");
      w.Int(options_.construction_threads);
      w.Key("run_local_search");
      w.Bool(options_.run_local_search);
      w.Key("tabu_engine");
      w.String(options_.tabu_engine == TabuEngine::kIncremental
                   ? "incremental"
                   : "full-rebuild");
      w.Key("portfolio_replicas");
      w.Int(options_.portfolio_replicas);
      w.Key("time_budget_ms");
      w.Int(options_.time_budget_ms);
      w.Key("max_evaluations");
      w.Int(options_.max_evaluations);
      w.Key("instance");
      w.BeginInlineObject();
      w.Key("name");
      w.String(areas_->name());
      w.Key("areas");
      w.Int(areas_->num_areas());
      w.Key("edges");
      w.Int(areas_->graph().num_edges());
      w.Key("digest");
      w.String(obs::DigestHex(areas_->InstanceDigest()));
      w.EndObject();
    });
  }

  Stopwatch run_timer;
  // Multi-start portfolio requested: run N independent replicas and
  // reduce deterministically. The portfolio re-enters SolveSinglePass
  // through child contexts whose journal pointer is cleared, so the
  // bracket written here stays the run's only run_start/run_end pair.
  Result<Solution> result = [&]() -> Result<Solution> {
    if (options_.portfolio_replicas <= 1) return SolveSinglePass(ctx);
    PortfolioSolver portfolio(areas_, constraints_, options_);
    Result<Solution> reduced = portfolio.Solve(ctx);
    portfolio_stats_ = portfolio.stats();
    return reduced;
  }();

  if (journal != nullptr) {
    // Terminal summary — forced past the bound so even a truncated
    // journal ends with a run_end line (CI validates exactly that).
    // dropped() is read before Append: the fields callback runs under the
    // journal lock, so calling back into the journal there would deadlock.
    const int64_t dropped_records = journal->dropped();
    const double run_seconds = run_timer.ElapsedSeconds();
    journal->Append(
        "run_end",
        [&](JsonWriter& w) {
          w.Key("ok");
          w.Bool(result.ok());
          if (result.ok()) {
            const Solution& solution = *result;
            w.Key("p");
            w.Int(solution.p());
            w.Key("heterogeneity");
            w.Double(solution.heterogeneity);
            w.Key("unassigned");
            w.Int(solution.num_unassigned());
            w.Key("termination");
            w.String(TerminationReasonName(solution.termination_reason));
          } else {
            w.Key("error");
            w.String(result.status().message());
          }
          w.Key("seconds");
          w.Double(run_seconds);
          w.Key("evaluations");
          w.Int(ctx.evaluations());
          w.Key("dropped_records");
          w.Int(dropped_records);
        },
        /*force=*/true);
  }
  if (board != nullptr && result.ok()) {
    board->SetBestP(result->p());
    board->SetHeterogeneity(result->heterogeneity);
    board->SetPhase("idle");
  }
  return result;
}

Result<Solution> FactSolver::SolveSinglePass(const RunContext& ctx) {
  EMP_ASSIGN_OR_RETURN(BoundConstraints bound,
                       BoundConstraints::Create(areas_, constraints_));

  obs::MetricRegistry* metrics = ctx.metrics;
  obs::ProgressBoard* board = ctx.progress_board;
  obs::RunJournal* journal = ctx.journal;
  Stopwatch solve_timer;
  obs::ScopedSpan solve_span(ctx.trace, "solve");

  // Journal helpers: a begin/end line per phase, and a termination line
  // whenever supervision (deadline/cancel/budget/fault) cut one short.
  auto journal_phase_begin = [&](const char* phase) {
    if (journal == nullptr) return;
    journal->Append("phase_begin", [&](JsonWriter& w) {
      w.Key("phase");
      w.String(phase);
    });
  };
  auto journal_termination = [&](const char* phase, TerminationReason why) {
    if (journal == nullptr) return;
    journal->Append("termination", [&](JsonWriter& w) {
      w.Key("phase");
      w.String(phase);
      w.Key("reason");
      w.String(TerminationReasonName(why));
    });
  };

  // ---- Phase 1: feasibility. ----------------------------------------
  if (board != nullptr) board->SetPhase("feasibility");
  journal_phase_begin("feasibility");
  Stopwatch feasibility_timer;
  double feasibility_seconds = 0.0;
  FeasibilityReport feasibility;
  {
    obs::ScopedSpan span(ctx.trace, "feasibility");
    PhaseSupervisor supervisor(&ctx, "feasibility");
    EMP_ASSIGN_OR_RETURN(feasibility,
                         CheckFeasibility(bound, &supervisor));
    feasibility_seconds = feasibility_timer.ElapsedSeconds();
    obs::Set(obs::GetGauge(metrics, "emp_feasibility_seconds"),
             feasibility_seconds);
    if (journal != nullptr) {
      journal->Append("phase_end", [&](JsonWriter& w) {
        w.Key("phase");
        w.String("feasibility");
        w.Key("seconds");
        w.Double(feasibility_seconds);
        w.Key("feasible");
        w.Bool(feasibility.feasible);
        w.Key("invalid_areas");
        w.Int(static_cast<int64_t>(feasibility.invalid_areas.size()));
      });
    }
    if (auto reason = supervisor.tripped()) {
      journal_termination("feasibility", *reason);
      // Interrupted before the verdict: the scan is incomplete, so neither
      // feasibility nor infeasibility is proven. The only safe best-effort
      // answer is the empty solution (p = 0, everything unassigned).
      Solution degraded;
      degraded.feasibility = std::move(feasibility);
      degraded.feasibility_seconds = feasibility_seconds;
      degraded.termination_reason = *reason;
      Partition empty(&bound);
      FillAssignmentFromPartition(empty, &degraded);
      return degraded;
    }
  }
  if (!feasibility.feasible) {
    return Status::Infeasible(Join(feasibility.diagnostics, "; "));
  }
  if (!options_.filter_invalid_areas && !feasibility.invalid_areas.empty()) {
    return Status::Infeasible(
        std::to_string(feasibility.invalid_areas.size()) +
        " areas are invalid under the constraints and "
        "filter_invalid_areas is disabled");
  }

  // ---- Phase 2: construction, best-of-k iterations on p. -------------
  if (board != nullptr) board->SetPhase("construction");
  Stopwatch construction_timer;
  obs::Histogram* iteration_seconds =
      obs::GetHistogram(metrics, "emp_construction_iteration_seconds");
  obs::Histogram* grow_seconds =
      obs::GetHistogram(metrics, "emp_construction_grow_seconds");
  obs::Histogram* adjust_seconds =
      obs::GetHistogram(metrics, "emp_construction_adjust_seconds");
  obs::Counter* iterations_counter =
      obs::GetCounter(metrics, "emp_construction_iterations_total");
  obs::Counter* retries_counter =
      obs::GetCounter(metrics, "emp_construction_retries_total");

  SeedingResult seeding;
  {
    obs::ScopedSpan span(ctx.trace, "construction.seeding");
    seeding = SelectSeeds(bound, feasibility);
  }
  ConnectivityChecker connectivity(&areas_->graph());

  // One construction try; iterations are independent so they run on a
  // small worker pool (parallelization is the paper's stated future work).
  struct IterationOutcome {
    std::optional<Partition> partition;
    RegionGrowingStats growing;
    MonotonicAdjustStats adjust;
    int32_t p = -1;
    Status status;
    /// Set when the attempt was cut short by supervision; its partial
    /// partition is still feasible and competes in best-of-k as usual.
    std::optional<TerminationReason> interrupted;
  };
  auto run_attempt = [&](int iter, int attempt) {
    IterationOutcome out;
    obs::ScopedSpan iter_span(ctx.trace, "construction.iteration",
                              /*worker=*/iter);
    Stopwatch iter_timer;
    // Derived RNG streams: one per (iteration, retry attempt), so retries
    // explore genuinely different constructions and any (iter, attempt)
    // replays identically regardless of thread count.
    Rng rng(options_.seed +
            0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(iter) +
            0xD1B54A32D192ED03ULL * static_cast<uint64_t>(attempt));
    Partition partition(&bound);
    for (int32_t a : feasibility.invalid_areas) partition.Deactivate(a);
    PhaseSupervisor supervisor(&ctx, "construction", /*worker=*/iter);
    // Per-attempt arena: attempts may run concurrently on the worker
    // pool, so the scratch is never shared across threads.
    GrowthScratch scratch;
    if (options_.construction_strategy ==
        ConstructionStrategy::kUnifiedGrowth) {
      // Ablation baseline: single-step growth already leaves every
      // committed region fully feasible; no adjustment pass needed.
      obs::ScopedSpan grow_span(ctx.trace, "construction.grow",
                                /*worker=*/iter);
      out.status = GrowUnified(seeding, options_, &rng, &partition,
                               /*stats=*/nullptr, &supervisor, &scratch);
    } else {
      Stopwatch grow_timer;
      {
        obs::ScopedSpan grow_span(ctx.trace, "construction.grow",
                                  /*worker=*/iter);
        out.status = GrowRegions(seeding, options_, &rng, &partition,
                                 &out.growing, &supervisor, &scratch);
      }
      obs::Observe(grow_seconds, grow_timer.ElapsedSeconds());
      if (out.status.ok()) {
        // ConnectivityChecker is not thread-safe; each iteration gets its
        // own when running in parallel. Runs even when the supervisor has
        // tripped: its dissolve pass finalizes the partial partition.
        Stopwatch adjust_timer;
        obs::ScopedSpan adjust_span(ctx.trace, "construction.adjust",
                                    /*worker=*/iter);
        ConnectivityChecker local_connectivity(&areas_->graph());
        out.status = AdjustForCounting(&local_connectivity, &partition,
                                       &out.adjust, &supervisor, &scratch);
        obs::Observe(adjust_seconds, adjust_timer.ElapsedSeconds());
      }
    }
    out.interrupted = supervisor.tripped();
    if (out.status.ok()) {
      out.p = partition.NumRegions();
      out.partition.emplace(std::move(partition));
    }
    obs::Add(iterations_counter);
    obs::Observe(iteration_seconds, iter_timer.ElapsedSeconds());
    return out;
  };
  std::atomic<int64_t> construction_done{0};
  auto run_iteration = [&](int iter) {
    IterationOutcome out = run_attempt(iter, 0);
    // Retry policy: an attempt that errored or produced no region at all
    // re-runs under a derived RNG stream. Interrupted attempts are never
    // retried — their best-effort partial is the point.
    for (int attempt = 1; attempt <= options_.construction_retries;
         ++attempt) {
      if (out.interrupted || (out.status.ok() && out.p > 0)) break;
      obs::Add(retries_counter);
      out = run_attempt(iter, attempt);
    }
    if (board != nullptr) {
      board->SetWork(
          construction_done.fetch_add(1, std::memory_order_relaxed) + 1,
          options_.construction_iterations);
    }
    return out;
  };

  const int iterations = options_.construction_iterations;
  std::vector<IterationOutcome> outcomes(static_cast<size_t>(iterations));
  const int threads =
      std::max(1, std::min(options_.construction_threads, iterations));
  if (journal != nullptr) {
    journal->Append("phase_begin", [&](JsonWriter& w) {
      w.Key("phase");
      w.String("construction");
      w.Key("iterations");
      w.Int(iterations);
      w.Key("threads");
      w.Int(threads);
    });
  }
  if (threads <= 1) {
    for (int iter = 0; iter < iterations; ++iter) {
      outcomes[static_cast<size_t>(iter)] = run_iteration(iter);
    }
  } else {
    // Small worker pool honoring construction_threads exactly: `threads`
    // workers (this thread included) pull iteration ids from a shared
    // counter. Outcomes land in a pre-sized vector slot per iteration, so
    // no synchronization beyond the ticket counter and the joins.
    obs::Histogram* per_thread = obs::GetHistogram(
        metrics, "emp_construction_iterations_per_thread",
        {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
    std::atomic<int> next_iteration{0};
    auto drain = [&]() {
      int64_t processed = 0;
      int iter;
      while ((iter = next_iteration.fetch_add(
                  1, std::memory_order_relaxed)) < iterations) {
        outcomes[static_cast<size_t>(iter)] = run_iteration(iter);
        ++processed;
      }
      obs::Observe(per_thread, static_cast<double>(processed));
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads - 1));
    for (int t = 1; t < threads; ++t) pool.emplace_back(drain);
    drain();
    for (std::thread& worker : pool) worker.join();
  }

  // Deterministic selection: highest p, earliest iteration breaking ties —
  // identical regardless of thread count. Interrupted partials compete on
  // the same footing; the earliest iteration's trip verdict (also
  // thread-count independent) becomes the solution's termination reason.
  std::optional<Partition> best;
  int32_t best_p = -1;
  RegionGrowingStats best_growing;
  MonotonicAdjustStats best_adjust;
  int completed_iterations = 0;
  std::optional<TerminationReason> construction_trip;
  RegionGrowingStats growing_totals;
  MonotonicAdjustStats adjust_totals;
  for (IterationOutcome& out : outcomes) {
    EMP_RETURN_IF_ERROR(out.status);
    if (out.interrupted.has_value()) {
      if (!construction_trip.has_value()) construction_trip = out.interrupted;
    } else {
      ++completed_iterations;
    }
    growing_totals.regions_from_avg_seeds += out.growing.regions_from_avg_seeds;
    growing_totals.regions_from_merging += out.growing.regions_from_merging;
    growing_totals.algorithm1_reverts += out.growing.algorithm1_reverts;
    growing_totals.regions_dissolved += out.growing.regions_dissolved;
    adjust_totals.swaps += out.adjust.swaps;
    adjust_totals.merges += out.adjust.merges;
    adjust_totals.removals += out.adjust.removals;
    adjust_totals.regions_dissolved += out.adjust.regions_dissolved;
    if (out.p > best_p) {
      best_p = out.p;
      best = std::move(out.partition);
      best_growing = out.growing;
      best_adjust = out.adjust;
    }
  }

  Solution solution;
  solution.feasibility = std::move(feasibility);
  solution.feasibility_seconds = feasibility_seconds;
  solution.growing_stats = best_growing;
  solution.adjust_stats = best_adjust;
  solution.completed_construction_iterations = completed_iterations;
  solution.construction_seconds = construction_timer.ElapsedSeconds();
  solution.heterogeneity_before_local_search = ComputeHeterogeneity(*best);
  if (construction_trip.has_value()) {
    solution.termination_reason = *construction_trip;
    journal_termination("construction", *construction_trip);
  }
  if (board != nullptr) board->SetBestP(best_p);
  if (ctx.curve != nullptr) {
    // Construction's winner is the run's first incumbent: one sample with
    // both coordinates so the anytime curve starts at a full point.
    ctx.curve->OnBestP(best_p, ctx.evaluations());
    ctx.curve->OnHeterogeneity(solution.heterogeneity_before_local_search,
                               ctx.evaluations());
  }
  if (journal != nullptr) {
    journal->Append("phase_end", [&](JsonWriter& w) {
      w.Key("phase");
      w.String("construction");
      w.Key("seconds");
      w.Double(solution.construction_seconds);
      w.Key("best_p");
      w.Int(best_p);
      w.Key("completed_iterations");
      w.Int(completed_iterations);
      w.Key("heterogeneity");
      w.Double(solution.heterogeneity_before_local_search);
    });
  }

  if (metrics != nullptr) {
    obs::GetCounter(metrics, "emp_construction_regions_grown_total")
        ->Add(growing_totals.regions_from_avg_seeds +
              growing_totals.regions_from_merging);
    obs::GetCounter(metrics, "emp_construction_algorithm1_reverts_total")
        ->Add(growing_totals.algorithm1_reverts);
    obs::GetCounter(metrics, "emp_construction_regions_dissolved_total")
        ->Add(growing_totals.regions_dissolved +
              adjust_totals.regions_dissolved);
    obs::GetCounter(metrics, "emp_construction_adjust_swaps_total")
        ->Add(adjust_totals.swaps);
    obs::GetCounter(metrics, "emp_construction_adjust_merges_total")
        ->Add(adjust_totals.merges);
    obs::GetCounter(metrics, "emp_construction_adjust_removals_total")
        ->Add(adjust_totals.removals);
    obs::GetGauge(metrics, "emp_construction_best_p")->Set(best_p);
    obs::GetGauge(metrics, "emp_construction_threads")->Set(threads);
    obs::GetGauge(metrics, "emp_construction_seconds")
        ->Set(solution.construction_seconds);
  }

  // ---- Phase 3: Tabu local search (p is fixed). -----------------------
  if (options_.run_local_search && best_p > 0) {
    if (board != nullptr) board->SetPhase("tabu");
    journal_phase_begin("tabu");
    Stopwatch tabu_timer;
    obs::ScopedSpan span(ctx.trace, "tabu");
    PhaseSupervisor supervisor(&ctx, "tabu");
    EMP_ASSIGN_OR_RETURN(solution.tabu_result,
                         TabuSearch(options_, &connectivity, &*best,
                                    /*objective=*/nullptr, &supervisor));
    solution.local_search_seconds = tabu_timer.ElapsedSeconds();
    solution.heterogeneity = solution.tabu_result.final_heterogeneity;
    if (solution.termination_reason == TerminationReason::kConverged) {
      solution.termination_reason = solution.tabu_result.termination;
    }
    if (solution.tabu_result.termination != TerminationReason::kConverged) {
      journal_termination("tabu", solution.tabu_result.termination);
    }
    if (board != nullptr) {
      board->SetHeterogeneity(solution.heterogeneity);
    }
    if (ctx.curve != nullptr) {
      // Terminal sample: the curve always ends at the returned quality
      // even when the last tabu improvement predates the final epoch.
      ctx.curve->OnHeterogeneity(solution.heterogeneity, ctx.evaluations());
    }
    if (journal != nullptr) {
      journal->Append("phase_end", [&](JsonWriter& w) {
        w.Key("phase");
        w.String("tabu");
        w.Key("seconds");
        w.Double(solution.local_search_seconds);
        w.Key("iterations");
        w.Int(solution.tabu_result.iterations);
        w.Key("moves_applied");
        w.Int(solution.tabu_result.moves_applied);
        w.Key("initial_heterogeneity");
        w.Double(solution.tabu_result.initial_heterogeneity);
        w.Key("final_heterogeneity");
        w.Double(solution.tabu_result.final_heterogeneity);
      });
    }
    obs::Set(obs::GetGauge(metrics, "emp_tabu_seconds"),
             solution.local_search_seconds);
  } else {
    solution.heterogeneity = solution.heterogeneity_before_local_search;
    solution.tabu_result.initial_heterogeneity = solution.heterogeneity;
    solution.tabu_result.final_heterogeneity = solution.heterogeneity;
  }

  // ---- Extract the final assignment. ----------------------------------
  FillAssignmentFromPartition(*best, &solution);
  if (metrics != nullptr) {
    obs::GetCounter(metrics, "emp_solver_evaluations_total")
        ->Add(ctx.evaluations());
    obs::GetGauge(metrics, "emp_solver_seconds")
        ->Set(solve_timer.ElapsedSeconds());
    obs::GetGauge(metrics, "emp_solution_p")->Set(solution.p());
    obs::GetGauge(metrics, "emp_solution_heterogeneity")
        ->Set(solution.heterogeneity);
  }
  return solution;
}

Result<Solution> SolveEmp(const AreaSet& areas,
                          std::vector<Constraint> constraints,
                          const SolverOptions& options,
                          const RunContext* ctx) {
  FactSolver solver(&areas, std::move(constraints), options);
  if (ctx != nullptr) return solver.Solve(*ctx);
  return solver.Solve();
}

}  // namespace emp
