#ifndef EMP_CORE_FEASIBILITY_H_
#define EMP_CORE_FEASIBILITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/constraint_set.h"
#include "core/run_context.h"

namespace emp {

/// Outcome of FaCT's feasibility phase (§V-A): a verdict on whether any
/// feasible solution can exist, the set of invalid areas to filter out, and
/// human-readable diagnostics that let an analyst tune data or thresholds.
struct FeasibilityReport {
  /// False when no region can ever satisfy all constraints (e.g. no area
  /// lies in a MIN constraint's [l, u], or n < COUNT's lower bound).
  bool feasible = true;

  /// Theorem 3 verdict: when the dataset-wide average of an AVG attribute
  /// falls outside that constraint's range, no partition of ALL areas can
  /// satisfy it — solutions must leave areas unassigned.
  bool full_partition_possible = true;

  /// One line per detected issue, in constraint order.
  std::vector<std::string> diagnostics;

  /// Areas that cannot belong to any valid region (s < l of a MIN, s > u of
  /// a MAX, or s > u of a SUM constraint), sorted ascending.
  std::vector<int32_t> invalid_areas;

  /// Per-area invalidity flags (size = number of areas).
  std::vector<char> is_invalid;

  /// Per-area seed flags among VALID areas: the area lies within [l, u] of
  /// at least one extrema constraint (all-true when no extrema constraints
  /// exist, §V-D). Piggybacked on the same pass, as the paper describes.
  std::vector<char> is_seed;

  /// Seed-area count per extrema constraint, aligned with
  /// bound.extrema_indices().
  std::vector<int64_t> seeds_per_extrema_constraint;

  int64_t num_valid_areas = 0;
  int64_t num_seed_areas = 0;
};

/// Runs the single-pass feasibility phase. Never returns an error for an
/// infeasible instance — that is reported inside the report — only for
/// malformed inputs (empty dataset).
///
/// `supervisor` (optional) is polled once per area; when it trips, the
/// scan stops and the partially-filled report is returned — callers must
/// consult supervisor->tripped() and treat the report as incomplete.
Result<FeasibilityReport> CheckFeasibility(const BoundConstraints& bound,
                                           PhaseSupervisor* supervisor =
                                               nullptr);

}  // namespace emp

#endif  // EMP_CORE_FEASIBILITY_H_
