#ifndef EMP_CORE_EXACT_H_
#define EMP_CORE_EXACT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"
#include "core/run_context.h"
#include "data/area_set.h"

namespace emp {

/// Options for the exhaustive solver.
struct ExactOptions {
  /// Refuse instances larger than this: the search enumerates every
  /// assignment of areas to {unassigned, region_1, ..., region_k}, which
  /// is super-exponential (Bell-number growth). The paper's Gurobi MIP
  /// took 10 hours at 16 areas; this enumerator handles ~12 in seconds.
  int32_t max_areas = 12;
};

/// An optimal EMP solution found by exhaustive search.
struct ExactSolution {
  int32_t p = 0;
  /// Compacted region ids, -1 = unassigned.
  std::vector<int32_t> region_of;
  double heterogeneity = 0.0;
  /// Complete assignments evaluated (search-effort telemetry).
  int64_t assignments_evaluated = 0;
  /// kConverged when the enumeration completed — the solution is provably
  /// optimal. Any other value means the search was cut short and the
  /// result is only the best assignment seen so far (no optimality claim).
  TerminationReason termination = TerminationReason::kConverged;
};

/// Finds a provably optimal EMP solution by enumerating all assignments:
/// maximizes p first, then minimizes heterogeneity H(P), under the exact
/// EMP semantics (contiguous disjoint regions, every constraint satisfied,
/// unassigned areas allowed). Intended for validating heuristics on tiny
/// instances (see the paper's §I MIP experiment); returns
/// kInvalidArgument above options.max_areas and kInfeasible when not even
/// p = 0 helps (never — p = 0 with everything unassigned is always legal;
/// by convention we report kInfeasible when no single region can exist).
///
/// `supervisor` (optional) is polled at every search node; a trip unwinds
/// the recursion and returns the incumbent with its termination verdict
/// (an interrupted p = 0 outcome is returned as such rather than as
/// kInfeasible, since the search did not finish proving infeasibility).
Result<ExactSolution> SolveExact(const AreaSet& areas,
                                 const std::vector<Constraint>& constraints,
                                 const ExactOptions& options = {},
                                 PhaseSupervisor* supervisor = nullptr);

}  // namespace emp

#endif  // EMP_CORE_EXACT_H_
