#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/str_util.h"

namespace emp {

double GiniCoefficient(std::vector<double> values) {
  if (values.size() < 2) return 0.0;
  std::sort(values.begin(), values.end());
  double cum_weighted = 0.0;
  double total = 0.0;
  const double n = static_cast<double>(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    cum_weighted += (static_cast<double>(i) + 1.0) * values[i];
    total += values[i];
  }
  if (total <= 0.0) return 0.0;
  return (2.0 * cum_weighted) / (n * total) - (n + 1.0) / n;
}

Result<double> RegionCompactness(const AreaSet& areas,
                                 const std::vector<int32_t>& members) {
  if (!areas.has_geometry()) {
    return Status::FailedPrecondition(
        "RegionCompactness requires polygon geometry");
  }
  if (members.empty()) {
    return Status::InvalidArgument("empty region");
  }
  std::vector<char> in(static_cast<size_t>(areas.num_areas()), 0);
  for (int32_t a : members) in[static_cast<size_t>(a)] = 1;

  double total_area = 0.0;
  double perimeter = 0.0;
  for (int32_t a : members) {
    total_area += areas.polygon(a).Area();
    perimeter += areas.polygon(a).Perimeter();
    for (int32_t nb : areas.graph().NeighborsOf(a)) {
      if (in[static_cast<size_t>(nb)]) {
        // Each internal border is visited from both sides; subtracting the
        // full shared length once per side removes 2L in total.
        perimeter -= SharedBorderLength(areas.polygon(a), areas.polygon(nb));
      }
    }
  }
  if (perimeter <= 0.0) {
    return Status::Internal("degenerate region perimeter");
  }
  constexpr double kPi = 3.14159265358979323846;
  return 4.0 * kPi * total_area / (perimeter * perimeter);
}

Result<SolutionMetrics> ComputeMetrics(const AreaSet& areas,
                                       const Solution& solution) {
  SolutionMetrics m;
  m.p = solution.p();
  m.unassigned = solution.num_unassigned();
  m.unassigned_fraction =
      areas.num_areas() > 0
          ? static_cast<double>(m.unassigned) / areas.num_areas()
          : 0.0;
  m.heterogeneity = solution.heterogeneity;

  if (!solution.regions.empty()) {
    std::vector<double> sizes;
    sizes.reserve(solution.regions.size());
    int64_t total = 0;
    m.min_region_size = std::numeric_limits<int32_t>::max();
    for (const auto& region : solution.regions) {
      int32_t size = static_cast<int32_t>(region.size());
      sizes.push_back(size);
      total += size;
      m.min_region_size = std::min(m.min_region_size, size);
      m.max_region_size = std::max(m.max_region_size, size);
    }
    m.mean_region_size =
        static_cast<double>(total) / static_cast<double>(sizes.size());
    m.size_gini = GiniCoefficient(std::move(sizes));
  } else {
    m.min_region_size = 0;
  }

  if (areas.has_geometry() && !solution.regions.empty()) {
    double sum = 0.0;
    for (const auto& region : solution.regions) {
      EMP_ASSIGN_OR_RETURN(double q, RegionCompactness(areas, region));
      sum += q;
    }
    m.mean_compactness = sum / static_cast<double>(solution.regions.size());
  }
  return m;
}

std::string SolutionMetrics::ToString() const {
  std::string out;
  out += "p=" + std::to_string(p) +
         " unassigned=" + std::to_string(unassigned) + " (" +
         FormatDouble(unassigned_fraction * 100.0, 1) + "%)\n";
  out += "region size: min=" + std::to_string(min_region_size) +
         " mean=" + FormatDouble(mean_region_size, 2) +
         " max=" + std::to_string(max_region_size) +
         " gini=" + FormatDouble(size_gini, 3) + "\n";
  out += "compactness (mean IPQ)=" + FormatDouble(mean_compactness, 3) +
         " heterogeneity=" + FormatDouble(heterogeneity, 1);
  return out;
}

}  // namespace emp
