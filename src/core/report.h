#ifndef EMP_CORE_REPORT_H_
#define EMP_CORE_REPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"
#include "core/solution.h"
#include "data/area_set.h"

namespace emp {

/// Serializes a solution as a self-contained JSON report: the query, the
/// headline numbers (p, U0, heterogeneity, timings), feasibility
/// diagnostics, solution metrics, and — per region — the member area ids
/// plus each constraint's actual aggregate value. Built for downstream
/// analysis notebooks and archival of experiment outputs.
Result<std::string> SolutionToJson(const AreaSet& areas,
                                   const std::vector<Constraint>& constraints,
                                   const Solution& solution);

}  // namespace emp

#endif  // EMP_CORE_REPORT_H_
