#include "core/portfolio.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/stopwatch.h"
#include "core/fact_solver.h"
#include "core/local_search/tabu.h"
#include "core/partition.h"
#include "graph/connectivity.h"
#include "obs/curve.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace emp {

bool BeatsInReduction(const ReplicaScore& a, const ReplicaScore& b) {
  if (a.p != b.p) return a.p > b.p;
  if (a.heterogeneity != b.heterogeneity) {
    return a.heterogeneity < b.heterogeneity;
  }
  return a.replica < b.replica;
}

namespace {

/// Seed stride between replicas. Distinct from the two constants the
/// construction phase uses to derive (iteration, attempt) streams, so
/// replica streams never collide with intra-replica ones. Replica 0 keeps
/// the base seed: a 1-replica portfolio explores the same constructions
/// as a plain solve.
constexpr uint64_t kReplicaSeedStride = 0xA24BAED4963EE407ULL;

/// Lock-guarded best-constructed-p shared by all replicas. Consulted for
/// the local-search cutoff: a replica strictly below the incumbent p can
/// never win the reduction (which orders by p first), so skipping its
/// tabu phase changes how much work runs, never which solution returns.
struct Incumbent {
  std::mutex mu;
  int32_t best_p = -1;
  int32_t best_replica = std::numeric_limits<int32_t>::max();
};

struct ReplicaOutcome {
  bool started = false;
  bool tabu_skipped = false;
  Status status = Status::OK();
  std::optional<Solution> solution;
};

/// Rebuilds a construction partition from a solution's assignment so the
/// local-search phase can continue where the replica's construction-only
/// solve left off.
void RebuildPartition(const Solution& solution, Partition* partition) {
  for (int32_t a : solution.feasibility.invalid_areas) {
    partition->Deactivate(a);
  }
  for (const std::vector<int32_t>& members : solution.regions) {
    const int32_t rid = partition->CreateRegion();
    for (int32_t a : members) partition->Assign(a, rid);
  }
}

}  // namespace

PortfolioSolver::PortfolioSolver(const AreaSet* areas,
                                 std::vector<Constraint> constraints,
                                 SolverOptions options)
    : areas_(areas),
      constraints_(std::move(constraints)),
      options_(options) {}

Result<PortfolioSolver> PortfolioSolver::Create(
    const AreaSet* areas, std::vector<Constraint> constraints,
    SolverOptions options) {
  EMP_RETURN_IF_ERROR(ValidateSolverOptions(options));
  if (areas == nullptr) {
    return Status::InvalidArgument("PortfolioSolver: null area set");
  }
  Result<BoundConstraints> bound = BoundConstraints::Create(areas, constraints);
  if (!bound.ok()) return bound.status();
  return PortfolioSolver(areas, std::move(constraints), options);
}

Result<Solution> PortfolioSolver::Solve() {
  return Solve(MakeRunContext(options_));
}

Result<Solution> PortfolioSolver::Solve(const RunContext& ctx) {
  EMP_RETURN_IF_ERROR(ValidateSolverOptions(options_));
  if (areas_ == nullptr) {
    return Status::InvalidArgument("PortfolioSolver: null area set");
  }
  // Surface malformed constraints here, before any thread spawns; each
  // replica rebuilds its own bound (cheap, pointers into areas_).
  EMP_RETURN_IF_ERROR(BoundConstraints::Create(areas_, constraints_).status());

  const int32_t replicas = options_.portfolio_replicas;
  const int threads = std::max(
      1, std::min(options_.portfolio_threads, static_cast<int>(replicas)));

  Stopwatch portfolio_timer;
  obs::ScopedSpan portfolio_span(ctx.trace, "portfolio");

  obs::ProgressBoard* board = ctx.progress_board;
  obs::RunJournal* journal = ctx.journal;
  if (board != nullptr) {
    board->SetBudgets(options_.time_budget_ms, options_.max_evaluations);
    board->SetPhase("portfolio");
    board->SetReplicaCount(replicas);
  }
  if (journal != nullptr) {
    journal->Append("phase_begin", [&](JsonWriter& w) {
      w.Key("phase");
      w.String("portfolio");
      w.Key("replicas");
      w.Int(replicas);
      w.Key("threads");
      w.Int(threads);
    });
  }

  Incumbent incumbent;
  std::atomic<bool> stop_new_replicas{false};
  std::atomic<int32_t> replicas_improved{0};
  std::vector<CancellationToken> replica_tokens(
      static_cast<size_t>(replicas));
  std::vector<ReplicaOutcome> outcomes(static_cast<size_t>(replicas));

  auto run_replica = [&](int32_t replica) {
    ReplicaOutcome& out = outcomes[static_cast<size_t>(replica)];
    out.started = true;
    obs::ScopedSpan replica_span(ctx.trace, "portfolio.replica",
                                 /*worker=*/replica);
    if (board != nullptr) {
      board->SetReplicaState(replica, obs::ReplicaState::kConstructing);
    }

    // Replicas are single-threaded internally (the solve's parallelism
    // budget is portfolio_threads) and never re-enter the portfolio.
    // Local search is run below, after the incumbent consult.
    SolverOptions replica_options = options_;
    replica_options.seed =
        options_.seed + kReplicaSeedStride * static_cast<uint64_t>(replica);
    replica_options.portfolio_replicas = 1;
    replica_options.construction_threads = 1;
    replica_options.run_local_search = false;

    // Child supervision context: shares the caller's deadline, evaluation
    // budget (same counter), and telemetry sinks, but owns its
    // cancellation token so this replica can be cancelled individually.
    // The caller's token (and fault hook) stay visible through the hook,
    // which PhaseSupervisor polls at every checkpoint.
    RunContext child;
    child.deadline = ctx.deadline;
    child.cancel = replica_tokens[static_cast<size_t>(replica)];
    child.max_evaluations = ctx.max_evaluations;
    child.evaluations_spent = ctx.evaluations_spent;
    child.metrics = ctx.metrics;
    child.trace = ctx.trace;
    child.progress = ctx.progress;
    // progress_board and journal deliberately stay null on the child:
    // whole-run fields (phase, best_p, run_start/run_end) belong to the
    // portfolio's caller, and N replicas publishing them concurrently
    // would interleave nondeterministically. Replicas surface through
    // SetReplicaState / the post-join `replica` journal records instead.
    CancellationToken parent_cancel = ctx.cancel;
    auto parent_hook = ctx.fault_hook;
    child.fault_hook = [parent_cancel, parent_hook](
                           const SupervisionCheckpoint& checkpoint)
        -> std::optional<TerminationReason> {
      if (parent_cancel.cancelled()) return TerminationReason::kCancelled;
      if (parent_hook) return parent_hook(checkpoint);
      return std::nullopt;
    };

    FactSolver solver(areas_, constraints_, replica_options);
    Result<Solution> constructed = solver.SolveSinglePass(child);
    if (!constructed.ok()) {
      out.status = constructed.status();
      return;
    }
    out.solution = std::move(constructed).value();
    Solution& solution = *out.solution;
    const int32_t p = solution.p();

    // Publish the constructed p, then consult: p never changes in local
    // search, so the incumbent is final as far as the reduction's primary
    // key is concerned.
    int32_t incumbent_p;
    {
      std::lock_guard<std::mutex> lock(incumbent.mu);
      if (p > incumbent.best_p ||
          (p == incumbent.best_p && replica < incumbent.best_replica)) {
        if (p > incumbent.best_p) {
          replicas_improved.fetch_add(1, std::memory_order_relaxed);
        }
        incumbent.best_p = p;
        incumbent.best_replica = replica;
      }
      incumbent_p = incumbent.best_p;
      if (board != nullptr) {
        // Under the incumbent lock so concurrent replicas publish the
        // board's best_p in incumbent order (never a stale lower value
        // last).
        board->SetBestP(incumbent_p);
        board->SetReplicaState(replica, obs::ReplicaState::kConstructing, p);
      }
      if (ctx.curve != nullptr && incumbent_p == p) {
        // Same ordering argument as the board: recording under the lock
        // keeps the anytime curve's best_p monotone across replicas. The
        // child contexts deliberately do not carry the curve pointer.
        ctx.curve->OnBestP(incumbent_p, ctx.evaluations());
      }
    }
    if (options_.portfolio_target_p >= 0 &&
        incumbent_p >= options_.portfolio_target_p &&
        !stop_new_replicas.exchange(true, std::memory_order_relaxed)) {
      // Target reached: stop handing out replicas and cancel in-flight
      // stragglers at their next checkpoint. This replica skips its own
      // local search too — the target is a "good enough, return now" bar.
      for (int32_t other = 0; other < replicas; ++other) {
        if (other != replica) {
          replica_tokens[static_cast<size_t>(other)].Cancel();
        }
      }
    }

    if (!options_.run_local_search || p <= 0) return;
    if (solution.termination_reason != TerminationReason::kConverged) {
      return;  // Degraded construction: its partial competes as-is.
    }
    if (stop_new_replicas.load(std::memory_order_relaxed)) return;
    if (options_.portfolio_share_incumbent && p < incumbent_p) {
      // Provably losing on p; heterogeneity polish cannot change that.
      out.tabu_skipped = true;
      return;
    }

    Result<BoundConstraints> bound =
        BoundConstraints::Create(areas_, constraints_);
    if (!bound.ok()) {
      out.status = bound.status();
      return;
    }
    if (board != nullptr) {
      board->SetReplicaState(replica, obs::ReplicaState::kLocalSearch);
    }
    Partition partition(&*bound);
    RebuildPartition(solution, &partition);
    ConnectivityChecker connectivity(&areas_->graph());
    Stopwatch tabu_timer;
    obs::ScopedSpan tabu_span(ctx.trace, "tabu", /*worker=*/replica);
    PhaseSupervisor supervisor(&child, "tabu", /*worker=*/replica);
    Result<TabuResult> tabu =
        TabuSearch(replica_options, &connectivity, &partition,
                   /*objective=*/nullptr, &supervisor);
    if (!tabu.ok()) {
      out.status = tabu.status();
      return;
    }
    solution.tabu_result = std::move(tabu).value();
    solution.local_search_seconds = tabu_timer.ElapsedSeconds();
    solution.heterogeneity = solution.tabu_result.final_heterogeneity;
    if (solution.termination_reason == TerminationReason::kConverged) {
      solution.termination_reason = solution.tabu_result.termination;
    }
    FillAssignmentFromPartition(partition, &solution);
  };

  // Ticket-counter worker pool, same shape as the construction pool:
  // `threads` workers (this thread included) pull replica ids from a
  // shared counter; outcomes land in pre-sized slots, so the only
  // synchronization is the counter, the incumbent lock, and the joins.
  std::atomic<int32_t> next_replica{0};
  std::atomic<int32_t> replicas_finished{0};
  auto finish_replica = [&](int32_t replica) {
    const int32_t finished =
        replicas_finished.fetch_add(1, std::memory_order_relaxed) + 1;
    if (board == nullptr) return;
    const ReplicaOutcome& out = outcomes[static_cast<size_t>(replica)];
    obs::ReplicaState state = obs::ReplicaState::kDone;
    if (out.tabu_skipped) {
      state = obs::ReplicaState::kSkipped;
    } else if (out.solution.has_value() &&
               out.solution->termination_reason ==
                   TerminationReason::kCancelled) {
      state = obs::ReplicaState::kCancelled;
    }
    board->SetReplicaState(
        replica, state,
        out.solution.has_value() ? out.solution->p() : -1);
    // One board publish per finished replica doubles as the portfolio's
    // checkpoint/evaluations feed (replica children run without a board).
    board->OnCheckpoint("portfolio", finished, ctx.evaluations());
    board->SetWork(finished, replicas);
  };
  auto drain = [&]() {
    int32_t replica;
    while (!stop_new_replicas.load(std::memory_order_relaxed) &&
           (replica = next_replica.fetch_add(
                1, std::memory_order_relaxed)) < replicas) {
      run_replica(replica);
      finish_replica(replica);
    }
  };
  if (threads <= 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads - 1));
    for (int t = 1; t < threads; ++t) pool.emplace_back(drain);
    drain();
    for (std::thread& worker : pool) worker.join();
  }

  // Deterministic reduction. Errors first, by replica index, so a failing
  // portfolio reports the same error at any thread count.
  for (const ReplicaOutcome& out : outcomes) {
    EMP_RETURN_IF_ERROR(out.status);
  }
  int32_t winner = -1;
  ReplicaScore best;
  for (int32_t replica = 0; replica < replicas; ++replica) {
    const ReplicaOutcome& out = outcomes[static_cast<size_t>(replica)];
    if (!out.solution.has_value()) continue;
    ReplicaScore score{out.solution->p(), out.solution->heterogeneity,
                       replica};
    if (winner < 0 || BeatsInReduction(score, best)) {
      winner = replica;
      best = score;
    }
  }
  if (winner < 0) {
    return Status::Internal("PortfolioSolver: no replica produced a result");
  }

  stats_ = PortfolioStats{};
  stats_.replicas = replicas;
  stats_.winning_replica = winner;
  stats_.threads = threads;
  stats_.replica_p.assign(static_cast<size_t>(replicas), -1);
  for (int32_t replica = 0; replica < replicas; ++replica) {
    const ReplicaOutcome& out = outcomes[static_cast<size_t>(replica)];
    if (!out.started) continue;
    ++stats_.replicas_started;
    if (out.tabu_skipped) ++stats_.tabu_skipped;
    if (out.solution.has_value()) {
      stats_.replica_p[static_cast<size_t>(replica)] = out.solution->p();
      if (out.solution->termination_reason == TerminationReason::kCancelled) {
        ++stats_.replicas_cancelled;
      }
    }
  }

  if (journal != nullptr) {
    // One record per replica, in replica order (post-join, so the journal
    // is identical at any thread count), then the portfolio summary.
    for (int32_t replica = 0; replica < replicas; ++replica) {
      const ReplicaOutcome& out = outcomes[static_cast<size_t>(replica)];
      journal->Append("replica", [&](JsonWriter& w) {
        w.Key("replica");
        w.Int(replica);
        w.Key("started");
        w.Bool(out.started);
        w.Key("tabu_skipped");
        w.Bool(out.tabu_skipped);
        if (out.solution.has_value()) {
          w.Key("p");
          w.Int(out.solution->p());
          w.Key("heterogeneity");
          w.Double(out.solution->heterogeneity);
          w.Key("termination");
          w.String(TerminationReasonName(out.solution->termination_reason));
        }
      });
    }
    journal->Append("phase_end", [&](JsonWriter& w) {
      w.Key("phase");
      w.String("portfolio");
      w.Key("seconds");
      w.Double(portfolio_timer.ElapsedSeconds());
      w.Key("winning_replica");
      w.Int(winner);
      w.Key("best_p");
      w.Int(best.p);
    });
  }

  if (obs::MetricRegistry* metrics = ctx.metrics; metrics != nullptr) {
    metrics->GetCounter("emp_portfolio_replicas_started_total")
        ->Add(stats_.replicas_started);
    metrics->GetCounter("emp_portfolio_replicas_cancelled_total")
        ->Add(stats_.replicas_cancelled);
    metrics->GetCounter("emp_portfolio_replicas_improved_total")
        ->Add(replicas_improved.load(std::memory_order_relaxed));
    metrics->GetCounter("emp_portfolio_tabu_skipped_total")
        ->Add(stats_.tabu_skipped);
    obs::Histogram* replica_p = metrics->GetHistogram(
        "emp_portfolio_replica_p",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0});
    for (int32_t p : stats_.replica_p) {
      if (p >= 0) replica_p->Observe(static_cast<double>(p));
    }
    metrics->GetGauge("emp_portfolio_threads")->Set(threads);
    metrics->GetGauge("emp_portfolio_best_replica")->Set(winner);
    metrics->GetGauge("emp_portfolio_best_p")->Set(best.p);
    metrics->GetGauge("emp_portfolio_seconds")
        ->Set(portfolio_timer.ElapsedSeconds());
  }

  return std::move(*outcomes[static_cast<size_t>(winner)].solution);
}

}  // namespace emp
