#include "core/validate.h"

#include <cstdint>
#include <map>

#include "common/csv.h"
#include "common/str_util.h"
#include "constraints/constraint_set.h"
#include "constraints/region_stats.h"
#include "graph/connectivity.h"

namespace emp {

std::string ValidationReport::ToString() const {
  std::string out = valid ? "VALID" : "INVALID";
  out += ": p=" + std::to_string(p) +
         " unassigned=" + std::to_string(unassigned);
  for (const std::string& v : violations) {
    out += "\n  - " + v;
  }
  return out;
}

Result<ValidationReport> ValidateAssignment(
    const AreaSet& areas, const std::vector<Constraint>& constraints,
    const std::vector<int32_t>& region_of) {
  if (static_cast<int32_t>(region_of.size()) != areas.num_areas()) {
    return Status::InvalidArgument(
        "assignment size (" + std::to_string(region_of.size()) +
        ") != number of areas (" + std::to_string(areas.num_areas()) + ")");
  }
  EMP_ASSIGN_OR_RETURN(BoundConstraints bound,
                       BoundConstraints::Create(&areas, constraints));

  ValidationReport report;
  std::map<int32_t, std::vector<int32_t>> regions;
  for (int32_t a = 0; a < areas.num_areas(); ++a) {
    const int32_t rid = region_of[static_cast<size_t>(a)];
    if (rid == -1) {
      ++report.unassigned;
      continue;
    }
    if (rid < -1) {
      report.valid = false;
      report.violations.push_back("area " + std::to_string(a) +
                                  " has malformed region id " +
                                  std::to_string(rid));
      continue;
    }
    regions[rid].push_back(a);
  }
  report.p = static_cast<int32_t>(regions.size());

  ConnectivityChecker connectivity(&areas.graph());
  for (const auto& [rid, members] : regions) {
    if (!connectivity.IsConnected(members)) {
      report.valid = false;
      report.violations.push_back("region " + std::to_string(rid) +
                                  " is not spatially contiguous");
    }
    RegionStats stats(&bound);
    for (int32_t a : members) stats.Add(a);
    for (int ci = 0; ci < bound.size(); ++ci) {
      if (!bound.constraint(ci).Contains(stats.AggregateValue(ci))) {
        report.valid = false;
        report.violations.push_back(
            "region " + std::to_string(rid) + " violates " +
            bound.constraint(ci).ToString() + " (actual " +
            FormatDouble(stats.AggregateValue(ci), 3) + ")");
      }
    }
  }
  return report;
}

Result<std::vector<int32_t>> AssignmentFromCsv(const std::string& csv_text,
                                               int32_t num_areas) {
  EMP_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(csv_text));
  const int area_col = table.ColumnIndex("area_id");
  const int region_col = table.ColumnIndex("region_id");
  if (area_col < 0 || region_col < 0) {
    return Status::IOError(
        "assignment CSV needs 'area_id' and 'region_id' columns");
  }
  std::vector<int32_t> out(static_cast<size_t>(num_areas), -1);
  std::vector<char> seen(static_cast<size_t>(num_areas), 0);
  for (const auto& row : table.rows) {
    EMP_ASSIGN_OR_RETURN(int64_t area,
                         ParseInt64(row[static_cast<size_t>(area_col)]));
    EMP_ASSIGN_OR_RETURN(int64_t region,
                         ParseInt64(row[static_cast<size_t>(region_col)]));
    if (area < 0 || area >= num_areas) {
      return Status::IOError("area id out of range: " +
                             std::to_string(area));
    }
    if (seen[static_cast<size_t>(area)]) {
      return Status::IOError("duplicate area id: " + std::to_string(area));
    }
    seen[static_cast<size_t>(area)] = 1;
    // Region ids come from an untrusted CSV; a blind int32 cast would
    // silently truncate values past 2^31 into valid-looking ids.
    if (region < -1 || region > INT32_MAX) {
      return Status::IOError("region id out of range: " +
                             std::to_string(region));
    }
    out[static_cast<size_t>(area)] = static_cast<int32_t>(region);
  }
  return out;
}

}  // namespace emp
