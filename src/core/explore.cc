#include "core/explore.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"
#include "core/fact_solver.h"

namespace emp {

namespace {

/// Construction-only solver pass; returns nullopt-style flags via the
/// point fields instead of failing on infeasibility.
SweepPoint Evaluate(const AreaSet& areas, std::vector<Constraint> constraints,
                    const Constraint& swept, const SolverOptions& base) {
  SweepPoint point;
  point.constraint = swept;
  SolverOptions options = base;
  options.run_local_search = false;
  auto solution = SolveEmp(areas, std::move(constraints), options);
  if (!solution.ok()) {
    point.feasible = false;
    return point;
  }
  point.feasible = true;
  point.p = solution->p();
  point.unassigned = solution->num_unassigned();
  point.unassigned_fraction =
      areas.num_areas() > 0
          ? static_cast<double>(point.unassigned) / areas.num_areas()
          : 0.0;
  point.construction_seconds = solution->construction_seconds;
  return point;
}

/// Widens one bound of `c` by `factor` (> 1). Lower bounds move toward
/// -inf, upper bounds toward +inf, scaling by magnitude (or shifting by
/// the range length when the bound is near zero).
Constraint Widen(const Constraint& c, SweepBound bound, double factor) {
  Constraint out = c;
  double span = 0.0;
  if (c.lower != kNoLowerBound && c.upper != kNoUpperBound) {
    span = c.upper - c.lower;
  }
  if (bound == SweepBound::kLower && c.lower != kNoLowerBound) {
    double delta = std::max(std::fabs(c.lower) * (factor - 1.0),
                            span * (factor - 1.0));
    if (delta <= 0.0) delta = factor - 1.0;
    out.lower = c.lower - delta;
  }
  if (bound == SweepBound::kUpper && c.upper != kNoUpperBound) {
    double delta = std::max(std::fabs(c.upper) * (factor - 1.0),
                            span * (factor - 1.0));
    if (delta <= 0.0) delta = factor - 1.0;
    out.upper = c.upper + delta;
  }
  return out;
}

}  // namespace

Result<std::vector<SweepPoint>> SweepThreshold(
    const AreaSet& areas, std::vector<Constraint> constraints,
    int constraint_index, SweepBound bound, const std::vector<double>& values,
    const SolverOptions& options) {
  if (constraint_index < 0 ||
      constraint_index >= static_cast<int>(constraints.size())) {
    return Status::InvalidArgument("constraint_index out of range");
  }
  if (values.empty()) {
    return Status::InvalidArgument("sweep needs at least one value");
  }
  std::vector<SweepPoint> out;
  out.reserve(values.size());
  for (double v : values) {
    std::vector<Constraint> query = constraints;
    Constraint& target = query[static_cast<size_t>(constraint_index)];
    if (bound == SweepBound::kLower) {
      target.lower = v;
    } else {
      target.upper = v;
    }
    if (!target.Validate().ok()) {
      SweepPoint bad;
      bad.constraint = target;
      bad.feasible = false;
      out.push_back(bad);
      continue;
    }
    out.push_back(Evaluate(areas, query, target, options));
  }
  return out;
}

std::string RelaxationSuggestion::ToString() const {
  return "relax " + original.ToString() + " -> " + suggested.ToString() +
         ": p " + std::to_string(baseline_p) + " -> " + std::to_string(p) +
         ", unassigned " +
         FormatDouble(baseline_unassigned_fraction * 100.0, 1) + "% -> " +
         FormatDouble(unassigned_fraction * 100.0, 1) + "%";
}

Result<std::vector<RelaxationSuggestion>> SuggestRelaxations(
    const AreaSet& areas, const std::vector<Constraint>& constraints,
    const RelaxOptions& options) {
  if (constraints.empty()) {
    return Status::InvalidArgument("no constraints to relax");
  }

  // Baseline (may be infeasible).
  SweepPoint baseline =
      Evaluate(areas, constraints, constraints.front(), options.solver);

  std::vector<RelaxationSuggestion> suggestions;
  for (int ci = 0; ci < static_cast<int>(constraints.size()); ++ci) {
    const Constraint& original = constraints[static_cast<size_t>(ci)];
    for (SweepBound bound : {SweepBound::kLower, SweepBound::kUpper}) {
      if (bound == SweepBound::kLower && original.lower == kNoLowerBound) {
        continue;
      }
      if (bound == SweepBound::kUpper && original.upper == kNoUpperBound) {
        continue;
      }
      for (double factor : options.widen_factors) {
        Constraint widened = Widen(original, bound, factor);
        if (!widened.Validate().ok()) continue;
        std::vector<Constraint> query = constraints;
        query[static_cast<size_t>(ci)] = widened;
        SweepPoint point = Evaluate(areas, query, widened, options.solver);
        if (!point.feasible) continue;
        const bool restores = !baseline.feasible;
        const double gain =
            baseline.feasible
                ? baseline.unassigned_fraction - point.unassigned_fraction
                : 1.0;
        if (restores || gain >= options.min_unassigned_gain) {
          RelaxationSuggestion s;
          s.constraint_index = ci;
          s.original = original;
          s.suggested = widened;
          s.p = point.p;
          s.unassigned_fraction = point.unassigned_fraction;
          s.baseline_p = baseline.feasible ? baseline.p : 0;
          s.baseline_unassigned_fraction =
              baseline.feasible ? baseline.unassigned_fraction : 1.0;
          suggestions.push_back(std::move(s));
          break;  // Smallest helpful widening per bound is enough.
        }
      }
    }
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [](const RelaxationSuggestion& a, const RelaxationSuggestion& b) {
              return a.unassigned_fraction < b.unassigned_fraction;
            });
  return suggestions;
}

}  // namespace emp
