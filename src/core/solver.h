#ifndef EMP_CORE_SOLVER_H_
#define EMP_CORE_SOLVER_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"
#include "core/run_context.h"
#include "core/solution.h"
#include "core/solver_options.h"

namespace emp {

class AreaSet;

/// The common interface every regionalization solver in this repo
/// implements — FaCT (core/fact_solver.h) and the MP-regions / SKATER
/// baselines (baseline/). Callers that do not care which algorithm runs
/// (the job API, the CLI, the bench harness) hold a Solver and pick the
/// concrete type by name through CreateSolver() below.
///
/// Contract shared by all implementations:
///   - Solve(ctx) runs the whole algorithm under the supervision context:
///     deadline / cancellation / evaluation budget trips degrade into a
///     best-effort Solution tagged with Solution::termination_reason,
///     never an error; kInfeasible / kInvalidArgument remain errors.
///   - Solve() is the unsupervised convenience entry point, equivalent to
///     Solve(MakeRunContext(options())) unless the concrete type documents
///     more (FactSolver's also self-hosts the observability plane when
///     SolverOptions::serve_port >= 0).
///   - constraints() is the canonical constraint set the returned solution
///     satisfies per region — for the single-SUM baselines, the one
///     SUM(attribute) >= threshold constraint — usable directly with
///     SolutionToJson / ValidateAssignment.
class Solver {
 public:
  virtual ~Solver();

  /// Unsupervised solve; default forwards to Solve(MakeRunContext(...)).
  virtual Result<Solution> Solve();

  /// Supervised solve (see class comment for degradation semantics).
  virtual Result<Solution> Solve(const RunContext& ctx) = 0;

  /// The options this solver was created with.
  virtual const SolverOptions& options() const = 0;

  /// Registry key of the concrete algorithm ("fact", "maxp", "skater").
  virtual std::string_view name() const = 0;

  /// Canonical constraint set for validation and reporting.
  virtual const std::vector<Constraint>& constraints() const = 0;
};

/// Everything needed to instantiate any registered solver — the wire-level
/// solve request (the job API's POST /solve body deserializes into one).
/// Which fields matter depends on the solver:
///   - "fact": `constraints` and/or `query` (an S17 constraint-query
///     string, parsed with ParseConstraints and appended to `constraints`);
///   - "maxp" / "skater": `attribute` + `threshold` (single-SUM query).
struct SolverSpec {
  /// Registry key; see RegisteredSolverNames().
  std::string solver = "fact";
  /// The instance; must outlive the created solver. Never owned.
  const AreaSet* areas = nullptr;
  /// Pre-built constraints (FaCT).
  std::vector<Constraint> constraints;
  /// S17 constraint-query text (FaCT); parsed at Create time so malformed
  /// queries fail with the parser's kInvalidArgument message.
  std::string query;
  /// Baseline single-SUM query: SUM(attribute) >= threshold.
  std::string attribute;
  double threshold = -1.0;
  SolverOptions options;
};

/// Builds one solver from a spec. All registered factories validate
/// eagerly (options domain, attribute existence, query syntax), so a bad
/// spec fails HERE with kInvalidArgument / kNotFound — the job API maps
/// that directly to a 400. Unknown `spec.solver` names the known solvers
/// in the error message.
Result<std::unique_ptr<Solver>> CreateSolver(const SolverSpec& spec);

/// One factory in the registry: builds a solver from a spec.
using SolverFactory =
    std::function<Result<std::unique_ptr<Solver>>(const SolverSpec&)>;

/// Registers an additional solver under `name` (e.g. an experimental
/// algorithm in a downstream tool). "fact", "maxp", and "skater" are
/// pre-registered; re-registering an existing name is an error.
/// Thread-safe.
Status RegisterSolver(std::string name, SolverFactory factory);

/// Sorted names of every registered solver.
std::vector<std::string> RegisteredSolverNames();

}  // namespace emp

#endif  // EMP_CORE_SOLVER_H_
