#ifndef EMP_CORE_VALIDATE_H_
#define EMP_CORE_VALIDATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"
#include "data/area_set.h"

namespace emp {

/// Verdict of auditing a region assignment against the EMP semantics.
struct ValidationReport {
  bool valid = true;
  int32_t p = 0;
  int64_t unassigned = 0;
  /// One line per violation: malformed ids, non-contiguous regions,
  /// constraint breaches (with the offending aggregate value).
  std::vector<std::string> violations;

  std::string ToString() const;
};

/// Audits `region_of` (region id per area, -1 = unassigned; ids need not
/// be compact) against the EMP output requirements (§III): every region
/// non-empty, spatially contiguous, and satisfying every constraint.
/// Use cases: checking solutions produced by external tools, regression
/// baselines, or hand-edited assignments before publication. Structural
/// errors (wrong vector size) return a Status error; semantic violations
/// are collected in the report with `valid = false`.
Result<ValidationReport> ValidateAssignment(
    const AreaSet& areas, const std::vector<Constraint>& constraints,
    const std::vector<int32_t>& region_of);

/// Parses an `area_id,region_id` CSV (AssignmentToCsv's format) back into
/// a region_of vector for `num_areas` areas. Missing areas default to -1;
/// duplicate or out-of-range area ids fail.
Result<std::vector<int32_t>> AssignmentFromCsv(const std::string& csv_text,
                                               int32_t num_areas);

}  // namespace emp

#endif  // EMP_CORE_VALIDATE_H_
