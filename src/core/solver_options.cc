#include "core/solver_options.h"

#include <string>

namespace emp {

Status ValidateSolverOptions(const SolverOptions& options) {
  if (options.construction_iterations < 1) {
    return Status::InvalidArgument(
        "SolverOptions.construction_iterations must be >= 1 (got " +
        std::to_string(options.construction_iterations) + ")");
  }
  if (options.construction_retries < 0) {
    return Status::InvalidArgument(
        "SolverOptions.construction_retries must be >= 0 (got " +
        std::to_string(options.construction_retries) + ")");
  }
  if (options.construction_threads < 1) {
    return Status::InvalidArgument(
        "SolverOptions.construction_threads must be >= 1 (got " +
        std::to_string(options.construction_threads) + ")");
  }
  if (options.avg_merge_limit < 0) {
    return Status::InvalidArgument(
        "SolverOptions.avg_merge_limit must be >= 0 (got " +
        std::to_string(options.avg_merge_limit) + ")");
  }
  if (options.tabu_tenure < 0) {
    return Status::InvalidArgument(
        "SolverOptions.tabu_tenure must be >= 0 (got " +
        std::to_string(options.tabu_tenure) + ")");
  }
  if (options.tabu_max_no_improve < -1) {
    return Status::InvalidArgument(
        "SolverOptions.tabu_max_no_improve must be >= -1 (-1 = number of "
        "areas; got " +
        std::to_string(options.tabu_max_no_improve) + ")");
  }
  if (options.tabu_max_iterations < -1) {
    return Status::InvalidArgument(
        "SolverOptions.tabu_max_iterations must be >= -1 (-1 = no cap; "
        "got " +
        std::to_string(options.tabu_max_iterations) + ")");
  }
  if (options.portfolio_replicas < 1) {
    return Status::InvalidArgument(
        "SolverOptions.portfolio_replicas must be >= 1 (got " +
        std::to_string(options.portfolio_replicas) + ")");
  }
  if (options.portfolio_threads < 1) {
    return Status::InvalidArgument(
        "SolverOptions.portfolio_threads must be >= 1 (got " +
        std::to_string(options.portfolio_threads) + ")");
  }
  if (options.portfolio_target_p < -1) {
    return Status::InvalidArgument(
        "SolverOptions.portfolio_target_p must be >= -1 (-1 = disabled; "
        "got " +
        std::to_string(options.portfolio_target_p) + ")");
  }
  if (options.serve_port < -1 || options.serve_port > 65535) {
    return Status::InvalidArgument(
        "SolverOptions.serve_port must be in [-1, 65535] (-1 = disabled, "
        "0 = ephemeral; got " +
        std::to_string(options.serve_port) + ")");
  }
  if (options.time_budget_ms < -1) {
    return Status::InvalidArgument(
        "SolverOptions.time_budget_ms must be >= -1 (-1 = no limit; got " +
        std::to_string(options.time_budget_ms) + ")");
  }
  if (options.max_evaluations < -1) {
    return Status::InvalidArgument(
        "SolverOptions.max_evaluations must be >= -1 (-1 = no limit; got " +
        std::to_string(options.max_evaluations) + ")");
  }
  return Status::OK();
}

RunContext MakeRunContext(const SolverOptions& options) {
  RunContext ctx;
  if (options.time_budget_ms >= 0) {
    ctx.deadline = Deadline::AfterMillis(options.time_budget_ms);
  }
  ctx.max_evaluations = options.max_evaluations;
  return ctx;
}

}  // namespace emp
