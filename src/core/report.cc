#include "core/report.h"

#include "common/json_writer.h"
#include "constraints/constraint_set.h"
#include "constraints/region_stats.h"
#include "core/metrics.h"

namespace emp {

namespace {

/// Numbers with the repo's bound sentinels rendered as "inf"/"-inf"
/// strings (JSON has no infinity literal).
void WriteNumber(JsonWriter* w, double v) {
  if (v == kNoUpperBound) {
    w->String("inf");
  } else if (v == kNoLowerBound) {
    w->String("-inf");
  } else {
    w->Double(v);
  }
}

}  // namespace

Result<std::string> SolutionToJson(const AreaSet& areas,
                                   const std::vector<Constraint>& constraints,
                                   const Solution& solution) {
  EMP_ASSIGN_OR_RETURN(BoundConstraints bound,
                       BoundConstraints::Create(&areas, constraints));
  EMP_ASSIGN_OR_RETURN(SolutionMetrics metrics,
                       ComputeMetrics(areas, solution));

  ReportBuilder report;
  JsonWriter& w = report.writer();
  report.Field("dataset", areas.name())
      .Field("num_areas", static_cast<int64_t>(areas.num_areas()));

  report.Key("query");
  w.BeginInlineArray();
  for (int ci = 0; ci < bound.size(); ++ci) {
    w.String(bound.constraint(ci).ToString());
  }
  w.EndArray();

  report.Field("p", solution.p())
      .Field("unassigned", static_cast<int64_t>(solution.num_unassigned()));
  report.Key("heterogeneity");
  WriteNumber(&w, solution.heterogeneity);
  report.Key("heterogeneity_before_local_search");
  WriteNumber(&w, solution.heterogeneity_before_local_search);
  report.Key("heterogeneity_improvement");
  WriteNumber(&w, solution.HeterogeneityImprovement());
  report.Field("feasibility_seconds", solution.feasibility_seconds)
      .Field("construction_seconds", solution.construction_seconds)
      .Field("local_search_seconds", solution.local_search_seconds)
      .Field("termination_reason",
             TerminationReasonName(solution.termination_reason))
      .Field("completed_construction_iterations",
             static_cast<int64_t>(solution.completed_construction_iterations))
      .Field("size_gini", metrics.size_gini)
      .Field("mean_compactness", metrics.mean_compactness);

  report.Key("feasibility_diagnostics");
  w.BeginInlineArray();
  for (const std::string& diag : solution.feasibility.diagnostics) {
    w.String(diag);
  }
  w.EndArray();

  report.Key("regions");
  w.BeginArray();
  for (size_t rid = 0; rid < solution.regions.size(); ++rid) {
    RegionStats stats(&bound);
    for (int32_t a : solution.regions[rid]) stats.Add(a);
    w.BeginInlineObject();
    w.Key("id");
    w.Int(static_cast<int64_t>(rid));
    w.Key("size");
    w.Int(static_cast<int64_t>(solution.regions[rid].size()));
    w.Key("aggregates");
    w.BeginInlineObject();
    for (int ci = 0; ci < bound.size(); ++ci) {
      const Constraint& c = bound.constraint(ci);
      std::string key(AggregateName(c.aggregate));
      key += "(" + (c.aggregate == Aggregate::kCount ? "*" : c.attribute) +
             ")";
      w.Key(key);
      WriteNumber(&w, stats.AggregateValue(ci));
    }
    w.EndObject();
    w.Key("areas");
    w.BeginInlineArray();
    for (int32_t a : solution.regions[rid]) w.Int(a);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  report.Key("unassigned_areas");
  w.BeginInlineArray();
  for (int32_t a : solution.unassigned) w.Int(a);
  w.EndArray();

  return std::move(report).Finish() + "\n";
}

}  // namespace emp
