#include "core/report.h"

#include "common/str_util.h"
#include "constraints/constraint_set.h"
#include "constraints/region_stats.h"
#include "core/metrics.h"

namespace emp {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (v == kNoUpperBound) return "\"inf\"";
  if (v == kNoLowerBound) return "\"-inf\"";
  return FormatDouble(v, 6);
}

}  // namespace

Result<std::string> SolutionToJson(const AreaSet& areas,
                                   const std::vector<Constraint>& constraints,
                                   const Solution& solution) {
  EMP_ASSIGN_OR_RETURN(BoundConstraints bound,
                       BoundConstraints::Create(&areas, constraints));
  EMP_ASSIGN_OR_RETURN(SolutionMetrics metrics,
                       ComputeMetrics(areas, solution));

  std::string out = "{\n";
  out += "  \"dataset\": \"" + JsonEscape(areas.name()) + "\",\n";
  out += "  \"num_areas\": " + std::to_string(areas.num_areas()) + ",\n";

  out += "  \"query\": [";
  for (int ci = 0; ci < bound.size(); ++ci) {
    if (ci > 0) out += ", ";
    out += "\"" + JsonEscape(bound.constraint(ci).ToString()) + "\"";
  }
  out += "],\n";

  out += "  \"p\": " + std::to_string(solution.p()) + ",\n";
  out += "  \"unassigned\": " + std::to_string(solution.num_unassigned()) +
         ",\n";
  out += "  \"heterogeneity\": " + JsonNumber(solution.heterogeneity) + ",\n";
  out += "  \"heterogeneity_before_local_search\": " +
         JsonNumber(solution.heterogeneity_before_local_search) + ",\n";
  out += "  \"heterogeneity_improvement\": " +
         JsonNumber(solution.HeterogeneityImprovement()) + ",\n";
  out += "  \"feasibility_seconds\": " +
         JsonNumber(solution.feasibility_seconds) + ",\n";
  out += "  \"construction_seconds\": " +
         JsonNumber(solution.construction_seconds) + ",\n";
  out += "  \"local_search_seconds\": " +
         JsonNumber(solution.local_search_seconds) + ",\n";
  out += "  \"termination_reason\": \"";
  out += TerminationReasonName(solution.termination_reason);
  out += "\",\n";
  out += "  \"completed_construction_iterations\": " +
         std::to_string(solution.completed_construction_iterations) + ",\n";
  out += "  \"size_gini\": " + JsonNumber(metrics.size_gini) + ",\n";
  out += "  \"mean_compactness\": " + JsonNumber(metrics.mean_compactness) +
         ",\n";

  out += "  \"feasibility_diagnostics\": [";
  for (size_t i = 0; i < solution.feasibility.diagnostics.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(solution.feasibility.diagnostics[i]) + "\"";
  }
  out += "],\n";

  out += "  \"regions\": [\n";
  for (size_t rid = 0; rid < solution.regions.size(); ++rid) {
    RegionStats stats(&bound);
    for (int32_t a : solution.regions[rid]) stats.Add(a);
    out += "    {\"id\": " + std::to_string(rid) + ", \"size\": " +
           std::to_string(solution.regions[rid].size()) +
           ", \"aggregates\": {";
    for (int ci = 0; ci < bound.size(); ++ci) {
      if (ci > 0) out += ", ";
      const Constraint& c = bound.constraint(ci);
      std::string key(AggregateName(c.aggregate));
      key += "(" + (c.aggregate == Aggregate::kCount ? "*" : c.attribute) +
             ")";
      out += "\"" + JsonEscape(key) +
             "\": " + JsonNumber(stats.AggregateValue(ci));
    }
    out += "}, \"areas\": [";
    for (size_t i = 0; i < solution.regions[rid].size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(solution.regions[rid][i]);
    }
    out += "]}";
    out += rid + 1 < solution.regions.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  out += "  \"unassigned_areas\": [";
  for (size_t i = 0; i < solution.unassigned.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(solution.unassigned[i]);
  }
  out += "]\n}\n";
  return out;
}

}  // namespace emp
