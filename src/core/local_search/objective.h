#ifndef EMP_CORE_LOCAL_SEARCH_OBJECTIVE_H_
#define EMP_CORE_LOCAL_SEARCH_OBJECTIVE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/local_search/heterogeneity.h"
#include "core/partition.h"

namespace emp {

/// Minimization objective evaluated over a partition, with incremental
/// move deltas. The paper's local-search phase optimizes heterogeneity but
/// notes it "can deal with different optimization functions" (§III); this
/// interface is that extension point — Tabu and simulated annealing accept
/// any Objective.
///
/// Contract: MoveDelta/ApplyMove are called BEFORE the corresponding
/// Partition::Move is applied, with (area, from, to) describing the move.
class Objective {
 public:
  virtual ~Objective() = default;

  /// Current objective value (lower is better).
  virtual double total() const = 0;

  /// Exact objective change if `area` moved from region `from` to `to`.
  virtual double MoveDelta(int32_t area, int32_t from, int32_t to) const = 0;

  /// Batched MoveDelta: out[i] = MoveDelta(area, from, tos[i]) for all n
  /// candidate targets of one donor. Implementations may hoist the
  /// donor-side work across the batch, but every delta must stay
  /// bit-identical to the scalar MoveDelta — tabu trajectories are
  /// golden-pinned on that. The default simply loops.
  virtual void MoveDeltas(int32_t area, int32_t from, const int32_t* tos,
                          size_t n, double* out) const {
    for (size_t i = 0; i < n; ++i) out[i] = MoveDelta(area, from, tos[i]);
  }

  /// Records the move in internal state (before the partition mutates).
  virtual void ApplyMove(int32_t area, int32_t from, int32_t to) = 0;

  /// Human-readable objective name for reports.
  virtual std::string name() const = 0;
};

/// The paper's default objective: H(P) = Σ_R Σ_{i<j∈R} |d_i − d_j|.
class HeterogeneityObjective final : public Objective {
 public:
  explicit HeterogeneityObjective(const Partition& partition)
      : tracker_(partition) {}

  double total() const override { return tracker_.total(); }
  double MoveDelta(int32_t area, int32_t from, int32_t to) const override {
    return tracker_.MoveDelta(area, from, to);
  }
  void MoveDeltas(int32_t area, int32_t from, const int32_t* tos, size_t n,
                  double* out) const override {
    tracker_.MoveDeltas(area, from, tos, n, out);
  }
  void ApplyMove(int32_t area, int32_t from, int32_t to) override {
    tracker_.ApplyMove(area, from, to);
  }
  std::string name() const override { return "heterogeneity"; }

 private:
  HeterogeneityTracker tracker_;
};

/// Geometric compactness objective: minimizes the total exterior boundary
/// length Σ_R perimeter(R). Moving an area between adjacent regions
/// changes only borders it shares with its graph neighbors, so deltas are
/// O(degree). Requires polygon geometry on the AreaSet.
class CompactnessObjective final : public Objective {
 public:
  /// Precomputes per-area polygon perimeters and pairwise shared-border
  /// lengths for every contiguity edge. Fails without geometry.
  static Result<std::unique_ptr<CompactnessObjective>> Create(
      const Partition& partition);

  double total() const override { return total_; }
  double MoveDelta(int32_t area, int32_t from, int32_t to) const override;
  void ApplyMove(int32_t area, int32_t from, int32_t to) override;
  std::string name() const override { return "compactness"; }

 private:
  explicit CompactnessObjective(const Partition* partition)
      : partition_(partition) {}

  /// Shared border length between adjacent areas a and b (0 otherwise).
  double SharedLength(int32_t a, int32_t b) const;

  const Partition* partition_;
  std::vector<double> area_perimeter_;
  /// shared_[a] aligned with graph().NeighborsOf(a).
  std::vector<std::vector<double>> shared_;
  double total_ = 0.0;
};

/// Weighted sum of sub-objectives — the multi-objective optimization the
/// paper lists as future work (§VIII). Example: 1.0 × heterogeneity +
/// 500 × compactness trades homogeneity against region shape. Does not
/// own the sub-objectives; the caller keeps them alive. Sub-objectives on
/// different scales should be weighted accordingly (combine with
/// data/transforms.h normalization when building the dissimilarity).
class WeightedObjective final : public Objective {
 public:
  WeightedObjective() = default;

  /// Adds a component with its weight. Weights may be negative (to reward
  /// an objective) but the overall direction must remain "minimize".
  void Add(Objective* objective, double weight) {
    parts_.push_back({objective, weight});
  }

  double total() const override {
    double sum = 0.0;
    for (const auto& [obj, w] : parts_) sum += w * obj->total();
    return sum;
  }
  double MoveDelta(int32_t area, int32_t from, int32_t to) const override {
    double sum = 0.0;
    for (const auto& [obj, w] : parts_) {
      sum += w * obj->MoveDelta(area, from, to);
    }
    return sum;
  }
  void ApplyMove(int32_t area, int32_t from, int32_t to) override {
    for (auto& [obj, w] : parts_) obj->ApplyMove(area, from, to);
  }
  std::string name() const override {
    std::string out = "weighted(";
    for (size_t i = 0; i < parts_.size(); ++i) {
      if (i > 0) out += "+";
      out += parts_[i].first->name();
    }
    return out + ")";
  }

 private:
  std::vector<std::pair<Objective*, double>> parts_;
};

}  // namespace emp

#endif  // EMP_CORE_LOCAL_SEARCH_OBJECTIVE_H_
