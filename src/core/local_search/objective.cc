#include "core/local_search/objective.h"

#include <algorithm>

namespace emp {

Result<std::unique_ptr<CompactnessObjective>> CompactnessObjective::Create(
    const Partition& partition) {
  const AreaSet& areas = partition.bound().areas();
  if (!areas.has_geometry()) {
    return Status::FailedPrecondition(
        "CompactnessObjective requires polygon geometry");
  }
  std::unique_ptr<CompactnessObjective> obj(
      new CompactnessObjective(&partition));
  const ContiguityGraph& graph = areas.graph();
  const int32_t n = graph.num_nodes();

  obj->area_perimeter_.resize(static_cast<size_t>(n));
  obj->shared_.resize(static_cast<size_t>(n));
  for (int32_t a = 0; a < n; ++a) {
    obj->area_perimeter_[static_cast<size_t>(a)] =
        areas.polygon(a).Perimeter();
    const auto& neighbors = graph.NeighborsOf(a);
    auto& row = obj->shared_[static_cast<size_t>(a)];
    row.resize(neighbors.size());
    for (size_t k = 0; k < neighbors.size(); ++k) {
      row[k] = SharedBorderLength(areas.polygon(a),
                                  areas.polygon(neighbors[k]));
    }
  }

  // Total exterior boundary = Σ per-area perimeter over assigned areas
  // − 2 × shared borders internal to a region.
  double total = 0.0;
  for (int32_t a = 0; a < n; ++a) {
    const int32_t rid = partition.RegionOf(a);
    if (rid == -1) continue;
    total += obj->area_perimeter_[static_cast<size_t>(a)];
    const auto& neighbors = graph.NeighborsOf(a);
    for (size_t k = 0; k < neighbors.size(); ++k) {
      if (partition.RegionOf(neighbors[k]) == rid) {
        total -= obj->shared_[static_cast<size_t>(a)][k];
      }
    }
  }
  obj->total_ = total;
  return obj;
}

double CompactnessObjective::SharedLength(int32_t a, int32_t b) const {
  const auto& neighbors =
      partition_->bound().areas().graph().NeighborsOf(a);
  auto it = std::lower_bound(neighbors.begin(), neighbors.end(), b);
  if (it == neighbors.end() || *it != b) return 0.0;
  return shared_[static_cast<size_t>(a)][static_cast<size_t>(
      it - neighbors.begin())];
}

double CompactnessObjective::MoveDelta(int32_t area, int32_t from,
                                       int32_t to) const {
  // Leaving `from` exposes the borders shared with remaining `from`
  // members (+2L each); joining `to` hides borders shared with `to`
  // members (−2L each).
  double delta = 0.0;
  const auto& neighbors =
      partition_->bound().areas().graph().NeighborsOf(area);
  const auto& row = shared_[static_cast<size_t>(area)];
  for (size_t k = 0; k < neighbors.size(); ++k) {
    const int32_t rid = partition_->RegionOf(neighbors[k]);
    if (rid == from) delta += 2.0 * row[k];
    if (rid == to) delta -= 2.0 * row[k];
  }
  return delta;
}

void CompactnessObjective::ApplyMove(int32_t area, int32_t from, int32_t to) {
  total_ += MoveDelta(area, from, to);
}

}  // namespace emp
