#include "core/local_search/tabu.h"

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stopwatch.h"
#include "core/local_search/assignment_snapshot.h"
#include "core/local_search/heterogeneity.h"
#include "core/local_search/move.h"
#include "core/local_search/neighborhood.h"
#include "core/local_search/objective.h"
#include "obs/curve.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace emp {

namespace {

/// Tabu key forbidding `area` to move back into region `region`.
uint64_t TabuKey(int32_t area, int32_t region) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(area)) << 32) |
         static_cast<uint32_t>(region);
}

}  // namespace

Result<TabuResult> TabuSearch(const SolverOptions& options,
                              ConnectivityChecker* connectivity,
                              Partition* partition, Objective* objective,
                              PhaseSupervisor* supervisor) {
  if (connectivity == nullptr || partition == nullptr) {
    return Status::InvalidArgument("TabuSearch: null argument");
  }
  TabuResult result;
  // Default objective: the paper's heterogeneity H(P).
  std::unique_ptr<HeterogeneityObjective> default_objective;
  if (objective == nullptr) {
    default_objective = std::make_unique<HeterogeneityObjective>(*partition);
    objective = default_objective.get();
  }
  Objective& tracker = *objective;
  result.initial_heterogeneity = tracker.total();

  const int64_t max_no_improve =
      options.tabu_max_no_improve >= 0
          ? options.tabu_max_no_improve
          : static_cast<int64_t>(partition->num_areas());
  const bool incremental = options.tabu_engine == TabuEngine::kIncremental;

  double best_total = tracker.total();
  std::vector<int32_t> best_assignment = SnapshotAssignment(*partition);

  std::deque<uint64_t> tabu_order;
  // Value = number of times the key is currently in the queue (a key can
  // re-enter before expiring).
  std::unordered_map<uint64_t, int> tabu_set;
  auto is_tabu = [&](uint64_t key) {
    auto it = tabu_set.find(key);
    return it != tabu_set.end() && it->second > 0;
  };

  int64_t no_improve = 0;

  // Telemetry. Hot-loop counts accumulate in locals (zero atomic traffic
  // inside the search) and flush once at the end; the heterogeneity
  // trajectory is traced as instant events on each incumbent improvement,
  // and iterations are grouped into epoch spans of 256 for the trace view.
  const RunContext* run_ctx =
      supervisor != nullptr ? supervisor->context() : nullptr;
  obs::TraceBuffer* trace = run_ctx != nullptr ? run_ctx->trace : nullptr;
  obs::ProgressBoard* board =
      run_ctx != nullptr ? run_ctx->progress_board : nullptr;
  int64_t tabu_rejected = 0;
  int64_t invalid_rejected = 0;
  constexpr int64_t kEpochIterations = 256;
  std::optional<obs::ScopedSpan> epoch_span;
  Stopwatch search_timer;

  // Neighborhood engine. The incremental engine builds the candidate set
  // once and re-scores only what each move touches; the full-rebuild
  // engine re-scores everything at the top of every iteration. Both feed
  // the same canonical-order selection below.
  TabuNeighborhood neighborhood(partition, objective);
  ArticulationCache cut_cache(partition, connectivity);
  int64_t pending_scored = incremental ? neighborhood.Rebuild() : 0;
  Status verify_failure = Status::OK();

  while (no_improve < max_no_improve &&
         (options.tabu_max_iterations < 0 ||
          result.iterations < options.tabu_max_iterations)) {
    // One checkpoint per iteration; evaluations are charged afterwards,
    // once the scored-candidate count for this iteration is known.
    if (supervisor != nullptr && supervisor->Check(0)) break;
    if (result.iterations % kEpochIterations == 0) {
      if (trace != nullptr) {
        // optional::emplace destroys the previous span (closing it) before
        // opening the next epoch's.
        epoch_span.emplace(trace, "tabu.epoch");
      }
      if (board != nullptr) {
        // Iteration meter at epoch granularity: total is the hard cap when
        // set, -1 (unknown) otherwise.
        board->SetWork(result.iterations, options.tabu_max_iterations);
      }
    }
    ++result.iterations;

    const int64_t scored =
        incremental ? pending_scored : neighborhood.Rebuild();
    pending_scored = 0;
    if (neighborhood.empty()) break;
    result.candidates_scored += scored;
    // Each scored candidate is one objective evaluation against the
    // budget; the trip takes effect at the next iteration's checkpoint.
    if (supervisor != nullptr && supervisor->Check(scored)) break;

    // Take the best admissible candidate in canonical (delta, area, to)
    // order: non-tabu, or tabu but beating the incumbent (aspiration).
    // Validity (constraints + contiguity) is checked lazily in that order
    // because it is the expensive part.
    std::optional<CandidateMove> chosen;
    neighborhood.VisitInOrder([&](const CandidateMove& mv) {
      ++result.moves_tried;
      const bool improves_best = tracker.total() + mv.delta < best_total - 1e-9;
      if (is_tabu(TabuKey(mv.area, mv.to)) && !improves_best) {
        ++tabu_rejected;
        return true;
      }
      if (!MoveSatisfiesConstraints(*partition, mv.area, mv.from, mv.to)) {
        ++invalid_rejected;
        return true;
      }
      bool donor_ok;
      if (incremental) {
        donor_ok = cut_cache.DonorKeepsContiguity(mv.from, mv.area);
        if (options.tabu_verify_connectivity_cache) {
          const bool bfs_ok = connectivity->IsConnectedWithout(
              partition->region(mv.from).areas, mv.area);
          if (bfs_ok != donor_ok) {
            verify_failure = Status::Internal(
                "articulation cache disagrees with BFS for area " +
                std::to_string(mv.area) + " leaving region " +
                std::to_string(mv.from));
            return false;
          }
        }
      } else {
        donor_ok = connectivity->IsConnectedWithout(
            partition->region(mv.from).areas, mv.area);
      }
      if (!donor_ok) {
        ++invalid_rejected;
        return true;
      }
      chosen = mv;
      return false;
    });
    if (!verify_failure.ok()) return verify_failure;
    if (!chosen.has_value()) break;  // No admissible move in the whole
                                     // neighborhood.

    // Apply. Objectives record the move BEFORE the partition mutates.
    const CandidateMove mv = *chosen;
    tracker.ApplyMove(mv.area, mv.from, mv.to);
    partition->Move(mv.area, mv.to);
    cut_cache.Invalidate(mv.from);
    cut_cache.Invalidate(mv.to);
    if (incremental) {
      pending_scored = neighborhood.OnMoveApplied(mv.area, mv.from, mv.to);
    }
    ++result.moves_applied;
    if (options.tabu_record_trajectory) {
      result.trajectory.push_back({mv.area, mv.from, mv.to, mv.delta});
    }
    // Forbid the reverse move for `tenure` iterations.
    uint64_t reverse = TabuKey(mv.area, mv.from);
    tabu_order.push_back(reverse);
    ++tabu_set[reverse];
    while (static_cast<int>(tabu_order.size()) > options.tabu_tenure) {
      --tabu_set[tabu_order.front()];
      tabu_order.pop_front();
    }
    if (tracker.total() < best_total - 1e-9) {
      best_total = tracker.total();
      best_assignment = SnapshotAssignment(*partition);
      ++result.improving_moves;
      no_improve = 0;
      if (trace != nullptr) {
        trace->RecordInstant("tabu.heterogeneity", best_total);
      }
      if (board != nullptr) board->SetHeterogeneity(best_total);
      if (run_ctx != nullptr && run_ctx->curve != nullptr) {
        run_ctx->curve->OnHeterogeneity(best_total, run_ctx->evaluations());
      }
    } else {
      ++no_improve;
    }
  }

  epoch_span.reset();
  RestoreAssignment(best_assignment, partition);
  result.final_heterogeneity = best_total;
  result.cut_cache_hits = cut_cache.hits();
  result.cut_cache_misses = cut_cache.misses();
  if (supervisor != nullptr && supervisor->tripped().has_value()) {
    result.termination = *supervisor->tripped();
  }

  if (obs::MetricRegistry* metrics =
          run_ctx != nullptr ? run_ctx->metrics : nullptr;
      metrics != nullptr) {
    metrics->GetCounter("emp_tabu_iterations_total")->Add(result.iterations);
    metrics->GetCounter("emp_tabu_moves_tried_total")->Add(result.moves_tried);
    metrics->GetCounter("emp_tabu_moves_applied_total")
        ->Add(result.moves_applied);
    metrics->GetCounter("emp_tabu_moves_tabu_rejected_total")
        ->Add(tabu_rejected);
    metrics->GetCounter("emp_tabu_moves_invalid_total")->Add(invalid_rejected);
    metrics->GetCounter("emp_tabu_improving_moves_total")
        ->Add(result.improving_moves);
    metrics->GetCounter("emp_tabu_candidates_rescored_total")
        ->Add(result.candidates_scored);
    metrics->GetCounter("emp_tabu_cut_cache_hits_total")
        ->Add(result.cut_cache_hits);
    metrics->GetCounter("emp_tabu_cut_cache_misses_total")
        ->Add(result.cut_cache_misses);
    metrics->GetGauge("emp_tabu_initial_heterogeneity")
        ->Set(result.initial_heterogeneity);
    metrics->GetGauge("emp_tabu_final_heterogeneity")
        ->Set(result.final_heterogeneity);
    const double elapsed = search_timer.ElapsedSeconds();
    if (elapsed > 0) {
      metrics->GetGauge("emp_tabu_evaluations_per_second")
          ->Set(static_cast<double>(result.candidates_scored) / elapsed);
    }
  }
  return result;
}

}  // namespace emp
