#include "core/local_search/tabu.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stopwatch.h"
#include "core/local_search/heterogeneity.h"
#include "core/local_search/move.h"
#include "core/local_search/objective.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace emp {

namespace {

/// Tabu key forbidding `area` to move back into region `region`.
uint64_t TabuKey(int32_t area, int32_t region) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(area)) << 32) |
         static_cast<uint32_t>(region);
}

struct CandidateMove {
  double delta;
  int32_t area;
  int32_t from;
  int32_t to;
};

/// Snapshot of the raw region assignment.
std::vector<int32_t> SnapshotAssignment(const Partition& partition) {
  std::vector<int32_t> out(static_cast<size_t>(partition.num_areas()));
  for (int32_t a = 0; a < partition.num_areas(); ++a) {
    out[static_cast<size_t>(a)] = partition.RegionOf(a);
  }
  return out;
}

/// Restores a snapshot taken during this search (same region ids alive).
void RestoreAssignment(const std::vector<int32_t>& saved,
                       Partition* partition) {
  for (int32_t a = 0; a < partition->num_areas(); ++a) {
    if (partition->RegionOf(a) != saved[static_cast<size_t>(a)] &&
        partition->RegionOf(a) != -1) {
      partition->Unassign(a);
    }
  }
  for (int32_t a = 0; a < partition->num_areas(); ++a) {
    if (partition->RegionOf(a) == -1 && saved[static_cast<size_t>(a)] != -1) {
      partition->Assign(a, saved[static_cast<size_t>(a)]);
    }
  }
}

}  // namespace

Result<TabuResult> TabuSearch(const SolverOptions& options,
                              ConnectivityChecker* connectivity,
                              Partition* partition, Objective* objective,
                              PhaseSupervisor* supervisor) {
  if (connectivity == nullptr || partition == nullptr) {
    return Status::InvalidArgument("TabuSearch: null argument");
  }
  TabuResult result;
  // Default objective: the paper's heterogeneity H(P).
  std::unique_ptr<HeterogeneityObjective> default_objective;
  if (objective == nullptr) {
    default_objective = std::make_unique<HeterogeneityObjective>(*partition);
    objective = default_objective.get();
  }
  Objective& tracker = *objective;
  result.initial_heterogeneity = tracker.total();

  const int64_t max_no_improve =
      options.tabu_max_no_improve >= 0
          ? options.tabu_max_no_improve
          : static_cast<int64_t>(partition->num_areas());

  double best_total = tracker.total();
  std::vector<int32_t> best_assignment = SnapshotAssignment(*partition);

  std::deque<uint64_t> tabu_order;
  // Value = number of times the key is currently in the queue (a key can
  // re-enter before expiring).
  std::unordered_map<uint64_t, int> tabu_set;
  auto is_tabu = [&](uint64_t key) {
    auto it = tabu_set.find(key);
    return it != tabu_set.end() && it->second > 0;
  };

  std::vector<CandidateMove> candidates;
  int64_t no_improve = 0;

  // Telemetry. Hot-loop counts accumulate in locals (zero atomic traffic
  // inside the search) and flush once at the end; the heterogeneity
  // trajectory is traced as instant events on each incumbent improvement,
  // and iterations are grouped into epoch spans of 256 for the trace view.
  const RunContext* run_ctx =
      supervisor != nullptr ? supervisor->context() : nullptr;
  obs::TraceBuffer* trace = run_ctx != nullptr ? run_ctx->trace : nullptr;
  int64_t moves_tried = 0;
  int64_t tabu_rejected = 0;
  int64_t invalid_rejected = 0;
  int64_t evaluations = 0;
  constexpr int64_t kEpochIterations = 256;
  std::optional<obs::ScopedSpan> epoch_span;
  Stopwatch search_timer;

  while (no_improve < max_no_improve &&
         (options.tabu_max_iterations < 0 ||
          result.iterations < options.tabu_max_iterations)) {
    // One checkpoint per iteration; evaluations are charged afterwards,
    // once the candidate count for this neighborhood is known.
    if (supervisor != nullptr && supervisor->Check(0)) break;
    if (trace != nullptr && result.iterations % kEpochIterations == 0) {
      // optional::emplace destroys the previous span (closing it) before
      // opening the next epoch's.
      epoch_span.emplace(trace, "tabu.epoch");
    }
    ++result.iterations;

    // Enumerate boundary moves and their exact H deltas. Inlined (no
    // per-area allocations): for each area of a donor-capable region,
    // collect its distinct adjacent regions by scanning graph neighbors
    // and deduping against this area's own candidate span.
    candidates.clear();
    const auto& graph = partition->bound().areas().graph();
    for (int32_t rid : partition->AliveRegionIds()) {
      const Region& r = partition->region(rid);
      if (r.size() <= 1) continue;  // Cannot donate.
      for (int32_t area : r.areas) {
        const size_t span_start = candidates.size();
        for (int32_t nb : graph.NeighborsOf(area)) {
          const int32_t to = partition->RegionOf(nb);
          if (to == -1 || to == rid) continue;
          bool dup = false;
          for (size_t i = span_start; i < candidates.size(); ++i) {
            if (candidates[i].to == to) {
              dup = true;
              break;
            }
          }
          if (!dup) {
            candidates.push_back(
                {tracker.MoveDelta(area, rid, to), area, rid, to});
          }
        }
      }
    }
    if (candidates.empty()) break;
    evaluations += static_cast<int64_t>(candidates.size());
    // Each scored candidate is one objective evaluation against the
    // budget; the trip takes effect at the next iteration's checkpoint.
    if (supervisor != nullptr &&
        supervisor->Check(static_cast<int64_t>(candidates.size()))) {
      break;
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const CandidateMove& a, const CandidateMove& b) {
                return a.delta < b.delta;
              });

    // Take the best admissible candidate: non-tabu, or tabu but beating the
    // incumbent (aspiration). Validity (constraints + contiguity) is checked
    // lazily in delta order because it is the expensive part.
    bool applied = false;
    for (const CandidateMove& mv : candidates) {
      ++moves_tried;
      const bool improves_best = tracker.total() + mv.delta < best_total - 1e-9;
      if (is_tabu(TabuKey(mv.area, mv.to)) && !improves_best) {
        ++tabu_rejected;
        continue;
      }
      if (!ConstraintPreservingMove(*partition, connectivity, mv.area,
                                    mv.from, mv.to)) {
        ++invalid_rejected;
        continue;
      }
      // Apply. Objectives record the move BEFORE the partition mutates.
      tracker.ApplyMove(mv.area, mv.from, mv.to);
      partition->Move(mv.area, mv.to);
      ++result.moves_applied;
      // Forbid the reverse move for `tenure` iterations.
      uint64_t reverse = TabuKey(mv.area, mv.from);
      tabu_order.push_back(reverse);
      ++tabu_set[reverse];
      while (static_cast<int>(tabu_order.size()) > options.tabu_tenure) {
        --tabu_set[tabu_order.front()];
        tabu_order.pop_front();
      }
      if (tracker.total() < best_total - 1e-9) {
        best_total = tracker.total();
        best_assignment = SnapshotAssignment(*partition);
        ++result.improving_moves;
        no_improve = 0;
        if (trace != nullptr) {
          trace->RecordInstant("tabu.heterogeneity", best_total);
        }
      } else {
        ++no_improve;
      }
      applied = true;
      break;
    }
    if (!applied) break;  // No admissible move in the whole neighborhood.
  }

  epoch_span.reset();
  RestoreAssignment(best_assignment, partition);
  result.final_heterogeneity = best_total;
  if (supervisor != nullptr && supervisor->tripped().has_value()) {
    result.termination = *supervisor->tripped();
  }

  if (obs::MetricRegistry* metrics =
          run_ctx != nullptr ? run_ctx->metrics : nullptr;
      metrics != nullptr) {
    metrics->GetCounter("emp_tabu_iterations_total")->Add(result.iterations);
    metrics->GetCounter("emp_tabu_moves_tried_total")->Add(moves_tried);
    metrics->GetCounter("emp_tabu_moves_applied_total")
        ->Add(result.moves_applied);
    metrics->GetCounter("emp_tabu_moves_tabu_rejected_total")
        ->Add(tabu_rejected);
    metrics->GetCounter("emp_tabu_moves_invalid_total")->Add(invalid_rejected);
    metrics->GetCounter("emp_tabu_improving_moves_total")
        ->Add(result.improving_moves);
    metrics->GetGauge("emp_tabu_initial_heterogeneity")
        ->Set(result.initial_heterogeneity);
    metrics->GetGauge("emp_tabu_final_heterogeneity")
        ->Set(result.final_heterogeneity);
    const double elapsed = search_timer.ElapsedSeconds();
    if (elapsed > 0) {
      metrics->GetGauge("emp_tabu_evaluations_per_second")
          ->Set(static_cast<double>(evaluations) / elapsed);
    }
  }
  return result;
}

}  // namespace emp
