#ifndef EMP_CORE_LOCAL_SEARCH_TABU_H_
#define EMP_CORE_LOCAL_SEARCH_TABU_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/partition.h"
#include "core/run_context.h"
#include "core/solver_options.h"
#include "graph/connectivity.h"

namespace emp {

/// One applied Tabu move, recorded when
/// SolverOptions::tabu_record_trajectory is set. `delta` is the exact
/// objective change at application time, so two engines agree only if
/// their incremental bookkeeping is bit-identical.
struct TabuMove {
  int32_t area = -1;
  int32_t from = -1;
  int32_t to = -1;
  double delta = 0.0;
};

/// Outcome of the Tabu local-search phase.
struct TabuResult {
  double initial_heterogeneity = 0.0;
  double final_heterogeneity = 0.0;
  int64_t iterations = 0;
  int64_t moves_applied = 0;
  int64_t improving_moves = 0;
  /// Candidates examined by the selection loop (incl. rejected ones).
  int64_t moves_tried = 0;
  /// Objective MoveDelta evaluations performed by the neighborhood engine
  /// — the full neighborhood per iteration under TabuEngine::kFullRebuild,
  /// only the re-scored candidates under kIncremental.
  int64_t candidates_scored = 0;
  /// Donor-contiguity queries answered from the articulation cache /
  /// requiring a Tarjan recomputation (kIncremental only; kFullRebuild
  /// leaves both 0 and pays one BFS per tried candidate instead).
  int64_t cut_cache_hits = 0;
  int64_t cut_cache_misses = 0;

  /// Applied moves in order; filled only under tabu_record_trajectory.
  std::vector<TabuMove> trajectory;

  /// kConverged on a natural stop (no-improve limit / empty neighborhood);
  /// otherwise the supervision verdict that cut the search short. Either
  /// way the best partition found was restored before returning.
  TerminationReason termination = TerminationReason::kConverged;

  /// The paper's reported metric: |H_before − H_after| / H_before
  /// (0 when H_before is 0).
  double ImprovementRatio() const {
    if (initial_heterogeneity <= 0.0) return 0.0;
    double diff = initial_heterogeneity - final_heterogeneity;
    return (diff < 0 ? -diff : diff) / initial_heterogeneity;
  }
};

class Objective;

/// Phase 3 of FaCT (§V-C): Tabu search over single-area moves between
/// adjacent regions. Every move preserves all user-defined constraints in
/// both regions, donor contiguity, and the region count p; worsening moves
/// are allowed to escape local optima, reverse moves are tabu for
/// `options.tabu_tenure` iterations, and a tabu move is still taken when it
/// beats the incumbent (aspiration). Search stops after
/// `options.tabu_max_no_improve` consecutive non-improving moves (default:
/// the number of areas) or when no admissible move exists. The best
/// partition encountered is restored into `partition` before returning.
///
/// Candidates are tried in the canonical (delta, area, to) order, so the
/// move sequence is a pure function of the instance and options —
/// independent of the neighborhood engine (options.tabu_engine): the
/// default incremental engine re-scores only candidates incident to the
/// two regions mutated by each move and answers donor contiguity from a
/// per-region articulation-point cache, while kFullRebuild re-enumerates
/// everything per iteration. Bit-identical trajectories across engines are
/// pinned by tabu_golden_test; see DESIGN.md §8.
///
/// `objective` selects the minimized function; null means the paper's
/// heterogeneity H(P) (the TabuResult fields then really are
/// heterogeneity; with a custom objective they hold that objective's
/// values instead).
///
/// `supervisor` (optional) is polled once per iteration, with one
/// evaluation charged per candidate move scored; a trip stops the search
/// and — like a natural stop — restores the best (always feasible)
/// partition, recording the verdict in TabuResult::termination.
Result<TabuResult> TabuSearch(const SolverOptions& options,
                              ConnectivityChecker* connectivity,
                              Partition* partition,
                              Objective* objective = nullptr,
                              PhaseSupervisor* supervisor = nullptr);

}  // namespace emp

#endif  // EMP_CORE_LOCAL_SEARCH_TABU_H_
