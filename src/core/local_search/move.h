#ifndef EMP_CORE_LOCAL_SEARCH_MOVE_H_
#define EMP_CORE_LOCAL_SEARCH_MOVE_H_

#include <cstdint>

#include "core/partition.h"
#include "graph/connectivity.h"

namespace emp {

/// Constraint half of the local-search admissibility test: moving `area`
/// from region `from` to region `to` must keep both regions feasible under
/// every constraint and must not empty the donor (the local-search phase
/// never changes p, §V-C). Does NOT check donor contiguity — callers pair
/// this with ConnectivityChecker::IsConnectedWithout (the exact BFS) or
/// ArticulationCache::DonorKeepsContiguity (the Tabu fast path).
inline bool MoveSatisfiesConstraints(const Partition& partition,
                                     int32_t area, int32_t from, int32_t to) {
  const Region& donor = partition.region(from);
  if (donor.size() <= 1) return false;
  const Region& receiver = partition.region(to);
  if (!receiver.stats.SatisfiesAllAfterAdd(area)) return false;
  return donor.stats.SatisfiesAllAfterRemove(area);
}

/// Full admissibility test for local-search moves (Tabu and simulated
/// annealing): constraints in both regions plus donor contiguity, checked
/// with one bounded BFS.
inline bool ConstraintPreservingMove(const Partition& partition,
                                     ConnectivityChecker* connectivity,
                                     int32_t area, int32_t from, int32_t to) {
  if (!MoveSatisfiesConstraints(partition, area, from, to)) return false;
  return connectivity->IsConnectedWithout(partition.region(from).areas, area);
}

}  // namespace emp

#endif  // EMP_CORE_LOCAL_SEARCH_MOVE_H_
