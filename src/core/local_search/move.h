#ifndef EMP_CORE_LOCAL_SEARCH_MOVE_H_
#define EMP_CORE_LOCAL_SEARCH_MOVE_H_

#include <cstdint>

#include "core/partition.h"
#include "graph/connectivity.h"

namespace emp {

/// Shared admissibility test for local-search moves (Tabu and simulated
/// annealing): moving `area` from region `from` to region `to` must keep
/// both regions feasible under every constraint, keep the donor
/// contiguous, and must not empty the donor (the local-search phase never
/// changes p, §V-C).
inline bool ConstraintPreservingMove(const Partition& partition,
                                     ConnectivityChecker* connectivity,
                                     int32_t area, int32_t from, int32_t to) {
  const Region& donor = partition.region(from);
  if (donor.size() <= 1) return false;
  const Region& receiver = partition.region(to);
  if (!receiver.stats.SatisfiesAllAfterAdd(area)) return false;
  if (!donor.stats.SatisfiesAllAfterRemove(area)) return false;
  return connectivity->IsConnectedWithout(donor.areas, area);
}

}  // namespace emp

#endif  // EMP_CORE_LOCAL_SEARCH_MOVE_H_
