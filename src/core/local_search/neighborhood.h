#ifndef EMP_CORE_LOCAL_SEARCH_NEIGHBORHOOD_H_
#define EMP_CORE_LOCAL_SEARCH_NEIGHBORHOOD_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/local_search/objective.h"
#include "core/partition.h"
#include "graph/connectivity.h"

namespace emp {

/// One scored boundary move: `area` leaves region `from` for the adjacent
/// region `to`, changing the objective by exactly `delta`.
struct CandidateMove {
  double delta = 0.0;
  int32_t area = -1;
  int32_t from = -1;
  int32_t to = -1;
};

/// Canonical total order on candidates: (delta, area, to) ascending. Every
/// (area, to) pair appears at most once in a neighborhood, so this order is
/// strict — Tabu's move selection is therefore fully deterministic and
/// independent of enumeration order, which is what lets the incremental
/// engine reproduce the full-rebuild engine bit-for-bit.
inline bool CandidateOrderLess(const CandidateMove& a,
                               const CandidateMove& b) {
  if (a.delta != b.delta) return a.delta < b.delta;
  if (a.area != b.area) return a.area < b.area;
  return a.to < b.to;
}

/// Incremental candidate-move set for Tabu search (DESIGN.md §8).
///
/// Maintains, for every assigned area of a donor-capable region (size > 1),
/// the scored moves to each distinct adjacent foreign region. Candidates
/// persist across iterations: after a move `area: from -> to` only the
/// areas whose candidate set or deltas can have changed — the boundary
/// areas of `from` and `to` plus the foreign areas adjacent to either —
/// are re-scored, instead of rebuilding the whole neighborhood.
///
/// Selection runs over a lazy-deletion min-heap keyed by the canonical
/// (delta, area, to) order; re-scoring an area bumps its version, which
/// invalidates its stale heap entries without searching for them.
///
/// Invariants (pinned by neighborhood_test and the golden trajectory test):
///  * after any sequence of OnMoveApplied calls, the live candidate set
///    equals what Rebuild() would produce from scratch, deltas included
///    bit-for-bit (unaffected candidates keep previously computed deltas,
///    which are exact because their two regions' member multisets did not
///    change);
///  * VisitInOrder always yields candidates in canonical order.
class TabuNeighborhood {
 public:
  /// `partition` and `objective` must outlive the neighborhood; the
  /// objective must track the same partition.
  TabuNeighborhood(const Partition* partition, const Objective* objective);

  /// Rebuilds every per-area candidate list and the heap from scratch.
  /// Returns the number of candidates scored (objective evaluations).
  int64_t Rebuild();

  /// Incremental update after `area` moved `from` -> `to` (partition and
  /// objective already mutated). Re-scores only the affected areas and
  /// returns the number of candidates scored.
  int64_t OnMoveApplied(int32_t area, int32_t from, int32_t to);

  /// Number of live candidate moves.
  int64_t live_candidates() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Visits live candidates in canonical order until `visit` returns false
  /// (or the set is exhausted). Visited-but-declined candidates stay in
  /// the structure. `visit` must not mutate the partition or objective;
  /// apply the chosen move after VisitInOrder returns, then call
  /// OnMoveApplied.
  template <typename Visitor>
  void VisitInOrder(Visitor&& visit) {
    popped_.clear();
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapGreater());
      HeapEntry e = heap_.back();
      heap_.pop_back();
      if (!EntryLive(e)) continue;
      popped_.push_back(e);
      CandidateMove mv{e.delta, e.area, partition_->RegionOf(e.area), e.to};
      if (!visit(static_cast<const CandidateMove&>(mv))) break;
    }
    // Put the visited survivors back; entries invalidated meanwhile (none
    // today — visitors cannot mutate) would be dropped here.
    for (const HeapEntry& e : popped_) {
      if (EntryLive(e)) PushEntry(e);
    }
  }

 private:
  /// Heap entry. `version` must match the area's current version for the
  /// entry to be live; re-scoring an area bumps the version, lazily
  /// deleting its old entries.
  struct HeapEntry {
    double delta;
    int32_t area;
    int32_t to;
    uint32_t version;
  };
  /// std::push_heap/pop_heap build a max-heap, so "greater" yields the
  /// canonical minimum at the root.
  struct HeapGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.delta != b.delta) return a.delta > b.delta;
      if (a.area != b.area) return a.area > b.area;
      return a.to > b.to;
    }
  };

  bool EntryLive(const HeapEntry& e) const {
    return area_version_[static_cast<size_t>(e.area)] == e.version;
  }
  void PushEntry(const HeapEntry& e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), HeapGreater());
  }

  /// Recomputes `area`'s candidate list (bumping its version); does not
  /// touch the heap. Returns the number of candidates scored.
  int64_t RescoreArea(int32_t area);

  /// Like RescoreArea, but when `mutated_a/b` name the two regions the
  /// triggering move touched, deltas of candidates with both endpoints
  /// untouched are carried over from the old list (bit-exact) instead of
  /// re-evaluating the objective. Full rescore when mutated_a == -1.
  int64_t RescoreAreaImpl(int32_t area, int32_t mutated_a, int32_t mutated_b);

  /// Pushes `area`'s current candidate list onto the heap.
  void PushAreaEntries(int32_t area);

  /// Drops stale entries by rebuilding the heap from the per-area lists.
  void CompactHeap();

  const Partition* partition_;
  const Objective* objective_;

  /// Per-area candidate state: version + (to, delta) pairs.
  std::vector<uint32_t> area_version_;
  std::vector<std::vector<std::pair<int32_t, double>>> area_targets_;
  std::vector<HeapEntry> heap_;
  int64_t live_ = 0;

  // Epoch-tagged scratch (no clearing between uses; a wrap resets tags).
  std::vector<uint32_t> region_seen_;
  uint32_t region_epoch_ = 0;
  std::vector<uint32_t> area_seen_;
  uint32_t area_epoch_ = 0;
  std::vector<int32_t> affected_;   // reused affected-area buffer
  std::vector<HeapEntry> popped_;   // reused by VisitInOrder
  // Previous target list of the area being rescored (delta reuse).
  std::vector<std::pair<int32_t, double>> old_targets_;
  // Batched-rescore buffers: target regions needing fresh deltas and the
  // deltas from one Objective::MoveDeltas call (reused across rescoring).
  std::vector<int32_t> batch_tos_;
  std::vector<double> batch_deltas_;
};

/// Per-region articulation-point cache for the local-search donor
/// contiguity check (DESIGN.md §8). A Tabu iteration may try many
/// candidates donating from the same region; instead of one BFS per
/// candidate (ConnectivityChecker::IsConnectedWithout), the cache runs
/// Tarjan's articulation-point pass once per (region, mutation) and
/// answers every subsequent query for that region with a binary search.
/// A region's entry is invalidated when the region mutates (the caller
/// invalidates both endpoints of every applied move).
class ArticulationCache {
 public:
  /// Both pointers must outlive the cache.
  ArticulationCache(const Partition* partition,
                    ConnectivityChecker* connectivity);

  /// True iff region `from` stays connected when `area` leaves it —
  /// exactly ConnectivityChecker::IsConnectedWithout(region.areas, area),
  /// including the degenerate cases (<= 2 members always survive; a
  /// disconnected region falls back to the BFS, since removing a node can
  /// reconnect it).
  bool DonorKeepsContiguity(int32_t from, int32_t area);

  /// Marks a region's cached articulation set stale after it mutated.
  void Invalidate(int32_t region_id);

  /// Queries answered from a valid entry / entries recomputed.
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  struct Entry {
    bool valid = false;
    bool connected = true;
    std::vector<int32_t> cuts;  // sorted articulation points
  };

  const Partition* partition_;
  ConnectivityChecker* connectivity_;
  std::vector<Entry> entries_;  // indexed by raw region id
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace emp

#endif  // EMP_CORE_LOCAL_SEARCH_NEIGHBORHOOD_H_
