#include "core/local_search/neighborhood.h"

#include <algorithm>

namespace emp {

namespace {

/// Advances an epoch-tagged scratch array, handling the ~4-billion-call
/// wrap by resetting every tag once.
uint32_t NextEpoch(std::vector<uint32_t>* tags, uint32_t* epoch) {
  ++*epoch;
  if (*epoch == 0) {
    std::fill(tags->begin(), tags->end(), 0);
    *epoch = 1;
  }
  return *epoch;
}

}  // namespace

TabuNeighborhood::TabuNeighborhood(const Partition* partition,
                                   const Objective* objective)
    : partition_(partition), objective_(objective) {
  const size_t n = static_cast<size_t>(partition_->num_areas());
  area_version_.assign(n, 0);
  area_targets_.resize(n);
  area_seen_.assign(n, 0);
  region_seen_.assign(static_cast<size_t>(partition_->NumRegionSlots()), 0);
}

int64_t TabuNeighborhood::RescoreArea(int32_t area) {
  return RescoreAreaImpl(area, /*mutated_a=*/-1, /*mutated_b=*/-1);
}

int64_t TabuNeighborhood::RescoreAreaImpl(int32_t area, int32_t mutated_a,
                                          int32_t mutated_b) {
  auto& targets = area_targets_[static_cast<size_t>(area)];
  live_ -= static_cast<int64_t>(targets.size());
  // In partial mode (mutated_a >= 0) the old list supplies still-valid
  // deltas for targets whose member multiset did not change.
  old_targets_.clear();
  old_targets_.swap(targets);
  ++area_version_[static_cast<size_t>(area)];

  const int32_t from = partition_->RegionOf(area);
  if (from == -1) return 0;
  if (partition_->region(from).size() <= 1) return 0;  // Cannot donate.

  // A candidate's delta depends only on d[area] and the member multisets
  // of its two endpoint regions, so when neither endpoint mutated the old
  // delta is still bit-exact and MoveDelta need not be re-evaluated.
  const bool donor_mutated = from == mutated_a || from == mutated_b;

  // Regions can be created between Rebuild() calls by callers sharing the
  // partition; grow the scratch lazily.
  const size_t slots = static_cast<size_t>(partition_->NumRegionSlots());
  if (region_seen_.size() < slots) region_seen_.resize(slots, 0);

  // Gather the distinct target regions first, carrying over bit-exact
  // deltas for candidates whose endpoints were untouched, then evaluate
  // everything that actually changed in ONE batched objective call — the
  // donor-side work is hoisted across the batch and the target loop walks
  // the SoA arrays without per-candidate virtual dispatch. Appending the
  // batch after the carried-over entries reorders `targets`, which is
  // safe: heap selection uses the canonical (delta, area, to) order, and
  // the old_targets_ lookup keys on the unique `to`.
  const uint32_t epoch = NextEpoch(&region_seen_, &region_epoch_);
  const auto& graph = partition_->bound().areas().graph();
  batch_tos_.clear();
  for (int32_t nb : graph.NeighborsOf(area)) {
    const int32_t to = partition_->RegionOf(nb);
    if (to == -1 || to == from) continue;
    if (region_seen_[static_cast<size_t>(to)] == epoch) continue;
    region_seen_[static_cast<size_t>(to)] = epoch;
    if (mutated_a >= 0 && !donor_mutated && to != mutated_a &&
        to != mutated_b) {
      // Both endpoints untouched: the candidate existed before the move
      // (same donor, same adjacency) with the same delta.
      bool reused = false;
      for (const auto& [old_to, old_delta] : old_targets_) {
        if (old_to == to) {
          targets.emplace_back(to, old_delta);
          reused = true;
          break;
        }
      }
      if (reused) continue;
      // Unreachable under the affected-set proof; evaluate to stay safe.
    }
    batch_tos_.push_back(to);
  }
  const size_t batch = batch_tos_.size();
  if (batch > 0) {
    batch_deltas_.resize(batch);
    objective_->MoveDeltas(area, from, batch_tos_.data(), batch,
                           batch_deltas_.data());
    for (size_t i = 0; i < batch; ++i) {
      targets.emplace_back(batch_tos_[i], batch_deltas_[i]);
    }
  }
  live_ += static_cast<int64_t>(targets.size());
  return static_cast<int64_t>(batch);
}

void TabuNeighborhood::PushAreaEntries(int32_t area) {
  const uint32_t version = area_version_[static_cast<size_t>(area)];
  for (const auto& [to, delta] : area_targets_[static_cast<size_t>(area)]) {
    PushEntry({delta, area, to, version});
  }
}

int64_t TabuNeighborhood::Rebuild() {
  heap_.clear();
  int64_t scored = 0;
  for (int32_t a = 0; a < partition_->num_areas(); ++a) {
    scored += RescoreArea(a);
    const uint32_t version = area_version_[static_cast<size_t>(a)];
    for (const auto& [to, delta] : area_targets_[static_cast<size_t>(a)]) {
      heap_.push_back({delta, a, to, version});
    }
  }
  std::make_heap(heap_.begin(), heap_.end(), HeapGreater());
  return scored;
}

int64_t TabuNeighborhood::OnMoveApplied(int32_t area, int32_t from,
                                        int32_t to) {
  // Affected areas: any area whose candidate set or deltas can have
  // changed. A candidate (a, r_a, t) depends only on d_a plus the member
  // multisets of r_a and t, and on a's adjacency to t — all unchanged
  // unless r_a or t is one of the two mutated regions. Every such
  // candidate belongs to a boundary area of `from`/`to` or to a foreign
  // area adjacent to one of them, and the moved area plus its whole graph
  // neighborhood is contained in that set (the donor keeps >= 1 member
  // adjacent to `area` by the contiguity precondition).
  const uint32_t epoch = NextEpoch(&area_seen_, &area_epoch_);
  affected_.clear();
  auto mark = [&](int32_t a) {
    if (area_seen_[static_cast<size_t>(a)] != epoch) {
      area_seen_[static_cast<size_t>(a)] = epoch;
      affected_.push_back(a);
    }
  };
  const auto& graph = partition_->bound().areas().graph();
  // The moved area and its whole graph neighborhood are re-scored
  // unconditionally — this is implied by the region scans below whenever
  // the donor stayed contiguous, but costs nothing to guarantee.
  mark(area);
  for (int32_t nb : graph.NeighborsOf(area)) {
    if (partition_->RegionOf(nb) != -1) mark(nb);
  }
  for (int32_t rid : {from, to}) {
    for (int32_t member : partition_->region(rid).areas) {
      for (int32_t nb : graph.NeighborsOf(member)) {
        const int32_t nb_region = partition_->RegionOf(nb);
        if (nb_region == -1 || nb_region == rid) continue;
        mark(member);
        mark(nb);
      }
    }
  }
  // A donor shrunk to a single isolated member escapes both scans; its
  // stale candidates must still die, so always rescore it.
  if (partition_->region(from).size() == 1) {
    mark(partition_->region(from).areas.front());
  }

  int64_t scored = 0;
  for (int32_t a : affected_) {
    scored += RescoreAreaImpl(a, from, to);
    PushAreaEntries(a);
  }
  CompactHeap();
  return scored;
}

void TabuNeighborhood::CompactHeap() {
  if (heap_.size() <= 64 ||
      heap_.size() <= 2 * static_cast<size_t>(live_)) {
    return;
  }
  // Every live (area, to) pair sits in the heap exactly once, so dropping
  // the stale entries in place is a full compaction.
  heap_.erase(std::remove_if(
                  heap_.begin(), heap_.end(),
                  [this](const HeapEntry& e) { return !EntryLive(e); }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), HeapGreater());
}

ArticulationCache::ArticulationCache(const Partition* partition,
                                     ConnectivityChecker* connectivity)
    : partition_(partition), connectivity_(connectivity) {
  entries_.resize(static_cast<size_t>(partition_->NumRegionSlots()));
}

bool ArticulationCache::DonorKeepsContiguity(int32_t from, int32_t area) {
  if (static_cast<size_t>(from) >= entries_.size()) {
    entries_.resize(static_cast<size_t>(partition_->NumRegionSlots()));
  }
  Entry& entry = entries_[static_cast<size_t>(from)];
  const std::vector<int32_t>& members = partition_->region(from).areas;
  if (!entry.valid) {
    ++misses_;
    const int32_t components =
        connectivity_->ArticulationPointsInto(members, &entry.cuts);
    entry.connected = components <= 1;
    entry.valid = true;
  } else {
    ++hits_;
  }
  if (!entry.connected) {
    // Degenerate (never reached from Tabu, whose regions stay connected):
    // removing a node CAN reconnect a disconnected region, e.g. when it
    // is an isolated member. Defer to the exact BFS.
    return connectivity_->IsConnectedWithout(members, area);
  }
  if (members.size() <= 2) return true;  // 0 or 1 nodes remain.
  return !std::binary_search(entry.cuts.begin(), entry.cuts.end(), area);
}

void ArticulationCache::Invalidate(int32_t region_id) {
  if (static_cast<size_t>(region_id) < entries_.size()) {
    entries_[static_cast<size_t>(region_id)].valid = false;
  }
}

}  // namespace emp
