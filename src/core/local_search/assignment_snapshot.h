#ifndef EMP_CORE_LOCAL_SEARCH_ASSIGNMENT_SNAPSHOT_H_
#define EMP_CORE_LOCAL_SEARCH_ASSIGNMENT_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "core/partition.h"

namespace emp {

/// Snapshot of the raw area -> region assignment, used by the local-search
/// phases (Tabu and simulated annealing) to remember the best partition
/// seen so it can be restored on return.
inline std::vector<int32_t> SnapshotAssignment(const Partition& partition) {
  std::vector<int32_t> out(static_cast<size_t>(partition.num_areas()));
  for (int32_t a = 0; a < partition.num_areas(); ++a) {
    out[static_cast<size_t>(a)] = partition.RegionOf(a);
  }
  return out;
}

/// Restores a snapshot taken during the same search (the snapshot's region
/// ids must still be alive). Single pass: each diverging area is moved
/// directly to its saved region, so no region is ever transiently emptied
/// and every RegionStats multiset is touched at most once per area.
inline void RestoreAssignment(const std::vector<int32_t>& saved,
                              Partition* partition) {
  for (int32_t a = 0; a < partition->num_areas(); ++a) {
    const int32_t want = saved[static_cast<size_t>(a)];
    const int32_t have = partition->RegionOf(a);
    if (want == have) continue;
    if (have == -1) {
      partition->Assign(a, want);
    } else if (want == -1) {
      partition->Unassign(a);
    } else {
      partition->Move(a, want);
    }
  }
}

}  // namespace emp

#endif  // EMP_CORE_LOCAL_SEARCH_ASSIGNMENT_SNAPSHOT_H_
