#ifndef EMP_CORE_LOCAL_SEARCH_SIMULATED_ANNEALING_H_
#define EMP_CORE_LOCAL_SEARCH_SIMULATED_ANNEALING_H_

#include <cstdint>

#include "common/result.h"
#include "core/partition.h"
#include "core/run_context.h"
#include "graph/connectivity.h"

namespace emp {

class Objective;

/// Tuning knobs for the simulated-annealing alternative to Tabu search.
struct AnnealOptions {
  /// Total move proposals; -1 = 20 × number of areas.
  int64_t iterations = -1;
  /// Starting temperature; -1 = auto-calibrated to the objective scale
  /// (mean |delta| of a small random-move sample).
  double initial_temperature = -1.0;
  /// Geometric cooling factor, in (0, 1). Applied AFTER each evaluated
  /// proposal, so proposal k (0-based) is judged at T0 * cooling^k — the
  /// first proposal sees the starting temperature.
  double cooling = 0.9995;
  uint64_t seed = 42;
};

/// Outcome of an annealing run.
struct AnnealResult {
  double initial_objective = 0.0;
  double final_objective = 0.0;
  /// Proposals actually evaluated (failed candidate samples don't count).
  int64_t proposals = 0;
  int64_t accepted = 0;
  int64_t improving = 0;

  /// kConverged when the full schedule ran; otherwise the supervision
  /// verdict that stopped it early (best partition restored either way).
  TerminationReason termination = TerminationReason::kConverged;

  double ImprovementRatio() const {
    if (initial_objective <= 0.0) return 0.0;
    double diff = initial_objective - final_objective;
    return (diff < 0 ? -diff : diff) / initial_objective;
  }
};

/// Simulated-annealing local search over the same constraint-preserving
/// move space as Tabu (donor keeps contiguity and feasibility, p is
/// constant). Worsening moves are accepted with probability
/// exp(-delta / T) under geometric cooling; the best partition seen is
/// restored on return. `objective` = null minimizes the paper's
/// heterogeneity. Offered as an alternative Phase-3 engine for studying
/// the meta-heuristic choice (DESIGN.md §5).
///
/// `supervisor` (optional) is polled once per proposal (one evaluation
/// each); a trip ends the schedule early with the best partition restored
/// and the verdict in AnnealResult::termination.
Result<AnnealResult> SimulatedAnnealing(const AnnealOptions& options,
                                        ConnectivityChecker* connectivity,
                                        Partition* partition,
                                        Objective* objective = nullptr,
                                        PhaseSupervisor* supervisor = nullptr);

}  // namespace emp

#endif  // EMP_CORE_LOCAL_SEARCH_SIMULATED_ANNEALING_H_
