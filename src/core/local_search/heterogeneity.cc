#include "core/local_search/heterogeneity.h"

#include <algorithm>
#include <cassert>

namespace emp {

void RegionDissimilarity::Add(double d) {
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), d);
  size_t pos = static_cast<size_t>(it - sorted_.begin());
  sorted_.insert(it, d);
  // Rebuild prefix sums from the insertion point.
  prefix_.resize(sorted_.size() + 1);
  for (size_t i = pos; i < sorted_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + sorted_[i];
  }
}

void RegionDissimilarity::Remove(double d) {
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), d);
  assert(it != sorted_.end() && *it == d);
  size_t pos = static_cast<size_t>(it - sorted_.begin());
  sorted_.erase(it);
  prefix_.resize(sorted_.size() + 1);
  for (size_t i = pos; i < sorted_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + sorted_[i];
  }
}

double RegionDissimilarity::ContributionOf(double d) const {
  if (sorted_.empty()) return 0.0;
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), d);
  const size_t less = static_cast<size_t>(it - sorted_.begin());
  const double sum_less = prefix_[less];
  const double sum_total = prefix_[sorted_.size()];
  const size_t geq = sorted_.size() - less;
  return (d * static_cast<double>(less) - sum_less) +
         ((sum_total - sum_less) - d * static_cast<double>(geq));
}

double RegionDissimilarity::TotalPairwise() const {
  double total = 0.0;
  for (size_t j = 0; j < sorted_.size(); ++j) {
    total += sorted_[j] * static_cast<double>(j) - prefix_[j];
  }
  return total;
}

HeterogeneityTracker::HeterogeneityTracker(const Partition& partition) {
  d_ = partition.bound().areas().dissimilarity();
  // Index by raw region id; dead regions get empty structures.
  int32_t max_id = -1;
  for (int32_t rid : partition.AliveRegionIds()) max_id = std::max(max_id, rid);
  regions_.resize(static_cast<size_t>(max_id + 1));
  for (int32_t rid : partition.AliveRegionIds()) {
    RegionDissimilarity& rd = regions_[static_cast<size_t>(rid)];
    for (int32_t area : partition.region(rid).areas) {
      rd.Add(d_[static_cast<size_t>(area)]);
    }
    total_ += rd.TotalPairwise();
  }
}

double HeterogeneityTracker::MoveDelta(int32_t area, int32_t from,
                                       int32_t to) const {
  const double d = d_[static_cast<size_t>(area)];
  // Leaving `from` removes its pairwise terms with remaining members;
  // joining `to` adds terms with every current member.
  return regions_[static_cast<size_t>(to)].ContributionOf(d) -
         regions_[static_cast<size_t>(from)].ContributionOf(d);
}

void HeterogeneityTracker::MoveDeltas(int32_t area, int32_t from,
                                      const int32_t* tos, size_t n,
                                      double* out) const {
  const double d = d_[static_cast<size_t>(area)];
  const double from_contrib =
      regions_[static_cast<size_t>(from)].ContributionOf(d);
  for (size_t i = 0; i < n; ++i) {
    out[i] = regions_[static_cast<size_t>(tos[i])].ContributionOf(d) -
             from_contrib;
  }
}

void HeterogeneityTracker::ApplyMove(int32_t area, int32_t from, int32_t to) {
  total_ += MoveDelta(area, from, to);
  const double d = d_[static_cast<size_t>(area)];
  regions_[static_cast<size_t>(from)].Remove(d);
  regions_[static_cast<size_t>(to)].Add(d);
}

double ComputeHeterogeneity(const Partition& partition) {
  const auto& d = partition.bound().areas().dissimilarity();
  double total = 0.0;
  for (int32_t rid : partition.AliveRegionIds()) {
    const auto& areas = partition.region(rid).areas;
    for (size_t i = 0; i < areas.size(); ++i) {
      for (size_t j = i + 1; j < areas.size(); ++j) {
        double diff = d[static_cast<size_t>(areas[i])] -
                      d[static_cast<size_t>(areas[j])];
        total += diff < 0 ? -diff : diff;
      }
    }
  }
  return total;
}

}  // namespace emp
