#ifndef EMP_CORE_LOCAL_SEARCH_HETEROGENEITY_H_
#define EMP_CORE_LOCAL_SEARCH_HETEROGENEITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/partition.h"

namespace emp {

/// Exact bookkeeping of one region's pairwise-L1 dissimilarity
/// Σ_{i<j} |d_i − d_j| over its members' dissimilarity values. Keeps the
/// values sorted with prefix sums so that the contribution of one value —
/// what a Tabu move needs — is an O(log k) query, instead of the O(k²)
/// recomputation a naive implementation would pay per candidate move.
class RegionDissimilarity {
 public:
  void Add(double d);
  void Remove(double d);

  int32_t size() const { return static_cast<int32_t>(sorted_.size()); }

  /// Σ |d − x| over all current member values x. (If `d` belongs to a
  /// member, its own zero term is included harmlessly.)
  double ContributionOf(double d) const;

  /// Σ_{i<j} (d_j − d_i) over the sorted values — the region's exact
  /// pairwise dissimilarity.
  double TotalPairwise() const;

 private:
  std::vector<double> sorted_;
  std::vector<double> prefix_;  // prefix_[i] = sum of sorted_[0..i)
};

/// Heterogeneity H(P) = Σ_R Σ_{i<j∈R} |d_i − d_j| (Definition III.3),
/// maintained incrementally across Tabu moves.
class HeterogeneityTracker {
 public:
  /// Builds region structures from the partition's current assignment.
  explicit HeterogeneityTracker(const Partition& partition);

  double total() const { return total_; }

  /// Exact H change if `area` moved from region `from` to region `to`.
  double MoveDelta(int32_t area, int32_t from, int32_t to) const;

  /// Batched MoveDelta over n candidate targets of one donor. Hoists the
  /// donor-side ContributionOf out of the loop; each delta is the same
  /// expression (to − from) on the same operands as the scalar form, so
  /// results are bit-identical to calling MoveDelta n times.
  void MoveDeltas(int32_t area, int32_t from, const int32_t* tos, size_t n,
                  double* out) const;

  /// Records an applied move (call alongside Partition::Move).
  void ApplyMove(int32_t area, int32_t from, int32_t to);

 private:
  std::span<const double> d_;
  std::vector<RegionDissimilarity> regions_;  // indexed by raw region id
  double total_ = 0.0;
};

/// One-shot exact heterogeneity of a full partition (used by tests and
/// reports to cross-check the tracker).
double ComputeHeterogeneity(const Partition& partition);

}  // namespace emp

#endif  // EMP_CORE_LOCAL_SEARCH_HETEROGENEITY_H_
