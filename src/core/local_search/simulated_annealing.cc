#include "core/local_search/simulated_annealing.h"

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/local_search/assignment_snapshot.h"
#include "core/local_search/move.h"
#include "core/local_search/objective.h"

namespace emp {

Result<AnnealResult> SimulatedAnnealing(const AnnealOptions& options,
                                        ConnectivityChecker* connectivity,
                                        Partition* partition,
                                        Objective* objective,
                                        PhaseSupervisor* supervisor) {
  if (connectivity == nullptr || partition == nullptr) {
    return Status::InvalidArgument("SimulatedAnnealing: null argument");
  }
  if (options.cooling <= 0.0 || options.cooling >= 1.0) {
    return Status::InvalidArgument("cooling must be in (0, 1)");
  }

  std::unique_ptr<HeterogeneityObjective> default_objective;
  if (objective == nullptr) {
    default_objective = std::make_unique<HeterogeneityObjective>(*partition);
    objective = default_objective.get();
  }

  AnnealResult result;
  result.initial_objective = objective->total();

  const int32_t n = partition->num_areas();
  const int64_t iterations =
      options.iterations >= 0 ? options.iterations
                              : static_cast<int64_t>(n) * 20;

  Rng rng(options.seed);

  // Candidate sampler: random assigned area with at least one adjacent
  // foreign region.
  const auto& graph = partition->bound().areas().graph();
  auto sample_move = [&](int32_t* area, int32_t* from, int32_t* to) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      int32_t a = static_cast<int32_t>(rng.UniformInt(0, n - 1));
      int32_t r = partition->RegionOf(a);
      if (r == -1 || partition->region(r).size() <= 1) continue;
      // Reservoir-sample one adjacent foreign region.
      int32_t target = -1;
      int seen = 0;
      for (int32_t nb : graph.NeighborsOf(a)) {
        int32_t t = partition->RegionOf(nb);
        if (t == -1 || t == r) continue;
        ++seen;
        if (rng.UniformInt(1, seen) == 1) target = t;
      }
      if (target == -1) continue;
      *area = a;
      *from = r;
      *to = target;
      return true;
    }
    return false;
  };

  // Auto-calibrate the starting temperature to the objective's scale.
  double temperature = options.initial_temperature;
  if (temperature <= 0.0) {
    double mean_abs_delta = 0.0;
    int samples = 0;
    for (int trial = 0; trial < 64; ++trial) {
      int32_t a = 0;
      int32_t from = 0;
      int32_t to = 0;
      if (!sample_move(&a, &from, &to)) break;
      mean_abs_delta += std::fabs(objective->MoveDelta(a, from, to));
      ++samples;
    }
    temperature = samples > 0 ? mean_abs_delta / samples : 1.0;
    if (temperature <= 0.0) temperature = 1.0;
  }

  double best_total = objective->total();
  double current_total = best_total;
  std::vector<int32_t> best_assignment = SnapshotAssignment(*partition);

  for (int64_t it = 0; it < iterations; ++it) {
    if (supervisor != nullptr && supervisor->Check()) break;
    int32_t area = 0;
    int32_t from = 0;
    int32_t to = 0;
    // A failed sample is not a proposal: nothing was evaluated, so
    // nothing is counted (and nothing cools) before the loop ends.
    if (!sample_move(&area, &from, &to)) break;
    ++result.proposals;

    // Proposal k (0-based) is evaluated at T_k = T0 * cooling^k: the
    // first proposal sees the starting temperature, and cooling happens
    // AFTER the acceptance decision.
    const double delta = objective->MoveDelta(area, from, to);
    bool accept = delta <= 0.0;
    if (!accept && temperature > 1e-300) {
      accept = rng.Uniform(0.0, 1.0) < std::exp(-delta / temperature);
    }
    temperature *= options.cooling;
    if (!accept) continue;
    if (!ConstraintPreservingMove(*partition, connectivity, area, from, to)) {
      continue;
    }
    objective->ApplyMove(area, from, to);
    partition->Move(area, to);
    current_total += delta;
    ++result.accepted;
    if (current_total < best_total - 1e-9) {
      best_total = current_total;
      best_assignment = SnapshotAssignment(*partition);
      ++result.improving;
    }
  }

  RestoreAssignment(best_assignment, partition);
  result.final_objective = best_total;
  if (supervisor != nullptr && supervisor->tripped().has_value()) {
    result.termination = *supervisor->tripped();
  }
  return result;
}

}  // namespace emp
