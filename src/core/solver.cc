#include "core/solver.h"

#include <map>
#include <mutex>
#include <utility>

#include "baseline/maxp_regions.h"
#include "baseline/skater.h"
#include "common/str_util.h"
#include "constraints/query_parser.h"
#include "core/fact_solver.h"

namespace emp {

namespace {

/// Registry of name -> factory. Builtins are installed on first access
/// (not via static registrar objects: those live in a static library and
/// would be dead-stripped by the linker).
struct SolverRegistry {
  std::mutex mu;
  std::map<std::string, SolverFactory> factories;
};

Result<std::unique_ptr<Solver>> MakeFact(const SolverSpec& spec) {
  std::vector<Constraint> constraints = spec.constraints;
  if (!spec.query.empty()) {
    EMP_ASSIGN_OR_RETURN(std::vector<Constraint> parsed,
                         ParseConstraints(spec.query));
    for (Constraint& c : parsed) constraints.push_back(std::move(c));
  }
  EMP_ASSIGN_OR_RETURN(
      FactSolver solver,
      FactSolver::Create(spec.areas, std::move(constraints), spec.options));
  return std::unique_ptr<Solver>(new FactSolver(std::move(solver)));
}

Status CheckSingleSumSpec(const SolverSpec& spec) {
  if (spec.attribute.empty() || !(spec.threshold > 0)) {
    return Status::InvalidArgument(
        "solver '" + spec.solver +
        "' needs attribute and a positive threshold "
        "(single SUM(attribute) >= threshold query)");
  }
  if (!spec.query.empty() || !spec.constraints.empty()) {
    return Status::InvalidArgument(
        "solver '" + spec.solver +
        "' supports only the single-SUM query; pass attribute + threshold "
        "instead of a constraint query");
  }
  return Status::OK();
}

Result<std::unique_ptr<Solver>> MakeMaxP(const SolverSpec& spec) {
  EMP_RETURN_IF_ERROR(CheckSingleSumSpec(spec));
  EMP_ASSIGN_OR_RETURN(
      MaxPRegionsSolver solver,
      MaxPRegionsSolver::Create(spec.areas, spec.attribute, spec.threshold,
                                spec.options));
  return std::unique_ptr<Solver>(new MaxPRegionsSolver(std::move(solver)));
}

Result<std::unique_ptr<Solver>> MakeSkater(const SolverSpec& spec) {
  EMP_RETURN_IF_ERROR(CheckSingleSumSpec(spec));
  EMP_ASSIGN_OR_RETURN(
      SkaterMaxPSolver solver,
      SkaterMaxPSolver::Create(spec.areas, spec.attribute, spec.threshold,
                               spec.options));
  return std::unique_ptr<Solver>(new SkaterMaxPSolver(std::move(solver)));
}

SolverRegistry& GetRegistry() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry;
    r->factories["fact"] = MakeFact;
    r->factories["maxp"] = MakeMaxP;
    r->factories["skater"] = MakeSkater;
    return r;
  }();
  return *registry;
}

}  // namespace

Solver::~Solver() = default;

Result<Solution> Solver::Solve() { return Solve(MakeRunContext(options())); }

Result<std::unique_ptr<Solver>> CreateSolver(const SolverSpec& spec) {
  SolverFactory factory;
  {
    SolverRegistry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.factories.find(spec.solver);
    if (it == registry.factories.end()) {
      std::vector<std::string> names;
      for (const auto& [name, f] : registry.factories) names.push_back(name);
      return Status::NotFound("unknown solver '" + spec.solver +
                              "'; registered: " + Join(names, ", "));
    }
    factory = it->second;
  }
  if (spec.areas == nullptr) {
    return Status::InvalidArgument("SolverSpec: null area set");
  }
  return factory(spec);
}

Status RegisterSolver(std::string name, SolverFactory factory) {
  if (name.empty() || factory == nullptr) {
    return Status::InvalidArgument(
        "RegisterSolver: name and factory are required");
  }
  SolverRegistry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (!registry.factories.emplace(std::move(name), std::move(factory))
           .second) {
    return Status::InvalidArgument("RegisterSolver: name already registered");
  }
  return Status::OK();
}

std::vector<std::string> RegisteredSolverNames() {
  SolverRegistry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.factories.size());
  for (const auto& [name, factory] : registry.factories) {
    names.push_back(name);
  }
  return names;
}

}  // namespace emp
