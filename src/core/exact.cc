#include "core/exact.h"

#include <algorithm>
#include <limits>
#include <span>

#include "constraints/constraint_set.h"
#include "constraints/region_stats.h"
#include "graph/connectivity.h"

namespace emp {

namespace {

/// Depth-first enumerator over restricted-growth assignments: area i may
/// stay unassigned, join any region opened so far, or open region k+1.
/// Monotone constraint violations (counting uppers; extrema invalidity is
/// pre-filtered by BoundConstraints::AreaIsInvalid semantics at solve
/// level) prune subtrees; contiguity and the full constraint set are
/// verified on complete assignments.
class ExactSearcher {
 public:
  ExactSearcher(const BoundConstraints& bound, ConnectivityChecker* conn,
                PhaseSupervisor* supervisor)
      : bound_(bound),
        conn_(conn),
        supervisor_(supervisor),
        n_(bound.areas().num_areas()),
        assign_(static_cast<size_t>(n_), -1) {
    d_ = bound.areas().dissimilarity();
    // Precompute, per counting constraint, whether all values are
    // non-negative — only then is "sum exceeds upper" a safe prune.
    for (int ci : bound_.counting_indices()) {
      bool nonneg = true;
      for (int32_t a = 0; a < n_ && nonneg; ++a) {
        nonneg = bound_.ValueOf(ci, a) >= 0.0;
      }
      prunable_counting_.push_back(nonneg ? ci : -1);
    }
  }

  ExactSolution Run() {
    Recurse(0, 0);
    ExactSolution out;
    out.p = best_p_;
    out.heterogeneity = best_h_;
    out.region_of = best_assign_;
    out.assignments_evaluated = evaluated_;
    if (supervisor_ != nullptr && supervisor_->tripped().has_value()) {
      out.termination = *supervisor_->tripped();
    }
    if (best_p_ < 0) {
      // Even the all-unassigned solution counts as p = 0.
      out.p = 0;
      out.region_of.assign(static_cast<size_t>(n_), -1);
      out.heterogeneity = 0.0;
    }
    return out;
  }

 private:
  void Recurse(int32_t area, int32_t regions_open) {
    // Poll at every node; a trip unwinds the whole recursion (the sticky
    // verdict makes every further Check() return immediately).
    if (supervisor_ != nullptr && supervisor_->Check(0)) return;
    if (area == n_) {
      Evaluate(regions_open);
      return;
    }
    // Option 1: leave unassigned.
    assign_[static_cast<size_t>(area)] = -1;
    Recurse(area + 1, regions_open);
    // Option 2: join an existing region, if monotone pruning allows.
    for (int32_t r = 0; r < regions_open; ++r) {
      assign_[static_cast<size_t>(area)] = r;
      if (!MonotonePruned(r)) {
        Recurse(area + 1, regions_open);
      }
    }
    // Option 3: open a new region.
    assign_[static_cast<size_t>(area)] = regions_open;
    Recurse(area + 1, regions_open + 1);
    assign_[static_cast<size_t>(area)] = -1;
  }

  /// True when region r already violates a safe-to-prune monotone bound.
  bool MonotonePruned(int32_t r) {
    for (size_t k = 0; k < prunable_counting_.size(); ++k) {
      int ci = prunable_counting_[k];
      if (ci < 0) continue;
      double sum = 0.0;
      for (int32_t a = 0; a < n_; ++a) {
        if (assign_[static_cast<size_t>(a)] == r) {
          sum += bound_.ValueOf(ci, a);
        }
      }
      if (sum > bound_.constraint(ci).upper) return true;
    }
    return false;
  }

  void Evaluate(int32_t regions_open) {
    if (supervisor_ != nullptr && supervisor_->Check()) return;
    ++evaluated_;
    // p has priority over H: fewer regions can never beat the incumbent,
    // equal regions may still win on heterogeneity.
    if (regions_open < best_p_) return;

    // Validate every region: non-empty, contiguous, all constraints.
    double h_total = 0.0;
    for (int32_t r = 0; r < regions_open; ++r) {
      std::vector<int32_t> members;
      RegionStats stats(&bound_);
      for (int32_t a = 0; a < n_; ++a) {
        if (assign_[static_cast<size_t>(a)] == r) {
          members.push_back(a);
          stats.Add(a);
        }
      }
      if (members.empty()) return;  // Gap in region numbering: skip.
      if (!stats.SatisfiesAll()) return;
      if (!conn_->IsConnected(members)) return;
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          double diff = d_[static_cast<size_t>(members[i])] -
                        d_[static_cast<size_t>(members[j])];
          h_total += diff < 0 ? -diff : diff;
        }
      }
    }
    if (regions_open > best_p_ ||
        (regions_open == best_p_ && h_total < best_h_)) {
      best_p_ = regions_open;
      best_h_ = h_total;
      best_assign_ = assign_;
    }
  }

  const BoundConstraints& bound_;
  ConnectivityChecker* conn_;
  PhaseSupervisor* supervisor_;
  std::span<const double> d_;
  int32_t n_;
  std::vector<int32_t> assign_;
  int32_t best_p_ = -1;
  double best_h_ = std::numeric_limits<double>::infinity();
  std::vector<int32_t> best_assign_;
  int64_t evaluated_ = 0;
  /// Counting-constraint indices whose attribute is everywhere
  /// non-negative (safe monotone pruning), -1 placeholders otherwise.
  std::vector<int> prunable_counting_;
};

}  // namespace

Result<ExactSolution> SolveExact(const AreaSet& areas,
                                 const std::vector<Constraint>& constraints,
                                 const ExactOptions& options,
                                 PhaseSupervisor* supervisor) {
  if (areas.num_areas() > options.max_areas) {
    return Status::InvalidArgument(
        "exact solver limited to " + std::to_string(options.max_areas) +
        " areas (got " + std::to_string(areas.num_areas()) +
        "); the search space is super-exponential");
  }
  EMP_ASSIGN_OR_RETURN(BoundConstraints bound,
                       BoundConstraints::Create(&areas, constraints));
  ConnectivityChecker connectivity(&areas.graph());
  ExactSearcher searcher(bound, &connectivity, supervisor);
  ExactSolution solution = searcher.Run();
  if (solution.p == 0 &&
      solution.termination == TerminationReason::kConverged) {
    // Only a COMPLETED search proves no single region can exist; an
    // interrupted p = 0 is merely "nothing found yet" and is returned
    // as a best-effort result with its termination verdict.
    return Status::Infeasible(
        "no single region can satisfy all constraints on this instance");
  }
  return solution;
}

}  // namespace emp
