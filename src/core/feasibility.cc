#include "core/feasibility.h"

#include <algorithm>
#include <limits>

#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/progress.h"

namespace emp {

namespace {

std::string BoundStr(double v) {
  if (v == kNoLowerBound) return "-inf";
  if (v == kNoUpperBound) return "inf";
  return FormatDouble(v, 6);
}

}  // namespace

Result<FeasibilityReport> CheckFeasibility(const BoundConstraints& bound,
                                           PhaseSupervisor* supervisor) {
  const int32_t n = bound.areas().num_areas();
  if (n == 0) {
    return Status::InvalidArgument("feasibility check on an empty area set");
  }
  const int m = bound.size();

  FeasibilityReport report;
  report.is_invalid.assign(static_cast<size_t>(n), 0);
  report.is_seed.assign(static_cast<size_t>(n), 0);

  // Telemetry: counts flow through locals and flush at every return site,
  // so an interrupted scan still reports exactly what it covered.
  obs::MetricRegistry* metrics =
      (supervisor != nullptr && supervisor->context() != nullptr)
          ? supervisor->context()->metrics
          : nullptr;
  obs::ProgressBoard* board =
      (supervisor != nullptr && supervisor->context() != nullptr)
          ? supervisor->context()->progress_board
          : nullptr;
  int64_t areas_scanned = 0;
  auto flush_metrics = [&](const FeasibilityReport& r) {
    if (board != nullptr) board->SetWork(areas_scanned, n);
    if (metrics == nullptr) return;
    metrics->GetCounter("emp_feasibility_areas_scanned_total")
        ->Add(areas_scanned);
    metrics->GetGauge("emp_feasibility_invalid_areas")
        ->Set(static_cast<double>(r.invalid_areas.size()));
    metrics->GetGauge("emp_feasibility_seed_areas")
        ->Set(static_cast<double>(r.num_seed_areas));
    metrics->GetGauge("emp_feasibility_feasible")->Set(r.feasible ? 1.0 : 0.0);
  };

  // Single pass: per-constraint attribute aggregates + invalidity flags.
  std::vector<double> min_v(static_cast<size_t>(m),
                            std::numeric_limits<double>::infinity());
  std::vector<double> max_v(static_cast<size_t>(m),
                            -std::numeric_limits<double>::infinity());
  std::vector<double> sum_v(static_cast<size_t>(m), 0.0);

  for (int32_t a = 0; a < n; ++a) {
    if (supervisor != nullptr && supervisor->Check()) {
      flush_metrics(report);
      return report;
    }
    ++areas_scanned;
    // Live work meter, published at the supervisor's slow-path cadence so
    // huge scans stay cheap but /progress still moves.
    if (board != nullptr && (areas_scanned & 1023) == 0) {
      board->SetWork(areas_scanned, n);
    }
    bool invalid = false;
    for (int ci = 0; ci < m; ++ci) {
      const Constraint& c = bound.constraint(ci);
      const double v = bound.ValueOf(ci, a);
      min_v[static_cast<size_t>(ci)] =
          std::min(min_v[static_cast<size_t>(ci)], v);
      max_v[static_cast<size_t>(ci)] =
          std::max(max_v[static_cast<size_t>(ci)], v);
      sum_v[static_cast<size_t>(ci)] += v;
      switch (c.aggregate) {
        case Aggregate::kMin:
          if (v < c.lower) invalid = true;
          break;
        case Aggregate::kMax:
          if (v > c.upper) invalid = true;
          break;
        case Aggregate::kSum:
          if (v > c.upper) invalid = true;
          break;
        case Aggregate::kAvg:
        case Aggregate::kCount:
          break;
      }
    }
    if (invalid) {
      report.is_invalid[static_cast<size_t>(a)] = 1;
      report.invalid_areas.push_back(a);
    }
  }
  report.num_valid_areas =
      n - static_cast<int64_t>(report.invalid_areas.size());

  // Constraint-level verdicts (rules (1)-(5) of §V-A).
  for (int ci = 0; ci < m; ++ci) {
    const Constraint& c = bound.constraint(ci);
    const double lo = min_v[static_cast<size_t>(ci)];
    const double total = sum_v[static_cast<size_t>(ci)];
    switch (c.aggregate) {
      case Aggregate::kAvg: {
        const double avg = total / n;
        if (avg < c.lower || avg > c.upper) {
          report.full_partition_possible = false;
          report.diagnostics.push_back(
              "dataset-wide AVG(" + c.attribute + ") = " +
              FormatDouble(avg, 3) + " lies outside [" + BoundStr(c.lower) +
              ", " + BoundStr(c.upper) +
              "]; no full partition can satisfy this constraint "
              "(Theorem 3) — some areas must stay unassigned");
        }
        break;
      }
      case Aggregate::kMin:
      case Aggregate::kMax: {
        // No area inside [l, u] means no region can ever satisfy the
        // extrema constraint (covers the paper's cases (a) and the mixed
        // below-l / above-u case).
        break;  // Verified via seed counts below.
      }
      case Aggregate::kSum: {
        if (lo > c.upper) {
          report.feasible = false;
          report.diagnostics.push_back(
              "every area's " + c.attribute + " exceeds SUM upper bound " +
              BoundStr(c.upper) + "; no region can satisfy " + c.ToString());
        }
        if (total < c.lower) {
          report.feasible = false;
          report.diagnostics.push_back(
              "dataset total of " + c.attribute + " (" +
              FormatDouble(total, 3) + ") is below SUM lower bound " +
              BoundStr(c.lower) + "; even one region over all areas fails " +
              c.ToString());
        }
        break;
      }
      case Aggregate::kCount: {
        if (static_cast<double>(n) < c.lower) {
          report.feasible = false;
          report.diagnostics.push_back(
              "dataset has " + std::to_string(n) +
              " areas, fewer than COUNT lower bound " + BoundStr(c.lower));
        }
        break;
      }
    }
  }

  // Seed marking among valid areas, piggybacked per the paper; also counts
  // seeds per extrema constraint to detect constraints nobody can anchor.
  const auto& extrema = bound.extrema_indices();
  report.seeds_per_extrema_constraint.assign(extrema.size(), 0);
  for (int32_t a = 0; a < n; ++a) {
    if (supervisor != nullptr && supervisor->Check()) {
      flush_metrics(report);
      return report;
    }
    if (report.is_invalid[static_cast<size_t>(a)]) continue;
    bool seed = extrema.empty();
    for (size_t e = 0; e < extrema.size(); ++e) {
      if (bound.IsSeedFor(extrema[e], a)) {
        seed = true;
        ++report.seeds_per_extrema_constraint[e];
      }
    }
    if (seed) {
      report.is_seed[static_cast<size_t>(a)] = 1;
      ++report.num_seed_areas;
    }
  }
  for (size_t e = 0; e < extrema.size(); ++e) {
    if (report.seeds_per_extrema_constraint[e] == 0) {
      report.feasible = false;
      report.diagnostics.push_back(
          "no valid area lies within the range of " +
          bound.constraint(extrema[e]).ToString() +
          "; no region can satisfy it");
    }
  }

  if (report.num_valid_areas == 0) {
    report.feasible = false;
    report.diagnostics.push_back(
        "all areas are invalid under the given constraints");
  }

  flush_metrics(report);
  return report;
}

}  // namespace emp
