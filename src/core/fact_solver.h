#ifndef EMP_CORE_FACT_SOLVER_H_
#define EMP_CORE_FACT_SOLVER_H_

#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"
#include "core/portfolio.h"
#include "core/run_context.h"
#include "core/solution.h"
#include "core/solver.h"
#include "core/solver_options.h"
#include "data/area_set.h"

namespace emp {

/// FaCT — the three-phase EMP solver (paper §V):
///   1. Feasibility: verify a solution can exist; filter invalid areas.
///   2. Construction: Filtering & Seeding → Region Growing → Monotonic
///      Adjustments, repeated for `construction_iterations` independent
///      tries, keeping the partition with the largest p.
///   3. Local search: Tabu search minimizing heterogeneity at constant p.
///
/// Typical use:
///   EMP_ASSIGN_OR_RETURN(
///       FactSolver solver,
///       FactSolver::Create(&areas, {Constraint::Sum("TOTALPOP", 20000,
///                                                   kNoUpperBound)}));
///   EMP_ASSIGN_OR_RETURN(Solution sol, solver.Solve());
class FactSolver : public Solver {
 public:
  /// Validating named constructor: checks `options` against its documented
  /// domain, requires a non-null area set, and binds `constraints` against
  /// the areas' attribute table — so malformed input surfaces as
  /// kInvalidArgument HERE, before any time budget is spent. Prefer this
  /// over the lazy constructor below.
  static Result<FactSolver> Create(const AreaSet* areas,
                                   std::vector<Constraint> constraints,
                                   SolverOptions options = {});

  /// Deprecated-in-docs lazy constructor: defers all validation to
  /// Solve(), which re-checks everything Create() would have. Kept for
  /// callers that want an infallible object; new code should use Create().
  /// `areas` must outlive the solver.
  FactSolver(const AreaSet* areas, std::vector<Constraint> constraints,
             SolverOptions options = {});

  /// Runs all three phases. Returns:
  ///   kInfeasible       — the feasibility phase proved no solution exists
  ///                       (the report is in the status message), or
  ///                       invalid areas exist and filtering is disabled;
  ///   kInvalidArgument  — malformed constraints, unknown attributes, or
  ///                       out-of-domain SolverOptions fields;
  ///   otherwise a Solution in which every region satisfies every
  ///   constraint and is spatially contiguous.
  ///
  /// Supervision: equivalent to Solve(MakeRunContext(options())), i.e.
  /// time_budget_ms / max_evaluations are honored.
  ///
  /// Multi-start: when options().portfolio_replicas > 1, the solve
  /// delegates to PortfolioSolver (core/portfolio.h) — N independent
  /// replicas across portfolio_threads workers, reduced
  /// deterministically to one Solution.
  Result<Solution> Solve() override;

  /// Same, under an explicit supervision context (deadline, cancellation,
  /// evaluation budget, progress callback, fault injection). When the
  /// context trips mid-solve the phases degrade instead of erroring: the
  /// returned Solution is still feasible and contiguous — possibly with a
  /// smaller p, down to 0 — and carries the verdict in
  /// Solution::termination_reason. kInfeasible/kInvalidArgument above are
  /// still errors; supervision never masks them except that a feasibility
  /// phase cut short returns the degraded empty solution rather than
  /// claiming (in)feasibility it could not finish proving.
  Result<Solution> Solve(const RunContext& ctx) override;

  const SolverOptions& options() const override { return options_; }
  std::string_view name() const override { return "fact"; }
  const std::vector<Constraint>& constraints() const override {
    return constraints_;
  }

  /// Stats from the portfolio delegation of the most recent Solve() on
  /// this object; default-initialized when portfolio_replicas <= 1.
  const PortfolioStats& portfolio_stats() const { return portfolio_stats_; }

 private:
  /// The portfolio enters replicas through SolveSinglePass directly, so a
  /// replica never re-writes the run-journal bracket or re-publishes the
  /// whole-run progress fields its parent owns.
  friend class PortfolioSolver;

  /// One construction → local-search chain (portfolio_replicas ignored).
  /// Solve(ctx) wraps this with the run-journal bracket (run_start /
  /// run_end) and the portfolio delegation.
  Result<Solution> SolveSinglePass(const RunContext& ctx);

  const AreaSet* areas_;
  std::vector<Constraint> constraints_;
  SolverOptions options_;
  PortfolioStats portfolio_stats_;
};

/// One-call convenience wrapper.
Result<Solution> SolveEmp(const AreaSet& areas,
                          std::vector<Constraint> constraints,
                          const SolverOptions& options = {},
                          const RunContext* ctx = nullptr);

}  // namespace emp

#endif  // EMP_CORE_FACT_SOLVER_H_
