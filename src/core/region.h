#ifndef EMP_CORE_REGION_H_
#define EMP_CORE_REGION_H_

#include <cstdint>
#include <vector>

#include "constraints/region_stats.h"

namespace emp {

/// A region under construction: its member area ids plus incremental
/// aggregate state. Owned and mutated exclusively through Partition, which
/// keeps `areas`, `stats`, and the reverse map consistent.
struct Region {
  explicit Region(int32_t id_in, const BoundConstraints* bound)
      : id(id_in), stats(bound) {}

  int32_t id = -1;
  bool alive = true;
  std::vector<int32_t> areas;
  RegionStats stats;

  int32_t size() const { return static_cast<int32_t>(areas.size()); }
};

}  // namespace emp

#endif  // EMP_CORE_REGION_H_
