#ifndef EMP_CORE_SOLVER_OPTIONS_H_
#define EMP_CORE_SOLVER_OPTIONS_H_

#include <cstdint>

#include "common/status.h"
#include "core/run_context.h"

namespace emp {

/// Order in which unassigned areas are picked up during region growing.
/// "random" is the paper's default; the ascending/descending options sort
/// by the primary AVG attribute and exist for ablation studies.
enum class PickupOrder {
  kRandom,
  kAscending,
  kDescending,
};

/// Neighborhood-maintenance strategy for the Tabu phase (DESIGN.md §8).
/// Both engines visit candidates in the same canonical (delta, area, to)
/// order and therefore produce bit-identical move sequences for the same
/// seed — pinned by tabu_golden_test.
enum class TabuEngine {
  /// Candidates persist across iterations; after a move only candidates
  /// incident to the two mutated regions' boundaries are re-scored, and
  /// donor contiguity is answered from a per-region articulation-point
  /// cache instead of one BFS per candidate. Default.
  kIncremental,
  /// Re-enumerates and re-scores the whole neighborhood every iteration
  /// and runs the BFS per tried candidate — the pre-incremental behavior,
  /// kept as the reference for golden trajectory tests and ablations.
  kFullRebuild,
};

/// Construction strategy for Phase 2.
enum class ConstructionStrategy {
  /// The paper's three-step construction (filter/seed → region growing →
  /// monotonic adjustments). Default.
  kFact,
  /// Single-step greedy violation-descent growth — an ablation baseline
  /// (see core/construction/unified_growth.h).
  kUnifiedGrowth,
};

/// Tuning knobs for the FaCT algorithm. Defaults mirror the paper's
/// experimental setup (§VII-A): random pickup, AVG merge limit 3, tabu
/// tenure 10, max moves without improvement = dataset size.
struct SolverOptions {
  ConstructionStrategy construction_strategy = ConstructionStrategy::kFact;

  /// Construction runs this many independent iterations and keeps the
  /// partition with the highest p (§V-B). Must be >= 1.
  int construction_iterations = 3;

  /// Retry attempts per failed construction iteration: an iteration whose
  /// construction step errors out is re-run with a derived RNG stream
  /// instead of aborting the whole solve. 0 disables retries.
  int construction_retries = 2;

  /// Worker threads for the construction iterations (the paper's stated
  /// future work, §VIII: "improve the algorithm performance through
  /// parallelization"). Iterations are independent, so results are
  /// identical for any thread count; 1 = sequential.
  int construction_threads = 1;

  /// Merge-trial cap in Region Growing round 2 — "the merge limit is set to
  /// prevent the formation of oversized regions and control the runtime".
  int avg_merge_limit = 3;

  PickupOrder pickup_order = PickupOrder::kRandom;

  /// Tabu list length (tenure).
  int tabu_tenure = 10;

  /// Stop the local search after this many consecutive non-improving
  /// moves; -1 means "number of areas" (paper default).
  int64_t tabu_max_no_improve = -1;

  /// Hard cap on total Tabu iterations; -1 = no cap. Benchmarks on very
  /// large maps set this to bound runtime.
  int64_t tabu_max_iterations = -1;

  /// Neighborhood maintenance strategy (see TabuEngine). Both engines
  /// yield the same move sequence; kFullRebuild exists for verification
  /// and ablation.
  TabuEngine tabu_engine = TabuEngine::kIncremental;

  /// Debug flag: cross-check every cached donor-contiguity answer against
  /// the exact BFS; a disagreement aborts the search with an internal
  /// error. Off by default (it re-adds the BFS the cache exists to skip).
  bool tabu_verify_connectivity_cache = false;

  /// Record every applied move into TabuResult::trajectory. Used by the
  /// golden trajectory tests; off by default (the vector would grow with
  /// the move count).
  bool tabu_record_trajectory = false;

  /// Run the Tabu local-search phase at all (disable to measure the
  /// construction phase alone, as several paper experiments do).
  bool run_local_search = true;

  /// Automatically filter invalid areas into U0 (the paper lets the user
  /// choose; when false, an instance with invalid areas is rejected as
  /// infeasible instead).
  bool filter_invalid_areas = true;

  /// RNG seed for pickup shuffles and tie-breaking.
  uint64_t seed = 42;

  /// Independent FaCT replicas run by the solver portfolio (DESIGN.md
  /// §10). Each replica is a full construction → local-search chain on
  /// its own derived RNG stream; the portfolio returns the best result
  /// under the deterministic reduction rule (highest p, then lowest
  /// heterogeneity, then lowest replica index). 1 = plain single solve;
  /// FactSolver::Solve() delegates to PortfolioSolver when > 1.
  int portfolio_replicas = 1;

  /// Worker threads the portfolio spreads its replicas across. Replicas
  /// run single-threaded internally (construction_threads is forced to 1
  /// per replica), so this is the solve's total parallelism. The thread
  /// count never changes the returned solution — only who runs which
  /// replica.
  int portfolio_threads = 1;

  /// Let replicas consult the shared incumbent after construction and
  /// skip their local-search phase when their p is strictly below the
  /// incumbent's (they can no longer win the reduction, which orders by
  /// p first). Winner-preserving, so the returned solution is unchanged;
  /// only wasted tabu work is cut. On by default.
  bool portfolio_share_incumbent = true;

  /// Early-exit target: once any replica's construction reaches this p,
  /// the portfolio cooperatively cancels the remaining replicas and
  /// returns the best result found. -1 disables. Like time budgets, a
  /// target makes the outcome timing-dependent (the thread-count
  /// invariance guarantee applies to untargeted, unbudgeted solves).
  int32_t portfolio_target_p = -1;

  /// Serve the live observability plane (obs::HttpServer: /healthz,
  /// /metrics, /metrics.json, /progress) on 127.0.0.1:serve_port for the
  /// duration of the solve. 0 binds an ephemeral port; -1 (default)
  /// disables the server. Honored by the no-context Solve() entry points
  /// — callers supplying their own RunContext attach their own sinks and
  /// server (as emp_cli does). Serving never perturbs the solve: a fixed
  /// seed yields a bit-identical solution with and without it.
  int serve_port = -1;

  /// Wall-clock budget for the whole solve in milliseconds; -1 = no limit.
  /// On expiry the solver stops at the next checkpoint and returns its
  /// best-so-far solution tagged TerminationReason::kDeadlineExceeded.
  int64_t time_budget_ms = -1;

  /// Solve-wide evaluation budget (inner-loop work units); -1 = no limit.
  /// On exhaustion the solver degrades exactly like a deadline hit, tagged
  /// TerminationReason::kBudgetExhausted.
  int64_t max_evaluations = -1;
};

/// Validates every field of `options` against its documented domain.
/// Returns kInvalidArgument naming the offending field, or OK. Called at
/// the top of FactSolver::Solve() and the baseline solvers.
Status ValidateSolverOptions(const SolverOptions& options);

/// Builds the supervision context implied by the options: a deadline from
/// time_budget_ms (the clock starts HERE, not at the first checkpoint) and
/// the solve-wide evaluation budget. Solvers' no-argument Solve() entry
/// points delegate through this; callers wanting cancellation or fault
/// injection construct their own RunContext instead.
RunContext MakeRunContext(const SolverOptions& options);

}  // namespace emp

#endif  // EMP_CORE_SOLVER_OPTIONS_H_
