#ifndef EMP_CORE_PORTFOLIO_H_
#define EMP_CORE_PORTFOLIO_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"
#include "core/run_context.h"
#include "core/solution.h"
#include "core/solver_options.h"
#include "data/area_set.h"

namespace emp {

/// What one replica contributed to the reduction. The portfolio's
/// deterministic reduction rule is a total order over these scores:
/// highest p wins, heterogeneity (ascending) breaks p ties, and the
/// replica index (ascending) breaks exact heterogeneity ties — so for a
/// fixed seed and replica count the winner is a pure function of the
/// instance, independent of thread count and completion order.
struct ReplicaScore {
  int32_t p = -1;
  double heterogeneity = 0.0;
  int32_t replica = 0;
};

/// True when `a` beats `b` under the reduction rule above.
bool BeatsInReduction(const ReplicaScore& a, const ReplicaScore& b);

/// Counters from the last PortfolioSolver::Solve(), for reports and
/// tests. All fields are computed after the worker pool joins; only
/// `winning_replica` and `replica_p` are thread-count invariant (the
/// others describe scheduling, e.g. how many replicas the incumbent
/// cutoff spared from local search).
struct PortfolioStats {
  /// Replicas requested (SolverOptions::portfolio_replicas).
  int32_t replicas = 0;
  /// Replicas that actually began solving (< replicas when a target_p
  /// hit stopped the queue early).
  int32_t replicas_started = 0;
  /// Replicas cut short by cooperative cancellation (target_p reached
  /// or the caller's token), counted by their termination verdict.
  int32_t replicas_cancelled = 0;
  /// Replicas whose local-search phase was skipped because the shared
  /// incumbent already dominated their constructed p.
  int32_t tabu_skipped = 0;
  /// Index of the replica whose solution was returned; -1 if none ran.
  int32_t winning_replica = -1;
  /// Worker threads actually used.
  int32_t threads = 0;
  /// Final p per replica, -1 for replicas that never started.
  std::vector<int32_t> replica_p;
};

/// Multi-start solver portfolio (DESIGN.md §10): runs
/// `options.portfolio_replicas` independent FaCT replicas — each a full
/// feasibility → construction → tabu chain on a derived RNG stream —
/// across a ticket-counter worker pool of `options.portfolio_threads`
/// threads, then reduces the results deterministically (see
/// ReplicaScore). Replicas share the caller's deadline and evaluation
/// budget through per-replica child RunContexts; each also has its own
/// cancellation token so stragglers can be cancelled cooperatively once
/// `options.portfolio_target_p` is reached, and a lock-guarded incumbent
/// lets replicas skip provably-losing local-search work when
/// `options.portfolio_share_incumbent` is on.
///
/// Determinism: without a deadline / evaluation budget / target_p /
/// external cancellation, the returned solution is bit-identical for a
/// fixed (seed, portfolio_replicas) at any portfolio_threads — the
/// construction thread-count-invariance guarantee extended to the whole
/// solve (pinned by portfolio_test, raced under TSan). Supervised runs
/// degrade best-effort exactly like a single FactSolver solve.
class PortfolioSolver {
 public:
  /// Validating named constructor; same contract as FactSolver::Create.
  static Result<PortfolioSolver> Create(const AreaSet* areas,
                                        std::vector<Constraint> constraints,
                                        SolverOptions options = {});

  /// Lazy constructor; all validation happens in Solve(). `areas` must
  /// outlive the solver.
  PortfolioSolver(const AreaSet* areas, std::vector<Constraint> constraints,
                  SolverOptions options = {});

  /// Runs the portfolio under MakeRunContext(options()).
  Result<Solution> Solve();

  /// Runs the portfolio under an explicit supervision context. Error
  /// semantics match FactSolver::Solve: kInfeasible / kInvalidArgument
  /// are errors (a failing replica's error is reported by the lowest
  /// replica index, deterministically); supervision trips degrade into a
  /// best-effort Solution tagged with the winner's termination reason.
  Result<Solution> Solve(const RunContext& ctx);

  const SolverOptions& options() const { return options_; }

  /// Stats from the most recent Solve() on this object.
  const PortfolioStats& stats() const { return stats_; }

 private:
  const AreaSet* areas_;
  std::vector<Constraint> constraints_;
  SolverOptions options_;
  PortfolioStats stats_;
};

}  // namespace emp

#endif  // EMP_CORE_PORTFOLIO_H_
