#ifndef EMP_CORE_RUN_CONTEXT_H_
#define EMP_CORE_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>

namespace emp {

namespace obs {
class AnytimeCurve;
class MetricRegistry;
class ProgressBoard;
class RunJournal;
class TraceBuffer;
}  // namespace obs

/// Why a solve (or one of its phases) stopped. Recorded in
/// Solution::termination_reason so callers can tell a converged result
/// from a best-effort one returned under a deadline or cancellation.
enum class TerminationReason {
  /// The phase ran to its natural end (fixpoint, no admissible move, ...).
  kConverged = 0,
  /// The wall-clock deadline expired; the best-so-far state was returned.
  kDeadlineExceeded,
  /// CancellationToken::Cancel() was observed at a checkpoint.
  kCancelled,
  /// The evaluation budget (RunContext::max_evaluations) ran out.
  kBudgetExhausted,
  /// A test fault hook forced termination at an exact checkpoint.
  kFaultInjected,
};

/// Canonical lower-case name ("converged", "deadline-exceeded", ...).
std::string_view TerminationReasonName(TerminationReason reason);

/// A wall-clock point in time after which cooperative loops must stop.
/// Value-semantic and cheap to copy; default-constructed deadlines never
/// expire.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() : expiry_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now; ms < 0 means infinite.
  static Deadline AfterMillis(int64_t ms);

  bool infinite() const { return expiry_ == Clock::time_point::max(); }
  bool Expired() const { return !infinite() && Clock::now() >= expiry_; }

  /// Milliseconds until expiry (negative once expired); +inf when infinite.
  double RemainingMillis() const;

 private:
  Clock::time_point expiry_;
};

/// Cooperative cancellation flag shared between a requester (e.g. a SIGINT
/// handler or another thread) and the solver's checkpoint network. Copies
/// share the same underlying flag. Cancel() performs a single atomic store
/// and is safe to call from a signal handler or any thread.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Identity of one supervision checkpoint, passed to the fault hook so
/// tests can fire deterministic faults at exact points ("deadline after K
/// checkpoints of phase X", "cancel inside construction iteration 2").
struct SupervisionCheckpoint {
  /// Phase name: "feasibility", "construction", "tabu", "anneal", "exact",
  /// "maxp", "skater".
  std::string_view phase;
  /// 0-based checkpoint count within this phase instance.
  int64_t index = 0;
  /// Construction-iteration id for per-iteration phases, 0 elsewhere.
  int64_t worker = 0;
};

/// Periodic progress snapshot delivered to RunContext::progress.
struct ProgressEvent {
  std::string_view phase;
  int64_t checkpoints = 0;   // within the reporting phase instance
  int64_t evaluations = 0;   // solve-wide running total
};

/// Execution-supervision context threaded through every long-running solver
/// loop. Carries a wall-clock deadline, a cooperative cancellation token,
/// an optional evaluation budget, an optional progress callback, and a
/// deterministic fault-injection hook for tests. Copies share the
/// cancellation flag and the evaluation counter.
///
/// All long-running phases poll the context through PhaseSupervisor
/// checkpoints; on expiry each phase stops at the next checkpoint and
/// returns its best-so-far state rather than an error.
struct RunContext {
  /// Wall-clock deadline; infinite by default.
  Deadline deadline;

  /// Cooperative cancellation; Cancel() stops the solve at the next
  /// checkpoint with TerminationReason::kCancelled.
  CancellationToken cancel;

  /// Solve-wide cap on charged evaluation units (roughly: one inner-loop
  /// step); -1 = unlimited.
  int64_t max_evaluations = -1;

  /// Optional progress callback, fired from strided (slow-path)
  /// checkpoints. May be called from worker threads when construction runs
  /// parallel; must be thread-safe in that case.
  std::function<void(const ProgressEvent&)> progress;

  /// Deterministic fault-injection hook for tests: called at EVERY
  /// checkpoint; returning a reason terminates the phase with exactly that
  /// reason. Must be thread-safe under parallel construction. Null in
  /// production (zero overhead beyond the branch).
  std::function<std::optional<TerminationReason>(
      const SupervisionCheckpoint&)>
      fault_hook;

  /// Telemetry sinks (see src/obs/). Null by default: instrumented code
  /// resolves metric handles / spans only when these are attached, so a
  /// disabled run pays ~one branch per instrumentation site. Both must
  /// outlive the solve and are thread-safe under parallel construction.
  obs::MetricRegistry* metrics = nullptr;
  obs::TraceBuffer* trace = nullptr;

  /// Live-progress board (see src/obs/progress.h) updated from phase
  /// transitions and strided supervision checkpoints, and served by
  /// obs::HttpServer's /progress endpoint. Null by default; like the
  /// sinks above it must outlive the solve and is safe under parallel
  /// construction (seqlock writers serialize internally).
  obs::ProgressBoard* progress_board = nullptr;

  /// Append-only JSONL flight recorder (see src/obs/journal.h) fed by
  /// the solver's run/phase/replica lifecycle events. Null by default;
  /// must outlive the solve; thread-safe.
  obs::RunJournal* journal = nullptr;

  /// Anytime-quality recorder (see src/obs/curve.h): incumbent
  /// improvements (best p, heterogeneity) plus coarse supervision ticks,
  /// giving solution quality as a function of wall time. Null by default;
  /// must outlive the solve; thread-safe. Like the board/journal it stays
  /// whole-run state — portfolio child contexts do not inherit it
  /// (improvements are recorded under the incumbent lock instead).
  obs::AnytimeCurve* curve = nullptr;

  /// Solve-wide evaluation counter shared by all copies of this context.
  std::shared_ptr<std::atomic<int64_t>> evaluations_spent =
      std::make_shared<std::atomic<int64_t>>(0);

  int64_t evaluations() const {
    return evaluations_spent->load(std::memory_order_relaxed);
  }
};

/// Per-phase checkpoint driver. Construct one per phase instance (cheap),
/// call Check() once per unit of work, and stop the phase as soon as it
/// returns a reason. The result is sticky: once tripped, every later
/// Check() returns the same reason, and tripped() exposes it to callers
/// after the loops unwind.
///
/// Overhead: the fast path is an integer increment plus one relaxed atomic
/// load; the clock is only read every `time_check_stride` checkpoints (and
/// on checkpoint 0, so an already-expired deadline trips immediately).
/// When a fault hook or an evaluation budget is active, checkpoints are
/// charged exactly so tests get deterministic trip points.
class PhaseSupervisor {
 public:
  /// `ctx` may be null (no supervision; Check() never trips). `ctx` must
  /// outlive the supervisor.
  PhaseSupervisor(const RunContext* ctx, std::string_view phase,
                  int64_t worker = 0, int64_t time_check_stride = 64);
  ~PhaseSupervisor();

  PhaseSupervisor(const PhaseSupervisor&) = delete;
  PhaseSupervisor& operator=(const PhaseSupervisor&) = delete;

  /// Records one checkpoint charging `evaluations` budget units. Returns
  /// the termination reason when the phase must stop, nullopt to continue.
  std::optional<TerminationReason> Check(int64_t evaluations = 1);

  /// The sticky verdict (nullopt while the phase may continue).
  std::optional<TerminationReason> tripped() const { return tripped_; }

  int64_t checkpoints() const { return checkpoints_; }

  /// The supervised context (may be null). Instrumented phases use this to
  /// reach RunContext::metrics / trace without widening every signature.
  const RunContext* context() const { return ctx_; }

 private:
  const RunContext* ctx_;
  std::string_view phase_;
  int64_t worker_;
  int64_t stride_;
  int64_t checkpoints_ = 0;
  int64_t pending_evaluations_ = 0;  // flushed to ctx on the slow path
  std::optional<TerminationReason> tripped_;
};

}  // namespace emp

#endif  // EMP_CORE_RUN_CONTEXT_H_
