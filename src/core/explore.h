#ifndef EMP_CORE_EXPLORE_H_
#define EMP_CORE_EXPLORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"
#include "core/solver_options.h"
#include "data/area_set.h"

namespace emp {

/// Exploratory-analysis helpers on top of FaCT. The paper's feasibility
/// phase exists to let analysts "tune either data or query parameters
/// adaptively" (§V-A); these utilities make that loop programmatic:
/// sweep one constraint's threshold and chart the p/U0 response, or ask
/// for relaxation suggestions that would cut the unassigned share.

/// One point of a threshold sweep.
struct SweepPoint {
  Constraint constraint;  // the swept constraint at this point
  bool feasible = false;
  int32_t p = 0;
  int64_t unassigned = 0;
  double unassigned_fraction = 0.0;
  double construction_seconds = 0.0;
};

/// Which bound of the swept constraint to vary.
enum class SweepBound { kLower, kUpper };

/// Re-solves (construction only, local search disabled) with constraint
/// `constraint_index`'s chosen bound replaced by each value in `values`,
/// returning one SweepPoint per value. Infeasible settings appear with
/// `feasible = false` rather than failing the sweep. This is exactly what
/// the paper's threshold-range experiments (Figs. 5-13) do, exposed as a
/// public API.
Result<std::vector<SweepPoint>> SweepThreshold(
    const AreaSet& areas, std::vector<Constraint> constraints,
    int constraint_index, SweepBound bound, const std::vector<double>& values,
    const SolverOptions& options = {});

/// A suggested relaxation of one constraint and its measured effect.
struct RelaxationSuggestion {
  int constraint_index = -1;
  Constraint original;
  Constraint suggested;
  /// Outcome with only this constraint relaxed (others unchanged).
  int32_t p = 0;
  double unassigned_fraction = 0.0;
  /// Baseline outcome with the original query, for comparison.
  int32_t baseline_p = 0;
  double baseline_unassigned_fraction = 0.0;

  std::string ToString() const;
};

/// Options for relaxation search.
struct RelaxOptions {
  /// Relative widening factors tried on each finite bound.
  std::vector<double> widen_factors = {1.1, 1.25, 1.5};
  /// Keep a suggestion only if it cuts the unassigned fraction by at
  /// least this much (absolute), or makes an infeasible query feasible.
  double min_unassigned_gain = 0.02;
  SolverOptions solver;
};

/// For each constraint with a finite bound, tries widened variants
/// (lower bounds scaled down, upper bounds scaled up by each factor) and
/// reports those that materially reduce the unassigned share or restore
/// feasibility. Construction-only solves keep this fast enough for
/// interactive use. Suggestions are sorted by unassigned gain.
Result<std::vector<RelaxationSuggestion>> SuggestRelaxations(
    const AreaSet& areas, const std::vector<Constraint>& constraints,
    const RelaxOptions& options = {});

}  // namespace emp

#endif  // EMP_CORE_EXPLORE_H_
