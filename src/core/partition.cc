#include "core/partition.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace emp {

Partition::Partition(const BoundConstraints* bound) : bound_(bound) {
  const size_t n = static_cast<size_t>(bound_->areas().num_areas());
  region_of_.assign(n, -1);
  active_.assign(n, 1);
}

void Partition::Deactivate(int32_t area) {
  assert(region_of_[static_cast<size_t>(area)] == -1);
  active_[static_cast<size_t>(area)] = 0;
}

int32_t Partition::CreateRegion() {
  const int32_t id = static_cast<int32_t>(regions_.size());
  regions_.emplace_back(id, bound_);
  return id;
}

void Partition::Assign(int32_t area, int32_t region_id) {
  assert(IsActive(area));
  assert(region_of_[static_cast<size_t>(area)] == -1);
  Region& r = regions_[static_cast<size_t>(region_id)];
  assert(r.alive);
  r.areas.push_back(area);
  r.stats.Add(area);
  region_of_[static_cast<size_t>(area)] = region_id;
}

void Partition::Unassign(int32_t area) {
  const int32_t rid = region_of_[static_cast<size_t>(area)];
  assert(rid != -1);
  Region& r = regions_[static_cast<size_t>(rid)];
  auto it = std::find(r.areas.begin(), r.areas.end(), area);
  assert(it != r.areas.end());
  *it = r.areas.back();
  r.areas.pop_back();
  r.stats.Remove(area);
  region_of_[static_cast<size_t>(area)] = -1;
}

void Partition::Move(int32_t area, int32_t to_region) {
  Unassign(area);
  Assign(area, to_region);
}

int32_t Partition::MergeRegions(int32_t winner, int32_t loser) {
  assert(winner != loser);
  Region& w = regions_[static_cast<size_t>(winner)];
  Region& l = regions_[static_cast<size_t>(loser)];
  assert(w.alive && l.alive);
  for (int32_t area : l.areas) {
    region_of_[static_cast<size_t>(area)] = winner;
    w.areas.push_back(area);
  }
  w.stats.Merge(l.stats);
  l.areas.clear();
  l.stats.Clear();
  l.alive = false;
  return winner;
}

void Partition::DissolveRegion(int32_t region_id) {
  Region& r = regions_[static_cast<size_t>(region_id)];
  assert(r.alive);
  for (int32_t area : r.areas) {
    region_of_[static_cast<size_t>(area)] = -1;
  }
  r.areas.clear();
  r.stats.Clear();
  r.alive = false;
}

std::vector<int32_t> Partition::AliveRegionIds() const {
  std::vector<int32_t> out;
  AliveRegionIdsInto(&out);
  return out;
}

void Partition::AliveRegionIdsInto(std::vector<int32_t>* out) const {
  out->clear();
  for (const Region& r : regions_) {
    if (r.alive && !r.areas.empty()) out->push_back(r.id);
  }
}

int32_t Partition::NumRegions() const {
  int32_t p = 0;
  for (const Region& r : regions_) {
    if (r.alive && !r.areas.empty()) ++p;
  }
  return p;
}

std::vector<int32_t> Partition::UnassignedAreas() const {
  std::vector<int32_t> out;
  UnassignedAreasInto(&out);
  return out;
}

void Partition::UnassignedAreasInto(std::vector<int32_t>* out) const {
  out->clear();
  for (int32_t a = 0; a < num_areas(); ++a) {
    if (IsActive(a) && region_of_[static_cast<size_t>(a)] == -1) {
      out->push_back(a);
    }
  }
}

uint32_t Partition::BeginRegionSeenEpoch() const {
  if (region_seen_.size() < regions_.size()) {
    region_seen_.resize(regions_.size(), 0);
  }
  ++region_seen_epoch_;
  if (region_seen_epoch_ == 0) {
    // Wrapped around: reset tags once per ~4 billion calls.
    std::fill(region_seen_.begin(), region_seen_.end(), 0);
    region_seen_epoch_ = 1;
  }
  return region_seen_epoch_;
}

std::vector<int32_t> Partition::NeighborRegionsOfArea(int32_t area) const {
  std::vector<int32_t> out;
  NeighborRegionsOfAreaInto(area, &out);
  return out;
}

void Partition::NeighborRegionsOfAreaInto(int32_t area,
                                          std::vector<int32_t>* out) const {
  out->clear();
  const uint32_t epoch = BeginRegionSeenEpoch();
  const int32_t own = region_of_[static_cast<size_t>(area)];
  for (int32_t nb : bound_->areas().graph().NeighborsOf(area)) {
    int32_t rid = region_of_[static_cast<size_t>(nb)];
    if (rid != -1 && rid != own &&
        region_seen_[static_cast<size_t>(rid)] != epoch) {
      region_seen_[static_cast<size_t>(rid)] = epoch;
      out->push_back(rid);
    }
  }
}

std::vector<int32_t> Partition::NeighborRegionsOf(int32_t region_id) const {
  std::vector<int32_t> out;
  NeighborRegionsOfInto(region_id, &out);
  return out;
}

void Partition::NeighborRegionsOfInto(int32_t region_id,
                                      std::vector<int32_t>* out) const {
  out->clear();
  const uint32_t epoch = BeginRegionSeenEpoch();
  const Region& r = regions_[static_cast<size_t>(region_id)];
  for (int32_t area : r.areas) {
    for (int32_t nb : bound_->areas().graph().NeighborsOf(area)) {
      int32_t rid = region_of_[static_cast<size_t>(nb)];
      if (rid != -1 && rid != region_id &&
          region_seen_[static_cast<size_t>(rid)] != epoch) {
        region_seen_[static_cast<size_t>(rid)] = epoch;
        out->push_back(rid);
      }
    }
  }
}

std::vector<int32_t> Partition::BoundaryAreas(int32_t region_id) const {
  std::vector<int32_t> out;
  const Region& r = regions_[static_cast<size_t>(region_id)];
  for (int32_t area : r.areas) {
    for (int32_t nb : bound_->areas().graph().NeighborsOf(area)) {
      if (region_of_[static_cast<size_t>(nb)] != region_id) {
        out.push_back(area);
        break;
      }
    }
  }
  return out;
}

Status Partition::ValidateInvariants() const {
  std::vector<int32_t> seen(region_of_.size(), -1);
  for (const Region& r : regions_) {
    if (!r.alive) {
      if (!r.areas.empty()) {
        return Status::Internal("dead region " + std::to_string(r.id) +
                                " still has areas");
      }
      continue;
    }
    if (r.stats.count() != r.size()) {
      return Status::Internal("region " + std::to_string(r.id) +
                              " stats count mismatch");
    }
    for (int32_t area : r.areas) {
      if (area < 0 || area >= num_areas()) {
        return Status::Internal("region member out of range");
      }
      if (!IsActive(area)) {
        return Status::Internal("inactive area " + std::to_string(area) +
                                " is assigned");
      }
      if (seen[static_cast<size_t>(area)] != -1) {
        return Status::Internal("area " + std::to_string(area) +
                                " in two regions");
      }
      seen[static_cast<size_t>(area)] = r.id;
      if (region_of_[static_cast<size_t>(area)] != r.id) {
        return Status::Internal("reverse map mismatch for area " +
                                std::to_string(area));
      }
    }
  }
  for (size_t a = 0; a < region_of_.size(); ++a) {
    if (region_of_[a] != -1 && seen[a] != region_of_[a]) {
      return Status::Internal("area " + std::to_string(a) +
                              " maps to region that does not list it");
    }
  }
  return Status::OK();
}

std::vector<int32_t> Partition::CompactAssignment() const {
  std::vector<int32_t> compact_id(regions_.size(), -1);
  int32_t next = 0;
  for (const Region& r : regions_) {
    if (r.alive && !r.areas.empty()) {
      compact_id[static_cast<size_t>(r.id)] = next++;
    }
  }
  std::vector<int32_t> out(region_of_.size(), -1);
  for (size_t a = 0; a < region_of_.size(); ++a) {
    if (region_of_[a] != -1) {
      out[a] = compact_id[static_cast<size_t>(region_of_[a])];
    }
  }
  return out;
}

}  // namespace emp
