#include "core/solution.h"

#include "common/str_util.h"
#include "core/partition.h"

namespace emp {

double Solution::HeterogeneityImprovement() const {
  if (heterogeneity_before_local_search <= 0.0) return 0.0;
  double diff = heterogeneity_before_local_search - heterogeneity;
  return (diff < 0 ? -diff : diff) / heterogeneity_before_local_search;
}

std::string Solution::Summary() const {
  std::string out =
      "p=" + std::to_string(p()) +
      " unassigned=" + std::to_string(num_unassigned()) +
      " H=" + FormatDouble(heterogeneity, 1) + " (improved " +
      FormatDouble(HeterogeneityImprovement() * 100.0, 2) +
      "%) construction=" + FormatDouble(construction_seconds, 3) +
      "s tabu=" + FormatDouble(local_search_seconds, 3) + "s";
  if (termination_reason != TerminationReason::kConverged) {
    out += " termination=";
    out += TerminationReasonName(termination_reason);
    out += " (best-effort)";
  }
  return out;
}

void FillAssignmentFromPartition(const Partition& partition,
                                 Solution* solution) {
  solution->region_of = partition.CompactAssignment();
  solution->regions.assign(static_cast<size_t>(partition.NumRegions()), {});
  solution->unassigned.clear();
  for (int32_t a = 0; a < partition.num_areas(); ++a) {
    const int32_t rid = solution->region_of[static_cast<size_t>(a)];
    if (rid == -1) {
      solution->unassigned.push_back(a);
    } else {
      solution->regions[static_cast<size_t>(rid)].push_back(a);
    }
  }
}

}  // namespace emp
