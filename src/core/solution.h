#ifndef EMP_CORE_SOLUTION_H_
#define EMP_CORE_SOLUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/construction/monotonic_adjust.h"
#include "core/construction/region_growing.h"
#include "core/feasibility.h"
#include "core/local_search/tabu.h"
#include "core/run_context.h"

namespace emp {

/// The EMP output (§III): p disjoint contiguous regions, each satisfying
/// every user-defined constraint, plus the unassigned set U0, with solver
/// telemetry for the experiment harness.
struct Solution {
  /// Region membership lists; regions[i] holds the area ids of region i.
  std::vector<std::vector<int32_t>> regions;

  /// region_of[a] = index into `regions`, or -1 when a ∈ U0.
  std::vector<int32_t> region_of;

  /// Areas not assigned to any region (invalid + leftover), ascending.
  std::vector<int32_t> unassigned;

  /// Heterogeneity H(P) after the final phase.
  double heterogeneity = 0.0;

  /// Heterogeneity before the local-search phase.
  double heterogeneity_before_local_search = 0.0;

  /// The feasibility phase's report (diagnostics, invalid-area census).
  FeasibilityReport feasibility;

  /// Telemetry from the construction iteration that won (highest p).
  RegionGrowingStats growing_stats;
  MonotonicAdjustStats adjust_stats;
  TabuResult tabu_result;

  /// Wall-clock seconds per phase.
  double feasibility_seconds = 0.0;
  double construction_seconds = 0.0;
  double local_search_seconds = 0.0;

  /// Why the solve stopped: kConverged for a full run, otherwise the
  /// supervision verdict (deadline/cancel/budget/fault) under which the
  /// best-so-far state below was returned.
  TerminationReason termination_reason = TerminationReason::kConverged;

  /// Construction iterations that ran to completion (un-interrupted); the
  /// remaining iterations, if any, contributed best-effort partials.
  int completed_construction_iterations = 0;

  int32_t p() const { return static_cast<int32_t>(regions.size()); }
  int64_t num_unassigned() const {
    return static_cast<int64_t>(unassigned.size());
  }

  /// |H_before − H_after| / H_before, the paper's improvement metric.
  double HeterogeneityImprovement() const;

  /// Human-readable one-line summary for reports.
  std::string Summary() const;
};

class Partition;

/// Copies a partition's final assignment (compacted region ids, region
/// member lists, U0) into `solution->regions/region_of/unassigned`.
void FillAssignmentFromPartition(const Partition& partition,
                                 Solution* solution);

}  // namespace emp

#endif  // EMP_CORE_SOLUTION_H_
