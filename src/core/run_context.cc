#include "core/run_context.h"

#include <limits>

#include "obs/curve.h"
#include "obs/progress.h"

namespace emp {

std::string_view TerminationReasonName(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kConverged:
      return "converged";
    case TerminationReason::kDeadlineExceeded:
      return "deadline-exceeded";
    case TerminationReason::kCancelled:
      return "cancelled";
    case TerminationReason::kBudgetExhausted:
      return "budget-exhausted";
    case TerminationReason::kFaultInjected:
      return "fault-injected";
  }
  return "unknown";
}

Deadline Deadline::AfterMillis(int64_t ms) {
  if (ms < 0) return Infinite();
  Deadline d;
  d.expiry_ = Clock::now() + std::chrono::milliseconds(ms);
  return d;
}

double Deadline::RemainingMillis() const {
  if (infinite()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double, std::milli>(expiry_ - Clock::now())
      .count();
}

PhaseSupervisor::PhaseSupervisor(const RunContext* ctx, std::string_view phase,
                                 int64_t worker, int64_t time_check_stride)
    : ctx_(ctx),
      phase_(phase),
      worker_(worker),
      stride_(time_check_stride < 1 ? 1 : time_check_stride) {}

PhaseSupervisor::~PhaseSupervisor() {
  // Flush telemetry-only evaluation counts accumulated since the last
  // slow-path checkpoint.
  if (ctx_ != nullptr && pending_evaluations_ > 0) {
    ctx_->evaluations_spent->fetch_add(pending_evaluations_,
                                       std::memory_order_relaxed);
    pending_evaluations_ = 0;
  }
}

std::optional<TerminationReason> PhaseSupervisor::Check(int64_t evaluations) {
  if (tripped_) return tripped_;
  const int64_t index = checkpoints_++;
  if (ctx_ == nullptr) return std::nullopt;

  // Deterministic fault injection fires first, at every checkpoint, so
  // tests can target exact (phase, index, worker) points.
  if (ctx_->fault_hook) {
    if (auto forced =
            ctx_->fault_hook(SupervisionCheckpoint{phase_, index, worker_})) {
      tripped_ = *forced;
      return tripped_;
    }
  }

  if (ctx_->cancel.cancelled()) {
    tripped_ = TerminationReason::kCancelled;
    return tripped_;
  }

  if (ctx_->max_evaluations >= 0) {
    // Budget active: charge exactly at every checkpoint so the trip point
    // is deterministic (single-threaded) and never more than one
    // checkpoint late.
    const int64_t total =
        ctx_->evaluations_spent->fetch_add(evaluations,
                                           std::memory_order_relaxed) +
        evaluations;
    if (total > ctx_->max_evaluations) {
      tripped_ = TerminationReason::kBudgetExhausted;
      return tripped_;
    }
  } else {
    pending_evaluations_ += evaluations;
  }

  // Strided slow path: clock read + progress + telemetry flush. Index 0 is
  // included so an already-expired deadline trips before any work is done.
  if (index % stride_ == 0) {
    if (pending_evaluations_ > 0) {
      ctx_->evaluations_spent->fetch_add(pending_evaluations_,
                                         std::memory_order_relaxed);
      pending_evaluations_ = 0;
    }
    if (ctx_->deadline.Expired()) {
      tripped_ = TerminationReason::kDeadlineExceeded;
      return tripped_;
    }
    if (ctx_->progress) {
      ctx_->progress(ProgressEvent{phase_, checkpoints_, ctx_->evaluations()});
    }
    if (ctx_->progress_board != nullptr) {
      // One seqlock publish per slow-path checkpoint: the live /progress
      // endpoint tracks phase + checkpoint count + evaluation spend
      // without the solver loops knowing the board exists.
      ctx_->progress_board->OnCheckpoint(phase_, checkpoints_,
                                         ctx_->evaluations());
    }
    if (ctx_->curve != nullptr) {
      // Coarse timer tick: the recorder rate-limits internally, so the
      // anytime curve keeps advancing between incumbent improvements.
      ctx_->curve->Tick(ctx_->evaluations());
    }
  }
  return std::nullopt;
}

}  // namespace emp
