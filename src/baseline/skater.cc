#include "baseline/skater.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "core/feasibility.h"
#include "core/local_search/heterogeneity.h"
#include "core/local_search/tabu.h"
#include "core/partition.h"
#include "graph/connectivity.h"
#include "graph/dsu.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace emp {

namespace {

struct TreeEdge {
  int32_t a;
  int32_t b;
  double weight;
};

}  // namespace

SkaterMaxPSolver::SkaterMaxPSolver(const AreaSet* areas,
                                   std::string attribute, double threshold,
                                   SolverOptions options)
    : areas_(areas),
      attribute_(std::move(attribute)),
      threshold_(threshold),
      options_(options),
      constraints_({Constraint::Sum(attribute_, threshold_, kNoUpperBound)}) {}

Result<SkaterMaxPSolver> SkaterMaxPSolver::Create(const AreaSet* areas,
                                                  std::string attribute,
                                                  double threshold,
                                                  SolverOptions options) {
  EMP_RETURN_IF_ERROR(ValidateSolverOptions(options));
  if (areas == nullptr) {
    return Status::InvalidArgument("SkaterMaxPSolver: null area set");
  }
  if (!(threshold > 0)) {
    return Status::InvalidArgument(
        "SkaterMaxPSolver: threshold must be positive, got " +
        FormatDouble(threshold, 6));
  }
  // Binding validates that `attribute` exists in the attribute table.
  Result<BoundConstraints> bound = BoundConstraints::Create(
      areas, {Constraint::Sum(attribute, threshold, kNoUpperBound)});
  if (!bound.ok()) return bound.status();
  return SkaterMaxPSolver(areas, std::move(attribute), threshold, options);
}

Result<Solution> SkaterMaxPSolver::Solve() {
  return Solve(MakeRunContext(options_));
}

Result<Solution> SkaterMaxPSolver::Solve(const RunContext& ctx) {
  EMP_RETURN_IF_ERROR(ValidateSolverOptions(options_));
  if (areas_ == nullptr) {
    return Status::InvalidArgument("SkaterMaxPSolver: null area set");
  }
  EMP_ASSIGN_OR_RETURN(
      BoundConstraints bound,
      BoundConstraints::Create(
          areas_, {Constraint::Sum(attribute_, threshold_, kNoUpperBound)}));

  Stopwatch feasibility_timer;
  FeasibilityReport feasibility;
  double feasibility_seconds = 0.0;
  {
    PhaseSupervisor supervisor(&ctx, "feasibility");
    EMP_ASSIGN_OR_RETURN(feasibility, CheckFeasibility(bound, &supervisor));
    feasibility_seconds = feasibility_timer.ElapsedSeconds();
    if (auto reason = supervisor.tripped()) {
      Solution degraded;
      degraded.feasibility = std::move(feasibility);
      degraded.feasibility_seconds = feasibility_seconds;
      degraded.termination_reason = *reason;
      Partition empty(&bound);
      FillAssignmentFromPartition(empty, &degraded);
      return degraded;
    }
  }
  if (!feasibility.feasible) {
    return Status::Infeasible(Join(feasibility.diagnostics, "; "));
  }

  Stopwatch construction_timer;
  obs::ScopedSpan construction_span(ctx.trace, "skater.construction");
  PhaseSupervisor supervisor(&ctx, "skater");
  const ContiguityGraph& graph = areas_->graph();
  const std::span<const double> d = areas_->dissimilarity();
  const int32_t n = graph.num_nodes();

  // --- Kruskal MST (forest) weighted by dissimilarity gaps. -----------
  std::vector<TreeEdge> edges;
  edges.reserve(static_cast<size_t>(graph.num_edges()));
  for (int32_t a = 0; a < n; ++a) {
    if (supervisor.Check()) break;
    for (int32_t b : graph.NeighborsOf(a)) {
      if (b > a) {
        edges.push_back({a, b,
                         std::fabs(d[static_cast<size_t>(a)] -
                                   d[static_cast<size_t>(b)])});
      }
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const TreeEdge& x, const TreeEdge& y) {
              return x.weight < y.weight;
            });
  DisjointSetUnion dsu(n);
  std::vector<std::vector<int32_t>> tree(static_cast<size_t>(n));
  int64_t mst_edges = 0;
  for (const TreeEdge& e : edges) {
    if (dsu.Union(e.a, e.b)) {
      tree[static_cast<size_t>(e.a)].push_back(e.b);
      tree[static_cast<size_t>(e.b)].push_back(e.a);
      ++mst_edges;
    }
  }
  obs::Add(obs::GetCounter(ctx.metrics, "emp_skater_mst_edges_total"),
           mst_edges);

  // --- Bottom-up max-p cutting of each tree component. -----------------
  // Iterative post-order: accumulate the attribute over un-cut subtree
  // mass; when a node's accumulated mass reaches the threshold, cut it off
  // as a region root and stop propagating its mass upward.
  const auto values = *areas_->attributes().ColumnByName(attribute_);
  std::vector<int32_t> parent(static_cast<size_t>(n), -2);  // -2 unvisited
  std::vector<double> acc(static_cast<size_t>(n), 0.0);
  std::vector<char> is_cut_root(static_cast<size_t>(n), 0);
  std::vector<int32_t> preorder;
  preorder.reserve(static_cast<size_t>(n));
  std::vector<int32_t> roots;

  for (int32_t root = 0; root < n; ++root) {
    if (parent[static_cast<size_t>(root)] != -2) continue;
    roots.push_back(root);
    // DFS collecting post-order.
    std::vector<int32_t> stack = {root};
    parent[static_cast<size_t>(root)] = -1;
    std::vector<int32_t> local_order;
    while (!stack.empty()) {
      int32_t v = stack.back();
      stack.pop_back();
      local_order.push_back(v);
      for (int32_t c : tree[static_cast<size_t>(v)]) {
        if (parent[static_cast<size_t>(c)] == -2) {
          parent[static_cast<size_t>(c)] = v;
          stack.push_back(c);
        }
      }
    }
    // Reverse preorder == valid post-order for accumulation.
    for (auto it = local_order.rbegin(); it != local_order.rend(); ++it) {
      if (supervisor.Check()) break;
      int32_t v = *it;
      acc[static_cast<size_t>(v)] += values[static_cast<size_t>(v)];
      if (acc[static_cast<size_t>(v)] >= threshold_) {
        is_cut_root[static_cast<size_t>(v)] = 1;
      } else if (parent[static_cast<size_t>(v)] >= 0) {
        acc[static_cast<size_t>(parent[static_cast<size_t>(v)])] +=
            acc[static_cast<size_t>(v)];
      }
    }
    preorder.insert(preorder.end(), local_order.begin(),
                      local_order.end());
  }

  // A trip before regions materialize leaves no feasible partial — cut
  // flags may reflect half-accumulated subtree masses — so the best-effort
  // answer is the empty solution with the verdict attached.
  if (auto reason = supervisor.tripped()) {
    Solution degraded;
    degraded.feasibility = std::move(feasibility);
    degraded.feasibility_seconds = feasibility_seconds;
    degraded.construction_seconds = construction_timer.ElapsedSeconds();
    degraded.termination_reason = *reason;
    Partition empty(&bound);
    FillAssignmentFromPartition(empty, &degraded);
    return degraded;
  }

  // --- Materialize regions: nearest cut-root ancestor owns each node;
  // component leftovers (root not cut) attach to one cut child's region.
  Partition partition(&bound);
  obs::Counter* cut_regions =
      obs::GetCounter(ctx.metrics, "emp_skater_cut_regions_total");
  obs::Counter* leftover_attachments =
      obs::GetCounter(ctx.metrics, "emp_skater_leftover_attachments_total");
  std::vector<int32_t> region_of_node(static_cast<size_t>(n), -1);
  // Top-down over the stored preorder (parents precede children).
  for (int32_t v : preorder) {
    if (is_cut_root[static_cast<size_t>(v)]) {
      int32_t rid = partition.CreateRegion();
      region_of_node[static_cast<size_t>(v)] = rid;
      obs::Add(cut_regions);
    } else if (parent[static_cast<size_t>(v)] >= 0) {
      region_of_node[static_cast<size_t>(v)] =
          region_of_node[static_cast<size_t>(parent[static_cast<size_t>(v)])];
    }
  }
  // Leftover pass: nodes with region -1 whose component has regions join
  // an adjacent region through their tree neighborhood.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int32_t v : preorder) {
      // Leftover attachments only add mass to regions already at the SUM
      // threshold, so stopping anywhere keeps every region feasible.
      if (supervisor.Check()) break;
      if (region_of_node[static_cast<size_t>(v)] != -1) continue;
      for (int32_t nb : tree[static_cast<size_t>(v)]) {
        if (region_of_node[static_cast<size_t>(nb)] != -1) {
          region_of_node[static_cast<size_t>(v)] =
              region_of_node[static_cast<size_t>(nb)];
          obs::Add(leftover_attachments);
          changed = true;
          break;
        }
      }
    }
  }
  for (int32_t v = 0; v < n; ++v) {
    if (region_of_node[static_cast<size_t>(v)] != -1) {
      partition.Assign(v, region_of_node[static_cast<size_t>(v)]);
    }
  }
  if (partition.NumRegions() == 0) {
    return Status::Infeasible(
        "no connected component reaches the SUM threshold");
  }

  Solution solution;
  solution.feasibility = std::move(feasibility);
  solution.feasibility_seconds = feasibility_seconds;
  solution.completed_construction_iterations =
      supervisor.tripped().has_value() ? 0 : 1;
  solution.construction_seconds = construction_timer.ElapsedSeconds();
  solution.heterogeneity_before_local_search =
      ComputeHeterogeneity(partition);
  if (auto reason = supervisor.tripped()) {
    solution.termination_reason = *reason;
  }

  ConnectivityChecker connectivity(&graph);
  if (options_.run_local_search) {
    Stopwatch tabu_timer;
    PhaseSupervisor tabu_supervisor(&ctx, "tabu");
    EMP_ASSIGN_OR_RETURN(solution.tabu_result,
                         TabuSearch(options_, &connectivity, &partition,
                                    /*objective=*/nullptr, &tabu_supervisor));
    solution.local_search_seconds = tabu_timer.ElapsedSeconds();
    solution.heterogeneity = solution.tabu_result.final_heterogeneity;
    if (solution.termination_reason == TerminationReason::kConverged) {
      solution.termination_reason = solution.tabu_result.termination;
    }
  } else {
    solution.heterogeneity = solution.heterogeneity_before_local_search;
    solution.tabu_result.initial_heterogeneity = solution.heterogeneity;
    solution.tabu_result.final_heterogeneity = solution.heterogeneity;
  }

  FillAssignmentFromPartition(partition, &solution);
  return solution;
}

}  // namespace emp
