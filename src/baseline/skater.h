#ifndef EMP_BASELINE_SKATER_H_
#define EMP_BASELINE_SKATER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"
#include "core/run_context.h"
#include "core/solution.h"
#include "core/solver.h"
#include "core/solver_options.h"
#include "data/area_set.h"

namespace emp {

/// A SKATER-style tree-partitioning regionalizer (Assunção et al. 2006;
/// the "tree partition" construction family the paper's related work
/// cites), adapted to the max-p objective: build a minimum spanning tree
/// of the contiguity graph weighted by dissimilarity |d_i − d_j|, then cut
/// it bottom-up into the maximum number of subtrees whose SUM(attribute)
/// meets the threshold; leftovers attach to their parent-side region. The
/// shared Tabu phase then polishes heterogeneity.
///
/// Serves as a second baseline next to MP-regions for the single-SUM
/// query; like MP it supports no enriched constraints and leaves no U0 on
/// feasible connected inputs.
class SkaterMaxPSolver : public Solver {
 public:
  /// Validating named constructor: checks `options`, requires a non-null
  /// area set and an existing numeric `attribute`, and rejects a
  /// non-positive threshold — failing HERE with kInvalidArgument instead
  /// of deep inside Solve(). Prefer this over the lazy constructor below.
  static Result<SkaterMaxPSolver> Create(const AreaSet* areas,
                                         std::string attribute,
                                         double threshold,
                                         SolverOptions options = {});

  /// Deprecated-in-docs lazy constructor: defers validation to Solve().
  /// `areas` must outlive the solver.
  SkaterMaxPSolver(const AreaSet* areas, std::string attribute,
                   double threshold, SolverOptions options = {});

  /// Runs MST construction + bottom-up cutting + Tabu. Infeasible when a
  /// connected component's attribute total is below the threshold — those
  /// components' areas end up unassigned; fully infeasible datasets (no
  /// component can host a region) return kInfeasible. Honors
  /// time_budget_ms/max_evaluations via MakeRunContext, like FactSolver.
  Result<Solution> Solve() override;

  /// Same under an explicit supervision context (checkpoints use phase
  /// "skater"; the Tabu phase stays "tabu"). Tree cutting has no
  /// incremental feasible state, so a trip before regions materialize
  /// returns the degraded empty solution (p = 0) with the verdict — never
  /// kInfeasible, which only a finished run may claim.
  Result<Solution> Solve(const RunContext& ctx) override;

  const SolverOptions& options() const override { return options_; }
  std::string_view name() const override { return "skater"; }
  /// The one SUM(attribute) >= threshold constraint this baseline solves.
  const std::vector<Constraint>& constraints() const override {
    return constraints_;
  }

 private:
  const AreaSet* areas_;
  std::string attribute_;
  double threshold_;
  SolverOptions options_;
  std::vector<Constraint> constraints_;
};

}  // namespace emp

#endif  // EMP_BASELINE_SKATER_H_
