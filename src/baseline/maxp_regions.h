#ifndef EMP_BASELINE_MAXP_REGIONS_H_
#define EMP_BASELINE_MAXP_REGIONS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"
#include "core/run_context.h"
#include "core/solution.h"
#include "core/solver.h"
#include "core/solver_options.h"
#include "data/area_set.h"

namespace emp {

/// The classic max-p-regions solver (Duque, Anselin & Rey 2012; efficient
/// variant of Wei, Rey & Knaap 2020) used as the `MP` baseline in the
/// paper's Table IV / Fig. 12. It supports exactly the original problem:
/// a single SUM(attribute) >= threshold constraint, every area assigned
/// (no U0), single- or multi-component maps.
///
/// Construction: repeatedly seed a region at a random unassigned area and
/// greedily absorb unassigned neighbors until the threshold is met;
/// leftover areas (enclaves) are attached to the adjacent region with the
/// most similar dissimilarity profile. Several construction iterations keep
/// the partition with the largest p. The local-search phase reuses the same
/// Tabu machinery as FaCT with the single SUM constraint.
class MaxPRegionsSolver : public Solver {
 public:
  /// Validating named constructor: checks `options`, requires a non-null
  /// area set and an existing numeric `attribute`, and rejects a
  /// non-positive threshold — so bad input fails HERE with
  /// kInvalidArgument instead of deep inside Solve(). Prefer this over the
  /// lazy constructor below.
  static Result<MaxPRegionsSolver> Create(const AreaSet* areas,
                                          std::string attribute,
                                          double threshold,
                                          SolverOptions options = {});

  /// Deprecated-in-docs lazy constructor: defers validation to Solve().
  /// `areas` must outlive the solver.
  MaxPRegionsSolver(const AreaSet* areas, std::string attribute,
                    double threshold, SolverOptions options = {});

  /// Runs construction + Tabu. Infeasible when the dataset total of
  /// `attribute` is below the threshold. Honors
  /// time_budget_ms/max_evaluations via MakeRunContext, like FactSolver.
  Result<Solution> Solve() override;

  /// Same under an explicit supervision context: on a trip the partial
  /// partition is finalized (in-progress under-threshold region dissolved)
  /// and returned with Solution::termination_reason set. Construction
  /// checkpoints use phase "maxp"; the Tabu phase stays "tabu".
  Result<Solution> Solve(const RunContext& ctx) override;

  const SolverOptions& options() const override { return options_; }
  std::string_view name() const override { return "maxp"; }
  /// The one SUM(attribute) >= threshold constraint this baseline solves.
  const std::vector<Constraint>& constraints() const override {
    return constraints_;
  }

 private:
  const AreaSet* areas_;
  std::string attribute_;
  double threshold_;
  SolverOptions options_;
  std::vector<Constraint> constraints_;
};

}  // namespace emp

#endif  // EMP_BASELINE_MAXP_REGIONS_H_
