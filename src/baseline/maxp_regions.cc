#include "baseline/maxp_regions.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <span>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "core/feasibility.h"
#include "core/local_search/heterogeneity.h"
#include "core/local_search/tabu.h"
#include "core/partition.h"
#include "graph/connectivity.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace emp {

namespace {

/// Picks the unassigned neighbor of region `rid` whose dissimilarity value
/// is closest to the region's current mean — the classic greedy criterion
/// that keeps growing regions homogeneous.
int32_t BestUnassignedNeighbor(const Partition& partition, int32_t rid,
                               std::span<const double> d, double mean_d) {
  const auto& graph = partition.bound().areas().graph();
  int32_t best = -1;
  double best_gap = std::numeric_limits<double>::infinity();
  for (int32_t area : partition.region(rid).areas) {
    for (int32_t nb : graph.NeighborsOf(area)) {
      if (partition.RegionOf(nb) != -1 || !partition.IsActive(nb)) continue;
      double gap = std::fabs(d[static_cast<size_t>(nb)] - mean_d);
      if (gap < best_gap) {
        best_gap = gap;
        best = nb;
      }
    }
  }
  return best;
}

}  // namespace

MaxPRegionsSolver::MaxPRegionsSolver(const AreaSet* areas,
                                     std::string attribute, double threshold,
                                     SolverOptions options)
    : areas_(areas),
      attribute_(std::move(attribute)),
      threshold_(threshold),
      options_(options),
      constraints_({Constraint::Sum(attribute_, threshold_, kNoUpperBound)}) {}

Result<MaxPRegionsSolver> MaxPRegionsSolver::Create(const AreaSet* areas,
                                                    std::string attribute,
                                                    double threshold,
                                                    SolverOptions options) {
  EMP_RETURN_IF_ERROR(ValidateSolverOptions(options));
  if (areas == nullptr) {
    return Status::InvalidArgument("MaxPRegionsSolver: null area set");
  }
  if (!(threshold > 0)) {
    return Status::InvalidArgument(
        "MaxPRegionsSolver: threshold must be positive, got " +
        FormatDouble(threshold, 6));
  }
  // Binding validates that `attribute` exists in the attribute table.
  Result<BoundConstraints> bound = BoundConstraints::Create(
      areas, {Constraint::Sum(attribute, threshold, kNoUpperBound)});
  if (!bound.ok()) return bound.status();
  return MaxPRegionsSolver(areas, std::move(attribute), threshold, options);
}

Result<Solution> MaxPRegionsSolver::Solve() {
  return Solve(MakeRunContext(options_));
}

Result<Solution> MaxPRegionsSolver::Solve(const RunContext& ctx) {
  EMP_RETURN_IF_ERROR(ValidateSolverOptions(options_));
  if (areas_ == nullptr) {
    return Status::InvalidArgument("MaxPRegionsSolver: null area set");
  }
  EMP_ASSIGN_OR_RETURN(
      BoundConstraints bound,
      BoundConstraints::Create(
          areas_, {Constraint::Sum(attribute_, threshold_, kNoUpperBound)}));

  Stopwatch feasibility_timer;
  FeasibilityReport feasibility;
  double feasibility_seconds = 0.0;
  {
    PhaseSupervisor supervisor(&ctx, "feasibility");
    EMP_ASSIGN_OR_RETURN(feasibility, CheckFeasibility(bound, &supervisor));
    feasibility_seconds = feasibility_timer.ElapsedSeconds();
    if (auto reason = supervisor.tripped()) {
      Solution degraded;
      degraded.feasibility = std::move(feasibility);
      degraded.feasibility_seconds = feasibility_seconds;
      degraded.termination_reason = *reason;
      Partition empty(&bound);
      FillAssignmentFromPartition(empty, &degraded);
      return degraded;
    }
  }
  if (!feasibility.feasible) {
    return Status::Infeasible(Join(feasibility.diagnostics, "; "));
  }

  Stopwatch construction_timer;
  obs::ScopedSpan construction_span(ctx.trace, "maxp.construction");
  obs::Counter* regions_grown =
      obs::GetCounter(ctx.metrics, "emp_maxp_regions_grown_total");
  obs::Counter* regions_dissolved =
      obs::GetCounter(ctx.metrics, "emp_maxp_regions_dissolved_total");
  obs::Counter* enclave_assignments =
      obs::GetCounter(ctx.metrics, "emp_maxp_enclave_assignments_total");
  const std::span<const double> d = areas_->dissimilarity();
  ConnectivityChecker connectivity(&areas_->graph());
  const int32_t n = areas_->num_areas();

  std::optional<Partition> best;
  int32_t best_p = -1;
  int completed_iterations = 0;
  std::optional<TerminationReason> construction_trip;
  const int iterations = options_.construction_iterations;

  for (int iter = 0; iter < iterations; ++iter) {
    Rng rng(options_.seed +
            0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(iter));
    Partition partition(&bound);
    PhaseSupervisor supervisor(&ctx, "maxp", /*worker=*/iter);

    std::vector<int32_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);

    // Greedy growth: seed at each unassigned area in turn, absorb the most
    // similar unassigned neighbor until the SUM threshold is met. On a
    // supervisor trip the in-progress region is still under threshold, so
    // the existing dissolve check finalizes the partial to a feasible
    // state.
    for (int32_t seed : order) {
      if (supervisor.tripped()) break;
      if (partition.RegionOf(seed) != -1) continue;
      const int32_t rid = partition.CreateRegion();
      partition.Assign(seed, rid);
      double d_sum = d[static_cast<size_t>(seed)];
      while (partition.region(rid).stats.AggregateValue(0) < threshold_) {
        if (supervisor.Check()) break;
        double mean_d = d_sum / partition.region(rid).size();
        int32_t pick = BestUnassignedNeighbor(partition, rid, d, mean_d);
        if (pick == -1) break;
        partition.Assign(pick, rid);
        d_sum += d[static_cast<size_t>(pick)];
      }
      if (partition.region(rid).stats.AggregateValue(0) < threshold_) {
        partition.DissolveRegion(rid);  // Members become enclaves.
        obs::Add(regions_dissolved);
      } else {
        obs::Add(regions_grown);
      }
    }

    // Enclave assignment: attach every leftover area to the adjacent
    // feasible region with the closest mean dissimilarity. Iterate because
    // an enclave may only border other enclaves at first. Additions only
    // grow region sums, so stopping anywhere keeps every region feasible.
    bool changed = !supervisor.tripped().has_value();
    while (changed) {
      changed = false;
      for (int32_t a = 0; a < n; ++a) {
        if (supervisor.Check()) break;
        if (partition.RegionOf(a) != -1) continue;
        int32_t best_rid = -1;
        double best_gap = std::numeric_limits<double>::infinity();
        for (int32_t rid : partition.NeighborRegionsOfArea(a)) {
          const Region& r = partition.region(rid);
          double mean = 0.0;
          for (int32_t m : r.areas) mean += d[static_cast<size_t>(m)];
          mean /= r.size();
          double gap = std::fabs(d[static_cast<size_t>(a)] - mean);
          if (gap < best_gap) {
            best_gap = gap;
            best_rid = rid;
          }
        }
        if (best_rid != -1) {
          partition.Assign(a, best_rid);
          obs::Add(enclave_assignments);
          changed = true;
        }
      }
    }

    if (auto reason = supervisor.tripped()) {
      if (!construction_trip.has_value()) construction_trip = reason;
    } else {
      ++completed_iterations;
    }

    const int32_t p = partition.NumRegions();
    if (p > best_p) {
      best_p = p;
      best.emplace(std::move(partition));
    }
  }

  Solution solution;
  solution.feasibility = std::move(feasibility);
  solution.feasibility_seconds = feasibility_seconds;
  solution.completed_construction_iterations = completed_iterations;
  solution.construction_seconds = construction_timer.ElapsedSeconds();
  solution.heterogeneity_before_local_search = ComputeHeterogeneity(*best);
  if (construction_trip.has_value()) {
    solution.termination_reason = *construction_trip;
  }

  if (options_.run_local_search && best_p > 0) {
    Stopwatch tabu_timer;
    PhaseSupervisor supervisor(&ctx, "tabu");
    EMP_ASSIGN_OR_RETURN(solution.tabu_result,
                         TabuSearch(options_, &connectivity, &*best,
                                    /*objective=*/nullptr, &supervisor));
    solution.local_search_seconds = tabu_timer.ElapsedSeconds();
    solution.heterogeneity = solution.tabu_result.final_heterogeneity;
    if (solution.termination_reason == TerminationReason::kConverged) {
      solution.termination_reason = solution.tabu_result.termination;
    }
  } else {
    solution.heterogeneity = solution.heterogeneity_before_local_search;
    solution.tabu_result.initial_heterogeneity = solution.heterogeneity;
    solution.tabu_result.final_heterogeneity = solution.heterogeneity;
  }

  FillAssignmentFromPartition(*best, &solution);
  return solution;
}

}  // namespace emp
