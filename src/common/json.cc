#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace emp {
namespace json {

namespace {

constexpr int kMaxDepth = 256;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    EMP_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Err("trailing garbage after JSON value");
    }
    return v;
  }

 private:
  Status Err(const std::string& message) const {
    return Status::IOError("json: " + message + " at offset " +
                           std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      EMP_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Value::String(std::move(s));
    }
    if (ConsumeWord("true")) return Value::Bool(true);
    if (ConsumeWord("false")) return Value::Bool(false);
    if (ConsumeWord("null")) return Value::Null();
    return ParseNumber();
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a value");
    std::string buf(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size() || !std::isfinite(v)) {
      return Err("malformed number '" + buf + "'");
    }
    return Value::Number(v);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Err("bad hex digit in \\u escape");
            }
          }
          // BMP code point to UTF-8 (surrogate pairs are passed through
          // as replacement characters; GeoJSON rarely needs them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Err("unknown escape");
      }
    }
    return Err("unterminated string");
  }

  Result<Value> ParseObject(int depth) {
    Consume('{');
    std::vector<std::pair<std::string, Value>> members;
    SkipWhitespace();
    if (Consume('}')) return Value::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      EMP_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Err("expected ':'");
      EMP_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume('}')) return Value::Object(std::move(members));
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray(int depth) {
    Consume('[');
    std::vector<Value> elements;
    SkipWhitespace();
    if (Consume(']')) return Value::Array(std::move(elements));
    while (true) {
      EMP_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      elements.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return Value::Array(std::move(elements));
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const Value* Value::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value Value::Bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double n) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

Value Value::Array(std::vector<Value> elements) {
  Value v;
  v.type_ = Type::kArray;
  v.array_ = std::move(elements);
  return v;
}

Result<Value> Parse(std::string_view text) {
  Parser parser(text);
  return parser.Run();
}

}  // namespace json
}  // namespace emp
