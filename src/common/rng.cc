#include "common/rng.h"

#include <string>

namespace emp {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::LogNormal(double log_mean, double log_stddev) {
  std::lognormal_distribution<double> dist(log_mean, log_stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

uint64_t StableHash64(const std::string& s) {
  // FNV-1a, 64-bit.
  uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace emp
