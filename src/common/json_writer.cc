#include "common/json_writer.h"

#include <cassert>
#include <cmath>

#include "common/str_util.h"

namespace emp {

JsonWriter::JsonWriter(int indent) : indent_(indent < 0 ? 0 : indent) {}

bool JsonWriter::CurrentInline() const {
  return indent_ == 0 || (!stack_.empty() && stack_.back().is_inline);
}

void JsonWriter::NewlineIndent(size_t depth) {
  out_ += '\n';
  out_.append(depth * static_cast<size_t>(indent_), ' ');
}

void JsonWriter::BeginValue() {
  if (stack_.empty()) return;  // Top-level value: nothing to separate.
  Frame& frame = stack_.back();
  if (frame.is_object) {
    // Key() already emitted the separator and `"key": ` prefix.
    assert(key_pending_ && "object member emitted without a Key()");
    key_pending_ = false;
    return;
  }
  if (frame.members > 0) out_ += ',';
  if (CurrentInline()) {
    if (frame.members > 0) out_ += ' ';
  } else {
    NewlineIndent(stack_.size());
  }
  ++frame.members;
}

void JsonWriter::Key(std::string_view key) {
  assert(!stack_.empty() && stack_.back().is_object &&
         "Key() outside an object");
  assert(!key_pending_ && "two Key() calls without a value between them");
  Frame& frame = stack_.back();
  if (frame.members > 0) out_ += ',';
  if (CurrentInline()) {
    if (frame.members > 0) out_ += ' ';
  } else {
    NewlineIndent(stack_.size());
  }
  ++frame.members;
  out_ += '"';
  out_ += Escape(key);
  out_ += "\": ";
  key_pending_ = true;
}

void JsonWriter::Open(char bracket, bool is_object, bool is_inline) {
  // A container inside an inline parent is itself inline — a multi-line
  // child could not be indented coherently on the parent's single line.
  is_inline = is_inline || CurrentInline();
  BeginValue();
  stack_.push_back(Frame{is_object, is_inline, 0});
  out_ += bracket;
}

void JsonWriter::Close(char bracket, bool is_object) {
  assert(!stack_.empty() && stack_.back().is_object == is_object &&
         "unbalanced End call");
  (void)is_object;
  if (stack_.empty()) return;
  const Frame frame = stack_.back();
  stack_.pop_back();
  if (frame.members > 0 && !frame.is_inline && indent_ > 0) {
    NewlineIndent(stack_.size());
  }
  out_ += bracket;
}

void JsonWriter::BeginObject() { Open('{', true, false); }
void JsonWriter::BeginInlineObject() { Open('{', true, true); }
void JsonWriter::EndObject() { Close('}', true); }
void JsonWriter::BeginArray() { Open('[', false, false); }
void JsonWriter::BeginInlineArray() { Open('[', false, true); }
void JsonWriter::EndArray() { Close(']', false); }

void JsonWriter::String(std::string_view v) {
  BeginValue();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
}

void JsonWriter::Int(int64_t v) {
  BeginValue();
  out_ += std::to_string(v);
}

void JsonWriter::Double(double v, int precision) {
  BeginValue();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  out_ += FormatDouble(v, precision);
}

void JsonWriter::Bool(bool v) {
  BeginValue();
  out_ += v ? "true" : "false";
}

void JsonWriter::Null() {
  BeginValue();
  out_ += "null";
}

void JsonWriter::Raw(std::string_view v) {
  while (!v.empty() &&
         (v.back() == '\n' || v.back() == '\r' || v.back() == ' ' ||
          v.back() == '\t')) {
    v.remove_suffix(1);
  }
  BeginValue();
  if (v.empty()) {
    out_ += "null";
    return;
  }
  out_.append(v.data(), v.size());
}

std::string JsonWriter::Escape(std::string_view v) {
  std::string out;
  out.reserve(v.size() + 8);
  static const char kHex[] = "0123456789abcdef";
  for (char c : v) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

ReportBuilder::ReportBuilder(int indent) : writer_(indent) {
  writer_.BeginObject();
}

ReportBuilder& ReportBuilder::Field(std::string_view key,
                                    std::string_view value) {
  writer_.Key(key);
  writer_.String(value);
  return *this;
}

ReportBuilder& ReportBuilder::Field(std::string_view key, const char* value) {
  return Field(key, std::string_view(value));
}

ReportBuilder& ReportBuilder::Field(std::string_view key, int64_t value) {
  writer_.Key(key);
  writer_.Int(value);
  return *this;
}

ReportBuilder& ReportBuilder::Field(std::string_view key, int32_t value) {
  return Field(key, static_cast<int64_t>(value));
}

ReportBuilder& ReportBuilder::Field(std::string_view key, double value,
                                    int precision) {
  writer_.Key(key);
  writer_.Double(value, precision);
  return *this;
}

ReportBuilder& ReportBuilder::Field(std::string_view key, bool value) {
  writer_.Key(key);
  writer_.Bool(value);
  return *this;
}

ReportBuilder& ReportBuilder::Key(std::string_view key) {
  writer_.Key(key);
  return *this;
}

std::string ReportBuilder::Finish() && {
  writer_.EndObject();
  return std::move(writer_).TakeString();
}

}  // namespace emp
