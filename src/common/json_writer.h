#ifndef EMP_COMMON_JSON_WRITER_H_
#define EMP_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace emp {

/// Streaming JSON serializer — the single sink every JSON document in this
/// repo flows through (solution reports, telemetry exporters, bench
/// tables, GeoJSON). Centralizes escaping and number formatting so no
/// caller hand-assembles `"\""`-style fragments.
///
/// Usage:
///   JsonWriter w;               // pretty, 2-space indent
///   w.BeginObject();
///   w.Key("p"); w.Int(12);
///   w.Key("areas"); w.BeginInlineArray();
///   for (...) w.Int(a);
///   w.EndArray();
///   w.EndObject();
///   std::string text = std::move(w).TakeString();
///
/// Containers opened with the Inline variants render on a single line
/// (`[1, 2, 3]`), which keeps long id lists compact inside an otherwise
/// pretty document. Nested containers inherit inline-ness from their
/// parent. The writer never emits trailing commas; misuse (value without a
/// pending key inside an object, unbalanced End calls) trips an assert in
/// debug builds and is silently tolerated in release.
class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 renders the whole document on
  /// one line.
  explicit JsonWriter(int indent = 2);

  void BeginObject();
  void BeginInlineObject();
  void EndObject();
  void BeginArray();
  void BeginInlineArray();
  void EndArray();

  /// Emits the member key for the next value (objects only).
  void Key(std::string_view key);

  void String(std::string_view v);
  void Int(int64_t v);
  /// Compact formatting via FormatDouble (integers print without
  /// decimals). Non-finite values serialize as null — JSON has no inf/nan
  /// literals; callers wanting "inf" markers emit them as strings.
  void Double(double v, int precision = 6);
  void Bool(bool v);
  void Null();

  /// Splices pre-serialized JSON in as one value — e.g. embedding a
  /// ProgressToJson / SolutionToJson document inside a larger response.
  /// `v` must itself be valid JSON (trailing whitespace is trimmed); the
  /// writer emits it verbatim, so a malformed fragment corrupts the
  /// document. An empty/whitespace-only `v` emits null.
  void Raw(std::string_view v);

  /// The document so far (valid JSON once every container is closed).
  const std::string& str() const { return out_; }
  std::string TakeString() && { return std::move(out_); }

  /// JSON string-escapes `v` (quotes, backslash, control characters).
  static std::string Escape(std::string_view v);

 private:
  struct Frame {
    bool is_object = false;
    bool is_inline = false;
    int64_t members = 0;
  };

  bool CurrentInline() const;
  void BeginValue();  // separator + layout before any value/container
  void Open(char bracket, bool is_object, bool is_inline);
  void Close(char bracket, bool is_object);
  void NewlineIndent(size_t depth);

  int indent_;
  bool key_pending_ = false;
  std::vector<Frame> stack_;
  std::string out_;
};

/// Builder for the repo's top-level report documents: opens the root
/// object, offers one-call scalar fields, and exposes the underlying
/// JsonWriter for nested structure. Finish() closes the root and yields
/// the text.
class ReportBuilder {
 public:
  explicit ReportBuilder(int indent = 2);

  ReportBuilder& Field(std::string_view key, std::string_view value);
  ReportBuilder& Field(std::string_view key, const char* value);
  ReportBuilder& Field(std::string_view key, int64_t value);
  ReportBuilder& Field(std::string_view key, int32_t value);
  ReportBuilder& Field(std::string_view key, double value,
                       int precision = 6);
  ReportBuilder& Field(std::string_view key, bool value);

  /// Escape hatch for arrays / nested objects: emit the key here, then
  /// drive the writer directly (Begin.../End... must balance).
  JsonWriter& writer() { return writer_; }
  ReportBuilder& Key(std::string_view key);

  /// Closes the root object and returns the document.
  std::string Finish() &&;

 private:
  JsonWriter writer_;
};

}  // namespace emp

#endif  // EMP_COMMON_JSON_WRITER_H_
