#ifndef EMP_COMMON_STR_UTIL_H_
#define EMP_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace emp {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Parses a double; rejects trailing garbage and empty input.
Result<double> ParseDouble(std::string_view s);

/// Parses a signed 64-bit integer; rejects trailing garbage and empty input.
Result<int64_t> ParseInt64(std::string_view s);

/// Joins elements with `sep` ({"a","b"} -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double compactly for reports: integers print without decimals,
/// otherwise up to `precision` significant decimals.
std::string FormatDouble(double v, int precision = 3);

}  // namespace emp

#endif  // EMP_COMMON_STR_UTIL_H_
