#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace emp {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<CsvTable> ParseCsv(const std::string& text) {
  CsvTable table;
  std::istringstream in(text);
  std::string line;
  bool have_header = false;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (StripWhitespace(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    if (!have_header) {
      table.header = std::move(fields);
      have_header = true;
      continue;
    }
    if (fields.size() != table.header.size()) {
      return Status::IOError("csv row " + std::to_string(line_no) + " has " +
                             std::to_string(fields.size()) +
                             " fields, header has " +
                             std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(fields));
  }
  if (!have_header) {
    return Status::IOError("csv input is empty");
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  EMP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseCsv(text);
}

std::string WriteCsv(const CsvTable& table) {
  std::string out = Join(table.header, ",");
  out += '\n';
  for (const auto& row : table.rows) {
    out += Join(row, ",");
    out += '\n';
  }
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  EMP_RETURN_IF_ERROR(WriteFile(tmp, content));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace emp
