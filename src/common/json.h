#ifndef EMP_COMMON_JSON_H_
#define EMP_COMMON_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace emp {
namespace json {

/// Minimal JSON document model — enough to read GeoJSON and the solution
/// reports this library emits, with no third-party dependency. Objects
/// preserve key order (stored as key/value pairs; lookups are linear,
/// which is fine for the small objects GeoJSON uses).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Value() : type_(Type::kNull) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& AsArray() const { return array_; }
  const std::vector<std::pair<std::string, Value>>& AsObject() const {
    return members_;
  }

  /// Object member by key, or nullptr (also for non-objects).
  const Value* Find(std::string_view key) const;

  /// Construction helpers (used by the parser).
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double n);
  static Value String(std::string s);
  static Value Object(std::vector<std::pair<std::string, Value>> members);
  static Value Array(std::vector<Value> elements);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses a complete JSON document (single value; trailing whitespace
/// allowed, trailing garbage rejected). Strings support the standard
/// escapes; \uXXXX decodes basic-multilingual-plane code points to UTF-8.
/// Nesting depth is capped at 256.
Result<Value> Parse(std::string_view text);

}  // namespace json
}  // namespace emp

#endif  // EMP_COMMON_JSON_H_
