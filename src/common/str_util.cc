#include "common/str_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace emp {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Result<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) {
    return Status::InvalidArgument("empty string is not a double");
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v, int precision) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    return os.str();
  }
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  std::string s = os.str();
  // Trim trailing zeros but keep at least one decimal digit.
  size_t dot = s.find('.');
  if (dot != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (last == dot) last = dot + 1;
    s.erase(last + 1);
  }
  return s;
}

}  // namespace emp
