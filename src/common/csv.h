#ifndef EMP_COMMON_CSV_H_
#define EMP_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace emp {

/// A parsed CSV document: a header row plus data rows, all as strings.
/// Minimal dialect: comma-separated, no quoting (our exports never need it),
/// trailing newline optional, blank lines skipped.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1 if absent.
  int ColumnIndex(const std::string& name) const;
};

/// Parses CSV text. Fails if any row's width differs from the header's.
Result<CsvTable> ParseCsv(const std::string& text);

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Serializes a table back to CSV text.
std::string WriteCsv(const CsvTable& table);

/// Writes text to a file, returning IOError on failure.
Status WriteFile(const std::string& path, const std::string& content);

/// Atomically replaces `path` with `content`: writes `path`.tmp and
/// renames it over `path`, so concurrent readers see either the old or
/// the new contents, never a torn write. Used by the periodic metric /
/// journal flushers, whose output is polled while being rewritten.
Status WriteFileAtomic(const std::string& path, const std::string& content);

/// Reads a whole file into a string.
Result<std::string> ReadFile(const std::string& path);

}  // namespace emp

#endif  // EMP_COMMON_CSV_H_
