#include "common/status.h"

namespace emp {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kInfeasible:
      return "infeasible";
    case StatusCode::kIOError:
      return "io-error";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace emp
