#ifndef EMP_COMMON_RNG_H_
#define EMP_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace emp {

/// Deterministic pseudo-random number generator used everywhere randomness
/// is needed (synthetic data, construction-iteration shuffles, Tabu tie
/// breaking). Wrapping a single engine type keeps experiments reproducible
/// across modules and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal draw scaled to N(mean, stddev^2).
  double Normal(double mean, double stddev);

  /// Log-normal draw: exp(N(log_mean, log_stddev^2)).
  double LogNormal(double log_mean, double log_stddev);

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Underlying engine, for interoperating with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Stable 64-bit hash of a string, used to derive per-dataset seeds from
/// dataset names (FNV-1a).
uint64_t StableHash64(const std::string& s);

}  // namespace emp

#endif  // EMP_COMMON_RNG_H_
