#ifndef EMP_COMMON_LOG_H_
#define EMP_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace emp {

/// Log severity, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted (default: kWarning, so library
/// internals stay quiet unless the caller opts in).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_log {

/// Stream-style log line writer; emits to stderr on destruction when the
/// level passes the global filter.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace emp

#define EMP_LOG(level)                                              \
  ::emp::internal_log::LogMessage(::emp::LogLevel::k##level, __FILE__, \
                                  __LINE__)

#endif  // EMP_COMMON_LOG_H_
