#ifndef EMP_COMMON_RESULT_H_
#define EMP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace emp {

/// Either a value of type T or a non-OK Status explaining why the value is
/// absent. Mirrors the absl::StatusOr / arrow::Result idiom.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status. Constructing from an OK
  /// status is a programming error.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result<T> must not be built from an OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ is engaged.
};

}  // namespace emp

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status. `lhs` may include a declaration, e.g.
///   EMP_ASSIGN_OR_RETURN(auto graph, BuildGraph(areas));
#define EMP_ASSIGN_OR_RETURN(lhs, expr)              \
  EMP_ASSIGN_OR_RETURN_IMPL_(                        \
      EMP_RESULT_CONCAT_(emp_result_tmp_, __LINE__), lhs, expr)

#define EMP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

#define EMP_RESULT_CONCAT_(a, b) EMP_RESULT_CONCAT_IMPL_(a, b)
#define EMP_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // EMP_COMMON_RESULT_H_
