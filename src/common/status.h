#ifndef EMP_COMMON_STATUS_H_
#define EMP_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace emp {

/// Error codes used across the library. Fallible operations return a Status
/// (or a Result<T>, see result.h) instead of throwing; exceptions never
/// cross the public API boundary.
enum class StatusCode {
  kOk = 0,
  /// The caller passed an argument that violates the API contract.
  kInvalidArgument,
  /// The operation cannot run in the current state (e.g. solving before
  /// loading a dataset).
  kFailedPrecondition,
  /// A referenced entity (area id, attribute name, dataset name) is unknown.
  kNotFound,
  /// The EMP instance admits no feasible solution under the given
  /// constraints (feasibility-phase verdict, §V-A of the paper).
  kInfeasible,
  /// Parsing or file I/O failure.
  kIOError,
  /// An internal invariant was violated; indicates a library bug.
  kInternal,
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid-argument", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic error indicator carrying a code and a human-readable
/// message. Copyable and cheap when OK (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code-name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace emp

/// Propagates a non-OK Status from an expression to the caller.
#define EMP_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::emp::Status emp_status_macro_tmp_ = (expr);   \
    if (!emp_status_macro_tmp_.ok()) {              \
      return emp_status_macro_tmp_;                 \
    }                                               \
  } while (false)

#endif  // EMP_COMMON_STATUS_H_
