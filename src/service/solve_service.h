#ifndef EMP_SERVICE_SOLVE_SERVICE_H_
#define EMP_SERVICE_SOLVE_SERVICE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "obs/http_server.h"
#include "service/job_manager.h"

namespace emp {
namespace service {

/// Deserializes a POST /solve body into a JobRequest. The wire format:
///
///   {
///     "instance": "2k",                       // catalog name or CSV path
///     "solver": "fact",                       // optional, default "fact"
///     "query": "SUM(TOTALPOP) >= 20000",      // S17 query (fact)
///     "attribute": "TOTALPOP",                // baselines' single-SUM...
///     "threshold": 20000,                     // ...query
///     "options": {"seed": 42, "time_budget_ms": 50, ...}
///   }
///
/// Unknown top-level or option keys are kInvalidArgument (a typo must not
/// silently become a default), as are non-JSON bodies and wrong value
/// types. Query *syntax* errors surface later, from Submit(), with the
/// S17 parser's exact message — both end up as HTTP 400s.
Result<JobRequest> ParseSolveRequest(std::string_view body);

/// One job as a JSON document: id, state, solver, instance + digest,
/// trace id, queue/run timestamps, then termination / error when set, and
/// — only
/// when `include_payloads` — the live progress snapshot and the terminal
/// result report spliced in verbatim.
std::string JobSnapshotToJson(const JobSnapshot& snapshot,
                              bool include_payloads);

/// The solve-service job API, packaged as an HttpServer handler:
///
///   POST /solve             -> 202 + job document | 400/404 | 429 (full)
///   GET  /stats             -> service latency/throughput quantiles
///   GET  /jobs              -> {"jobs": [...]} (no payloads, id order)
///   GET  /jobs/<id>         -> job document with progress + result
///   GET  /jobs/<id>/journal -> the per-job JSONL audit record
///   GET  /jobs/<id>/trace   -> Chrome-trace JSON timeline of the job
///   GET  /jobs/<id>/curve   -> anytime-quality curve (wall_ms, best_p,
///                              heterogeneity, evaluations)
///   POST /jobs/<id>/cancel  -> cooperative cancel, returns the document
///
/// Every error uses the JsonErrorResponse envelope; wrong methods on
/// known routes answer 405 with an Allow header; a POST past the
/// admission queue's capacity answers 429 and still records the job (see
/// JobManager). Unclaimed targets fall through to the server's built-in
/// metrics/progress routes.
///
/// The service owns its JobManager; the handler captures `this`, so the
/// service must outlive the HttpServer it is installed into (stop the
/// server first, then destroy the service).
class SolveService {
 public:
  /// Validates the scheduler options and starts the worker pool.
  static Result<std::unique_ptr<SolveService>> Create(
      JobManager::Options options);

  /// The handler to install as obs::HttpServer::Options::handler.
  obs::HttpServer::Handler Handler();

  /// Direct access for the CLI and tests (shutdown, waits, journals).
  JobManager& jobs() { return *jobs_; }

 private:
  explicit SolveService(std::unique_ptr<JobManager> jobs);

  std::optional<obs::HttpResponse> Handle(const obs::HttpRequest& request);
  obs::HttpResponse HandleSolve(const obs::HttpRequest& request);
  obs::HttpResponse HandleJob(const obs::HttpRequest& request,
                              std::string_view rest);

  std::unique_ptr<JobManager> jobs_;
};

}  // namespace service
}  // namespace emp

#endif  // EMP_SERVICE_SOLVE_SERVICE_H_
