#include "service/solve_service.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/json.h"
#include "common/json_writer.h"

namespace emp {
namespace service {

namespace {

using obs::HttpRequest;
using obs::HttpResponse;
using obs::JsonErrorResponse;

/// Maps a library Status to the envelope the client sees.
HttpResponse ErrorFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return JsonErrorResponse(400, "invalid_argument", status.message());
    case StatusCode::kNotFound:
      return JsonErrorResponse(404, "not_found", status.message());
    case StatusCode::kFailedPrecondition:
      return JsonErrorResponse(409, "conflict", status.message());
    default:
      return JsonErrorResponse(500, "internal", status.message());
  }
}

HttpResponse MethodNotAllowed(const HttpRequest& request,
                              const std::string& allow) {
  HttpResponse response = JsonErrorResponse(
      405, "method_not_allowed",
      request.method + " is not supported on " + request.target);
  response.extra_headers.emplace_back("Allow", allow);
  return response;
}

Status WrongType(std::string_view key, std::string_view want) {
  return Status::InvalidArgument("solve request: '" + std::string(key) +
                                 "' must be a " + std::string(want));
}

Result<int64_t> AsInt(const json::Value& value, std::string_view key) {
  if (!value.is_number()) return WrongType(key, "number");
  const double number = value.AsNumber();
  if (number != std::floor(number)) {
    return Status::InvalidArgument("solve request: '" + std::string(key) +
                                   "' must be an integer");
  }
  return static_cast<int64_t>(number);
}

/// The remotely settable SolverOptions subset: supervision budgets,
/// seeds, and the coarse algorithm knobs. Engine-internal debug switches
/// stay CLI-only.
Status ApplyOption(const std::string& key, const json::Value& value,
                   SolverOptions& options) {
  if (key == "seed") {
    EMP_ASSIGN_OR_RETURN(int64_t v, AsInt(value, key));
    options.seed = static_cast<uint64_t>(v);
  } else if (key == "time_budget_ms") {
    EMP_ASSIGN_OR_RETURN(options.time_budget_ms, AsInt(value, key));
  } else if (key == "max_evaluations") {
    EMP_ASSIGN_OR_RETURN(options.max_evaluations, AsInt(value, key));
  } else if (key == "construction_iterations") {
    EMP_ASSIGN_OR_RETURN(int64_t v, AsInt(value, key));
    options.construction_iterations = static_cast<int>(v);
  } else if (key == "construction_threads") {
    EMP_ASSIGN_OR_RETURN(int64_t v, AsInt(value, key));
    options.construction_threads = static_cast<int>(v);
  } else if (key == "tabu_tenure") {
    EMP_ASSIGN_OR_RETURN(int64_t v, AsInt(value, key));
    options.tabu_tenure = static_cast<int>(v);
  } else if (key == "tabu_max_no_improve") {
    EMP_ASSIGN_OR_RETURN(options.tabu_max_no_improve, AsInt(value, key));
  } else if (key == "tabu_max_iterations") {
    EMP_ASSIGN_OR_RETURN(options.tabu_max_iterations, AsInt(value, key));
  } else if (key == "portfolio_replicas") {
    EMP_ASSIGN_OR_RETURN(int64_t v, AsInt(value, key));
    options.portfolio_replicas = static_cast<int>(v);
  } else if (key == "portfolio_threads") {
    EMP_ASSIGN_OR_RETURN(int64_t v, AsInt(value, key));
    options.portfolio_threads = static_cast<int>(v);
  } else if (key == "run_local_search") {
    if (!value.is_bool()) return WrongType(key, "boolean");
    options.run_local_search = value.AsBool();
  } else if (key == "filter_invalid_areas") {
    if (!value.is_bool()) return WrongType(key, "boolean");
    options.filter_invalid_areas = value.AsBool();
  } else {
    return Status::InvalidArgument(
        "solve request: unknown option '" + key +
        "' (settable: seed, time_budget_ms, max_evaluations, "
        "construction_iterations, construction_threads, tabu_tenure, "
        "tabu_max_no_improve, tabu_max_iterations, portfolio_replicas, "
        "portfolio_threads, run_local_search, filter_invalid_areas)");
  }
  return Status::OK();
}

}  // namespace

Result<JobRequest> ParseSolveRequest(std::string_view body) {
  if (body.empty()) {
    return Status::InvalidArgument(
        "solve request: empty body (expected a JSON object)");
  }
  Result<json::Value> parsed = json::Parse(body);
  if (!parsed.ok()) {
    return Status::InvalidArgument("solve request: body is not JSON: " +
                                   parsed.status().message());
  }
  if (!parsed->is_object()) {
    return Status::InvalidArgument(
        "solve request: body must be a JSON object");
  }

  JobRequest request;
  for (const auto& [key, value] : parsed->AsObject()) {
    if (key == "instance") {
      if (!value.is_string()) return WrongType(key, "string");
      request.instance = value.AsString();
    } else if (key == "solver") {
      if (!value.is_string()) return WrongType(key, "string");
      request.solver = value.AsString();
    } else if (key == "query") {
      if (!value.is_string()) return WrongType(key, "string");
      request.query = value.AsString();
    } else if (key == "attribute") {
      if (!value.is_string()) return WrongType(key, "string");
      request.attribute = value.AsString();
    } else if (key == "threshold") {
      if (!value.is_number()) return WrongType(key, "number");
      request.threshold = value.AsNumber();
    } else if (key == "options") {
      if (!value.is_object()) return WrongType(key, "object");
      for (const auto& [option_key, option_value] : value.AsObject()) {
        EMP_RETURN_IF_ERROR(
            ApplyOption(option_key, option_value, request.options));
      }
    } else {
      return Status::InvalidArgument(
          "solve request: unknown field '" + key +
          "' (expected: instance, solver, query, attribute, threshold, "
          "options)");
    }
  }
  if (request.instance.empty()) {
    return Status::InvalidArgument(
        "solve request: 'instance' is required (a catalog dataset name or "
        "a CSV path)");
  }
  return request;
}

std::string JobSnapshotToJson(const JobSnapshot& snapshot,
                              bool include_payloads) {
  JsonWriter w(2);
  w.BeginObject();
  w.Key("job_id");
  w.Int(snapshot.id);
  w.Key("state");
  w.String(JobStateName(snapshot.state));
  w.Key("solver");
  w.String(snapshot.solver);
  w.Key("instance");
  w.String(snapshot.instance);
  w.Key("instance_digest");
  w.String(snapshot.instance_digest);
  w.Key("trace_id");
  w.String(snapshot.trace_id);
  w.Key("queued_ms");
  w.Int(snapshot.queued_ms);
  w.Key("started_ms");
  w.Int(snapshot.started_ms);
  w.Key("finished_ms");
  w.Int(snapshot.finished_ms);
  if (!snapshot.termination.empty()) {
    w.Key("termination");
    w.String(snapshot.termination);
  }
  if (!snapshot.error.empty()) {
    w.Key("error");
    w.String(snapshot.error);
  }
  if (include_payloads) {
    w.Key("progress");
    w.Raw(snapshot.progress_json);
    if (!snapshot.result_json.empty()) {
      w.Key("result");
      w.Raw(snapshot.result_json);
    }
  }
  w.EndObject();
  return std::move(w).TakeString() + "\n";
}

SolveService::SolveService(std::unique_ptr<JobManager> jobs)
    : jobs_(std::move(jobs)) {}

Result<std::unique_ptr<SolveService>> SolveService::Create(
    JobManager::Options options) {
  EMP_ASSIGN_OR_RETURN(std::unique_ptr<JobManager> jobs,
                       JobManager::Create(std::move(options)));
  return std::unique_ptr<SolveService>(new SolveService(std::move(jobs)));
}

obs::HttpServer::Handler SolveService::Handler() {
  return [this](const HttpRequest& request) { return Handle(request); };
}

std::optional<HttpResponse> SolveService::Handle(const HttpRequest& request) {
  if (request.target == "/solve") return HandleSolve(request);
  if (request.target == "/stats") {
    if (request.method != "GET") return MethodNotAllowed(request, "GET");
    return HttpResponse{200, "application/json",
                        jobs_->StatsJson() + "\n", {}};
  }
  if (request.target == "/jobs") {
    if (request.method != "GET") return MethodNotAllowed(request, "GET");
    JsonWriter w(2);
    w.BeginObject();
    w.Key("jobs");
    w.BeginArray();
    for (const JobSnapshot& snapshot : jobs_->List()) {
      w.Raw(JobSnapshotToJson(snapshot, /*include_payloads=*/false));
    }
    w.EndArray();
    w.EndObject();
    return HttpResponse{
        200, "application/json", std::move(w).TakeString() + "\n", {}};
  }
  constexpr std::string_view kJobsPrefix = "/jobs/";
  if (request.target.compare(0, kJobsPrefix.size(), kJobsPrefix) == 0) {
    return HandleJob(request, std::string_view(request.target)
                                  .substr(kJobsPrefix.size()));
  }
  return std::nullopt;  // fall through to the built-in obs routes
}

HttpResponse SolveService::HandleSolve(const HttpRequest& request) {
  if (request.method != "POST") return MethodNotAllowed(request, "POST");
  Result<JobRequest> parsed = ParseSolveRequest(request.body);
  if (!parsed.ok()) return ErrorFromStatus(parsed.status());
  Result<JobSnapshot> submitted = jobs_->Submit(*parsed);
  if (!submitted.ok()) return ErrorFromStatus(submitted.status());
  if (submitted->state == JobState::kRejected) {
    // Admission refusal: the envelope plus the recorded job's id, so the
    // client can still audit the refusal under /jobs/<id>.
    JsonWriter w(2);
    w.BeginObject();
    w.Key("job_id");
    w.Int(submitted->id);
    w.Key("error");
    w.BeginObject();
    w.Key("code");
    w.String("queue_full");
    w.Key("message");
    w.String(submitted->error);
    w.EndObject();
    w.EndObject();
    return HttpResponse{
        429, "application/json", std::move(w).TakeString() + "\n", {}};
  }
  return HttpResponse{202, "application/json",
                      JobSnapshotToJson(*submitted, /*include_payloads=*/true),
                      {}};
}

HttpResponse SolveService::HandleJob(const HttpRequest& request,
                                     std::string_view rest) {
  const size_t slash = rest.find('/');
  const std::string id_text(rest.substr(0, slash));
  const std::string action(
      slash == std::string_view::npos ? "" : std::string(rest.substr(slash)));

  // Strict parse: decimal digits only. strtoll alone would accept "+5",
  // " 5", "5x" prefixes via partial consumption, negative ids, and would
  // silently clamp overflow to LLONG_MAX — all of which must 404 with an
  // explicit message instead of aliasing a real id.
  const bool all_digits =
      !id_text.empty() &&
      std::all_of(id_text.begin(), id_text.end(),
                  [](unsigned char c) { return std::isdigit(c) != 0; });
  if (!all_digits) {
    return JsonErrorResponse(404, "not_found",
                             "malformed job id '" + id_text + "'");
  }
  errno = 0;
  char* end = nullptr;
  const long long job_id = std::strtoll(id_text.c_str(), &end, 10);
  if (errno == ERANGE || *end != '\0') {
    return JsonErrorResponse(404, "not_found",
                             "job id '" + id_text + "' out of range");
  }

  if (action.empty()) {
    if (request.method != "GET") return MethodNotAllowed(request, "GET");
    Result<JobSnapshot> snapshot = jobs_->Get(job_id);
    if (!snapshot.ok()) return ErrorFromStatus(snapshot.status());
    return HttpResponse{
        200, "application/json",
        JobSnapshotToJson(*snapshot, /*include_payloads=*/true), {}};
  }
  if (action == "/journal") {
    if (request.method != "GET") return MethodNotAllowed(request, "GET");
    Result<std::string> jsonl = jobs_->JournalJsonl(job_id);
    if (!jsonl.ok()) return ErrorFromStatus(jsonl.status());
    return HttpResponse{200, "application/x-ndjson", *std::move(jsonl), {}};
  }
  if (action == "/cancel") {
    if (request.method != "POST") return MethodNotAllowed(request, "POST");
    Result<JobSnapshot> snapshot = jobs_->Cancel(job_id);
    if (!snapshot.ok()) return ErrorFromStatus(snapshot.status());
    return HttpResponse{
        200, "application/json",
        JobSnapshotToJson(*snapshot, /*include_payloads=*/true), {}};
  }
  if (action == "/trace") {
    if (request.method != "GET") return MethodNotAllowed(request, "GET");
    Result<std::string> trace = jobs_->TraceJson(job_id);
    if (!trace.ok()) return ErrorFromStatus(trace.status());
    return HttpResponse{200, "application/json", *std::move(trace) + "\n",
                        {}};
  }
  if (action == "/curve") {
    if (request.method != "GET") return MethodNotAllowed(request, "GET");
    Result<std::string> curve = jobs_->CurveJson(job_id);
    if (!curve.ok()) return ErrorFromStatus(curve.status());
    return HttpResponse{200, "application/json", *std::move(curve) + "\n",
                        {}};
  }
  return JsonErrorResponse(
      404, "not_found",
      "no route for " + request.target +
          "; job routes: /jobs/<id>, /jobs/<id>/journal, /jobs/<id>/trace, "
          "/jobs/<id>/curve, /jobs/<id>/cancel");
}

}  // namespace service
}  // namespace emp
