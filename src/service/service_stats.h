#ifndef EMP_SERVICE_SERVICE_STATS_H_
#define EMP_SERVICE_SERVICE_STATS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/quantile.h"

namespace emp {

namespace obs {
class MetricRegistry;
class Summary;
}  // namespace obs

namespace service {

/// Streaming latency accounting for the solve service, fed once per
/// terminal job and served at GET /stats. Per solver kind it tracks three
/// latency dimensions — queue wait (admission to pickup), solve time
/// (pickup to terminal), and end-to-end (admission to terminal) — each as
/// an all-time quantile sketch plus sliding 1m/5m windows, alongside
/// outcome counters (done/failed/cancelled/rejected) that yield
/// throughput and rejection/cancellation rates.
///
/// Quantile estimates come from obs::QuantileSketch; every reported block
/// carries its own `rank_error_bound` so consumers never have to guess
/// the sketch configuration. Windows use obs::WindowedQuantiles with the
/// default 10 x 30s ring, so the 5m window spans the whole ring and the
/// 1m window merges the freshest two buckets.
///
/// Thread-safety: all methods are safe from any thread; RecordTerminal
/// runs at most once per job (the JobManager calls it under its own
/// terminal transition), so one mutex around the kind map is cheap.
class ServiceStats {
 public:
  struct Options {
    /// Mirrors the aggregate (all-kind) latency dimensions into
    /// emp_service_{queue_wait,solve,e2e}_ms summary metrics; may be
    /// null. Must outlive the stats object.
    obs::MetricRegistry* metrics = nullptr;
    /// Sliding-window shape shared by every track.
    obs::WindowedQuantiles::Options window;
    /// Injectable clock (milliseconds, monotone) for deterministic
    /// window tests; defaults to steady_clock since construction.
    std::function<int64_t()> now_ms;
  };

  /// Terminal verdict of a job, mirroring JobState's terminal subset.
  enum class Outcome { kDone, kFailed, kCancelled, kRejected };

  ServiceStats() : ServiceStats(Options{}) {}
  explicit ServiceStats(Options options);
  ~ServiceStats();
  ServiceStats(const ServiceStats&) = delete;
  ServiceStats& operator=(const ServiceStats&) = delete;

  /// Records one job reaching a terminal state. Durations in
  /// milliseconds; pass a negative duration to skip that dimension (a
  /// rejected job has no solve time, a cancelled-before-pickup job only
  /// a queue wait). `solver_kind` is the job's solver name ("fact", ...);
  /// rejected jobs may not have resolved one — they are recorded under
  /// "unknown" when empty.
  void RecordTerminal(std::string_view solver_kind, Outcome outcome,
                      int64_t queue_wait_ms, int64_t solve_ms,
                      int64_t e2e_ms);

  /// The GET /stats document: outcome counters, rejection/cancellation
  /// rates, 1m/5m throughput, and per-kind latency quantiles (all-time +
  /// windows, each with count and rank_error_bound).
  std::string ToJson() const;

  int64_t recorded_jobs() const;

 private:
  struct Track;
  struct KindStats;

  KindStats& KindLocked(std::string_view solver_kind);

  const std::function<int64_t()> now_ms_;
  const obs::WindowedQuantiles::Options window_options_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<KindStats>, std::less<>> kinds_;
  int64_t done_ = 0;
  int64_t failed_ = 0;
  int64_t cancelled_ = 0;
  int64_t rejected_ = 0;

  // Aggregate summaries on the shared registry (null when detached).
  obs::Summary* queue_wait_summary_ = nullptr;
  obs::Summary* solve_summary_ = nullptr;
  obs::Summary* e2e_summary_ = nullptr;
};

}  // namespace service
}  // namespace emp

#endif  // EMP_SERVICE_SERVICE_STATS_H_
