#include "service/job_manager.h"

#include <utility>

#include "common/json_writer.h"
#include "common/stopwatch.h"
#include "core/report.h"
#include "data/loader.h"
#include "data/synthetic/dataset_catalog.h"
#include "obs/curve.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace emp {
namespace service {

namespace {

/// FNV-1a over (job id, admission time, instance digest): a stable 16-hex
/// id that distinguishes re-submissions of the same instance without any
/// global randomness source.
std::string MakeTraceId(int64_t job_id, int64_t queued_ms,
                        std::string_view instance_digest) {
  uint64_t h = 1469598103934665603ull;
  const auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  const auto mix_u64 = [&mix_byte](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
    }
  };
  mix_u64(static_cast<uint64_t>(job_id));
  mix_u64(static_cast<uint64_t>(queued_ms));
  for (char c : instance_digest) {
    mix_byte(static_cast<unsigned char>(c));
  }
  return obs::DigestHex(h);
}

}  // namespace

std::string_view JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kRejected:
      return "rejected";
  }
  return "unknown";
}

bool IsTerminalJobState(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

/// Everything the manager tracks about one job. Guarded by JobManager::mu_
/// except: `board` and `journal` are internally synchronized (the solve
/// writes them without the manager lock), and `cancel` copies share an
/// atomic flag.
struct JobManager::Job {
  explicit Job(size_t journal_max_records) : journal(journal_max_records) {}

  int64_t id = 0;
  JobState state = JobState::kQueued;
  std::string instance;
  std::string instance_digest;
  std::string trace_id;
  std::string error;
  std::string termination;
  std::string result_json;
  int64_t queued_ms = -1;
  int64_t started_ms = -1;
  int64_t finished_ms = -1;

  /// Keeps the cached instance alive for the solver's borrowed pointer.
  std::shared_ptr<const AreaSet> areas;
  std::unique_ptr<Solver> solver;
  std::string solver_name;
  CancellationToken cancel;
  obs::ProgressBoard board;
  obs::RunJournal journal;
  /// Per-job timeline, epoch = admission (construction at Submit), so the
  /// queue-wait span starts at ts 0. Internally synchronized like the
  /// board/journal.
  obs::TraceBuffer trace{4096};
  /// Anytime-quality recorder, wall clock also starting at admission.
  obs::AnytimeCurve curve;
};

JobManager::JobManager(Options options)
    : options_(std::move(options)),
      epoch_(std::chrono::steady_clock::now()),
      stats_(ServiceStats::Options{options_.metrics, {}, nullptr}) {}

Result<std::unique_ptr<JobManager>> JobManager::Create(Options options) {
  if (options.workers < 1) {
    return Status::InvalidArgument("JobManager: workers must be >= 1, got " +
                                   std::to_string(options.workers));
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument(
        "JobManager: queue_capacity must be >= 1, got " +
        std::to_string(options.queue_capacity));
  }
  std::unique_ptr<JobManager> manager(new JobManager(std::move(options)));
  manager->workers_.reserve(manager->options_.workers);
  for (int i = 0; i < manager->options_.workers; ++i) {
    manager->workers_.emplace_back([raw = manager.get()] {
      raw->WorkerLoop();
    });
  }
  return manager;
}

JobManager::~JobManager() { Shutdown(); }

int64_t JobManager::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Result<std::shared_ptr<const AreaSet>> JobManager::LoadInstance(
    const std::string& reference) {
  if (reference.empty()) {
    return Status::InvalidArgument("job request: empty instance reference");
  }
  {
    std::lock_guard<std::mutex> lock(instances_mu_);
    auto it = instances_.find(reference);
    if (it != instances_.end()) return it->second;
  }
  // Synthesize / load outside the cache lock — both paths are
  // deterministic for a given reference, so a racing duplicate load
  // produces an identical instance and the loser is simply dropped.
  // Compact digests are re-verified here: the cache below dedupes by
  // digest, so a file whose unverified header claimed another instance's
  // digest would bind every later job to the wrong data.
  LoaderOptions loader_options;
  loader_options.verify_compact_digest = true;
  Result<AreaSet> loaded = synthetic::FindDataset(reference).ok()
                               ? synthetic::MakeCatalogDataset(reference)
                               : LoadAreaSetAuto(reference, loader_options);
  if (!loaded.ok()) {
    return Status::NotFound("instance '" + reference +
                            "' is neither a catalog dataset nor a loadable "
                            "instance file: " + loaded.status().message());
  }
  // Memoized on the instance, so this is paid once per load, not per job
  // (for compact images the verified load above already computed it).
  const uint64_t digest = loaded->InstanceDigest();
  auto areas = std::make_shared<const AreaSet>(*std::move(loaded));
  std::lock_guard<std::mutex> lock(instances_mu_);
  // Dedupe by digest: if any reference already produced this exact
  // instance, every new reference shares that one image.
  auto [digest_it, fresh] = instances_by_digest_.emplace(digest, areas);
  auto [it, inserted] = instances_.emplace(reference, digest_it->second);
  return it->second;
}

Result<JobSnapshot> JobManager::Submit(const JobRequest& request) {
  // Bind the whole request before taking a queue slot, so a bad request
  // fails with the library's exact Status and is never admitted.
  Stopwatch bind_timer;
  EMP_ASSIGN_OR_RETURN(std::shared_ptr<const AreaSet> areas,
                       LoadInstance(request.instance));
  const double bind_ms = bind_timer.ElapsedSeconds() * 1000.0;
  SolverSpec spec;
  spec.solver = request.solver;
  spec.areas = areas.get();
  spec.query = request.query;
  spec.attribute = request.attribute;
  spec.threshold = request.threshold;
  spec.options = request.options;
  // A job runs inside a server already; never self-host another plane.
  spec.options.serve_port = -1;
  EMP_ASSIGN_OR_RETURN(std::unique_ptr<Solver> solver, CreateSolver(spec));

  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("JobManager is shut down");
  }
  auto job = std::make_unique<Job>(options_.journal_max_records);
  job->id = next_id_++;
  job->instance = request.instance;
  job->instance_digest = obs::DigestHex(areas->InstanceDigest());
  job->areas = std::move(areas);
  job->solver_name = std::string(solver->name());
  job->solver = std::move(solver);
  job->queued_ms = NowMs();
  job->trace_id = MakeTraceId(job->id, job->queued_ms, job->instance_digest);
  // Instance bind (load/synthesize or cache hit) happened just before the
  // trace epoch; record it as a point sample carrying its cost in ms.
  job->trace.RecordInstant("instance.bind", bind_ms);

  if (options_.metrics != nullptr) {
    options_.metrics
        ->GetCounter("emp_service_jobs_submitted_total",
                     "Solve jobs admitted or rejected by the service.")
        ->Add(1);
  }

  if (static_cast<int>(queue_.size()) >= options_.queue_capacity) {
    job->state = JobState::kRejected;
    job->error = "queue full: " + std::to_string(queue_.size()) +
                 " jobs waiting (capacity " +
                 std::to_string(options_.queue_capacity) + ")";
    job->finished_ms = job->queued_ms;
    if (options_.metrics != nullptr) {
      options_.metrics
          ->GetCounter("emp_service_jobs_rejected_total",
                       "Solve jobs refused at admission (queue full).")
          ->Add(1);
    }
    Job& ref = *job;
    jobs_.emplace(ref.id, std::move(job));
    RecordTerminalLocked(ref);
    terminal_cv_.notify_all();
    return SnapshotLocked(ref, /*include_payloads=*/true);
  }

  Job& ref = *job;
  jobs_.emplace(ref.id, std::move(job));
  queue_.push_back(ref.id);
  work_cv_.notify_one();
  return SnapshotLocked(ref, /*include_payloads=*/true);
}

void JobManager::WorkerLoop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
      const int64_t id = queue_.front();
      queue_.pop_front();
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      // A queued job cancelled before pickup is already terminal.
      if (it->second->state != JobState::kQueued) continue;
      job = it->second.get();
      job->state = JobState::kRunning;
      job->started_ms = NowMs();
    }
    // Queue wait as a first-class span: the trace epoch is admission, so
    // [0, now] is exactly the time this job sat waiting for a worker.
    job->trace.RecordSpan("queue.wait", 0, job->trace.NowMicros(),
                          /*worker=*/0);
    if (options_.on_job_started) options_.on_job_started(job->id);
    RunJob(*job);
  }
}

void JobManager::RunJob(Job& job) {
  // The audit key: job id + instance digest, as the first record of the
  // per-job journal (the solver's own run_start repeats the digest).
  job.journal.Append("job_start", [&job](JsonWriter& w) {
    w.Key("job_id");
    w.Int(job.id);
    w.Key("trace_id");
    w.String(job.trace_id);
    w.Key("instance");
    w.String(job.instance);
    w.Key("instance_digest");
    w.String(job.instance_digest);
    w.Key("solver");
    w.String(job.solver_name);
  });

  RunContext ctx = MakeRunContext(job.solver->options());
  ctx.cancel = job.cancel;  // copies share the flag
  ctx.progress_board = &job.board;
  ctx.journal = &job.journal;
  ctx.trace = &job.trace;
  ctx.curve = &job.curve;
  Result<Solution> result = job.solver->Solve(ctx);

  std::lock_guard<std::mutex> lock(mu_);
  if (result.ok()) {
    const Solution& solution = *result;
    job.termination = std::string(
        TerminationReasonName(solution.termination_reason));
    job.state = solution.termination_reason == TerminationReason::kCancelled
                    ? JobState::kCancelled
                    : JobState::kDone;
    Result<std::string> report = SolutionToJson(
        *job.areas, job.solver->constraints(), solution);
    if (report.ok()) {
      job.result_json = *std::move(report);
    } else {
      job.state = JobState::kFailed;
      job.error = "result serialization failed: " +
                  report.status().message();
    }
  } else {
    job.state = JobState::kFailed;
    job.error = result.status().message();
  }
  job.finished_ms = NowMs();
  // The anytime curve goes into the journal too (forced, like job_end),
  // so the audit trail alone reconstructs quality-vs-time.
  job.journal.Append(
      "anytime_curve",
      [&job](JsonWriter& w) {
        w.Key("job_id");
        w.Int(job.id);
        w.Key("curve");
        w.Raw(job.curve.ToJson());
      },
      /*force=*/true);
  job.journal.Append(
      "job_end",
      [&job](JsonWriter& w) {
        w.Key("job_id");
        w.Int(job.id);
        w.Key("state");
        w.String(JobStateName(job.state));
        if (!job.termination.empty()) {
          w.Key("termination");
          w.String(job.termination);
        }
        if (!job.error.empty()) {
          w.Key("error");
          w.String(job.error);
        }
      },
      /*force=*/true);
  job.solver.reset();  // the solver borrowed areas; drop it first
  CountFinishedLocked(job);
  RecordTerminalLocked(job);
  terminal_cv_.notify_all();
}

void JobManager::CountFinishedLocked(const Job& job) {
  if (options_.metrics == nullptr) return;
  options_.metrics
      ->GetCounter("emp_service_jobs_finished_total",
                   "Solve jobs reaching done/failed/cancelled.")
      ->Add(1);
  (void)job;
}

void JobManager::RecordTerminalLocked(const Job& job) {
  ServiceStats::Outcome outcome;
  switch (job.state) {
    case JobState::kDone:
      outcome = ServiceStats::Outcome::kDone;
      break;
    case JobState::kFailed:
      outcome = ServiceStats::Outcome::kFailed;
      break;
    case JobState::kCancelled:
      outcome = ServiceStats::Outcome::kCancelled;
      break;
    case JobState::kRejected:
      outcome = ServiceStats::Outcome::kRejected;
      break;
    default:
      return;  // not terminal; nothing to record
  }
  // Dimensions a job never reached stay negative and are skipped by the
  // stats: a rejected job has no queue wait or solve time, a job
  // cancelled before pickup no solve time.
  const bool picked_up = job.started_ms >= 0;
  const int64_t queue_wait_ms =
      outcome == ServiceStats::Outcome::kRejected
          ? -1
          : (picked_up ? job.started_ms : job.finished_ms) - job.queued_ms;
  const int64_t solve_ms =
      picked_up ? job.finished_ms - job.started_ms : -1;
  const int64_t e2e_ms = job.finished_ms - job.queued_ms;
  stats_.RecordTerminal(job.solver_name, outcome, queue_wait_ms, solve_ms,
                        e2e_ms);
}

Result<JobSnapshot> JobManager::Cancel(int64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(job_id));
  }
  Job& job = *it->second;
  if (job.state == JobState::kQueued) {
    job.state = JobState::kCancelled;
    job.error = "cancelled before pickup";
    job.finished_ms = NowMs();
    job.journal.Append(
        "job_end",
        [&job](JsonWriter& w) {
          w.Key("job_id");
          w.Int(job.id);
          w.Key("state");
          w.String(JobStateName(job.state));
          w.Key("error");
          w.String(job.error);
        },
        /*force=*/true);
    CountFinishedLocked(job);
    RecordTerminalLocked(job);
    terminal_cv_.notify_all();
  } else if (job.state == JobState::kRunning) {
    job.cancel.Cancel();  // observed at the solver's next checkpoint
  }
  return SnapshotLocked(job, /*include_payloads=*/true);
}

JobSnapshot JobManager::SnapshotLocked(const Job& job,
                                       bool include_payloads) const {
  JobSnapshot snapshot;
  snapshot.id = job.id;
  snapshot.state = job.state;
  snapshot.solver = job.solver_name;
  snapshot.instance = job.instance;
  snapshot.instance_digest = job.instance_digest;
  snapshot.trace_id = job.trace_id;
  snapshot.error = job.error;
  snapshot.termination = job.termination;
  snapshot.queued_ms = job.queued_ms;
  snapshot.started_ms = job.started_ms;
  snapshot.finished_ms = job.finished_ms;
  if (include_payloads) {
    snapshot.progress_json = obs::ProgressToJson(job.board.Read());
    snapshot.result_json = job.result_json;
  }
  return snapshot;
}

Result<JobSnapshot> JobManager::Get(int64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(job_id));
  }
  return SnapshotLocked(*it->second, /*include_payloads=*/true);
}

std::vector<JobSnapshot> JobManager::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobSnapshot> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    out.push_back(SnapshotLocked(*job, /*include_payloads=*/false));
  }
  return out;
}

Result<std::string> JobManager::JournalJsonl(int64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(job_id));
  }
  return it->second->journal.ToJsonl();
}

Result<std::string> JobManager::TraceJson(int64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(job_id));
  }
  // The buffer is internally synchronized, so serializing a running job's
  // live timeline is safe — the export is simply a point-in-time view.
  return it->second->trace.ToJson(it->second->trace_id);
}

Result<std::string> JobManager::CurveJson(int64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(job_id));
  }
  return it->second->curve.ToJson();
}

Result<JobState> JobManager::WaitTerminal(int64_t job_id, int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(job_id));
  }
  Job* job = it->second.get();
  const auto terminal = [job] { return IsTerminalJobState(job->state); };
  if (timeout_ms < 0) {
    terminal_cv_.wait(lock, terminal);
  } else if (!terminal_cv_.wait_for(
                 lock, std::chrono::milliseconds(timeout_ms), terminal)) {
    return Status::FailedPrecondition(
        "job " + std::to_string(job_id) + " still " +
        std::string(JobStateName(job->state)) + " after " +
        std::to_string(timeout_ms) + "ms");
  }
  return job->state;
}

void JobManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // fall through to the joins below (idempotent)
    }
    shutdown_ = true;
    for (const int64_t id : queue_) {
      auto it = jobs_.find(id);
      if (it == jobs_.end() || it->second->state != JobState::kQueued) {
        continue;
      }
      Job& job = *it->second;
      job.state = JobState::kCancelled;
      job.error = "cancelled by shutdown";
      job.finished_ms = NowMs();
      CountFinishedLocked(job);
      RecordTerminalLocked(job);
    }
    queue_.clear();
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) job->cancel.Cancel();
    }
    work_cv_.notify_all();
    terminal_cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace service
}  // namespace emp
