#ifndef EMP_SERVICE_JOB_MANAGER_H_
#define EMP_SERVICE_JOB_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/solver.h"
#include "core/solver_options.h"
#include "data/area_set.h"
#include "obs/journal.h"
#include "obs/progress.h"
#include "service/service_stats.h"

namespace emp {

namespace obs {
class MetricRegistry;
}  // namespace obs

namespace service {

/// Lifecycle of one solve job. `kQueued` and `kRunning` are transient;
/// the other four are terminal. `kRejected` is a *recorded* verdict, not
/// a dropped request: an admission-control refusal still creates a job so
/// the audit trail shows what overload turned away.
///
///   queued ──> running ──> done | failed | cancelled
///     │                               ▲
///     └── cancel before pickup ───────┘
///   (admission refusal) ──> rejected
enum class JobState : int32_t {
  kQueued = 0,
  kRunning,
  kDone,       // solve returned a Solution (possibly degraded by budget)
  kFailed,     // solve returned an error Status (infeasible, invalid, ...)
  kCancelled,  // cancelled before pickup, or solve observed the token
  kRejected,   // refused at admission (queue full)
};

/// Canonical lower-case name ("queued", "running", "done", ...).
std::string_view JobStateName(JobState state);

/// True for done/failed/cancelled/rejected.
bool IsTerminalJobState(JobState state);

/// One solve request, the deserialized form of the POST /solve body.
/// `instance` names a synthetic catalog dataset ("tiny", "2k", ...) or,
/// when no catalog entry matches, a file path — a compact .emp image
/// (mmap'd, shared) or a CSV for the loader. The
/// solver/query/attribute/threshold fields mirror SolverSpec; options
/// carry the supervision budget (time_budget_ms / max_evaluations) the
/// job's RunContext enforces. SolverOptions::serve_port is ignored — jobs
/// run inside a server already and never self-host another one.
struct JobRequest {
  std::string instance;
  std::string solver = "fact";
  std::string query;
  std::string attribute;
  double threshold = -1.0;
  SolverOptions options;
};

/// Point-in-time copy of one job's public fields. `progress_json` is the
/// live ProgressToJson document of the job's own board (idle snapshot
/// before the job starts); `result_json` is the SolutionToJson report,
/// present only in terminal states that produced a solution (done, and
/// cancelled runs that degraded to a partial solution). Times are
/// milliseconds since the manager was created, -1 where not reached.
struct JobSnapshot {
  int64_t id = 0;
  JobState state = JobState::kQueued;
  std::string solver;
  std::string instance;
  std::string instance_digest;  // 16 hex chars once the instance is bound
  /// 16-hex job trace id (FNV-1a over id, admission time, and instance
  /// digest), assigned at admission and threaded through the job journal
  /// and the Chrome-trace export.
  std::string trace_id;
  std::string error;            // failed/rejected detail
  std::string termination;      // TerminationReasonName once solved
  std::string progress_json;
  std::string result_json;
  int64_t queued_ms = -1;
  int64_t started_ms = -1;
  int64_t finished_ms = -1;
};

/// The solve service's scheduler: a bounded FIFO admission queue in front
/// of a fixed worker pool. Submit() validates the whole request eagerly —
/// instance reference, solver name, S17 query syntax, constraint binding,
/// option domains — so a malformed request fails with the library's exact
/// kInvalidArgument/kNotFound Status (the HTTP layer surfaces it as a
/// 400/404) and never occupies a queue slot. A valid request past a full
/// queue is recorded as a `rejected` job (HTTP 429): overload degrades
/// into fast refusals instead of pileup.
///
/// Each job runs under its own RunContext (deadline + evaluation budget
/// from its SolverOptions, the job's cancellation token, a per-job
/// ProgressBoard, and a per-job RunJournal whose job_start record keys the
/// audit trail by job id + instance digest). Instances are cached twice
/// over: by reference, so N jobs against "2k" synthesize it once, and by
/// instance digest, so different references to the same data — a catalog
/// name, its packed .emp file, an exported CSV — share one image.
///
/// Thread-safety: every public method is safe from any thread. Snapshots
/// are copies; nothing returned borrows manager-internal state.
class JobManager {
 public:
  struct Options {
    /// Worker threads executing jobs; >= 1.
    int workers = 2;
    /// Bounded admission queue: at most this many jobs waiting (running
    /// jobs do not count); >= 1. The (workers + queue_capacity + 1)-th
    /// concurrent submission is rejected.
    int queue_capacity = 8;
    /// Bound for each per-job journal.
    size_t journal_max_records = 4096;
    /// Service-level counters (emp_service_jobs_{submitted,rejected,
    /// finished}_total); may be null.
    obs::MetricRegistry* metrics = nullptr;
    /// Test hook: called on the worker thread right after a job enters
    /// kRunning and before its solve starts. May block — tests use it as
    /// a gate to hold a worker busy deterministically. Null in production.
    std::function<void(int64_t job_id)> on_job_started;
  };

  /// Validates options and starts the worker pool.
  static Result<std::unique_ptr<JobManager>> Create(Options options);

  ~JobManager();
  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Admits one job. Returns the new job's snapshot — state kQueued, or
  /// kRejected when the queue is full (still a recorded job; the HTTP
  /// layer maps it to 429). Errors mean the request itself is bad
  /// (unknown instance/solver, malformed query, out-of-domain options)
  /// or the manager is shut down; no job is recorded for those.
  Result<JobSnapshot> Submit(const JobRequest& request);

  /// Cooperative cancellation. A queued job goes terminal immediately; a
  /// running job has its token cancelled and goes terminal at the
  /// solver's next supervision checkpoint (the returned snapshot still
  /// says kRunning). Cancelling a terminal job is a no-op. NotFound for
  /// unknown ids.
  Result<JobSnapshot> Cancel(int64_t job_id);

  /// Snapshot of one job (NotFound for unknown ids).
  Result<JobSnapshot> Get(int64_t job_id) const;

  /// Snapshots of every job, without the (possibly large) result_json /
  /// progress_json payloads. Ordering guarantee: ascending job id, which
  /// IS submission order — ids are assigned from a counter under the
  /// manager lock at admission, and the backing map iterates in key
  /// order. Clients (and the /jobs endpoint) may rely on it; pinned by
  /// service_test.
  std::vector<JobSnapshot> List() const;

  /// The job's journal as JSONL (NotFound for unknown ids).
  Result<std::string> JournalJsonl(int64_t job_id) const;

  /// The job's per-job timeline as Chrome-trace JSON — queue wait,
  /// instance bind, solve/construction/tabu spans recorded while it ran —
  /// stamped with its trace id. NotFound for unknown ids.
  Result<std::string> TraceJson(int64_t job_id) const;

  /// The job's anytime-quality curve (obs::AnytimeCurve::ToJson):
  /// (wall_ms, best_p, heterogeneity, evaluations) samples recorded on
  /// every incumbent improvement plus coarse ticks. NotFound for unknown
  /// ids.
  Result<std::string> CurveJson(int64_t job_id) const;

  /// Service-level latency/throughput document (see ServiceStats).
  std::string StatsJson() const { return stats_.ToJson(); }

  /// Streaming latency accounting, fed once per terminal job.
  const ServiceStats& stats() const { return stats_; }

  /// Blocks until the job is terminal or `timeout_ms` elapses (-1 waits
  /// forever). Returns the terminal state, or FailedPrecondition on
  /// timeout, or NotFound for unknown ids.
  Result<JobState> WaitTerminal(int64_t job_id, int64_t timeout_ms = -1);

  /// Cancels all queued and running jobs and joins the workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  int queue_capacity() const { return options_.queue_capacity; }
  int workers() const { return options_.workers; }

 private:
  struct Job;

  explicit JobManager(Options options);

  void WorkerLoop();
  void RunJob(Job& job);
  Result<std::shared_ptr<const AreaSet>> LoadInstance(
      const std::string& reference);
  JobSnapshot SnapshotLocked(const Job& job, bool include_payloads) const;
  int64_t NowMs() const;
  void CountFinishedLocked(const Job& job);
  /// Feeds ServiceStats from a job that just went terminal (state and the
  /// queued/started/finished timestamps must be final).
  void RecordTerminalLocked(const Job& job);

  const Options options_;
  const std::chrono::steady_clock::time_point epoch_;
  ServiceStats stats_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;      // workers wait for queue entries
  std::condition_variable terminal_cv_;  // WaitTerminal waiters
  bool shutdown_ = false;
  int64_t next_id_ = 1;
  std::map<int64_t, std::unique_ptr<Job>> jobs_;
  std::deque<int64_t> queue_;

  std::mutex instances_mu_;
  std::map<std::string, std::shared_ptr<const AreaSet>> instances_;
  // Canonical instance per digest; references dedupe through this map.
  std::map<uint64_t, std::shared_ptr<const AreaSet>> instances_by_digest_;

  std::vector<std::thread> workers_;
};

}  // namespace service
}  // namespace emp

#endif  // EMP_SERVICE_JOB_MANAGER_H_
