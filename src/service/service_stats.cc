#include "service/service_stats.h"

#include <chrono>
#include <utility>

#include "common/json_writer.h"
#include "obs/metrics.h"

namespace emp {
namespace service {

namespace {

constexpr int64_t kMinuteMs = 60 * 1000;
constexpr int64_t kFiveMinutesMs = 5 * kMinuteMs;

/// One {p50,p95,p99,count,rank_error_bound} block; empty sketches report
/// null quantiles (JsonWriter::Double renders NaN as null).
void SketchBlock(JsonWriter& w, const obs::QuantileSketch& sketch) {
  w.BeginInlineObject();
  w.Key("p50");
  w.Double(sketch.Query(0.5));
  w.Key("p95");
  w.Double(sketch.Query(0.95));
  w.Key("p99");
  w.Double(sketch.Query(0.99));
  w.Key("count");
  w.Int(sketch.count());
  w.Key("rank_error_bound");
  w.Double(sketch.rank_error_bound());
  w.EndObject();
}

}  // namespace

/// One latency dimension: the all-time sketch plus its sliding windows.
struct ServiceStats::Track {
  Track(const obs::WindowedQuantiles::Options& window_options,
        std::function<int64_t()> now_ms)
      : all_time(0.005), window(window_options, std::move(now_ms)) {}

  void Observe(double v) {
    all_time.Observe(v);
    window.Observe(v);
  }

  void ToJson(JsonWriter& w) const {
    w.BeginObject();
    w.Key("all_time");
    SketchBlock(w, all_time);
    w.Key("window_1m");
    SketchBlock(w, window.WindowSketch(kMinuteMs));
    w.Key("window_5m");
    SketchBlock(w, window.WindowSketch(kFiveMinutesMs));
    w.EndObject();
  }

  obs::QuantileSketch all_time;
  obs::WindowedQuantiles window;
};

struct ServiceStats::KindStats {
  KindStats(const obs::WindowedQuantiles::Options& window_options,
            const std::function<int64_t()>& now_ms)
      : queue_wait(window_options, now_ms),
        solve(window_options, now_ms),
        e2e(window_options, now_ms),
        terminal_window(window_options, now_ms) {}

  Track queue_wait;
  Track solve;
  Track e2e;
  /// One observation per terminal job (any outcome) — its window counts
  /// are the throughput numerators.
  obs::WindowedQuantiles terminal_window;
};

ServiceStats::ServiceStats(Options options)
    : now_ms_(options.now_ms
                  ? std::move(options.now_ms)
                  : [epoch = std::chrono::steady_clock::now()]() -> int64_t {
                      return std::chrono::duration_cast<
                                 std::chrono::milliseconds>(
                                 std::chrono::steady_clock::now() - epoch)
                          .count();
                    }),
      window_options_(options.window) {
  if (options.metrics != nullptr) {
    queue_wait_summary_ = options.metrics->GetSummary(
        "emp_service_queue_wait_ms", /*eps=*/0.005,
        "Queue wait (admission to worker pickup) per terminal job, ms.");
    solve_summary_ = options.metrics->GetSummary(
        "emp_service_solve_ms", /*eps=*/0.005,
        "Solve time (pickup to terminal) per terminal job, ms.");
    e2e_summary_ = options.metrics->GetSummary(
        "emp_service_e2e_ms", /*eps=*/0.005,
        "End-to-end latency (admission to terminal) per terminal job, ms.");
  }
}

ServiceStats::~ServiceStats() = default;

ServiceStats::KindStats& ServiceStats::KindLocked(
    std::string_view solver_kind) {
  if (solver_kind.empty()) solver_kind = "unknown";
  auto it = kinds_.find(solver_kind);
  if (it == kinds_.end()) {
    it = kinds_
             .emplace(std::string(solver_kind),
                      std::make_unique<KindStats>(window_options_, now_ms_))
             .first;
  }
  return *it->second;
}

void ServiceStats::RecordTerminal(std::string_view solver_kind,
                                  Outcome outcome, int64_t queue_wait_ms,
                                  int64_t solve_ms, int64_t e2e_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (outcome) {
    case Outcome::kDone:
      ++done_;
      break;
    case Outcome::kFailed:
      ++failed_;
      break;
    case Outcome::kCancelled:
      ++cancelled_;
      break;
    case Outcome::kRejected:
      ++rejected_;
      break;
  }
  KindStats& kind = KindLocked(solver_kind);
  kind.terminal_window.Observe(1.0);
  if (queue_wait_ms >= 0) {
    kind.queue_wait.Observe(static_cast<double>(queue_wait_ms));
    obs::Observe(queue_wait_summary_, static_cast<double>(queue_wait_ms));
  }
  if (solve_ms >= 0) {
    kind.solve.Observe(static_cast<double>(solve_ms));
    obs::Observe(solve_summary_, static_cast<double>(solve_ms));
  }
  if (e2e_ms >= 0) {
    kind.e2e.Observe(static_cast<double>(e2e_ms));
    obs::Observe(e2e_summary_, static_cast<double>(e2e_ms));
  }
}

int64_t ServiceStats::recorded_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_ + failed_ + cancelled_ + rejected_;
}

std::string ServiceStats::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t recorded = done_ + failed_ + cancelled_ + rejected_;

  int64_t terminal_1m = 0;
  int64_t terminal_5m = 0;
  for (const auto& [name, kind] : kinds_) {
    terminal_1m += kind->terminal_window.WindowCount(kMinuteMs);
    terminal_5m += kind->terminal_window.WindowCount(kFiveMinutesMs);
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("jobs");
  w.BeginInlineObject();
  w.Key("done");
  w.Int(done_);
  w.Key("failed");
  w.Int(failed_);
  w.Key("cancelled");
  w.Int(cancelled_);
  w.Key("rejected");
  w.Int(rejected_);
  w.Key("recorded");
  w.Int(recorded);
  w.EndObject();

  w.Key("rates");
  w.BeginInlineObject();
  w.Key("rejection");
  w.Double(recorded > 0 ? static_cast<double>(rejected_) /
                              static_cast<double>(recorded)
                        : 0.0);
  w.Key("cancellation");
  w.Double(recorded > 0 ? static_cast<double>(cancelled_) /
                              static_cast<double>(recorded)
                        : 0.0);
  w.EndObject();

  w.Key("throughput_jobs_per_min");
  w.BeginInlineObject();
  w.Key("window_1m");
  w.Double(static_cast<double>(terminal_1m));
  w.Key("window_5m");
  w.Double(static_cast<double>(terminal_5m) / 5.0);
  w.EndObject();

  w.Key("latency_ms");
  w.BeginObject();
  for (const auto& [name, kind] : kinds_) {
    w.Key(name);
    w.BeginObject();
    w.Key("queue_wait");
    kind->queue_wait.ToJson(w);
    w.Key("solve");
    kind->solve.ToJson(w);
    w.Key("e2e");
    kind->e2e.ToJson(w);
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  return std::move(w).TakeString();
}

}  // namespace service
}  // namespace emp
