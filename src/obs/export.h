#ifndef EMP_OBS_EXPORT_H_
#define EMP_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace emp {
namespace obs {

/// Serializes a snapshot as a JSON document (via JsonWriter):
///   {
///     "counters": {"emp_tabu_iterations_total": 41, ...},
///     "gauges": {"emp_construction_best_p": 12, ...},
///     "histograms": {
///       "emp_construction_iteration_seconds": {
///         "buckets": [{"le": 0.0001, "count": 0}, ...],   // +Inf last
///         "sum": 0.123, "count": 3
///       }
///     }
///   }
/// Keys are name-sorted, so equal metric states export byte-identically.
std::string MetricsToJson(const MetricsSnapshot& snapshot);
std::string MetricsToJson(const MetricRegistry& registry);

/// Serializes a snapshot in the Prometheus text exposition format
/// (# TYPE comments, cumulative histogram buckets with le labels,
/// _sum/_count series). Name-sorted and deterministic like the JSON form.
std::string MetricsToPrometheus(const MetricsSnapshot& snapshot);
std::string MetricsToPrometheus(const MetricRegistry& registry);

}  // namespace obs
}  // namespace emp

#endif  // EMP_OBS_EXPORT_H_
