#ifndef EMP_OBS_HTTP_SERVER_H_
#define EMP_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"

namespace emp {
namespace obs {

class MetricRegistry;
class ProgressBoard;

/// One parsed HTTP request as seen by a route handler: the method verb,
/// the target path with any "?query" suffix stripped, and the raw body
/// (empty unless the client sent Content-Length). The reader tolerates
/// requests split across multiple recv() calls — head and body arrive in
/// as many TCP segments as the client likes.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string body;
};

/// One response a handler hands back to the server, which serializes the
/// status line, Content-Type/Content-Length, any extra headers (e.g.
/// "Allow" on a 405), and the body.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// The uniform error wire format every route (built-in and hook-provided)
/// uses: `{"error":{"code":"<snake_case>","message":"<human text>"}}`.
/// `code` is a stable machine key (e.g. "not_found", "method_not_allowed",
/// "queue_full"); `message` is free text, JSON-escaped here.
HttpResponse JsonErrorResponse(int status, std::string_view code,
                               std::string_view message);

/// Minimal stdlib/POSIX HTTP/1.1 endpoint — a blocking-accept socket
/// server on one background thread. Built-in read-only routes:
///
///   GET /healthz       -> 200 "ok" (liveness)
///   GET /metrics       -> Prometheus text exposition of the live registry
///   GET /metrics.json  -> the same snapshot as JSON
///   GET /progress      -> ProgressToJson(board->Read())
///   GET /profile       -> PhaseProfiler::ToJson() (process-wide; reports
///                         enabled=false when the profiler never started)
///
/// An optional Options::handler extends the server with application
/// routes (the solve-service job API): it sees every request first and
/// returns a response to claim it or nullopt to fall through to the
/// built-ins. Non-GET methods reach the handler too; the built-ins answer
/// a wrong method on a known path with 405 + an Allow header and unknown
/// paths with a 404, both as the JSON error envelope above.
///
/// Requests are handled serially on the accept thread (admission control
/// for the solve service lives behind the handler in JobManager, whose
/// queue turns overload into fast 429s rather than pileup here). The
/// metrics/progress sinks are optional: a null registry serves an empty
/// exposition, a null board the idle snapshot. Enabling the server must
/// not perturb a solve — the built-ins only read the registry/board, so a
/// fixed-seed solve is bit-identical with and without it (pinned by
/// obs_http_test).
///
/// Lifetime: Start() binds 127.0.0.1:`port` (0 = ephemeral; the bound
/// port is queryable for tests), spawns the thread, and returns; Stop()
/// (idempotent, also run by the destructor) wakes the accept loop via a
/// self-pipe and joins the thread. Stop the server before destroying the
/// registry/board/handler state it reads.
class HttpServer {
 public:
  /// Application hook: return a response to claim the request, nullopt to
  /// fall through to the built-in routes. Runs on the accept thread.
  using Handler =
      std::function<std::optional<HttpResponse>(const HttpRequest&)>;

  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port.
    int port = 0;
    /// Live metric registry served under /metrics[.json]; may be null.
    /// Non-const so the server can count its own requests into it
    /// (emp_http_requests_total).
    MetricRegistry* metrics = nullptr;
    /// Live progress board served under /progress; may be null.
    const ProgressBoard* progress = nullptr;
    /// Application routes; may be null. See Handler.
    Handler handler;
  };

  /// Binds, listens, and spawns the accept thread. Returns IOError when
  /// the socket cannot be created/bound.
  static Result<std::unique_ptr<HttpServer>> Start(const Options& options);

  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound TCP port (the ephemeral one when Options::port was 0).
  int port() const { return port_; }

  /// Requests served so far (any status).
  int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Wakes the accept loop and joins the serving thread. Idempotent.
  void Stop();

 private:
  explicit HttpServer(const Options& options);

  void Serve();
  void HandleConnection(int client_fd);
  HttpResponse RouteRequest(const HttpRequest& request);

  Options options_;
  int port_ = 0;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopped_{false};
  std::atomic<int64_t> requests_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace emp

#endif  // EMP_OBS_HTTP_SERVER_H_
