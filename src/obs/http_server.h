#ifndef EMP_OBS_HTTP_SERVER_H_
#define EMP_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"

namespace emp {
namespace obs {

class MetricRegistry;
class ProgressBoard;

/// Minimal stdlib/POSIX HTTP/1.1 endpoint for watching a live solve — a
/// blocking-accept socket server on one background thread, serving:
///
///   GET /healthz       -> 200 "ok" (liveness)
///   GET /metrics       -> Prometheus text exposition of the live registry
///   GET /metrics.json  -> the same snapshot as JSON
///   GET /progress      -> ProgressToJson(board->Read())
///
/// Requests are handled serially on the accept thread (this is a
/// diagnostics plane, not a traffic plane). Both sinks are optional: a
/// null registry serves an empty exposition, a null board serves the idle
/// snapshot. Enabling the server must not perturb the solve — it only
/// reads the registry/board, so a fixed-seed solve is bit-identical with
/// and without it (pinned by obs_http_test).
///
/// Lifetime: Start() binds 127.0.0.1:`port` (0 = ephemeral; the bound
/// port is queryable for tests), spawns the thread, and returns; Stop()
/// (idempotent, also run by the destructor) wakes the accept loop via a
/// self-pipe and joins the thread. Stop the server before destroying the
/// registry/board it reads.
class HttpServer {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port.
    int port = 0;
    /// Live metric registry served under /metrics[.json]; may be null.
    /// Non-const so the server can count its own requests into it
    /// (emp_http_requests_total).
    MetricRegistry* metrics = nullptr;
    /// Live progress board served under /progress; may be null.
    const ProgressBoard* progress = nullptr;
  };

  /// Binds, listens, and spawns the accept thread. Returns IOError when
  /// the socket cannot be created/bound.
  static Result<std::unique_ptr<HttpServer>> Start(const Options& options);

  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound TCP port (the ephemeral one when Options::port was 0).
  int port() const { return port_; }

  /// Requests served so far (any status).
  int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Wakes the accept loop and joins the serving thread. Idempotent.
  void Stop();

 private:
  explicit HttpServer(const Options& options);

  void Serve();
  void HandleConnection(int client_fd);
  std::string RouteRequest(const std::string& target);

  Options options_;
  int port_ = 0;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopped_{false};
  std::atomic<int64_t> requests_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace emp

#endif  // EMP_OBS_HTTP_SERVER_H_
