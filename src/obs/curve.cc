#include "obs/curve.h"

#include <cmath>

#include "common/json_writer.h"

namespace emp {
namespace obs {

AnytimeCurve::AnytimeCurve(size_t capacity, int64_t tick_interval_ms)
    : capacity_(capacity == 0 ? 1 : capacity),
      tick_interval_ms_(tick_interval_ms < 1 ? 1 : tick_interval_ms),
      epoch_(Clock::now()) {
  samples_.reserve(capacity_ < 64 ? capacity_ : 64);
}

int64_t AnytimeCurve::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               epoch_)
      .count();
}

void AnytimeCurve::RecordLocked(int64_t now_ms, int64_t evaluations) {
  if (samples_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  last_sample_ms_ = now_ms;
  samples_.push_back(Sample{now_ms, best_p_, heterogeneity_,
                            has_heterogeneity_, evaluations});
}

void AnytimeCurve::OnBestP(int32_t p, int64_t evaluations) {
  const int64_t now = NowMs();
  std::lock_guard<std::mutex> lock(mu_);
  best_p_ = p;
  RecordLocked(now, evaluations);
}

void AnytimeCurve::OnHeterogeneity(double h, int64_t evaluations) {
  const int64_t now = NowMs();
  std::lock_guard<std::mutex> lock(mu_);
  heterogeneity_ = h;
  has_heterogeneity_ = true;
  RecordLocked(now, evaluations);
}

void AnytimeCurve::Tick(int64_t evaluations) {
  const int64_t now = NowMs();
  std::lock_guard<std::mutex> lock(mu_);
  if (last_sample_ms_ >= 0 && now - last_sample_ms_ < tick_interval_ms_) {
    return;
  }
  RecordLocked(now, evaluations);
}

std::vector<AnytimeCurve::Sample> AnytimeCurve::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

int64_t AnytimeCurve::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string AnytimeCurve::ToJson() const {
  std::vector<Sample> samples;
  int64_t dropped_count = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples = samples_;
    dropped_count = dropped_;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("samples");
  w.BeginArray();
  for (const Sample& s : samples) {
    w.BeginInlineObject();
    w.Key("wall_ms");
    w.Int(s.wall_ms);
    w.Key("best_p");
    w.Int(s.best_p);
    w.Key("heterogeneity");
    if (s.has_heterogeneity && std::isfinite(s.heterogeneity)) {
      w.Double(s.heterogeneity);
    } else {
      w.Null();
    }
    w.Key("evaluations");
    w.Int(s.evaluations);
    w.EndObject();
  }
  w.EndArray();
  w.Key("dropped");
  w.Int(dropped_count);
  w.Key("capacity");
  w.Int(static_cast<int64_t>(capacity_));
  w.EndObject();
  return std::move(w).TakeString();
}

}  // namespace obs
}  // namespace emp
