#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "common/json_writer.h"
#include "common/str_util.h"

namespace emp {
namespace obs {

namespace {

/// Prometheus sample value: integers render bare, doubles compactly.
std::string PromDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  return FormatDouble(v, 9);
}

/// Escapes help text per the exposition format: backslash and newline
/// are the only characters HELP lines must escape.
std::string EscapeHelp(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Emits the `# HELP` line for `name` when a description was registered.
void AppendHelp(const MetricsSnapshot& snapshot, const std::string& name,
                std::string* out) {
  // snapshot.help is name-sorted; linear scan is fine at exposition rates
  // but binary search keeps /metrics cheap under polling.
  auto it = std::lower_bound(
      snapshot.help.begin(), snapshot.help.end(), name,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it == snapshot.help.end() || it->first != name) return;
  *out += "# HELP " + name + " " + EscapeHelp(it->second) + "\n";
}

}  // namespace

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();

  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    w.Key(name);
    w.Int(value);
  }
  w.EndObject();

  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    w.Key(name);
    w.Double(value);
  }
  w.EndObject();

  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, data] : snapshot.histograms) {
    w.Key(name);
    w.BeginObject();
    w.Key("buckets");
    w.BeginArray();
    for (size_t i = 0; i < data.counts.size(); ++i) {
      w.BeginInlineObject();
      w.Key("le");
      // The final bucket is +Inf, which JSON cannot express as a number.
      if (i < data.bounds.size()) {
        w.Double(data.bounds[i]);
      } else {
        w.String("+Inf");
      }
      w.Key("count");
      w.Int(data.counts[i]);
      w.EndObject();
    }
    w.EndArray();
    w.Key("sum");
    w.Double(data.sum);
    w.Key("count");
    w.Int(data.count);
    w.EndObject();
  }
  w.EndObject();

  w.Key("summaries");
  w.BeginObject();
  for (const auto& [name, data] : snapshot.summaries) {
    w.Key(name);
    w.BeginObject();
    w.Key("quantiles");
    w.BeginArray();
    for (const auto& [phi, value] : data.quantiles) {
      w.BeginInlineObject();
      w.Key("quantile");
      w.Double(phi);
      w.Key("value");
      w.Double(value);  // NaN (empty summary) serializes as null
      w.EndObject();
    }
    w.EndArray();
    w.Key("sum");
    w.Double(data.sum);
    w.Key("count");
    w.Int(data.count);
    w.Key("rank_error_bound");
    w.Double(data.rank_error_bound);
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  return std::move(w).TakeString();
}

std::string MetricsToJson(const MetricRegistry& registry) {
  return MetricsToJson(registry.Snapshot());
}

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    AppendHelp(snapshot, name, &out);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    AppendHelp(snapshot, name, &out);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + PromDouble(value) + "\n";
  }
  for (const auto& [name, data] : snapshot.histograms) {
    AppendHelp(snapshot, name, &out);
    out += "# TYPE " + name + " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < data.counts.size(); ++i) {
      cumulative += data.counts[i];
      const std::string le =
          i < data.bounds.size() ? PromDouble(data.bounds[i]) : "+Inf";
      out += name + "_bucket{le=\"" + le +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + PromDouble(data.sum) + "\n";
    out += name + "_count " + std::to_string(data.count) + "\n";
  }
  for (const auto& [name, data] : snapshot.summaries) {
    AppendHelp(snapshot, name, &out);
    out += "# TYPE " + name + " summary\n";
    for (const auto& [phi, value] : data.quantiles) {
      out += name + "{quantile=\"" + PromDouble(phi) + "\"} " +
             PromDouble(value) + "\n";
    }
    out += name + "_sum " + PromDouble(data.sum) + "\n";
    out += name + "_count " + std::to_string(data.count) + "\n";
  }
  return out;
}

std::string MetricsToPrometheus(const MetricRegistry& registry) {
  return MetricsToPrometheus(registry.Snapshot());
}

}  // namespace obs
}  // namespace emp
