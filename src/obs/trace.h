#ifndef EMP_OBS_TRACE_H_
#define EMP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace emp {
namespace obs {

class Counter;
class MetricRegistry;

/// One recorded span or instant. Timestamps are microseconds since the
/// owning TraceBuffer was constructed (a solve-local epoch, so traces from
/// one run line up regardless of wall-clock).
struct TraceEvent {
  std::string name;
  int64_t start_us = 0;
  /// Span duration; -1 marks an instant event (a point sample such as one
  /// heterogeneity-trajectory reading).
  int64_t duration_us = -1;
  /// Logical track: 0 for the orchestrating thread, the construction
  /// iteration id for per-iteration spans.
  int64_t worker = 0;
  /// Optional sample payload (instant events); 0 for plain spans.
  double value = 0.0;
};

/// Bounded, thread-safe, in-memory trace sink. When full, NEW events are
/// dropped (and counted) rather than evicting old ones — the early events
/// carry the phase hierarchy that makes the rest readable.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 8192);
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Microseconds since construction (the timestamps' epoch).
  int64_t NowMicros() const;

  /// Records a completed span.
  void RecordSpan(std::string_view name, int64_t start_us, int64_t end_us,
                  int64_t worker);

  /// Records an instant sample (e.g. the tabu heterogeneity trajectory).
  void RecordInstant(std::string_view name, double value, int64_t worker = 0);

  std::vector<TraceEvent> Snapshot() const;
  size_t capacity() const { return capacity_; }
  int64_t dropped_events() const;

  /// Mirrors every future drop into `emp_trace_dropped_events_total` of
  /// `registry` (and back-fills drops that already happened), so a
  /// truncated trace is visible on the live /metrics endpoint, not only
  /// in the serialized JSON. Pass null to detach. The registry must
  /// outlive the buffer or the next detach.
  void AttachDropMetrics(MetricRegistry* registry);

  /// Serializes the buffer as a Chrome trace-viewer compatible JSON
  /// document ({"traceEvents": [...]}, "X" phases for spans, "i" for
  /// instants) via JsonWriter; loadable in about://tracing or Perfetto.
  /// A buffer that dropped events additionally emits a `dropped_events`
  /// metadata record (ph "M" with the drop count and capacity in args),
  /// so a truncated trace is self-describing. A non-empty `trace_id`
  /// (the service's per-job id) is emitted both as a top-level field and
  /// as a `trace_id` metadata record so exported files remain
  /// self-identifying after download.
  std::string ToJson(std::string_view trace_id = {}) const;

 private:
  using Clock = std::chrono::steady_clock;

  const size_t capacity_;
  const Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  int64_t dropped_ = 0;
  Counter* drop_counter_ = nullptr;  // guarded by mu_
};

/// RAII span: captures the start time at construction and records
/// [start, now] into the buffer at destruction. A null buffer makes every
/// operation a no-op, so call sites need no enabled/disabled branches of
/// their own. Spans nest naturally — phase → construction iteration →
/// tabu epoch — because inner spans destruct first.
class ScopedSpan {
 public:
  ScopedSpan(TraceBuffer* buffer, std::string_view name, int64_t worker = 0)
      : buffer_(buffer), worker_(worker) {
    if (buffer_ != nullptr) {
      name_ = name;
      start_us_ = buffer_->NowMicros();
    }
  }
  ~ScopedSpan() {
    if (buffer_ != nullptr) {
      buffer_->RecordSpan(name_, start_us_, buffer_->NowMicros(), worker_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceBuffer* buffer_;
  std::string name_;
  int64_t start_us_ = 0;
  int64_t worker_;
};

}  // namespace obs
}  // namespace emp

#endif  // EMP_OBS_TRACE_H_
