#include "obs/quantile.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace emp {
namespace obs {

namespace {

/// The GK compression threshold for n observations under rank-error
/// fraction `bound`: tuples may widen to g + delta <= this value.
int64_t Capacity(double bound, int64_t n) {
  const double cap = 2.0 * bound * static_cast<double>(n);
  return cap < 1.0 ? 1 : static_cast<int64_t>(cap);
}

}  // namespace

QuantileSketch::QuantileSketch(double eps)
    : eps_(eps < 1e-6 ? 1e-6 : (eps > 0.25 ? 0.25 : eps)), bound_(eps_) {
  buffer_.reserve(kFlushThreshold);
}

QuantileSketch::QuantileSketch(const QuantileSketch& other) : eps_(other.eps_) {
  std::lock_guard<std::mutex> lock(other.mu_);
  other.FlushLocked();
  bound_ = other.bound_;
  tuples_ = other.tuples_;
  count_ = other.count_;
  sum_ = other.sum_;
  buffer_.reserve(kFlushThreshold);
}

void QuantileSketch::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.push_back(v);
  ++count_;
  sum_ += v;
  if (buffer_.size() >= kFlushThreshold) FlushLocked();
}

void QuantileSketch::FlushLocked() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());

  // One linear merge pass: walk the existing tuple list and the sorted
  // buffer together. A value inserted strictly inside the summary gets
  // delta = cap - 1 (its true rank is only known to within the local
  // tuple width); a new minimum/maximum is exact (delta = 0).
  const int64_t n = count_;  // already includes the buffered values
  const int64_t cap = Capacity(bound_, n);
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + buffer_.size());
  size_t ti = 0;
  size_t bi = 0;
  while (ti < tuples_.size() || bi < buffer_.size()) {
    if (bi >= buffer_.size() ||
        (ti < tuples_.size() && tuples_[ti].v <= buffer_[bi])) {
      merged.push_back(tuples_[ti++]);
      continue;
    }
    const bool at_edge = merged.empty() || ti >= tuples_.size();
    merged.push_back(Tuple{buffer_[bi++], 1, at_edge ? 0 : cap - 1});
  }
  tuples_ = std::move(merged);
  buffer_.clear();
  CompressLocked();
}

void QuantileSketch::CompressLocked() const {
  if (tuples_.size() < 2) return;
  const int64_t cap = Capacity(bound_, count_);
  // Right-to-left so a chain of small tuples collapses in one pass. The
  // first and last tuples are never absorbed: they pin the observed min
  // and max exactly.
  size_t write = tuples_.size() - 1;
  for (size_t i = tuples_.size() - 1; i-- > 0;) {
    Tuple& cur = tuples_[i];
    Tuple& next = tuples_[write];
    if (i > 0 && cur.g + next.g + next.delta <= cap) {
      next.g += cur.g;  // absorb cur into its right neighbor
    } else {
      tuples_[--write] = cur;
    }
  }
  tuples_.erase(tuples_.begin(), tuples_.begin() + write);
}

double QuantileSketch::Query(double phi) const {
  std::lock_guard<std::mutex> lock(mu_);
  return QueryLocked(phi);
}

double QuantileSketch::QueryLocked(double phi) const {
  FlushLocked();
  if (tuples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  phi = phi < 0.0 ? 0.0 : (phi > 1.0 ? 1.0 : phi);
  const int64_t n = count_;
  const int64_t target = static_cast<int64_t>(
      std::ceil(phi * static_cast<double>(n)));
  const int64_t rank = target < 1 ? 1 : target;
  const int64_t slack = Capacity(bound_, n) / 2;  // floor(bound * n)
  int64_t rmin = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    rmin += tuples_[i].g;
    if (i + 1 == tuples_.size() ||
        rmin + tuples_[i + 1].g + tuples_[i + 1].delta > rank + slack) {
      return tuples_[i].v;
    }
  }
  return tuples_.back().v;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (&other == this) return;
  // Copy under the source lock, then fold under ours — never hold both
  // (callers may merge in any order).
  const QuantileSketch snapshot(other);
  if (snapshot.count_ == 0) return;

  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
  // Interleave the two sorted tuple lists. Each side keeps its g; the
  // rank uncertainty of the other summary is absorbed into the merged
  // bound (the sum), which CompressLocked and QueryLocked then use.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + snapshot.tuples_.size());
  std::merge(tuples_.begin(), tuples_.end(), snapshot.tuples_.begin(),
             snapshot.tuples_.end(), std::back_inserter(merged),
             [](const Tuple& a, const Tuple& b) { return a.v < b.v; });
  tuples_ = std::move(merged);
  count_ += snapshot.count_;
  sum_ += snapshot.sum_;
  bound_ += snapshot.bound_;
  CompressLocked();
}

int64_t QuantileSketch::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double QuantileSketch::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double QuantileSketch::rank_error_bound() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bound_;
}

int64_t QuantileSketch::tuple_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
  return static_cast<int64_t>(tuples_.size());
}

WindowedQuantiles::WindowedQuantiles(Options options,
                                     std::function<int64_t()> now_ms)
    : options_([&options] {
        if (options.bucket_ms < 1) options.bucket_ms = 1;
        if (options.buckets < 1) options.buckets = 1;
        return options;
      }()),
      now_ms_(std::move(now_ms)),
      epoch_(std::chrono::steady_clock::now()),
      ring_(static_cast<size_t>(options_.buckets)) {}

int64_t WindowedQuantiles::Now() const {
  if (now_ms_) return now_ms_();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void WindowedQuantiles::RotateLocked(int64_t now) const {
  // Lazy rotation: a bucket whose epoch is not the one the current time
  // maps it to holds data older than one full ring revolution — reset it
  // before use. Buckets not touched by writes are reset at query time
  // instead (WindowSketch checks epochs, so stale buckets never leak).
  const int64_t epoch = now / options_.bucket_ms;
  Bucket& bucket = ring_[static_cast<size_t>(
      epoch % static_cast<int64_t>(ring_.size()))];
  if (bucket.epoch != epoch) {
    bucket.epoch = epoch;
    bucket.sketch = std::make_unique<QuantileSketch>(options_.eps);
  }
}

void WindowedQuantiles::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = Now();
  RotateLocked(now);
  ring_[static_cast<size_t>((now / options_.bucket_ms) %
                            static_cast<int64_t>(ring_.size()))]
      .sketch->Observe(v);
  ++total_count_;
}

QuantileSketch WindowedQuantiles::WindowSketch(int64_t window_ms) const {
  QuantileSketch merged(options_.eps);
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = Now();
  const int64_t newest_epoch = now / options_.bucket_ms;
  // Buckets whose time span overlaps [now - window_ms, now]; the current
  // (partial) bucket always qualifies.
  const int64_t oldest_epoch = (now - window_ms) / options_.bucket_ms;
  for (const Bucket& bucket : ring_) {
    if (bucket.epoch < 0 || bucket.sketch == nullptr) continue;
    if (bucket.epoch > newest_epoch || bucket.epoch < oldest_epoch) continue;
    merged.Merge(*bucket.sketch);
  }
  return merged;
}

int64_t WindowedQuantiles::WindowCount(int64_t window_ms) const {
  return WindowSketch(window_ms).count();
}

int64_t WindowedQuantiles::total_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_count_;
}

}  // namespace obs
}  // namespace emp
