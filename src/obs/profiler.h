#ifndef EMP_OBS_PROFILER_H_
#define EMP_OBS_PROFILER_H_

#include <string>

#include "common/status.h"

namespace emp {
namespace obs {

/// Opt-in phase-attributed sampling profiler: a SIGPROF / ITIMER_PROF
/// sampler that charges each CPU tick to the solver phase the interrupted
/// thread last published on its ProgressBoard. No stack unwinding — the
/// phase name is already interned to a static string by the board, so the
/// signal handler only performs atomic loads and adds on a fixed,
/// pre-allocated slot table.
///
/// Process-wide singleton (ITIMER_PROF is a per-process resource): one
/// Start()/Stop() pair owns the timer; nested Start() fails. Disabled, it
/// costs nothing — the board's publish path checks one relaxed atomic
/// before touching the thread-local phase slot, and the fixed-seed solve
/// output is bit-identical with the profiler on or off (sampling only
/// reads solver state; it never synchronizes with it).
///
/// Signal-safety rules (DESIGN.md §15): the handler reads one lock-free
/// thread-local atomic (the interned phase pointer), then linear-scans a
/// fixed array of {atomic<const char*>, atomic<int64_t>} slots, claiming
/// an empty slot by compare-exchange. No allocation, no locks, no
/// formatting, no library calls — every operation is async-signal-safe.
/// Slot-table overflow (more distinct phase names than slots) is counted,
/// never blocking.
class PhaseProfiler {
 public:
  /// Arms ITIMER_PROF at `hz` samples of *CPU time* per second (1..1000;
  /// prime rates such as 97 avoid beating against periodic work) and
  /// installs the SIGPROF handler. Resets previously accumulated ticks.
  /// FailedPrecondition when already running; InvalidArgument for an
  /// out-of-range rate; IOError when the timer cannot be armed.
  static Status Start(int hz);

  /// Disarms the timer and restores the default SIGPROF disposition.
  /// Accumulated ticks remain readable via ToJson(). Idempotent.
  static void Stop();

  static bool enabled();

  /// Publishes the interrupted-thread attribution target. `phase` MUST be
  /// an interned pointer with static storage duration (the ProgressBoard
  /// canonical names) — the handler dereferences nothing, but ToJson()
  /// reads the string after the fact. Called by ProgressBoard on every
  /// SetPhase/OnCheckpoint publish; a no-op while the profiler is off.
  static void SetThreadPhase(const char* phase);

  /// The phase-weighted tick table as one JSON document:
  ///   {"enabled": bool, "hz": N, "total_ticks": N, "overflow_ticks": N,
  ///    "phases": [{"phase": "tabu", "ticks": N, "fraction": F}, ...]}
  /// sorted by descending tick count (ties by name). Readable while
  /// sampling is live and after Stop().
  static std::string ToJson();

  /// Test hook: runs the handler's slot-accounting path once for
  /// `phase` without any signal machinery, so the attribution logic is
  /// testable deterministically (and under TSan, which dislikes real
  /// ITIMER_PROF traffic).
  static void RecordTickForTest(const char* phase);

 private:
  PhaseProfiler() = delete;
};

}  // namespace obs
}  // namespace emp

#endif  // EMP_OBS_PROFILER_H_
