#ifndef EMP_OBS_PROGRESS_H_
#define EMP_OBS_PROGRESS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace emp {
namespace obs {

/// What one portfolio replica is doing right now.
enum class ReplicaState : int32_t {
  kPending = 0,      // queued, not yet picked up by a worker
  kConstructing,     // feasibility + construction running
  kLocalSearch,      // tabu polish running
  kDone,             // finished (converged or degraded)
  kCancelled,        // cooperatively cancelled (target_p / caller)
  kSkipped,          // local search skipped by the incumbent cutoff
};

/// Canonical lower-case name ("pending", "constructing", ...).
std::string_view ReplicaStateName(ReplicaState state);

/// Point-in-time copy of the board, taken by readers. All fields were
/// written inside one or more version brackets, and the whole snapshot is
/// version-stable: fields written together are read together.
struct ProgressSnapshot {
  /// Board version at the (stable) read; even, monotonically increasing.
  uint64_t version = 0;
  /// Current phase name ("feasibility", "construction", "tabu", ...);
  /// "idle" before the first publish.
  const char* phase = "idle";
  /// Checkpoints observed within the reporting phase instance.
  int64_t checkpoints = 0;
  /// Solve-wide evaluation units consumed so far.
  int64_t evaluations = 0;
  /// Evaluation budget (-1 = unlimited), published at solve start.
  int64_t max_evaluations = -1;
  /// Wall-clock budget in ms (-1 = unlimited), published at solve start.
  int64_t time_budget_ms = -1;
  /// Milliseconds since the board was constructed, sampled at read time.
  int64_t elapsed_ms = 0;
  /// Best p found so far; -1 until construction reports one.
  int32_t best_p = -1;
  /// Best heterogeneity so far; NaN until the local search reports one.
  double heterogeneity = 0.0;
  bool has_heterogeneity = false;
  /// Generic phase work meter (areas scanned, tabu iterations, ...);
  /// -1 when the phase has not published one.
  int64_t work_done = -1;
  int64_t work_total = -1;
  /// Portfolio view: replica count (0 for plain solves) and per-replica
  /// (state, p) pairs. p is -1 until the replica's construction finishes.
  int32_t replicas = 0;
  struct Replica {
    ReplicaState state = ReplicaState::kPending;
    int32_t p = -1;
  };
  std::array<Replica, 128> replica = {};
};

/// Lock-cheap live-progress board: the write side is a seqlock-style
/// versioned record hung off RunContext next to metrics/trace, published
/// from the solver's phase transitions and strided supervision
/// checkpoints; the read side (HTTP /progress, tests) never blocks a
/// writer.
///
/// Memory-ordering contract (DESIGN.md §11): writers serialize among
/// themselves on an internal mutex and bracket every update between two
/// release increments of the version word (odd = write in flight); every
/// payload field is a relaxed atomic, so concurrent reads are data-race
/// free. Readers load the version with acquire semantics, copy the
/// payload, fence, and re-check the version — retrying until it is even
/// and unchanged, which guarantees the returned snapshot is exactly the
/// state some writer published (fields updated in one bracket are never
/// observed torn). Writers never wait on readers; a reader under constant
/// write pressure retries, which at solver publish rates (phase
/// transitions + one publish per checkpoint stride) terminates promptly.
class ProgressBoard {
 public:
  static constexpr int32_t kMaxReplicas = 128;

  ProgressBoard();
  ProgressBoard(const ProgressBoard&) = delete;
  ProgressBoard& operator=(const ProgressBoard&) = delete;

  // ---- Write side (solver threads). --------------------------------
  /// Publishes the active phase; `phase` is interned against the known
  /// phase-name set so the board never retains caller storage.
  void SetPhase(std::string_view phase);
  /// Strided-checkpoint publish: phase + checkpoint count + solve-wide
  /// evaluations in one bracket (called by PhaseSupervisor's slow path).
  void OnCheckpoint(std::string_view phase, int64_t checkpoints,
                    int64_t evaluations);
  /// Publishes the solve's budgets once at solve start.
  void SetBudgets(int64_t time_budget_ms, int64_t max_evaluations);
  void SetBestP(int32_t p);
  void SetHeterogeneity(double h);
  /// Generic phase work meter; pass total = -1 when unknown.
  void SetWork(int64_t done, int64_t total);
  /// Declares the portfolio size (clamped to kMaxReplicas) and resets the
  /// per-replica slots to kPending.
  void SetReplicaCount(int32_t n);
  /// Publishes one replica's (state, p); p = -1 leaves p unchanged.
  void SetReplicaState(int32_t replica, ReplicaState state, int32_t p = -1);

  // ---- Read side (HTTP server, tests). -----------------------------
  /// Version-stable copy of the board; safe from any thread, never blocks
  /// a writer.
  ProgressSnapshot Read() const;

  /// Total completed write brackets (diagnostics; equals version()/2).
  int64_t publishes() const;

 private:
  template <typename Fn>
  void Publish(Fn&& fn) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    version_.fetch_add(1, std::memory_order_release);
    fn();
    version_.fetch_add(1, std::memory_order_release);
  }

  using Clock = std::chrono::steady_clock;

  const Clock::time_point epoch_;
  std::mutex writer_mu_;
  std::atomic<uint64_t> version_{0};

  std::atomic<const char*> phase_;
  std::atomic<int64_t> checkpoints_{0};
  std::atomic<int64_t> evaluations_{0};
  std::atomic<int64_t> max_evaluations_{-1};
  std::atomic<int64_t> time_budget_ms_{-1};
  std::atomic<int32_t> best_p_{-1};
  std::atomic<double> heterogeneity_{0.0};
  std::atomic<bool> has_heterogeneity_{false};
  std::atomic<int64_t> work_done_{-1};
  std::atomic<int64_t> work_total_{-1};
  std::atomic<int32_t> replicas_{0};
  std::array<std::atomic<int32_t>, kMaxReplicas> replica_state_;
  std::array<std::atomic<int32_t>, kMaxReplicas> replica_p_;
};

/// Serializes a snapshot as the /progress JSON document: phase, elapsed
/// vs. budgets, best p, heterogeneity (null until known), work meter, and
/// the per-replica portfolio table. Deterministic field order.
std::string ProgressToJson(const ProgressSnapshot& snapshot);

}  // namespace obs
}  // namespace emp

#endif  // EMP_OBS_PROGRESS_H_
