#ifndef EMP_OBS_JOURNAL_H_
#define EMP_OBS_JOURNAL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace emp {

class JsonWriter;

namespace obs {

/// Append-only JSONL flight recorder for one solve — the artifact you
/// diff when two runs disagree. Each record is a single-line JSON object
///
///   {"seq": N, "ts_ms": T, "type": "...", ...payload...}
///
/// with a monotonic sequence number and a timestamp in milliseconds since
/// the journal was constructed (a run-local epoch, so two journals of the
/// same instance line up record-for-record even across machines).
///
/// Record types written by the solvers (DESIGN.md §11): `run_start`
/// (options + seed + instance digest), `phase_begin` / `phase_end` (with
/// seconds and per-phase outcomes), `termination` (degradation /
/// cancellation verdicts), `replica` (one per portfolio replica, in
/// replica order), and a terminal `run_end` summary.
///
/// Bounded: at most `max_records` records are retained; later appends are
/// dropped and counted (except `force` appends — the terminal summary
/// must land even in a truncated journal, and a truncated journal says so
/// via `dropped_records` in `run_end`). Thread-safe; explicit-flush:
/// nothing touches the filesystem until FlushTo()/ToJsonl().
class RunJournal {
 public:
  explicit RunJournal(size_t max_records = 65536);
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// Appends one record. `fields` (may be null) writes extra members into
  /// the open record object via the supplied writer; it runs under the
  /// journal lock, so it must not call back into this journal. `force`
  /// bypasses the bound (terminal records only).
  void Append(std::string_view type,
              const std::function<void(JsonWriter&)>& fields = nullptr,
              bool force = false);

  /// Records retained / appends dropped by the bound so far.
  int64_t size() const;
  int64_t dropped() const;

  /// The retained records as newline-terminated JSONL.
  std::string ToJsonl() const;

  /// Atomically replaces `path` with the current contents (tmp file +
  /// rename), so a reader polling the file never sees a torn write. Safe
  /// to call repeatedly — the CLI's periodic flusher reuses it.
  Status FlushTo(const std::string& path) const;

 private:
  using Clock = std::chrono::steady_clock;

  const size_t max_records_;
  const Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::string> records_;
  int64_t next_seq_ = 0;
  int64_t dropped_ = 0;
};

/// 16 lowercase hex characters for a 64-bit instance digest — the form the
/// `run_start` record carries (fixed width so journals diff cleanly).
std::string DigestHex(uint64_t digest);

}  // namespace obs
}  // namespace emp

#endif  // EMP_OBS_JOURNAL_H_
