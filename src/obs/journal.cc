#include "obs/journal.h"

#include <utility>

#include "common/csv.h"
#include "common/json_writer.h"

namespace emp {
namespace obs {

RunJournal::RunJournal(size_t max_records)
    : max_records_(max_records == 0 ? 1 : max_records),
      epoch_(Clock::now()) {}

void RunJournal::Append(std::string_view type,
                        const std::function<void(JsonWriter&)>& fields,
                        bool force) {
  const int64_t ts_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            epoch_)
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  if (!force && records_.size() >= max_records_) {
    ++dropped_;
    return;
  }
  JsonWriter w(/*indent=*/0);
  w.BeginObject();
  w.Key("seq");
  w.Int(next_seq_++);
  w.Key("ts_ms");
  w.Int(ts_ms);
  w.Key("type");
  w.String(type);
  if (fields) fields(w);
  w.EndObject();
  records_.push_back(std::move(w).TakeString());
}

int64_t RunJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(records_.size());
}

int64_t RunJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string RunJournal::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  size_t bytes = 0;
  for (const std::string& record : records_) bytes += record.size() + 1;
  out.reserve(bytes);
  for (const std::string& record : records_) {
    out += record;
    out += '\n';
  }
  return out;
}

Status RunJournal::FlushTo(const std::string& path) const {
  return WriteFileAtomic(path, ToJsonl());
}

std::string DigestHex(uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

}  // namespace obs
}  // namespace emp
