#ifndef EMP_OBS_QUANTILE_H_
#define EMP_OBS_QUANTILE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace emp {
namespace obs {

/// Streaming quantile estimator in the Greenwald–Khanna / CKMS family,
/// with a *uniform* rank-error guarantee: after observing n values,
/// Query(phi) returns an element whose true rank is within
/// rank_error_bound() * n of phi * n. The summary keeps
/// O((1/eps) * log(eps * n)) tuples regardless of stream length, so the
/// service can feed it one sample per terminal job forever.
///
/// Inserts are buffered: Observe() appends to a small vector (one mutex
/// acquisition, no compression) and the buffer is folded into the tuple
/// list — sort, merge, compress — every kFlushThreshold observations or
/// on query. That keeps the write path lock-cheap for the job-completion
/// rates the solve service sees.
///
/// Merge() combines two sketches (the windowed estimator below merges
/// per-bucket sketches at query time). The merged bound is the
/// *conservative* sum of the inputs' bounds — the classic mergeability
/// result for GK summaries; the sketch carries its own current bound so
/// callers (and tests) always assert against what the instance actually
/// guarantees, never against the construction-time epsilon alone.
///
/// Thread-safe; every method may be called from any thread.
class QuantileSketch {
 public:
  /// `eps` is the target rank error as a fraction of n (default 0.5 %,
  /// i.e. p99 of 10k samples is off by at most 50 ranks). Clamped to
  /// [1e-6, 0.25].
  explicit QuantileSketch(double eps = 0.005);

  /// Deep copy (locks `other`); used to lift per-bucket sketches into a
  /// merged window view.
  QuantileSketch(const QuantileSketch& other);
  QuantileSketch& operator=(const QuantileSketch&) = delete;

  /// Records one observation.
  void Observe(double v);

  /// Estimate of the phi-quantile (phi in [0, 1]); NaN while empty.
  double Query(double phi) const;

  /// Folds `other` into this sketch. The rank-error bound becomes the
  /// sum of both bounds (conservative).
  void Merge(const QuantileSketch& other);

  int64_t count() const;
  double sum() const;

  /// The rank-error fraction this instance currently guarantees: the
  /// construction epsilon, plus the bound of every sketch merged in.
  double rank_error_bound() const;

  /// Retained summary tuples (diagnostics: sublinear in count()).
  int64_t tuple_count() const;

 private:
  /// One GK tuple: `v` with g = rmin(v) - rmin(prev) and
  /// delta = rmax(v) - rmin(v). Invariant after compression:
  /// g + delta <= max(1, floor(2 * bound * n)).
  struct Tuple {
    double v = 0.0;
    int64_t g = 0;
    int64_t delta = 0;
  };

  static constexpr size_t kFlushThreshold = 128;

  void FlushLocked() const;
  void CompressLocked() const;
  double QueryLocked(double phi) const;

  mutable std::mutex mu_;
  const double eps_;
  mutable double bound_;                 // grows on Merge
  mutable std::vector<Tuple> tuples_;    // sorted by v
  mutable std::vector<double> buffer_;   // unsorted, pending flush
  mutable int64_t count_ = 0;            // includes buffered values
  double sum_ = 0.0;
};

/// Sliding-window quantiles built from a ring of bucketed QuantileSketch
/// instances: each bucket covers `bucket_ms` of wall time, and a window
/// query merges the buckets overlapping the last `window_ms` into one
/// sketch (so the returned view carries a summed — conservative — rank
/// error bound of roughly eps * ceil(window/bucket)). Window edges are
/// bucket-granular: a "1m" window covers between 1m and 1m + bucket_ms of
/// history, which is the standard coarse-bucket tradeoff.
///
/// The clock is injectable so rotation/expiry is deterministic in tests;
/// production uses a steady-clock milliseconds-since-construction default.
/// Thread-safe.
class WindowedQuantiles {
 public:
  struct Options {
    /// Wall time covered by one ring bucket.
    int64_t bucket_ms = 30000;
    /// Ring size; buckets * bucket_ms is the longest queryable window
    /// (default 10 x 30 s = 5 minutes).
    int buckets = 10;
    /// Per-bucket sketch epsilon. Kept tighter than the all-time default
    /// because window queries merge (and therefore sum) bucket bounds.
    double eps = 0.001;
  };

  /// `now_ms` overrides the clock (monotonic milliseconds); null uses
  /// steady_clock relative to construction.
  explicit WindowedQuantiles(Options options,
                             std::function<int64_t()> now_ms = nullptr);
  WindowedQuantiles() : WindowedQuantiles(Options{}) {}
  WindowedQuantiles(const WindowedQuantiles&) = delete;
  WindowedQuantiles& operator=(const WindowedQuantiles&) = delete;

  /// Records one observation into the current bucket (rotating stale
  /// buckets out first).
  void Observe(double v);

  /// Merged sketch over the buckets that overlap [now - window_ms, now].
  /// An empty window yields an empty sketch (count() == 0, NaN queries).
  QuantileSketch WindowSketch(int64_t window_ms) const;

  /// Observations inside the window (same bucket granularity).
  int64_t WindowCount(int64_t window_ms) const;

  /// All observations ever recorded (survives rotation).
  int64_t total_count() const;

  const Options& options() const { return options_; }

 private:
  struct Bucket {
    int64_t epoch = -1;  // now_ms / bucket_ms when last reset; -1 = empty
    std::unique_ptr<QuantileSketch> sketch;
  };

  int64_t Now() const;
  void RotateLocked(int64_t now) const;

  const Options options_;
  const std::function<int64_t()> now_ms_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  mutable std::vector<Bucket> ring_;
  int64_t total_count_ = 0;
};

}  // namespace obs
}  // namespace emp

#endif  // EMP_OBS_QUANTILE_H_
