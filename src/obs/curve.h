#ifndef EMP_OBS_CURVE_H_
#define EMP_OBS_CURVE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace emp {
namespace obs {

/// Bounded recorder of one solve's anytime-quality trajectory: a sample
/// of (wall_ms, best_p, heterogeneity, evaluations) on every incumbent
/// improvement, plus coarse timer ticks from the supervision slow path so
/// flat stretches still show the evaluation spend. This is the data spine
/// for quality-over-time reporting (ROADMAP: optimality-gap reporting) —
/// "did the solve converge, and how fast" as one machine-readable curve.
///
/// Attached through RunContext::curve, null by default: a solve without
/// the recorder pays one null-pointer branch per hook (PR-5 discipline —
/// fixed-seed output is bit-identical with the recorder on or off,
/// because the recorder only *reads* solver state).
///
/// Bounded like the trace buffer: when full, new samples are dropped and
/// counted — the early samples carry the steep part of the curve that
/// makes the rest interpretable. Thread-safe (the portfolio publishes
/// incumbent improvements from replica threads).
class AnytimeCurve {
 public:
  struct Sample {
    int64_t wall_ms = 0;
    int32_t best_p = -1;        // -1 until construction reports one
    double heterogeneity = 0.0;
    bool has_heterogeneity = false;
    int64_t evaluations = 0;
  };

  /// `capacity` bounds retained samples; `tick_interval_ms` rate-limits
  /// Tick() so the supervision slow path cannot flood the recorder.
  explicit AnytimeCurve(size_t capacity = 1024,
                        int64_t tick_interval_ms = 250);
  AnytimeCurve(const AnytimeCurve&) = delete;
  AnytimeCurve& operator=(const AnytimeCurve&) = delete;

  /// Incumbent p improved (or was first published); always records.
  void OnBestP(int32_t p, int64_t evaluations);

  /// Incumbent heterogeneity improved; always records.
  void OnHeterogeneity(double h, int64_t evaluations);

  /// Coarse timer tick from the supervision slow path: records the
  /// current incumbent state only when `tick_interval_ms` has elapsed
  /// since the last retained sample.
  void Tick(int64_t evaluations);

  std::vector<Sample> Snapshot() const;
  int64_t dropped() const;
  size_t capacity() const { return capacity_; }

  /// The curve as one JSON document:
  ///   {"samples": [{"wall_ms": ..., "best_p": ..., "heterogeneity":
  ///    <num|null>, "evaluations": ...}, ...], "dropped": N,
  ///    "capacity": N}
  std::string ToJson() const;

 private:
  using Clock = std::chrono::steady_clock;

  int64_t NowMs() const;
  void RecordLocked(int64_t now_ms, int64_t evaluations);

  const size_t capacity_;
  const int64_t tick_interval_ms_;
  const Clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<Sample> samples_;
  int64_t dropped_ = 0;
  int64_t last_sample_ms_ = -1;
  int32_t best_p_ = -1;
  double heterogeneity_ = 0.0;
  bool has_heterogeneity_ = false;
};

}  // namespace obs
}  // namespace emp

#endif  // EMP_OBS_CURVE_H_
