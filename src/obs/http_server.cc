#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/progress.h"

namespace emp {
namespace obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;

std::string StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.1 200 OK";
    case 404:
      return "HTTP/1.1 404 Not Found";
    case 405:
      return "HTTP/1.1 405 Method Not Allowed";
    default:
      return "HTTP/1.1 400 Bad Request";
  }
}

std::string MakeResponse(int code, const std::string& content_type,
                         const std::string& body) {
  std::string out = StatusLine(code);
  out += "\r\nContent-Type: " + content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

HttpServer::HttpServer(const Options& options) : options_(options) {}

Result<std::unique_ptr<HttpServer>> HttpServer::Start(const Options& options) {
  std::unique_ptr<HttpServer> server(new HttpServer(options));

  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return Status::IOError(std::string("HttpServer: socket(): ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError(std::string("HttpServer: bind(127.0.0.1:") +
                           std::to_string(options.port) +
                           "): " + std::strerror(errno));
  }
  if (::listen(server->listen_fd_, 16) != 0) {
    return Status::IOError(std::string("HttpServer: listen(): ") +
                           std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return Status::IOError(std::string("HttpServer: getsockname(): ") +
                           std::strerror(errno));
  }
  server->port_ = static_cast<int>(ntohs(addr.sin_port));

  if (::pipe(server->stop_pipe_) != 0) {
    return Status::IOError(std::string("HttpServer: pipe(): ") +
                           std::strerror(errno));
  }

  server->thread_ = std::thread([raw = server.get()] { raw->Serve(); });
  return server;
}

HttpServer::~HttpServer() {
  Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void HttpServer::Stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (stop_pipe_[1] >= 0) {
    const char byte = 'q';
    // A full pipe is impossible here (one byte, written once), but keep
    // the compiler happy about the unused result.
    [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
}

void HttpServer::Serve() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, /*timeout=*/-1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // 2s receive cap so a half-open client cannot wedge the endpoint.
    timeval timeout{2, 0};
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    HandleConnection(client);
    ::close(client);
  }
}

void HttpServer::HandleConnection(int client_fd) {
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // not even a request line

  requests_.fetch_add(1, std::memory_order_relaxed);
  if (options_.metrics != nullptr) {
    options_.metrics
        ->GetCounter("emp_http_requests_total",
                     "HTTP requests served by the live observability "
                     "endpoint (any status).")
        ->Add(1);
  }

  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    SendAll(client_fd, MakeResponse(400, "text/plain", "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);
  if (method != "GET") {
    SendAll(client_fd,
            MakeResponse(405, "text/plain", "only GET is supported\n"));
    return;
  }
  SendAll(client_fd, RouteRequest(target));
}

std::string HttpServer::RouteRequest(const std::string& target) {
  if (target == "/healthz") {
    return MakeResponse(200, "text/plain; charset=utf-8", "ok\n");
  }
  if (target == "/metrics") {
    const std::string body =
        options_.metrics != nullptr ? MetricsToPrometheus(*options_.metrics)
                                    : std::string();
    return MakeResponse(200, "text/plain; version=0.0.4; charset=utf-8",
                        body);
  }
  if (target == "/metrics.json") {
    const std::string body = options_.metrics != nullptr
                                 ? MetricsToJson(*options_.metrics)
                                 : std::string("{}");
    return MakeResponse(200, "application/json", body);
  }
  if (target == "/progress") {
    const ProgressSnapshot snapshot = options_.progress != nullptr
                                          ? options_.progress->Read()
                                          : ProgressSnapshot{};
    return MakeResponse(200, "application/json", ProgressToJson(snapshot));
  }
  return MakeResponse(404, "text/plain",
                      "not found; try /healthz /metrics /metrics.json "
                      "/progress\n");
}

}  // namespace obs
}  // namespace emp
