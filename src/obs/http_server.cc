#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/json_writer.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/progress.h"

namespace emp {
namespace obs {

namespace {

/// Head (request line + headers) and body are each capped; a solve spec
/// is a few hundred bytes of JSON, so 64 KiB of body is generous.
constexpr size_t kMaxHeadBytes = 8192;
constexpr size_t kMaxBodyBytes = 64 * 1024;

std::string StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.1 200 OK";
    case 202:
      return "HTTP/1.1 202 Accepted";
    case 404:
      return "HTTP/1.1 404 Not Found";
    case 405:
      return "HTTP/1.1 405 Method Not Allowed";
    case 409:
      return "HTTP/1.1 409 Conflict";
    case 413:
      return "HTTP/1.1 413 Content Too Large";
    case 429:
      return "HTTP/1.1 429 Too Many Requests";
    case 500:
      return "HTTP/1.1 500 Internal Server Error";
    default:
      return "HTTP/1.1 400 Bad Request";
  }
}

std::string Serialize(const HttpResponse& response) {
  std::string out = StatusLine(response.status);
  out += "\r\nContent-Type: " + response.content_type;
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  for (const auto& [key, value] : response.extra_headers) {
    out += "\r\n" + key + ": " + value;
  }
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    sent += static_cast<size_t>(n);
  }
}

/// Case-insensitive lookup of one header value in the raw head block
/// (everything before the blank line). Returns an empty string when the
/// header is absent.
std::string HeaderValue(const std::string& head, std::string_view name) {
  size_t pos = head.find("\r\n");
  while (pos != std::string::npos && pos + 2 < head.size()) {
    const size_t line_start = pos + 2;
    const size_t line_end = head.find("\r\n", line_start);
    const std::string line = head.substr(
        line_start, line_end == std::string::npos ? std::string::npos
                                                  : line_end - line_start);
    const size_t colon = line.find(':');
    if (colon != std::string::npos && colon == name.size()) {
      bool match = true;
      for (size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) {
        size_t value_start = colon + 1;
        while (value_start < line.size() && line[value_start] == ' ') {
          ++value_start;
        }
        return line.substr(value_start);
      }
    }
    pos = line_end;
  }
  return "";
}

}  // namespace

HttpResponse JsonErrorResponse(int status, std::string_view code,
                               std::string_view message) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = std::string("{\"error\":{\"code\":\"") +
                  JsonWriter::Escape(code) + "\",\"message\":\"" +
                  JsonWriter::Escape(message) + "\"}}\n";
  return response;
}

HttpServer::HttpServer(const Options& options) : options_(options) {}

Result<std::unique_ptr<HttpServer>> HttpServer::Start(const Options& options) {
  std::unique_ptr<HttpServer> server(new HttpServer(options));

  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return Status::IOError(std::string("HttpServer: socket(): ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError(std::string("HttpServer: bind(127.0.0.1:") +
                           std::to_string(options.port) +
                           "): " + std::strerror(errno));
  }
  if (::listen(server->listen_fd_, 16) != 0) {
    return Status::IOError(std::string("HttpServer: listen(): ") +
                           std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return Status::IOError(std::string("HttpServer: getsockname(): ") +
                           std::strerror(errno));
  }
  server->port_ = static_cast<int>(ntohs(addr.sin_port));

  if (::pipe(server->stop_pipe_) != 0) {
    return Status::IOError(std::string("HttpServer: pipe(): ") +
                           std::strerror(errno));
  }

  server->thread_ = std::thread([raw = server.get()] { raw->Serve(); });
  return server;
}

HttpServer::~HttpServer() {
  Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void HttpServer::Stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (stop_pipe_[1] >= 0) {
    const char byte = 'q';
    // A full pipe is impossible here (one byte, written once), but keep
    // the compiler happy about the unused result.
    [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
}

void HttpServer::Serve() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, /*timeout=*/-1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // 2s receive cap so a half-open client cannot wedge the endpoint.
    timeval timeout{2, 0};
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    HandleConnection(client);
    ::close(client);
  }
}

void HttpServer::HandleConnection(int client_fd) {
  // Phase 1: read until the blank line that ends the head. The client may
  // deliver this in arbitrarily small pieces — keep recv()ing until the
  // terminator shows up (or the 2s socket timeout / size cap trips).
  std::string data;
  char buf[1024];
  size_t head_end = std::string::npos;
  while (data.size() < kMaxHeadBytes + kMaxBodyBytes) {
    head_end = data.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (data.size() >= kMaxHeadBytes) break;
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    data.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = data.find("\r\n");
  if (line_end == std::string::npos) return;  // not even a request line

  requests_.fetch_add(1, std::memory_order_relaxed);
  if (options_.metrics != nullptr) {
    options_.metrics
        ->GetCounter("emp_http_requests_total",
                     "HTTP requests served by the live observability "
                     "endpoint (any status).")
        ->Add(1);
  }

  if (head_end == std::string::npos) {
    SendAll(client_fd, Serialize(JsonErrorResponse(
                           400, "bad_request",
                           "request head exceeds " +
                               std::to_string(kMaxHeadBytes) +
                               " bytes or is truncated")));
    return;
  }
  const std::string head = data.substr(0, head_end);

  const std::string line = head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    SendAll(client_fd,
            Serialize(JsonErrorResponse(400, "bad_request",
                                        "malformed request line")));
    return;
  }

  HttpRequest request;
  request.method = line.substr(0, sp1);
  request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = request.target.find('?');
  if (query != std::string::npos) request.target.resize(query);

  // Phase 2: read the declared body, which may also arrive in pieces and
  // may already partially sit in `data` past the head terminator.
  const std::string length_header = HeaderValue(head, "Content-Length");
  size_t content_length = 0;
  if (!length_header.empty()) {
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(length_header.c_str(), &end, 10);
    if (end == length_header.c_str() || *end != '\0') {
      SendAll(client_fd,
              Serialize(JsonErrorResponse(
                  400, "bad_request",
                  "unparseable Content-Length '" + length_header + "'")));
      return;
    }
    content_length = static_cast<size_t>(parsed);
  }
  if (content_length > kMaxBodyBytes) {
    SendAll(client_fd,
            Serialize(JsonErrorResponse(
                413, "payload_too_large",
                "request body of " + std::to_string(content_length) +
                    " bytes exceeds the " + std::to_string(kMaxBodyBytes) +
                    "-byte limit")));
    return;
  }
  request.body = data.substr(head_end + 4);
  while (request.body.size() < content_length) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      SendAll(client_fd,
              Serialize(JsonErrorResponse(
                  400, "bad_request",
                  "request body truncated: got " +
                      std::to_string(request.body.size()) + " of " +
                      std::to_string(content_length) + " bytes")));
      return;
    }
    request.body.append(buf, static_cast<size_t>(n));
  }
  request.body.resize(content_length);  // ignore pipelined trailing bytes

  SendAll(client_fd, Serialize(RouteRequest(request)));
}

HttpResponse HttpServer::RouteRequest(const HttpRequest& request) {
  if (options_.handler) {
    std::optional<HttpResponse> response = options_.handler(request);
    if (response.has_value()) return *std::move(response);
  }

  const bool builtin_target =
      request.target == "/healthz" || request.target == "/metrics" ||
      request.target == "/metrics.json" || request.target == "/progress" ||
      request.target == "/profile";
  if (builtin_target && request.method != "GET") {
    HttpResponse response = JsonErrorResponse(
        405, "method_not_allowed",
        request.method + " is not supported on " + request.target);
    response.extra_headers.emplace_back("Allow", "GET");
    return response;
  }

  if (request.target == "/healthz") {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok\n", {}};
  }
  if (request.target == "/metrics") {
    const std::string body =
        options_.metrics != nullptr ? MetricsToPrometheus(*options_.metrics)
                                    : std::string();
    return HttpResponse{
        200, "text/plain; version=0.0.4; charset=utf-8", body, {}};
  }
  if (request.target == "/metrics.json") {
    const std::string body = options_.metrics != nullptr
                                 ? MetricsToJson(*options_.metrics)
                                 : std::string("{}");
    return HttpResponse{200, "application/json", body, {}};
  }
  if (request.target == "/progress") {
    const ProgressSnapshot snapshot = options_.progress != nullptr
                                          ? options_.progress->Read()
                                          : ProgressSnapshot{};
    return HttpResponse{200, "application/json", ProgressToJson(snapshot), {}};
  }
  if (request.target == "/profile") {
    // Process-wide profiler state; reports enabled=false with an empty
    // phase table when --profile-hz was never requested.
    return HttpResponse{
        200, "application/json", PhaseProfiler::ToJson() + "\n", {}};
  }
  return JsonErrorResponse(404, "not_found",
                           "no route for " + request.target +
                               "; try /healthz /metrics /metrics.json "
                               "/progress /profile");
}

}  // namespace obs
}  // namespace emp
