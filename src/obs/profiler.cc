#include "obs/profiler.h"

#include <sys/time.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json_writer.h"

namespace emp {
namespace obs {

namespace {

/// Attribution for ticks landing before the interrupted thread ever
/// published a phase (non-solver threads, the accept loop, ...).
constexpr const char* kUnattributed = "unattributed";

/// Distinct phase names the table can hold. The board's canonical set is
/// ~a dozen; 32 leaves room without growing the handler's scan.
constexpr size_t kSlots = 32;

struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<int64_t> ticks{0};
};

// All handler-visible state is lock-free atomics with static storage:
// nothing here allocates, and the handler never takes a lock.
Slot g_slots[kSlots];
std::atomic<int64_t> g_total_ticks{0};
std::atomic<int64_t> g_overflow_ticks{0};
std::atomic<bool> g_enabled{false};
std::atomic<int> g_hz{0};

/// The interrupted thread's current phase. SIGPROF is delivered to a
/// thread that is consuming CPU, and the handler runs *on* that thread,
/// so this thread-local is only ever touched by its own thread — the
/// atomic is for signal-handler (not cross-thread) visibility.
thread_local std::atomic<const char*> t_phase{nullptr};

/// Charges one tick to `phase`. Async-signal-safe: atomic loads, one
/// bounded CAS loop over a fixed array, atomic adds.
void RecordTick(const char* phase) {
  if (phase == nullptr) phase = kUnattributed;
  g_total_ticks.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < kSlots; ++i) {
    const char* name = g_slots[i].name.load(std::memory_order_acquire);
    if (name == phase) {
      g_slots[i].ticks.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (name == nullptr) {
      const char* expected = nullptr;
      if (g_slots[i].name.compare_exchange_strong(
              expected, phase, std::memory_order_acq_rel)) {
        g_slots[i].ticks.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Lost the claim race; the winner may have installed our phase.
      if (expected == phase) {
        g_slots[i].ticks.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }
  g_overflow_ticks.fetch_add(1, std::memory_order_relaxed);
}

void OnSigprof(int) {
  RecordTick(t_phase.load(std::memory_order_relaxed));
}

}  // namespace

Status PhaseProfiler::Start(int hz) {
  if (hz < 1 || hz > 1000) {
    return Status::InvalidArgument(
        "PhaseProfiler: hz must be in [1, 1000], got " + std::to_string(hz));
  }
  bool expected = false;
  if (!g_enabled.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("PhaseProfiler: already running");
  }

  // Fresh run: zero the table so a restarted profiler reports one
  // sampling session, not the union of all of them.
  for (Slot& slot : g_slots) {
    slot.name.store(nullptr, std::memory_order_relaxed);
    slot.ticks.store(0, std::memory_order_relaxed);
  }
  g_total_ticks.store(0, std::memory_order_relaxed);
  g_overflow_ticks.store(0, std::memory_order_relaxed);
  g_hz.store(hz, std::memory_order_relaxed);

  struct sigaction action = {};
  action.sa_handler = OnSigprof;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;  // never surface EINTR into solver I/O
  if (sigaction(SIGPROF, &action, nullptr) != 0) {
    g_enabled.store(false, std::memory_order_release);
    return Status::IOError("PhaseProfiler: sigaction(SIGPROF) failed");
  }

  itimerval timer = {};
  const long interval_us = 1000000L / hz;
  timer.it_interval.tv_sec = interval_us / 1000000L;
  timer.it_interval.tv_usec = interval_us % 1000000L;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    signal(SIGPROF, SIG_DFL);
    g_enabled.store(false, std::memory_order_release);
    return Status::IOError("PhaseProfiler: setitimer(ITIMER_PROF) failed");
  }
  return Status::OK();
}

void PhaseProfiler::Stop() {
  if (!g_enabled.exchange(false, std::memory_order_acq_rel)) return;
  itimerval off = {};
  setitimer(ITIMER_PROF, &off, nullptr);
  // SIG_IGN (not SIG_DFL): one last already-queued SIGPROF after the
  // disarm must not kill the process.
  signal(SIGPROF, SIG_IGN);
}

bool PhaseProfiler::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void PhaseProfiler::SetThreadPhase(const char* phase) {
  t_phase.store(phase, std::memory_order_relaxed);
}

std::string PhaseProfiler::ToJson() {
  struct Row {
    const char* name;
    int64_t ticks;
  };
  std::vector<Row> rows;
  rows.reserve(kSlots);
  for (const Slot& slot : g_slots) {
    const char* name = slot.name.load(std::memory_order_acquire);
    const int64_t ticks = slot.ticks.load(std::memory_order_relaxed);
    if (name != nullptr && ticks > 0) rows.push_back(Row{name, ticks});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.ticks != b.ticks) return a.ticks > b.ticks;
    return std::string_view(a.name) < std::string_view(b.name);
  });
  const int64_t total = g_total_ticks.load(std::memory_order_relaxed);

  JsonWriter w;
  w.BeginObject();
  w.Key("enabled");
  w.Bool(g_enabled.load(std::memory_order_relaxed));
  w.Key("hz");
  w.Int(g_hz.load(std::memory_order_relaxed));
  w.Key("total_ticks");
  w.Int(total);
  w.Key("overflow_ticks");
  w.Int(g_overflow_ticks.load(std::memory_order_relaxed));
  w.Key("phases");
  w.BeginArray();
  for (const Row& row : rows) {
    w.BeginInlineObject();
    w.Key("phase");
    w.String(row.name);
    w.Key("ticks");
    w.Int(row.ticks);
    w.Key("fraction");
    w.Double(total > 0 ? static_cast<double>(row.ticks) /
                             static_cast<double>(total)
                       : 0.0);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).TakeString();
}

void PhaseProfiler::RecordTickForTest(const char* phase) {
  RecordTick(phase);
}

}  // namespace obs
}  // namespace emp
