#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

#include "obs/quantile.h"

namespace emp {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bounds must be increasing");
}

void Histogram::Observe(double v) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double old_sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old_sum, old_sum + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> DefaultSecondsBuckets() {
  return {0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05,
          0.1,    0.5,    1.0,   5.0,   10.0, 60.0};
}

struct Summary::Impl {
  explicit Impl(double eps) : sketch(eps) {}
  QuantileSketch sketch;
};

const std::vector<double>& Summary::Quantiles() {
  static const std::vector<double> kQuantiles = {0.5, 0.95, 0.99};
  return kQuantiles;
}

Summary::Summary(double eps) : impl_(std::make_unique<Impl>(eps)) {}
Summary::~Summary() = default;

void Summary::Observe(double v) { impl_->sketch.Observe(v); }
double Summary::Query(double phi) const { return impl_->sketch.Query(phi); }
int64_t Summary::count() const { return impl_->sketch.count(); }
double Summary::sum() const { return impl_->sketch.sum(); }
double Summary::rank_error_bound() const {
  return impl_->sketch.rank_error_bound();
}

void MetricRegistry::RecordHelp(std::string_view name,
                                std::string_view help) {
  // Called with mu_ held. First non-empty help wins; re-registrations
  // with a different text are ignored (stable exposition output).
  if (help.empty()) return;
  help_.emplace(std::string(name), std::string(help));
}

Counter* MetricRegistry::GetCounter(std::string_view name,
                                    std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordHelp(name, help);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordHelp(name, help);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        std::vector<double> bounds,
                                        std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordHelp(name, help);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

Summary* MetricRegistry::GetSummary(std::string_view name, double eps,
                                    std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordHelp(name, help);
  auto it = summaries_.find(name);
  if (it == summaries_.end()) {
    it = summaries_
             .emplace(std::string(name), std::make_unique<Summary>(eps))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = histogram->bounds();
    data.counts = histogram->bucket_counts();
    data.count = histogram->count();
    data.sum = histogram->sum();
    snapshot.histograms.emplace_back(name, std::move(data));
  }
  snapshot.summaries.reserve(summaries_.size());
  for (const auto& [name, summary] : summaries_) {
    MetricsSnapshot::SummaryData data;
    data.quantiles.reserve(Summary::Quantiles().size());
    for (double phi : Summary::Quantiles()) {
      data.quantiles.emplace_back(phi, summary->Query(phi));
    }
    data.count = summary->count();
    data.sum = summary->sum();
    data.rank_error_bound = summary->rank_error_bound();
    snapshot.summaries.emplace_back(name, std::move(data));
  }
  snapshot.help.reserve(help_.size());
  for (const auto& [name, text] : help_) {
    snapshot.help.emplace_back(name, text);
  }
  return snapshot;
}

}  // namespace obs
}  // namespace emp
