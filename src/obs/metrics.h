#ifndef EMP_OBS_METRICS_H_
#define EMP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace emp {
namespace obs {

/// Monotonically increasing event count. Add() is lock-free (one relaxed
/// atomic add) and safe from any thread, including the parallel
/// construction workers.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written instantaneous value (best p so far, final heterogeneity,
/// phase seconds). Set/value are single atomic stores/loads.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus-style cumulative export): bucket i
/// counts observations <= bounds[i], with an implicit +Inf bucket.
/// Observe() is wait-free per bucket (relaxed atomic adds); the sum uses a
/// CAS loop, acceptable at telemetry rates.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; empty bounds give a single
  /// +Inf bucket (count/sum only).
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts, one per bound plus the +Inf
  /// bucket at the back.
  std::vector<int64_t> bucket_counts() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket bounds for phase / sub-step durations in seconds.
std::vector<double> DefaultSecondsBuckets();

/// Streaming quantile metric (Prometheus summary type): a CKMS-style
/// sketch behind the registry's usual stable-pointer interface. Observe()
/// is lock-cheap (one short critical section appending to the sketch's
/// insert buffer); exposition reports the canonical p50/p95/p99 plus
/// _sum/_count. See obs/quantile.h for the rank-error guarantee.
class Summary {
 public:
  /// Quantiles every summary exposes, in exposition order.
  static const std::vector<double>& Quantiles();

  explicit Summary(double eps = 0.005);
  ~Summary();
  Summary(const Summary&) = delete;
  Summary& operator=(const Summary&) = delete;

  void Observe(double v);
  /// Estimate of the phi-quantile; NaN while empty.
  double Query(double phi) const;
  int64_t count() const;
  double sum() const;
  double rank_error_bound() const;

 private:
  struct Impl;  // wraps QuantileSketch without leaking it into this header
  std::unique_ptr<Impl> impl_;
};

/// Point-in-time copy of every registered metric, name-sorted — the
/// exporters' input, decoupled from concurrent writers.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<int64_t> counts;  // per-bucket, +Inf last
    int64_t count = 0;
    double sum = 0.0;
  };
  struct SummaryData {
    /// (phi, estimate) pairs in Summary::Quantiles() order; the estimate
    /// is NaN while the summary is empty (exporters render that as the
    /// Prometheus `NaN` sample / JSON null).
    std::vector<std::pair<double, double>> quantiles;
    int64_t count = 0;
    double sum = 0.0;
    double rank_error_bound = 0.0;
  };
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;
  std::vector<std::pair<std::string, SummaryData>> summaries;
  /// Per-metric descriptions (name -> help text), name-sorted; only
  /// metrics registered with a non-empty help string appear. The
  /// Prometheus exporter renders these as `# HELP` lines.
  std::vector<std::pair<std::string, std::string>> help;
};

/// Thread-safe registry of named metrics. Get*() registers on first use
/// and returns a stable pointer — resolve handles once per phase, then
/// update lock-free on the hot path. Metric names follow the
/// `emp_<phase>_<quantity>[_total]` scheme documented in DESIGN.md §7.
///
/// Solvers reach the registry through RunContext::metrics, which is null
/// by default: every instrumentation site degrades to a single
/// null-pointer branch when telemetry is off.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// `help` (optional) is the metric's human-readable description,
  /// recorded on first non-empty registration and exported as the
  /// Prometheus `# HELP` line; later calls never overwrite it.
  Counter* GetCounter(std::string_view name, std::string_view help = {});
  Gauge* GetGauge(std::string_view name, std::string_view help = {});
  /// Registers with `bounds` on first use; later calls for the same name
  /// return the existing histogram regardless of bounds.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds = DefaultSecondsBuckets(),
                          std::string_view help = {});
  /// Registers with `eps` on first use; later calls for the same name
  /// return the existing summary regardless of eps.
  Summary* GetSummary(std::string_view name, double eps = 0.005,
                      std::string_view help = {});

  MetricsSnapshot Snapshot() const;

 private:
  void RecordHelp(std::string_view name, std::string_view help);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Summary>, std::less<>> summaries_;
  std::map<std::string, std::string, std::less<>> help_;
};

/// Null-safe helpers: resolve a handle only when a registry is attached,
/// and update only when the handle resolved. Instrumentation sites use
/// these so disabled telemetry costs one branch.
inline Counter* GetCounter(MetricRegistry* registry, std::string_view name) {
  return registry != nullptr ? registry->GetCounter(name) : nullptr;
}
inline Gauge* GetGauge(MetricRegistry* registry, std::string_view name) {
  return registry != nullptr ? registry->GetGauge(name) : nullptr;
}
inline Histogram* GetHistogram(MetricRegistry* registry,
                               std::string_view name) {
  return registry != nullptr ? registry->GetHistogram(name) : nullptr;
}
inline Histogram* GetHistogram(MetricRegistry* registry, std::string_view name,
                               std::vector<double> bounds) {
  return registry != nullptr
             ? registry->GetHistogram(name, std::move(bounds))
             : nullptr;
}
inline void Add(Counter* counter, int64_t n = 1) {
  if (counter != nullptr) counter->Add(n);
}
inline void Set(Gauge* gauge, double v) {
  if (gauge != nullptr) gauge->Set(v);
}
inline void Observe(Histogram* histogram, double v) {
  if (histogram != nullptr) histogram->Observe(v);
}
inline Summary* GetSummary(MetricRegistry* registry, std::string_view name) {
  return registry != nullptr ? registry->GetSummary(name) : nullptr;
}
inline void Observe(Summary* summary, double v) {
  if (summary != nullptr) summary->Observe(v);
}

}  // namespace obs
}  // namespace emp

#endif  // EMP_OBS_METRICS_H_
