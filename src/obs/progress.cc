#include "obs/progress.h"

#include <cmath>

#include "common/json_writer.h"
#include "obs/profiler.h"

namespace emp {
namespace obs {

namespace {

/// Interns `phase` against the known phase-name set. The board stores a
/// bare const char* (atomically swappable), so it must never retain
/// caller storage; unknown names collapse to "other".
const char* CanonicalPhaseName(std::string_view phase) {
  static constexpr const char* kKnown[] = {
      "idle",     "solve", "feasibility", "construction", "tabu",
      "anneal",   "exact", "maxp",        "skater",       "portfolio",
      "reduction"};
  for (const char* name : kKnown) {
    if (phase == name) return name;
  }
  return "other";
}

}  // namespace

std::string_view ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kPending:
      return "pending";
    case ReplicaState::kConstructing:
      return "constructing";
    case ReplicaState::kLocalSearch:
      return "local-search";
    case ReplicaState::kDone:
      return "done";
    case ReplicaState::kCancelled:
      return "cancelled";
    case ReplicaState::kSkipped:
      return "skipped";
  }
  return "unknown";
}

ProgressBoard::ProgressBoard() : epoch_(Clock::now()), phase_("idle") {
  for (int32_t i = 0; i < kMaxReplicas; ++i) {
    replica_state_[static_cast<size_t>(i)].store(
        static_cast<int32_t>(ReplicaState::kPending),
        std::memory_order_relaxed);
    replica_p_[static_cast<size_t>(i)].store(-1, std::memory_order_relaxed);
  }
}

void ProgressBoard::SetPhase(std::string_view phase) {
  const char* interned = CanonicalPhaseName(phase);
  // Feed the sampling profiler's per-thread attribution from the same
  // interned pointer the board stores. Worker threads publish their own
  // phase transitions, so thread attribution comes for free; one relaxed
  // load gates the whole thing when the profiler is off.
  if (PhaseProfiler::enabled()) PhaseProfiler::SetThreadPhase(interned);
  Publish([&] {
    phase_.store(interned, std::memory_order_relaxed);
    // A new phase starts a fresh checkpoint count and work meter.
    checkpoints_.store(0, std::memory_order_relaxed);
    work_done_.store(-1, std::memory_order_relaxed);
    work_total_.store(-1, std::memory_order_relaxed);
  });
}

void ProgressBoard::OnCheckpoint(std::string_view phase, int64_t checkpoints,
                                 int64_t evaluations) {
  const char* interned = CanonicalPhaseName(phase);
  if (PhaseProfiler::enabled()) PhaseProfiler::SetThreadPhase(interned);
  Publish([&] {
    phase_.store(interned, std::memory_order_relaxed);
    checkpoints_.store(checkpoints, std::memory_order_relaxed);
    evaluations_.store(evaluations, std::memory_order_relaxed);
  });
}

void ProgressBoard::SetBudgets(int64_t time_budget_ms,
                               int64_t max_evaluations) {
  Publish([&] {
    time_budget_ms_.store(time_budget_ms, std::memory_order_relaxed);
    max_evaluations_.store(max_evaluations, std::memory_order_relaxed);
  });
}

void ProgressBoard::SetBestP(int32_t p) {
  Publish([&] { best_p_.store(p, std::memory_order_relaxed); });
}

void ProgressBoard::SetHeterogeneity(double h) {
  Publish([&] {
    heterogeneity_.store(h, std::memory_order_relaxed);
    has_heterogeneity_.store(true, std::memory_order_relaxed);
  });
}

void ProgressBoard::SetWork(int64_t done, int64_t total) {
  Publish([&] {
    work_done_.store(done, std::memory_order_relaxed);
    work_total_.store(total, std::memory_order_relaxed);
  });
}

void ProgressBoard::SetReplicaCount(int32_t n) {
  const int32_t clamped = n < 0 ? 0 : (n > kMaxReplicas ? kMaxReplicas : n);
  Publish([&] {
    replicas_.store(clamped, std::memory_order_relaxed);
    for (int32_t i = 0; i < clamped; ++i) {
      replica_state_[static_cast<size_t>(i)].store(
          static_cast<int32_t>(ReplicaState::kPending),
          std::memory_order_relaxed);
      replica_p_[static_cast<size_t>(i)].store(-1, std::memory_order_relaxed);
    }
  });
}

void ProgressBoard::SetReplicaState(int32_t replica, ReplicaState state,
                                    int32_t p) {
  if (replica < 0 || replica >= kMaxReplicas) return;
  Publish([&] {
    replica_state_[static_cast<size_t>(replica)].store(
        static_cast<int32_t>(state), std::memory_order_relaxed);
    if (p >= 0) {
      replica_p_[static_cast<size_t>(replica)].store(
          p, std::memory_order_relaxed);
    }
  });
}

ProgressSnapshot ProgressBoard::Read() const {
  ProgressSnapshot snap;
  for (;;) {
    const uint64_t v1 = version_.load(std::memory_order_acquire);
    if (v1 & 1) continue;  // write in flight; retry
    snap.phase = phase_.load(std::memory_order_relaxed);
    snap.checkpoints = checkpoints_.load(std::memory_order_relaxed);
    snap.evaluations = evaluations_.load(std::memory_order_relaxed);
    snap.max_evaluations = max_evaluations_.load(std::memory_order_relaxed);
    snap.time_budget_ms = time_budget_ms_.load(std::memory_order_relaxed);
    snap.best_p = best_p_.load(std::memory_order_relaxed);
    snap.heterogeneity = heterogeneity_.load(std::memory_order_relaxed);
    snap.has_heterogeneity =
        has_heterogeneity_.load(std::memory_order_relaxed);
    snap.work_done = work_done_.load(std::memory_order_relaxed);
    snap.work_total = work_total_.load(std::memory_order_relaxed);
    snap.replicas = replicas_.load(std::memory_order_relaxed);
    const int32_t n = snap.replicas < 0
                          ? 0
                          : (snap.replicas > kMaxReplicas ? kMaxReplicas
                                                          : snap.replicas);
    for (int32_t i = 0; i < n; ++i) {
      snap.replica[static_cast<size_t>(i)].state = static_cast<ReplicaState>(
          replica_state_[static_cast<size_t>(i)].load(
              std::memory_order_relaxed));
      snap.replica[static_cast<size_t>(i)].p =
          replica_p_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (version_.load(std::memory_order_relaxed) == v1) {
      snap.version = v1;
      break;
    }
  }
  snap.elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        Clock::now() - epoch_)
                        .count();
  return snap;
}

int64_t ProgressBoard::publishes() const {
  return static_cast<int64_t>(version_.load(std::memory_order_acquire) / 2);
}

std::string ProgressToJson(const ProgressSnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Key("phase");
  w.String(snapshot.phase);
  w.Key("elapsed_ms");
  w.Int(snapshot.elapsed_ms);
  w.Key("time_budget_ms");
  w.Int(snapshot.time_budget_ms);
  w.Key("deadline_remaining_ms");
  if (snapshot.time_budget_ms >= 0) {
    w.Int(snapshot.time_budget_ms - snapshot.elapsed_ms);
  } else {
    w.Null();
  }
  w.Key("checkpoints");
  w.Int(snapshot.checkpoints);
  w.Key("evaluations");
  w.Int(snapshot.evaluations);
  w.Key("max_evaluations");
  w.Int(snapshot.max_evaluations);
  w.Key("best_p");
  w.Int(snapshot.best_p);
  w.Key("heterogeneity");
  if (snapshot.has_heterogeneity && std::isfinite(snapshot.heterogeneity)) {
    w.Double(snapshot.heterogeneity);
  } else {
    w.Null();
  }
  w.Key("work_done");
  w.Int(snapshot.work_done);
  w.Key("work_total");
  w.Int(snapshot.work_total);
  w.Key("version");
  w.Int(static_cast<int64_t>(snapshot.version));
  w.Key("replicas");
  w.BeginArray();
  for (int32_t i = 0; i < snapshot.replicas && i < ProgressBoard::kMaxReplicas;
       ++i) {
    const ProgressSnapshot::Replica& r =
        snapshot.replica[static_cast<size_t>(i)];
    w.BeginInlineObject();
    w.Key("state");
    w.String(ReplicaStateName(r.state));
    w.Key("p");
    w.Int(r.p);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).TakeString();
}

}  // namespace obs
}  // namespace emp
