#include "obs/trace.h"

#include <algorithm>

#include "common/json_writer.h"
#include "obs/metrics.h"

namespace emp {
namespace obs {

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_(Clock::now()) {
  events_.reserve(std::min<size_t>(capacity_, 1024));
}

int64_t TraceBuffer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch_)
      .count();
}

void TraceBuffer::RecordSpan(std::string_view name, int64_t start_us,
                             int64_t end_us, int64_t worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    if (drop_counter_ != nullptr) drop_counter_->Add(1);
    return;
  }
  events_.push_back(TraceEvent{std::string(name), start_us,
                               end_us - start_us, worker, 0.0});
}

void TraceBuffer::RecordInstant(std::string_view name, double value,
                                int64_t worker) {
  const int64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    if (drop_counter_ != nullptr) drop_counter_->Add(1);
    return;
  }
  events_.push_back(TraceEvent{std::string(name), now, -1, worker, value});
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

int64_t TraceBuffer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceBuffer::AttachDropMetrics(MetricRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    drop_counter_ = nullptr;
    return;
  }
  drop_counter_ = registry->GetCounter(
      "emp_trace_dropped_events_total",
      "Trace events dropped because the bounded TraceBuffer was full.");
  // Back-fill drops recorded before the registry was attached so the
  // counter always equals dropped_events().
  if (dropped_ > 0) drop_counter_->Add(dropped_);
}

std::string TraceBuffer::ToJson(std::string_view trace_id) const {
  const std::vector<TraceEvent> events = Snapshot();
  const int64_t dropped = dropped_events();
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  if (!trace_id.empty()) {
    w.BeginInlineObject();
    w.Key("name");
    w.String("trace_id");
    w.Key("ph");
    w.String("M");
    w.Key("pid");
    w.Int(0);
    w.Key("tid");
    w.Int(0);
    w.Key("args");
    w.BeginInlineObject();
    w.Key("trace_id");
    w.String(trace_id);
    w.EndObject();
    w.EndObject();
  }
  if (dropped > 0) {
    // Metadata record announcing the truncation, so a consumer never
    // mistakes a clipped trace for a complete one.
    w.BeginInlineObject();
    w.Key("name");
    w.String("dropped_events");
    w.Key("ph");
    w.String("M");
    w.Key("pid");
    w.Int(0);
    w.Key("tid");
    w.Int(0);
    w.Key("args");
    w.BeginInlineObject();
    w.Key("dropped");
    w.Int(dropped);
    w.Key("capacity");
    w.Int(static_cast<int64_t>(capacity_));
    w.EndObject();
    w.EndObject();
  }
  for (const TraceEvent& ev : events) {
    w.BeginInlineObject();
    w.Key("name");
    w.String(ev.name);
    w.Key("ph");
    w.String(ev.duration_us >= 0 ? "X" : "i");
    w.Key("ts");
    w.Int(ev.start_us);
    if (ev.duration_us >= 0) {
      w.Key("dur");
      w.Int(ev.duration_us);
    }
    w.Key("pid");
    w.Int(0);
    w.Key("tid");
    w.Int(ev.worker);
    if (ev.duration_us < 0) {
      w.Key("args");
      w.BeginInlineObject();
      w.Key("value");
      w.Double(ev.value);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  if (!trace_id.empty()) {
    w.Key("traceId");
    w.String(trace_id);
  }
  w.Key("droppedEvents");
  w.Int(dropped_events());
  w.EndObject();
  return std::move(w).TakeString();
}

}  // namespace obs
}  // namespace emp
