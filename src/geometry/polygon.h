#ifndef EMP_GEOMETRY_POLYGON_H_
#define EMP_GEOMETRY_POLYGON_H_

#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"

namespace emp {

/// A simple polygon (single ring, no holes) stored as an ordered vertex
/// list without a repeated closing vertex. Census-tract boundaries in this
/// reproduction are convex Voronoi cells, but the routines here work for any
/// simple polygon unless stated otherwise.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices)
      : vertices_(std::move(vertices)) {}

  const std::vector<Point>& vertices() const { return vertices_; }
  std::vector<Point>& mutable_vertices() { return vertices_; }
  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  /// Signed area: positive for counter-clockwise vertex order.
  double SignedArea() const;

  /// Absolute area.
  double Area() const;

  /// Perimeter length.
  double Perimeter() const;

  /// Area-weighted centroid. Falls back to the vertex mean for degenerate
  /// (zero-area) polygons.
  Point Centroid() const;

  /// Bounding box of all vertices.
  Box BoundingBox() const;

  /// Point-in-polygon test (ray casting). Boundary points may return either
  /// value; callers needing boundary semantics should test edges explicitly.
  bool Contains(Point p) const;

  /// Ensures counter-clockwise orientation, reversing in place if needed.
  void MakeCounterClockwise();

  /// True if the polygon is convex (assuming CCW or CW consistent order).
  bool IsConvex() const;

 private:
  std::vector<Point> vertices_;
};

/// True when segments [a1,a2] and [b1,b2] overlap along a common line for a
/// length of at least `min_overlap` — the shared-border ("rook") adjacency
/// test between polygon edges.
bool SegmentsOverlap(Point a1, Point a2, Point b1, Point b2,
                     double min_overlap, double eps = 1e-9);

/// Length of the shared border between two polygons: the total length of
/// collinear overlap between their edges. Zero when they only touch at
/// points or are disjoint.
double SharedBorderLength(const Polygon& a, const Polygon& b,
                          double eps = 1e-9);

/// Douglas–Peucker ring simplification: drops vertices whose removal
/// displaces the boundary by less than `tolerance`. Always keeps at least
/// a triangle. Used to shrink SVG/GeoJSON exports of large maps; not used
/// in adjacency derivation (simplified rings may no longer share borders
/// exactly).
Polygon SimplifyPolygon(const Polygon& polygon, double tolerance);

}  // namespace emp

#endif  // EMP_GEOMETRY_POLYGON_H_
