#include "geometry/clip.h"

#include <cmath>

namespace emp {

HalfPlane PerpendicularBisector(Point site, Point other, int64_t tag) {
  // Points p closer to `site` than `other` satisfy
  //   |p - site|^2 <= |p - other|^2
  //   2 (other - site) . p <= |other|^2 - |site|^2
  Point normal = (other - site) * 2.0;
  double offset = Dot(other, other) - Dot(site, site);
  return HalfPlane{normal, offset, tag};
}

TaggedConvexPolygon MakeTagged(const Polygon& convex_ccw) {
  TaggedConvexPolygon out;
  out.vertices = convex_ccw.vertices();
  out.edge_tags.assign(out.vertices.size(), -1);
  return out;
}

TaggedConvexPolygon ClipConvex(const TaggedConvexPolygon& poly,
                               const HalfPlane& hp) {
  TaggedConvexPolygon out;
  const size_t n = poly.vertices.size();
  if (n < 3) return out;

  out.vertices.reserve(n + 1);
  out.edge_tags.reserve(n + 1);

  for (size_t i = 0; i < n; ++i) {
    const Point& cur = poly.vertices[i];
    const Point& nxt = poly.vertices[(i + 1) % n];
    const int64_t edge_tag = poly.edge_tags[i];
    const bool cur_in = hp.Inside(cur);
    const bool nxt_in = hp.Inside(nxt);

    auto intersect = [&]() -> Point {
      // Solve Dot(normal, cur + t*(nxt-cur)) == offset for t.
      double denom = Dot(hp.normal, nxt - cur);
      double t = (hp.offset - Dot(hp.normal, cur)) / denom;
      if (t < 0.0) t = 0.0;
      if (t > 1.0) t = 1.0;
      return cur + (nxt - cur) * t;
    };

    if (cur_in && nxt_in) {
      // Edge fully inside: keep it.
      out.vertices.push_back(cur);
      out.edge_tags.push_back(edge_tag);
    } else if (cur_in && !nxt_in) {
      // Leaving the half plane: keep cur, cut the edge, then the cut line
      // runs until we re-enter — tagged with hp.tag.
      out.vertices.push_back(cur);
      out.edge_tags.push_back(edge_tag);
      out.vertices.push_back(intersect());
      out.edge_tags.push_back(hp.tag);
    } else if (!cur_in && nxt_in) {
      // Re-entering: start at the intersection; the edge from there to nxt
      // keeps the original tag.
      out.vertices.push_back(intersect());
      out.edge_tags.push_back(edge_tag);
    }
    // Both outside: drop entirely.
  }

  if (out.vertices.size() < 3) {
    out.vertices.clear();
    out.edge_tags.clear();
  }
  return out;
}

TaggedConvexPolygon ClipConvex(const TaggedConvexPolygon& poly,
                               const std::vector<HalfPlane>& planes) {
  TaggedConvexPolygon cur = poly;
  for (const HalfPlane& hp : planes) {
    cur = ClipConvex(cur, hp);
    if (cur.empty()) break;
  }
  return cur;
}

}  // namespace emp
