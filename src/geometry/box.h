#ifndef EMP_GEOMETRY_BOX_H_
#define EMP_GEOMETRY_BOX_H_

#include <algorithm>
#include <limits>

#include "geometry/point.h"

namespace emp {

/// Axis-aligned bounding box. Default-constructed boxes are empty (inverted
/// bounds) and grow via Extend().
struct Box {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  bool empty() const { return min_x > max_x || min_y > max_y; }

  void Extend(Point p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  void Extend(const Box& other) {
    if (other.empty()) return;
    Extend(Point{other.min_x, other.min_y});
    Extend(Point{other.max_x, other.max_y});
  }

  bool Contains(Point p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Intersects(const Box& other) const {
    return !(other.min_x > max_x || other.max_x < min_x ||
             other.min_y > max_y || other.max_y < min_y);
  }

  double Width() const { return empty() ? 0.0 : max_x - min_x; }
  double Height() const { return empty() ? 0.0 : max_y - min_y; }
  Point Center() const {
    return {(min_x + max_x) * 0.5, (min_y + max_y) * 0.5};
  }
};

}  // namespace emp

#endif  // EMP_GEOMETRY_BOX_H_
