#ifndef EMP_GEOMETRY_VORONOI_H_
#define EMP_GEOMETRY_VORONOI_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geometry/box.h"
#include "geometry/polygon.h"

namespace emp {

namespace obs {
class MetricRegistry;
}  // namespace obs

/// A bounded Voronoi diagram: one convex cell per input site, clipped to a
/// rectangular frame, with the cell-to-cell adjacency extracted from the
/// bisectors that actually bound each cell. This is the substrate that
/// replaces real census-tract shapefiles: Voronoi cells of jittered points
/// are irregular, planar, and have tract-like neighbor counts (~6 on
/// average).
struct VoronoiDiagram {
  std::vector<Polygon> cells;                    // cells[i] belongs to site i
  std::vector<std::vector<int32_t>> neighbors;   // sorted, symmetric
  Box frame;                                     // the clipping rectangle
};

/// Options controlling the cell construction.
struct VoronoiOptions {
  /// Initial number of nearest neighbors whose bisectors are used to clip a
  /// cell; doubled until the security-radius test certifies exactness.
  int initial_knn = 16;
  /// Hard cap on the neighbor count per cell (guards pathological inputs).
  int max_knn = 1024;
  /// Optional telemetry sink (null = off): records cells built, knn
  /// doublings, and cells that hit max_knn uncertified.
  obs::MetricRegistry* metrics = nullptr;
};

/// Computes the bounded Voronoi diagram of `sites` inside `frame`.
/// Fails with InvalidArgument when sites are empty, the frame is empty, or
/// two sites coincide (within 1e-12), which would produce a degenerate cell.
Result<VoronoiDiagram> ComputeVoronoi(const std::vector<Point>& sites,
                                      const Box& frame,
                                      const VoronoiOptions& options = {});

}  // namespace emp

#endif  // EMP_GEOMETRY_VORONOI_H_
