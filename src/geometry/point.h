#ifndef EMP_GEOMETRY_POINT_H_
#define EMP_GEOMETRY_POINT_H_

#include <cmath>

namespace emp {

/// A 2-D point / vector in the map plane. Coordinates are arbitrary planar
/// units (the synthetic generator uses a unit-per-tract-ish scale).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(Point a, double k) { return {a.x * k, a.y * k}; }
  friend Point operator*(double k, Point a) { return a * k; }
  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
};

/// Dot product.
inline double Dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }

/// 2-D cross product (z-component of the 3-D cross product).
inline double Cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }

/// Squared Euclidean distance — cheaper than Distance for comparisons.
inline double DistanceSquared(Point a, Point b) {
  Point d = a - b;
  return Dot(d, d);
}

/// Euclidean distance.
inline double Distance(Point a, Point b) {
  return std::sqrt(DistanceSquared(a, b));
}

/// Euclidean norm of a vector.
inline double Norm(Point a) { return std::sqrt(Dot(a, a)); }

/// Midpoint of the segment ab.
inline Point Midpoint(Point a, Point b) {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

/// Orientation of the ordered triple (a, b, c): > 0 counter-clockwise,
/// < 0 clockwise, 0 collinear.
inline double Orientation(Point a, Point b, Point c) {
  return Cross(b - a, c - a);
}

}  // namespace emp

#endif  // EMP_GEOMETRY_POINT_H_
