#ifndef EMP_GEOMETRY_WKT_H_
#define EMP_GEOMETRY_WKT_H_

#include <string>

#include "common/result.h"
#include "geometry/point.h"
#include "geometry/polygon.h"

namespace emp {

/// Serializes a polygon as WKT, e.g. "POLYGON ((0 0, 1 0, 1 1, 0 0))".
/// The closing vertex is repeated per the WKT spec.
std::string ToWkt(const Polygon& polygon);

/// Serializes a point as WKT, e.g. "POINT (1 2)".
std::string ToWkt(Point p);

/// Parses a single-ring POLYGON WKT (holes unsupported — the synthetic
/// substrate never produces them). Accepts arbitrary whitespace.
Result<Polygon> PolygonFromWkt(const std::string& wkt);

/// Parses a POINT WKT.
Result<Point> PointFromWkt(const std::string& wkt);

}  // namespace emp

#endif  // EMP_GEOMETRY_WKT_H_
