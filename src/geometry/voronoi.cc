#include "geometry/voronoi.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "geometry/clip.h"
#include "geometry/spatial_index.h"
#include "obs/metrics.h"

namespace emp {

namespace {

TaggedConvexPolygon FramePolygon(const Box& frame) {
  Polygon rect({{frame.min_x, frame.min_y},
                {frame.max_x, frame.min_y},
                {frame.max_x, frame.max_y},
                {frame.min_x, frame.max_y}});
  return MakeTagged(rect);
}

/// Builds the cell of `site_idx` by clipping the frame against bisectors of
/// the `k` nearest sites; returns the cell and whether the security-radius
/// test certified it as exact (no farther site can cut it further).
struct CellAttempt {
  TaggedConvexPolygon cell;
  bool certified = false;
};

CellAttempt BuildCell(const SpatialGridIndex& index, int32_t site_idx,
                      const TaggedConvexPolygon& frame_poly, int k) {
  const std::vector<Point>& sites = index.points();
  const Point site = sites[site_idx];

  std::vector<int32_t> nn = index.KNearest(site, k, site_idx);
  TaggedConvexPolygon cell = frame_poly;
  for (int32_t j : nn) {
    cell = ClipConvex(cell, PerpendicularBisector(site, sites[j], j));
    if (cell.empty()) break;
  }

  CellAttempt out;
  out.cell = std::move(cell);
  if (out.cell.empty()) {
    // A Voronoi cell of a site inside the frame can never be empty; treat
    // as uncertified so the caller retries with more neighbors (and
    // ultimately reports the degenerate input).
    out.certified = false;
    return out;
  }

  if (nn.empty() || static_cast<int>(nn.size()) < k) {
    // Fewer than k sites exist; every bisector was considered.
    out.certified = true;
    return out;
  }

  // Security-radius test: any site farther than twice the distance from the
  // site to its farthest cell vertex cannot cut the cell. The k-th nearest
  // neighbor distance lower-bounds every unconsidered site's distance.
  double max_vertex_dist = 0.0;
  for (const Point& v : out.cell.vertices) {
    max_vertex_dist = std::max(max_vertex_dist, Distance(site, v));
  }
  double kth_dist = Distance(site, sites[nn.back()]);
  out.certified = kth_dist >= 2.0 * max_vertex_dist;
  return out;
}

}  // namespace

Result<VoronoiDiagram> ComputeVoronoi(const std::vector<Point>& sites,
                                      const Box& frame,
                                      const VoronoiOptions& options) {
  if (sites.empty()) {
    return Status::InvalidArgument("ComputeVoronoi: no sites");
  }
  if (frame.empty()) {
    return Status::InvalidArgument("ComputeVoronoi: empty frame");
  }
  for (const Point& p : sites) {
    if (!frame.Contains(p)) {
      return Status::InvalidArgument(
          "ComputeVoronoi: site outside the clipping frame");
    }
  }

  SpatialGridIndex index(sites);
  const TaggedConvexPolygon frame_poly = FramePolygon(frame);
  const int n = static_cast<int>(sites.size());

  VoronoiDiagram diagram;
  diagram.frame = frame;
  diagram.cells.resize(n);
  diagram.neighbors.assign(n, {});

  std::vector<std::set<int32_t>> adj(n);

  obs::Counter* cells_built =
      obs::GetCounter(options.metrics, "emp_voronoi_cells_total");
  obs::Counter* knn_doublings =
      obs::GetCounter(options.metrics, "emp_voronoi_knn_doublings_total");
  obs::Counter* uncertified =
      obs::GetCounter(options.metrics, "emp_voronoi_uncertified_cells_total");

  for (int32_t i = 0; i < n; ++i) {
    int k = std::min(options.initial_knn, n - 1);
    CellAttempt attempt;
    while (true) {
      attempt = BuildCell(index, i, frame_poly, k);
      if (attempt.certified || k >= std::min(options.max_knn, n - 1)) break;
      k = std::min(k * 2, std::min(options.max_knn, n - 1));
      obs::Add(knn_doublings);
    }
    obs::Add(cells_built);
    if (!attempt.certified) obs::Add(uncertified);
    if (attempt.cell.empty()) {
      return Status::InvalidArgument(
          "ComputeVoronoi: degenerate cell for site " + std::to_string(i) +
          " (coincident sites?)");
    }
    diagram.cells[i] = attempt.cell.ToPolygon();
    for (int64_t tag : attempt.cell.edge_tags) {
      if (tag >= 0) {
        adj[i].insert(static_cast<int32_t>(tag));
      }
    }
  }

  // Symmetrize: floating-point sliver edges can appear on one side only.
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t j : adj[i]) adj[j].insert(i);
  }
  for (int32_t i = 0; i < n; ++i) {
    diagram.neighbors[i].assign(adj[i].begin(), adj[i].end());
  }
  return diagram;
}

}  // namespace emp
