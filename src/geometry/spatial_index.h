#ifndef EMP_GEOMETRY_SPATIAL_INDEX_H_
#define EMP_GEOMETRY_SPATIAL_INDEX_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"

namespace emp {

/// Uniform-grid point index supporting k-nearest-neighbor queries. Used by
/// the Voronoi generator to find the candidate neighbor sites whose
/// bisectors can bound a cell, keeping cell construction O(k) per site.
class SpatialGridIndex {
 public:
  /// Builds the index over `points`. `target_per_cell` tunes grid
  /// resolution (points per grid cell on average).
  explicit SpatialGridIndex(std::vector<Point> points,
                            double target_per_cell = 2.0);

  size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }

  /// Indices of the k nearest points to `query`, ascending by distance.
  /// `exclude` (an index or -1) is omitted from the result — typically the
  /// query site itself. Returns fewer than k when the index is small.
  std::vector<int32_t> KNearest(Point query, int k,
                                int32_t exclude = -1) const;

  /// All point indices within `radius` of `query` (excluding `exclude`),
  /// unordered.
  std::vector<int32_t> WithinRadius(Point query, double radius,
                                    int32_t exclude = -1) const;

 private:
  int CellX(double x) const;
  int CellY(double y) const;
  int CellIndex(int cx, int cy) const { return cy * grid_w_ + cx; }

  std::vector<Point> points_;
  Box bounds_;
  int grid_w_ = 1;
  int grid_h_ = 1;
  double cell_size_ = 1.0;
  // CSR layout: cell_start_[c]..cell_start_[c+1] indexes into cell_items_.
  std::vector<int32_t> cell_start_;
  std::vector<int32_t> cell_items_;
};

}  // namespace emp

#endif  // EMP_GEOMETRY_SPATIAL_INDEX_H_
