#include "geometry/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace emp {

SpatialGridIndex::SpatialGridIndex(std::vector<Point> points,
                                   double target_per_cell)
    : points_(std::move(points)) {
  for (const Point& p : points_) bounds_.Extend(p);
  if (points_.empty() || bounds_.empty()) {
    bounds_ = Box();
    bounds_.Extend(Point{0, 0});
    bounds_.Extend(Point{1, 1});
  }
  double w = std::max(bounds_.Width(), 1e-9);
  double h = std::max(bounds_.Height(), 1e-9);
  double n_cells =
      std::max(1.0, static_cast<double>(points_.size()) / target_per_cell);
  // Choose a near-square grid matching the bounds aspect ratio, but cap
  // each dimension: degenerate (near-collinear) point sets would otherwise
  // produce an extreme aspect grid whose ring-expansion queries cost
  // O(dim^2).
  const int max_dim = std::max(
      1, static_cast<int>(std::ceil(std::sqrt(4.0 * n_cells))));
  double aspect = w / h;
  grid_w_ = std::clamp(
      static_cast<int>(std::round(std::sqrt(n_cells * aspect))), 1, max_dim);
  grid_h_ = std::clamp(static_cast<int>(std::ceil(n_cells / grid_w_)), 1,
                       max_dim);
  cell_size_ = std::max(w / grid_w_, h / grid_h_);
  grid_w_ = std::clamp(static_cast<int>(std::ceil(w / cell_size_)), 1,
                       max_dim);
  grid_h_ = std::clamp(static_cast<int>(std::ceil(h / cell_size_)), 1,
                       max_dim);

  // Counting sort into CSR buckets.
  const int total_cells = grid_w_ * grid_h_;
  std::vector<int32_t> counts(total_cells + 1, 0);
  std::vector<int32_t> cell_of(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    int c = CellIndex(CellX(points_[i].x), CellY(points_[i].y));
    cell_of[i] = c;
    ++counts[c + 1];
  }
  for (int c = 0; c < total_cells; ++c) counts[c + 1] += counts[c];
  cell_start_ = counts;
  cell_items_.resize(points_.size());
  std::vector<int32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (size_t i = 0; i < points_.size(); ++i) {
    cell_items_[cursor[cell_of[i]]++] = static_cast<int32_t>(i);
  }
}

int SpatialGridIndex::CellX(double x) const {
  int cx = static_cast<int>((x - bounds_.min_x) / cell_size_);
  return std::clamp(cx, 0, grid_w_ - 1);
}

int SpatialGridIndex::CellY(double y) const {
  int cy = static_cast<int>((y - bounds_.min_y) / cell_size_);
  return std::clamp(cy, 0, grid_h_ - 1);
}

std::vector<int32_t> SpatialGridIndex::KNearest(Point query, int k,
                                                int32_t exclude) const {
  std::vector<int32_t> result;
  if (k <= 0 || points_.empty()) return result;

  // Expand rings of grid cells around the query until the k-th best
  // distance is closed off by the ring radius.
  using Entry = std::pair<double, int32_t>;  // (dist^2, index)
  std::priority_queue<Entry> best;           // max-heap of current k best

  const int qx = CellX(query.x);
  const int qy = CellY(query.y);
  const int max_ring = std::max(grid_w_, grid_h_);

  auto scan_cell = [&](int cx, int cy) {
    if (cx < 0 || cy < 0 || cx >= grid_w_ || cy >= grid_h_) return;
    const int c = CellIndex(cx, cy);
    for (int32_t it = cell_start_[c]; it < cell_start_[c + 1]; ++it) {
      const int32_t idx = cell_items_[it];
      if (idx == exclude) continue;
      double d2 = DistanceSquared(points_[idx], query);
      if (static_cast<int>(best.size()) < k) {
        best.emplace(d2, idx);
      } else if (d2 < best.top().first) {
        best.pop();
        best.emplace(d2, idx);
      }
    }
  };

  for (int ring = 0; ring <= max_ring; ++ring) {
    if (ring == 0) {
      scan_cell(qx, qy);
    } else {
      for (int dx = -ring; dx <= ring; ++dx) {
        scan_cell(qx + dx, qy - ring);
        scan_cell(qx + dx, qy + ring);
      }
      for (int dy = -ring + 1; dy <= ring - 1; ++dy) {
        scan_cell(qx - ring, qy + dy);
        scan_cell(qx + ring, qy + dy);
      }
    }
    if (static_cast<int>(best.size()) == k) {
      // Cells beyond this ring are at least (ring * cell_size_) away from
      // the query cell's boundary; stop once that exceeds the k-th best.
      double safe = static_cast<double>(ring) * cell_size_;
      if (safe * safe >= best.top().first) break;
    }
  }

  result.resize(best.size());
  for (size_t i = result.size(); i-- > 0;) {
    result[i] = best.top().second;
    best.pop();
  }
  return result;
}

std::vector<int32_t> SpatialGridIndex::WithinRadius(Point query, double radius,
                                                    int32_t exclude) const {
  std::vector<int32_t> result;
  if (radius < 0 || points_.empty()) return result;
  const double r2 = radius * radius;
  const int cx_lo = CellX(query.x - radius);
  const int cx_hi = CellX(query.x + radius);
  const int cy_lo = CellY(query.y - radius);
  const int cy_hi = CellY(query.y + radius);
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      const int c = CellIndex(cx, cy);
      for (int32_t it = cell_start_[c]; it < cell_start_[c + 1]; ++it) {
        const int32_t idx = cell_items_[it];
        if (idx == exclude) continue;
        if (DistanceSquared(points_[idx], query) <= r2) {
          result.push_back(idx);
        }
      }
    }
  }
  return result;
}

}  // namespace emp
