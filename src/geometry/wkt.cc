#include "geometry/wkt.h"

#include <cctype>
#include <sstream>

#include "common/str_util.h"

namespace emp {

namespace {

std::string FormatCoord(double v) { return FormatDouble(v, 9); }

/// Extracts the content between the outermost '(' ... ')' after `keyword`.
Result<std::string> ExtractParenBody(const std::string& wkt,
                                     const std::string& keyword) {
  std::string upper;
  upper.reserve(wkt.size());
  for (char c : wkt) upper.push_back(static_cast<char>(std::toupper(c)));
  size_t kw = upper.find(keyword);
  if (kw == std::string::npos) {
    return Status::IOError("WKT missing keyword " + keyword);
  }
  size_t open = wkt.find('(', kw + keyword.size());
  if (open == std::string::npos) {
    return Status::IOError("WKT missing '('");
  }
  size_t close = wkt.rfind(')');
  if (close == std::string::npos || close <= open) {
    return Status::IOError("WKT missing ')'");
  }
  return wkt.substr(open + 1, close - open - 1);
}

Result<Point> ParseCoordPair(std::string_view token) {
  // "x y" separated by whitespace.
  std::string buf{StripWhitespace(token)};
  std::istringstream in(buf);
  double x = 0;
  double y = 0;
  if (!(in >> x >> y)) {
    return Status::IOError("bad WKT coordinate pair: '" + buf + "'");
  }
  std::string rest;
  if (in >> rest) {
    return Status::IOError("trailing data in WKT coordinate: '" + buf + "'");
  }
  return Point{x, y};
}

}  // namespace

std::string ToWkt(const Polygon& polygon) {
  std::string out = "POLYGON ((";
  const auto& v = polygon.vertices();
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatCoord(v[i].x) + " " + FormatCoord(v[i].y);
  }
  if (!v.empty()) {
    out += ", " + FormatCoord(v[0].x) + " " + FormatCoord(v[0].y);
  }
  out += "))";
  return out;
}

std::string ToWkt(Point p) {
  return "POINT (" + FormatCoord(p.x) + " " + FormatCoord(p.y) + ")";
}

Result<Polygon> PolygonFromWkt(const std::string& wkt) {
  EMP_ASSIGN_OR_RETURN(std::string body, ExtractParenBody(wkt, "POLYGON"));
  // Strip the inner ring parens.
  std::string_view ring = StripWhitespace(body);
  if (ring.empty() || ring.front() != '(' || ring.back() != ')') {
    return Status::IOError("WKT polygon ring must be parenthesized");
  }
  ring = ring.substr(1, ring.size() - 2);
  std::vector<Point> vertices;
  for (const std::string& tok : Split(ring, ',')) {
    EMP_ASSIGN_OR_RETURN(Point p, ParseCoordPair(tok));
    vertices.push_back(p);
  }
  if (vertices.size() >= 2 && vertices.front() == vertices.back()) {
    vertices.pop_back();  // Drop the repeated closing vertex.
  }
  if (vertices.size() < 3) {
    return Status::IOError("WKT polygon has fewer than 3 distinct vertices");
  }
  return Polygon(std::move(vertices));
}

Result<Point> PointFromWkt(const std::string& wkt) {
  EMP_ASSIGN_OR_RETURN(std::string body, ExtractParenBody(wkt, "POINT"));
  return ParseCoordPair(body);
}

}  // namespace emp
