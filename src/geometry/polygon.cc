#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>

namespace emp {

double Polygon::SignedArea() const {
  if (vertices_.size() < 3) return 0.0;
  double twice = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % vertices_.size()];
    twice += Cross(a, b);
  }
  return twice * 0.5;
}

double Polygon::Area() const { return std::fabs(SignedArea()); }

double Polygon::Perimeter() const {
  if (vertices_.size() < 2) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    total += Distance(vertices_[i], vertices_[(i + 1) % vertices_.size()]);
  }
  return total;
}

Point Polygon::Centroid() const {
  if (vertices_.empty()) return {0.0, 0.0};
  double twice_area = 0.0;
  double cx = 0.0;
  double cy = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % vertices_.size()];
    double w = Cross(a, b);
    twice_area += w;
    cx += (a.x + b.x) * w;
    cy += (a.y + b.y) * w;
  }
  if (std::fabs(twice_area) < 1e-12) {
    // Degenerate: fall back to vertex mean.
    Point mean{0.0, 0.0};
    for (const Point& v : vertices_) mean = mean + v;
    return mean * (1.0 / static_cast<double>(vertices_.size()));
  }
  double scale = 1.0 / (3.0 * twice_area);
  return {cx * scale, cy * scale};
}

Box Polygon::BoundingBox() const {
  Box box;
  for (const Point& v : vertices_) box.Extend(v);
  return box;
}

bool Polygon::Contains(Point p) const {
  if (vertices_.size() < 3) return false;
  bool inside = false;
  for (size_t i = 0, j = vertices_.size() - 1; i < vertices_.size(); j = i++) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[j];
    bool crosses = (a.y > p.y) != (b.y > p.y);
    if (crosses) {
      double x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

void Polygon::MakeCounterClockwise() {
  if (SignedArea() < 0.0) {
    std::reverse(vertices_.begin(), vertices_.end());
  }
}

bool Polygon::IsConvex() const {
  if (vertices_.size() < 4) return true;
  int sign = 0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % vertices_.size()];
    const Point& c = vertices_[(i + 2) % vertices_.size()];
    double turn = Orientation(a, b, c);
    if (std::fabs(turn) < 1e-12) continue;
    int s = turn > 0 ? 1 : -1;
    if (sign == 0) {
      sign = s;
    } else if (s != sign) {
      return false;
    }
  }
  return true;
}

bool SegmentsOverlap(Point a1, Point a2, Point b1, Point b2,
                     double min_overlap, double eps) {
  Point da = a2 - a1;
  double len_a = Norm(da);
  if (len_a < eps) return false;
  Point dir = da * (1.0 / len_a);

  // b1 and b2 must lie on the (infinite) line through a1-a2.
  if (std::fabs(Cross(dir, b1 - a1)) > eps ||
      std::fabs(Cross(dir, b2 - a1)) > eps) {
    return false;
  }

  // Project everything onto dir; overlap is an interval intersection.
  double t_b1 = Dot(b1 - a1, dir);
  double t_b2 = Dot(b2 - a1, dir);
  double lo = std::max(0.0, std::min(t_b1, t_b2));
  double hi = std::min(len_a, std::max(t_b1, t_b2));
  return hi - lo >= min_overlap;
}

namespace {

/// Perpendicular distance from p to the segment [a, b].
double SegmentDistance(Point p, Point a, Point b) {
  Point ab = b - a;
  double len2 = Dot(ab, ab);
  if (len2 < 1e-24) return Distance(p, a);
  double t = std::clamp(Dot(p - a, ab) / len2, 0.0, 1.0);
  return Distance(p, a + ab * t);
}

/// Recursive Douglas–Peucker over the open polyline [first, last].
void DouglasPeucker(const std::vector<Point>& pts, size_t first, size_t last,
                    double tolerance, std::vector<char>* keep) {
  if (last <= first + 1) return;
  double max_dist = -1.0;
  size_t split = first;
  for (size_t i = first + 1; i < last; ++i) {
    double d = SegmentDistance(pts[i], pts[first], pts[last]);
    if (d > max_dist) {
      max_dist = d;
      split = i;
    }
  }
  if (max_dist > tolerance) {
    (*keep)[split] = 1;
    DouglasPeucker(pts, first, split, tolerance, keep);
    DouglasPeucker(pts, split, last, tolerance, keep);
  }
}

}  // namespace

Polygon SimplifyPolygon(const Polygon& polygon, double tolerance) {
  const auto& pts = polygon.vertices();
  if (pts.size() <= 3 || tolerance <= 0.0) return polygon;

  // Anchor the ring at its two mutually farthest-ish vertices (vertex 0
  // and the vertex farthest from it), then simplify the two open chains.
  size_t far = 0;
  double far_d = -1.0;
  for (size_t i = 1; i < pts.size(); ++i) {
    double d = DistanceSquared(pts[0], pts[i]);
    if (d > far_d) {
      far_d = d;
      far = i;
    }
  }
  std::vector<char> keep(pts.size(), 0);
  keep[0] = 1;
  keep[far] = 1;
  DouglasPeucker(pts, 0, far, tolerance, &keep);
  // Second chain wraps around: work on a rotated copy.
  std::vector<Point> rotated(pts.begin() + static_cast<std::ptrdiff_t>(far),
                             pts.end());
  rotated.push_back(pts[0]);
  std::vector<char> keep2(rotated.size(), 0);
  DouglasPeucker(rotated, 0, rotated.size() - 1, tolerance, &keep2);
  for (size_t i = 1; i + 1 < rotated.size(); ++i) {
    if (keep2[i]) keep[far + i] = 1;
  }

  std::vector<Point> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (keep[i]) out.push_back(pts[i]);
  }
  if (out.size() < 3) {
    // Degenerate tolerance: keep a triangle spanning the ring.
    out = {pts[0], pts[pts.size() / 3], pts[2 * pts.size() / 3]};
  }
  return Polygon(std::move(out));
}

double SharedBorderLength(const Polygon& a, const Polygon& b, double eps) {
  double total = 0.0;
  const auto& va = a.vertices();
  const auto& vb = b.vertices();
  for (size_t i = 0; i < va.size(); ++i) {
    Point a1 = va[i];
    Point a2 = va[(i + 1) % va.size()];
    Point da = a2 - a1;
    double len_a = Norm(da);
    if (len_a < eps) continue;
    Point dir = da * (1.0 / len_a);
    for (size_t j = 0; j < vb.size(); ++j) {
      Point b1 = vb[j];
      Point b2 = vb[(j + 1) % vb.size()];
      if (std::fabs(Cross(dir, b1 - a1)) > eps ||
          std::fabs(Cross(dir, b2 - a1)) > eps) {
        continue;
      }
      double t_b1 = Dot(b1 - a1, dir);
      double t_b2 = Dot(b2 - a1, dir);
      double lo = std::max(0.0, std::min(t_b1, t_b2));
      double hi = std::min(len_a, std::max(t_b1, t_b2));
      if (hi > lo) total += hi - lo;
    }
  }
  return total;
}

}  // namespace emp
