#ifndef EMP_GEOMETRY_CLIP_H_
#define EMP_GEOMETRY_CLIP_H_

#include <cstdint>
#include <vector>

#include "geometry/polygon.h"

namespace emp {

/// A half plane {p : Dot(normal, p) <= offset}, i.e. the "inside" is where
/// the signed distance along `normal` does not exceed `offset`.
struct HalfPlane {
  Point normal;    // Need not be unit length.
  double offset = 0.0;
  /// Opaque tag identifying who contributed this half plane (Voronoi uses
  /// the neighboring site index); propagated onto clipped edges.
  int64_t tag = -1;

  bool Inside(Point p, double eps = 1e-12) const {
    return Dot(normal, p) <= offset + eps;
  }
};

/// Half plane of points at least as close to `site` as to `other`
/// (the Voronoi dominance region of `site` over `other`), tagged with `tag`.
HalfPlane PerpendicularBisector(Point site, Point other, int64_t tag);

/// A convex polygon whose edges carry the tag of the half plane that cut
/// them (-1 for edges inherited from the initial polygon). `edge_tags[i]`
/// labels the edge from vertex i to vertex i+1.
struct TaggedConvexPolygon {
  std::vector<Point> vertices;
  std::vector<int64_t> edge_tags;

  Polygon ToPolygon() const { return Polygon(vertices); }
  bool empty() const { return vertices.size() < 3; }
};

/// Builds a tagged polygon from an untagged convex CCW polygon; all edges
/// are tagged -1 (boundary).
TaggedConvexPolygon MakeTagged(const Polygon& convex_ccw);

/// Clips a convex polygon against one half plane (Sutherland–Hodgman step).
/// New edges created along the cut line carry `hp.tag`. The input must be
/// counter-clockwise; the result remains counter-clockwise.
TaggedConvexPolygon ClipConvex(const TaggedConvexPolygon& poly,
                               const HalfPlane& hp);

/// Clips against a sequence of half planes, short-circuiting when empty.
TaggedConvexPolygon ClipConvex(const TaggedConvexPolygon& poly,
                               const std::vector<HalfPlane>& planes);

}  // namespace emp

#endif  // EMP_GEOMETRY_CLIP_H_
