#ifndef EMP_RENDER_SVG_H_
#define EMP_RENDER_SVG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/area_set.h"

namespace emp {

/// Options for the SVG map renderer.
struct SvgOptions {
  /// Output image width in pixels; height follows the map aspect ratio.
  double width = 1024.0;
  /// Stroke width for area outlines, in output pixels.
  double stroke_width = 0.6;
  /// Fill for unassigned areas (region id -1).
  std::string unassigned_fill = "#dddddd";
  /// Outline color.
  std::string stroke = "#333333";
  /// When true, draw a small label with the region id at each region's
  /// largest area centroid.
  bool label_regions = false;
};

/// Renders an area set as an SVG document. When `region_of` is non-empty
/// (one entry per area, -1 = unassigned), areas are filled with a
/// deterministic categorical palette keyed by region id so adjacent
/// regions are visually distinct; otherwise all areas use a neutral fill.
/// Requires polygon geometry.
Result<std::string> RenderSvg(const AreaSet& areas,
                              const std::vector<int32_t>& region_of = {},
                              const SvgOptions& options = {});

/// Deterministic categorical color for a region id, as "#rrggbb".
/// Spreads hues by the golden ratio so consecutive ids contrast.
std::string RegionColor(int32_t region_id);

}  // namespace emp

#endif  // EMP_RENDER_SVG_H_
