#include "render/svg.h"

#include <cmath>
#include <cstdio>
#include <map>

#include "common/str_util.h"

namespace emp {

namespace {

/// HSV -> RGB for s, v in [0, 1], h in [0, 360).
void HsvToRgb(double h, double s, double v, int* r, int* g, int* b) {
  double c = v * s;
  double hp = h / 60.0;
  double x = c * (1.0 - std::fabs(std::fmod(hp, 2.0) - 1.0));
  double r1 = 0;
  double g1 = 0;
  double b1 = 0;
  if (hp < 1) {
    r1 = c;
    g1 = x;
  } else if (hp < 2) {
    r1 = x;
    g1 = c;
  } else if (hp < 3) {
    g1 = c;
    b1 = x;
  } else if (hp < 4) {
    g1 = x;
    b1 = c;
  } else if (hp < 5) {
    r1 = x;
    b1 = c;
  } else {
    r1 = c;
    b1 = x;
  }
  double m = v - c;
  *r = static_cast<int>(std::lround((r1 + m) * 255.0));
  *g = static_cast<int>(std::lround((g1 + m) * 255.0));
  *b = static_cast<int>(std::lround((b1 + m) * 255.0));
}

}  // namespace

std::string RegionColor(int32_t region_id) {
  // Golden-angle hue walk; alternate saturation/value tiers so that runs
  // of nearby ids stay distinguishable.
  constexpr double kGoldenAngle = 137.50776405003785;
  double hue = std::fmod(static_cast<double>(region_id) * kGoldenAngle, 360.0);
  double sat = (region_id % 3 == 0) ? 0.55 : (region_id % 3 == 1 ? 0.70 : 0.45);
  double val = (region_id % 2 == 0) ? 0.85 : 0.70;
  int r = 0;
  int g = 0;
  int b = 0;
  HsvToRgb(hue, sat, val, &r, &g, &b);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  return buf;
}

Result<std::string> RenderSvg(const AreaSet& areas,
                              const std::vector<int32_t>& region_of,
                              const SvgOptions& options) {
  if (!areas.has_geometry()) {
    return Status::FailedPrecondition("RenderSvg requires polygon geometry");
  }
  if (!region_of.empty() &&
      static_cast<int32_t>(region_of.size()) != areas.num_areas()) {
    return Status::InvalidArgument(
        "region assignment size != number of areas");
  }
  if (options.width <= 0) {
    return Status::InvalidArgument("SVG width must be positive");
  }

  Box bounds;
  for (const Polygon& poly : areas.polygons()) {
    bounds.Extend(poly.BoundingBox());
  }
  const double map_w = std::max(bounds.Width(), 1e-9);
  const double map_h = std::max(bounds.Height(), 1e-9);
  const double scale = options.width / map_w;
  const double height = map_h * scale;

  // SVG y grows downward; flip the map's y axis.
  auto tx = [&](double x) { return (x - bounds.min_x) * scale; };
  auto ty = [&](double y) { return (bounds.max_y - y) * scale; };

  std::string out;
  out.reserve(static_cast<size_t>(areas.num_areas()) * 128);
  out += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         FormatDouble(options.width, 1) + "\" height=\"" +
         FormatDouble(height, 1) + "\" viewBox=\"0 0 " +
         FormatDouble(options.width, 1) + " " + FormatDouble(height, 1) +
         "\">\n";

  for (int32_t a = 0; a < areas.num_areas(); ++a) {
    const Polygon& poly = areas.polygon(a);
    std::string fill = options.unassigned_fill;
    if (!region_of.empty() && region_of[static_cast<size_t>(a)] >= 0) {
      fill = RegionColor(region_of[static_cast<size_t>(a)]);
    }
    out += "<polygon points=\"";
    for (size_t i = 0; i < poly.size(); ++i) {
      if (i > 0) out += ' ';
      out += FormatDouble(tx(poly.vertices()[i].x), 2) + "," +
             FormatDouble(ty(poly.vertices()[i].y), 2);
    }
    out += "\" fill=\"" + fill + "\" stroke=\"" + options.stroke +
           "\" stroke-width=\"" + FormatDouble(options.stroke_width, 2) +
           "\"/>\n";
  }

  if (options.label_regions && !region_of.empty()) {
    // Label each region at its largest member area's centroid.
    std::map<int32_t, std::pair<double, int32_t>> biggest;  // rid -> (area, id)
    for (int32_t a = 0; a < areas.num_areas(); ++a) {
      int32_t rid = region_of[static_cast<size_t>(a)];
      if (rid < 0) continue;
      double sz = areas.polygon(a).Area();
      auto it = biggest.find(rid);
      if (it == biggest.end() || sz > it->second.first) {
        biggest[rid] = {sz, a};
      }
    }
    for (const auto& [rid, entry] : biggest) {
      Point c = areas.polygon(entry.second).Centroid();
      out += "<text x=\"" + FormatDouble(tx(c.x), 2) + "\" y=\"" +
             FormatDouble(ty(c.y), 2) +
             "\" font-size=\"10\" text-anchor=\"middle\" fill=\"#000\">" +
             std::to_string(rid) + "</text>\n";
    }
  }

  out += "</svg>\n";
  return out;
}

}  // namespace emp
