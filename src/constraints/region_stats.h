#ifndef EMP_CONSTRAINTS_REGION_STATS_H_
#define EMP_CONSTRAINTS_REGION_STATS_H_

#include <cstdint>
#include <set>
#include <vector>

#include "constraints/constraint_set.h"

namespace emp {

/// Incremental aggregate state of one region against every bound
/// constraint. Supports O(log k) add/remove of areas (k = region size) and
/// O(1)/O(log k) hypothetical "what if area X joined / left" queries, which
/// the construction swaps and Tabu moves issue millions of times.
///
/// Layout is SoA over the BoundConstraints::plan() packed slots
/// (DESIGN.md §14): running sums for AVG/SUM live in one flat array,
/// current extrema for MIN/MAX in another, and the Satisfies* hot paths are
/// branch-light contiguous loops over (value, lo, hi) triples with no
/// per-constraint switch. MIN/MAX still need order statistics under
/// removal, so each extrema slot also keeps a multiset of its attribute
/// values; the flat `extrema_` array caches the multiset's current
/// min/max so queries never touch the tree. COUNT uses the shared area
/// count. Bit-identical to the pre-SoA per-constraint evaluation
/// (tabu_golden_test pins this).
class RegionStats {
 public:
  /// `bound` must outlive this object.
  explicit RegionStats(const BoundConstraints* bound);

  /// Adds an area's values. The caller guarantees the area is not already
  /// counted (RegionStats does not track membership).
  void Add(int32_t area);

  /// Removes a previously added area's values.
  void Remove(int32_t area);

  /// Folds `other` into this (region merge). `other` must be bound to the
  /// same BoundConstraints.
  void Merge(const RegionStats& other);

  /// Resets to the empty region.
  void Clear();

  int32_t count() const { return count_; }

  /// Current aggregate value of constraint `ci`. Undefined for an empty
  /// region except COUNT/SUM (0).
  double AggregateValue(int ci) const;

  /// Aggregate value of `ci` if `area` were added.
  double AggregateAfterAdd(int ci, int32_t area) const;

  /// Aggregate value of `ci` if `area` were removed; `area` must currently
  /// be counted. Undefined when the region would become empty, except
  /// COUNT/SUM (0).
  double AggregateAfterRemove(int ci, int32_t area) const;

  /// Aggregate value of `ci` on the union of this region and `other`
  /// (merge preview; neither side is modified).
  double AggregateAfterMerge(int ci, const RegionStats& other) const;

  /// Running attribute sum for an AVG/SUM constraint (0 for an empty
  /// region). Precondition: `ci` is an AVG or SUM constraint.
  double RawSum(int ci) const {
    return sums_[static_cast<size_t>(
        bound_->plan().slot[static_cast<size_t>(ci)])];
  }

  /// Constraint satisfaction on the current contents. An empty region
  /// satisfies nothing (regions require >= 1 area, Definition III.2).
  bool Satisfies(int ci) const;
  bool SatisfiesAll() const;

  /// True if every constraint would hold after adding `area`.
  bool SatisfiesAllAfterAdd(int32_t area) const;

  /// True if every constraint would hold after removing `area`. False when
  /// the region would become empty.
  bool SatisfiesAllAfterRemove(int32_t area) const;

  /// True if every constraint would hold on the union of this region and
  /// `other` (merge preview; neither side is modified).
  bool SatisfiesAllAfterMerge(const RegionStats& other) const;

 private:
  const BoundConstraints* bound_;
  int32_t count_ = 0;
  /// Packed running sums, SoA: [AVG slots..., SUM slots...].
  std::vector<double> sums_;
  /// Packed current extrema, SoA: [MIN slots..., MAX slots...]; NaN for an
  /// empty region. Always equals *begin/*rbegin of the matching multiset.
  std::vector<double> extrema_;
  /// Packed value multisets backing the extrema slots under removal.
  std::vector<std::multiset<double>> values_;
};

}  // namespace emp

#endif  // EMP_CONSTRAINTS_REGION_STATS_H_
