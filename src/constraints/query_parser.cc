#include "constraints/query_parser.h"

#include <cctype>
#include <cmath>

#include "common/str_util.h"

namespace emp {

namespace {

std::string ToUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::toupper(c)));
  return out;
}

/// Parses a bound literal: number with optional k/m suffix, or +/-inf.
Result<double> ParseBound(std::string_view token) {
  std::string_view t = StripWhitespace(token);
  if (t.empty()) {
    return Status::InvalidArgument("empty bound");
  }
  std::string upper = ToUpper(t);
  if (upper == "INF" || upper == "+INF" || upper == "INFINITY") {
    return kNoUpperBound;
  }
  if (upper == "-INF" || upper == "-INFINITY") {
    return kNoLowerBound;
  }
  double multiplier = 1.0;
  char suffix = static_cast<char>(std::toupper(t.back()));
  if (suffix == 'K' || suffix == 'M') {
    multiplier = suffix == 'K' ? 1e3 : 1e6;
    t = t.substr(0, t.size() - 1);
  }
  EMP_ASSIGN_OR_RETURN(double v, ParseDouble(t));
  return v * multiplier;
}

Result<Aggregate> ParseAggregate(std::string_view token) {
  std::string upper = ToUpper(StripWhitespace(token));
  if (upper == "MIN") return Aggregate::kMin;
  if (upper == "MAX") return Aggregate::kMax;
  if (upper == "AVG") return Aggregate::kAvg;
  if (upper == "SUM") return Aggregate::kSum;
  if (upper == "COUNT") return Aggregate::kCount;
  return Status::InvalidArgument("unknown aggregate '" + upper + "'");
}

struct AggTerm {
  Aggregate aggregate;
  std::string attribute;  // empty for COUNT
};

/// Parses "AGG(attr)" / "COUNT(*)" starting at the beginning of `s`;
/// returns the term and the remainder after the closing paren.
Result<std::pair<AggTerm, std::string_view>> ParseAggTerm(
    std::string_view s) {
  s = StripWhitespace(s);
  size_t open = s.find('(');
  if (open == std::string_view::npos) {
    return Status::InvalidArgument(
        "expected AGG(attribute), got '" + std::string(s) + "'");
  }
  size_t close = s.find(')', open);
  if (close == std::string_view::npos) {
    return Status::InvalidArgument("missing ')' in aggregate term");
  }
  EMP_ASSIGN_OR_RETURN(Aggregate agg, ParseAggregate(s.substr(0, open)));
  std::string attr{StripWhitespace(s.substr(open + 1, close - open - 1))};
  if (agg == Aggregate::kCount) {
    if (!attr.empty() && attr != "*") {
      return Status::InvalidArgument(
          "COUNT takes '*' or nothing, got '" + attr + "'");
    }
    attr.clear();
  } else if (attr.empty() || attr == "*") {
    return Status::InvalidArgument(
        std::string(AggregateName(agg)) + " requires an attribute name");
  }
  return std::make_pair(AggTerm{agg, std::move(attr)}, s.substr(close + 1));
}

Constraint MakeConstraint(const AggTerm& term, double lower, double upper) {
  Constraint c;
  c.aggregate = term.aggregate;
  c.attribute = term.attribute;
  c.lower = lower;
  c.upper = upper;
  return c;
}

/// "l <= AGG(attr) <= u" — a leading number indicates this form.
Result<Constraint> ParseSandwich(std::string_view s) {
  size_t le1 = s.find("<=");
  if (le1 == std::string_view::npos) {
    return Status::InvalidArgument("expected '<=' in range comparison");
  }
  EMP_ASSIGN_OR_RETURN(double lower, ParseBound(s.substr(0, le1)));
  std::string_view rest = s.substr(le1 + 2);
  EMP_ASSIGN_OR_RETURN(auto term_and_rest, ParseAggTerm(rest));
  std::string_view tail = StripWhitespace(term_and_rest.second);
  if (!StartsWith(tail, "<=")) {
    return Status::InvalidArgument(
        "expected trailing '<= upper' in range comparison");
  }
  EMP_ASSIGN_OR_RETURN(double upper, ParseBound(tail.substr(2)));
  return MakeConstraint(term_and_rest.first, lower, upper);
}

}  // namespace

Result<Constraint> ParseConstraint(std::string_view text) {
  std::string_view s = StripWhitespace(text);
  if (s.empty()) {
    return Status::InvalidArgument("empty constraint");
  }

  // Leading digit/sign => the "l <= AGG(x) <= u" sandwich form.
  if (std::isdigit(static_cast<unsigned char>(s.front())) ||
      s.front() == '-' || s.front() == '+' || s.front() == '.') {
    EMP_ASSIGN_OR_RETURN(Constraint c, ParseSandwich(s));
    EMP_RETURN_IF_ERROR(c.Validate());
    return c;
  }

  EMP_ASSIGN_OR_RETURN(auto term_and_rest, ParseAggTerm(s));
  const AggTerm& term = term_and_rest.first;
  std::string_view rest = StripWhitespace(term_and_rest.second);
  if (rest.empty()) {
    return Status::InvalidArgument(
        "constraint is missing a comparison: '" + std::string(text) + "'");
  }

  Constraint c;
  if (StartsWith(rest, ">=")) {
    EMP_ASSIGN_OR_RETURN(double lower, ParseBound(rest.substr(2)));
    c = MakeConstraint(term, lower, kNoUpperBound);
  } else if (StartsWith(rest, "<=")) {
    EMP_ASSIGN_OR_RETURN(double upper, ParseBound(rest.substr(2)));
    c = MakeConstraint(term, kNoLowerBound, upper);
  } else if (ToUpper(rest.substr(0, 2)) == "IN") {
    std::string_view range = StripWhitespace(rest.substr(2));
    if (range.size() < 2 || range.front() != '[' || range.back() != ']') {
      return Status::InvalidArgument(
          "IN expects a [lower, upper] range: '" + std::string(text) + "'");
    }
    range = range.substr(1, range.size() - 2);
    size_t comma = range.find(',');
    if (comma == std::string_view::npos) {
      return Status::InvalidArgument(
          "IN range needs two comma-separated bounds");
    }
    EMP_ASSIGN_OR_RETURN(double lower, ParseBound(range.substr(0, comma)));
    EMP_ASSIGN_OR_RETURN(double upper, ParseBound(range.substr(comma + 1)));
    c = MakeConstraint(term, lower, upper);
  } else {
    return Status::InvalidArgument("expected '>=', '<=', or 'IN' after " +
                                   std::string(AggregateName(term.aggregate)) +
                                   "(...)");
  }
  EMP_RETURN_IF_ERROR(c.Validate());
  return c;
}

Result<std::vector<Constraint>> ParseConstraints(std::string_view text) {
  // Normalize separators: ';', newlines, and the word AND all split.
  std::string normalized(text);
  std::string upper = ToUpper(normalized);
  // Replace standalone " AND " (any case) with ';'.
  for (size_t pos = 0; (pos = upper.find("AND", pos)) != std::string::npos;
       ++pos) {
    const bool left_ok = pos == 0 || std::isspace(static_cast<unsigned char>(
                                         upper[pos - 1]));
    const bool right_ok =
        pos + 3 >= upper.size() ||
        std::isspace(static_cast<unsigned char>(upper[pos + 3]));
    if (left_ok && right_ok) {
      normalized[pos] = ';';
      normalized[pos + 1] = ' ';
      normalized[pos + 2] = ' ';
    }
  }
  for (char& c : normalized) {
    if (c == '\n' || c == '\r') c = ';';
  }

  std::vector<Constraint> out;
  for (const std::string& part : Split(normalized, ';')) {
    if (StripWhitespace(part).empty()) continue;
    EMP_ASSIGN_OR_RETURN(Constraint c, ParseConstraint(part));
    out.push_back(std::move(c));
  }
  if (out.empty()) {
    return Status::InvalidArgument("query contains no constraints");
  }
  return out;
}

}  // namespace emp
