#ifndef EMP_CONSTRAINTS_CONSTRAINT_SET_H_
#define EMP_CONSTRAINTS_CONSTRAINT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"
#include "data/area_set.h"

namespace emp {

/// Packed, cache-friendly evaluation plan over a bound constraint set,
/// grouped by aggregate so RegionStats can evaluate every family with a
/// branch-light contiguous loop instead of a per-constraint switch
/// (DESIGN.md §14). Built once at BoundConstraints::Create().
///
/// Packed slot layout (declaration order preserved within each group):
///   extrema slots: [MIN constraints..., MAX constraints...]
///   sum slots:     [AVG constraints..., SUM constraints...]
/// COUNT constraints carry no attribute column; only their bounds appear.
/// Column pointers view the AreaSet's attribute table, so the plan stays
/// valid across copies of BoundConstraints (the AreaSet outlives both).
struct EvalPlan {
  struct Group {
    std::vector<const double*> col;  ///< Raw attribute-column base pointers.
    std::vector<double> lo;
    std::vector<double> hi;
    std::vector<int> ci;  ///< Packed index -> global constraint index.
    size_t size() const { return col.size(); }
  };
  Group min, max, avg, sum;
  std::vector<double> count_lo;
  std::vector<double> count_hi;
  /// Global constraint index -> packed slot (extrema slot for MIN/MAX,
  /// sum slot for AVG/SUM, -1 for COUNT).
  std::vector<int> slot;
  /// Global constraint index -> raw column pointer (nullptr for COUNT);
  /// col_by_ci[ci][area] == BoundConstraints::ValueOf(ci, area).
  std::vector<const double*> col_by_ci;
  size_t num_extrema() const { return min.size() + max.size(); }
  size_t num_sums() const { return avg.size() + sum.size(); }
};

/// A constraint set resolved against a concrete dataset: every non-COUNT
/// constraint's attribute name is bound to its column, enabling O(1)
/// per-area value lookups on the solver hot path. Also hosts the area-level
/// classification rules of the paper's feasibility phase and Step 1
/// (invalid areas, seed areas).
///
/// Holds a pointer to the AreaSet; the AreaSet must outlive this object.
class BoundConstraints {
 public:
  /// Validates every constraint and resolves attribute columns.
  static Result<BoundConstraints> Create(const AreaSet* areas,
                                         std::vector<Constraint> constraints);

  const AreaSet& areas() const { return *areas_; }
  int size() const { return static_cast<int>(constraints_.size()); }
  const Constraint& constraint(int ci) const {
    return constraints_[static_cast<size_t>(ci)];
  }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Value of constraint ci's attribute for `area` (1.0 for COUNT).
  double ValueOf(int ci, int32_t area) const {
    int col = columns_[static_cast<size_t>(ci)];
    if (col < 0) return 1.0;
    return areas_->attributes().Value(col, area);
  }

  /// Packed per-aggregate evaluation plan (see EvalPlan).
  const EvalPlan& plan() const { return plan_; }

  /// Constraint indices by family, in declaration order.
  const std::vector<int>& extrema_indices() const { return extrema_; }
  const std::vector<int>& centrality_indices() const { return centrality_; }
  const std::vector<int>& counting_indices() const { return counting_; }

  bool has_extrema() const { return !extrema_.empty(); }
  bool has_centrality() const { return !centrality_.empty(); }
  bool has_counting() const { return !counting_.empty(); }

  /// Area-level invalidity per §V-A: an area can never join a valid region
  /// when s < l for some MIN constraint, s > u for some MAX constraint, or
  /// s > u for some SUM constraint.
  bool AreaIsInvalid(int32_t area) const;

  /// True if `area` lies within [l, u] of the extrema constraint ci
  /// (precondition: ci indexes a MIN or MAX constraint). Seed areas anchor
  /// region construction (Step 1).
  bool IsSeedFor(int ci, int32_t area) const {
    return constraints_[static_cast<size_t>(ci)].Contains(ValueOf(ci, area));
  }

  /// True if `area` is a seed for at least one extrema constraint — or if
  /// there are no extrema constraints, in which case every area seeds
  /// (§V-D: absent constraints behave as infinite ranges).
  bool AreaIsSeed(int32_t area) const;

 private:
  void BuildPlan();

  const AreaSet* areas_ = nullptr;
  std::vector<Constraint> constraints_;
  std::vector<int> columns_;  // -1 for COUNT
  std::vector<int> extrema_;
  std::vector<int> centrality_;
  std::vector<int> counting_;
  EvalPlan plan_;
};

}  // namespace emp

#endif  // EMP_CONSTRAINTS_CONSTRAINT_SET_H_
