#ifndef EMP_CONSTRAINTS_CONSTRAINT_SET_H_
#define EMP_CONSTRAINTS_CONSTRAINT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"
#include "data/area_set.h"

namespace emp {

/// A constraint set resolved against a concrete dataset: every non-COUNT
/// constraint's attribute name is bound to its column, enabling O(1)
/// per-area value lookups on the solver hot path. Also hosts the area-level
/// classification rules of the paper's feasibility phase and Step 1
/// (invalid areas, seed areas).
///
/// Holds a pointer to the AreaSet; the AreaSet must outlive this object.
class BoundConstraints {
 public:
  /// Validates every constraint and resolves attribute columns.
  static Result<BoundConstraints> Create(const AreaSet* areas,
                                         std::vector<Constraint> constraints);

  const AreaSet& areas() const { return *areas_; }
  int size() const { return static_cast<int>(constraints_.size()); }
  const Constraint& constraint(int ci) const {
    return constraints_[static_cast<size_t>(ci)];
  }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Value of constraint ci's attribute for `area` (1.0 for COUNT).
  double ValueOf(int ci, int32_t area) const {
    int col = columns_[static_cast<size_t>(ci)];
    if (col < 0) return 1.0;
    return areas_->attributes().Value(col, area);
  }

  /// Constraint indices by family, in declaration order.
  const std::vector<int>& extrema_indices() const { return extrema_; }
  const std::vector<int>& centrality_indices() const { return centrality_; }
  const std::vector<int>& counting_indices() const { return counting_; }

  bool has_extrema() const { return !extrema_.empty(); }
  bool has_centrality() const { return !centrality_.empty(); }
  bool has_counting() const { return !counting_.empty(); }

  /// Area-level invalidity per §V-A: an area can never join a valid region
  /// when s < l for some MIN constraint, s > u for some MAX constraint, or
  /// s > u for some SUM constraint.
  bool AreaIsInvalid(int32_t area) const;

  /// True if `area` lies within [l, u] of the extrema constraint ci
  /// (precondition: ci indexes a MIN or MAX constraint). Seed areas anchor
  /// region construction (Step 1).
  bool IsSeedFor(int ci, int32_t area) const {
    return constraints_[static_cast<size_t>(ci)].Contains(ValueOf(ci, area));
  }

  /// True if `area` is a seed for at least one extrema constraint — or if
  /// there are no extrema constraints, in which case every area seeds
  /// (§V-D: absent constraints behave as infinite ranges).
  bool AreaIsSeed(int32_t area) const;

 private:
  const AreaSet* areas_ = nullptr;
  std::vector<Constraint> constraints_;
  std::vector<int> columns_;  // -1 for COUNT
  std::vector<int> extrema_;
  std::vector<int> centrality_;
  std::vector<int> counting_;
};

}  // namespace emp

#endif  // EMP_CONSTRAINTS_CONSTRAINT_SET_H_
