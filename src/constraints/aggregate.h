#ifndef EMP_CONSTRAINTS_AGGREGATE_H_
#define EMP_CONSTRAINTS_AGGREGATE_H_

#include <string_view>

namespace emp {

/// SQL-inspired aggregate functions supported by EMP constraints
/// (paper §III). Grouped into three families with different mathematical
/// properties, which the FaCT construction phase exploits step by step:
///   extrema    — MIN, MAX  (non-monotonic; act as filters & seed markers)
///   centrality — AVG       (non-monotonic; hardest to satisfy)
///   counting   — SUM, COUNT (monotonic when attribute values are >= 0)
enum class Aggregate {
  kMin,
  kMax,
  kAvg,
  kSum,
  kCount,
};

/// The constraint family an aggregate belongs to.
enum class ConstraintFamily {
  kExtrema,
  kCentrality,
  kCounting,
};

constexpr ConstraintFamily FamilyOf(Aggregate agg) {
  switch (agg) {
    case Aggregate::kMin:
    case Aggregate::kMax:
      return ConstraintFamily::kExtrema;
    case Aggregate::kAvg:
      return ConstraintFamily::kCentrality;
    case Aggregate::kSum:
    case Aggregate::kCount:
      return ConstraintFamily::kCounting;
  }
  return ConstraintFamily::kCounting;
}

constexpr std::string_view AggregateName(Aggregate agg) {
  switch (agg) {
    case Aggregate::kMin:
      return "MIN";
    case Aggregate::kMax:
      return "MAX";
    case Aggregate::kAvg:
      return "AVG";
    case Aggregate::kSum:
      return "SUM";
    case Aggregate::kCount:
      return "COUNT";
  }
  return "?";
}

}  // namespace emp

#endif  // EMP_CONSTRAINTS_AGGREGATE_H_
