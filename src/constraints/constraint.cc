#include "constraints/constraint.h"

#include <cmath>

#include "common/str_util.h"

namespace emp {

Constraint Constraint::Min(std::string attribute, double lower, double upper) {
  return Constraint{Aggregate::kMin, std::move(attribute), lower, upper};
}

Constraint Constraint::Max(std::string attribute, double lower, double upper) {
  return Constraint{Aggregate::kMax, std::move(attribute), lower, upper};
}

Constraint Constraint::Avg(std::string attribute, double lower, double upper) {
  return Constraint{Aggregate::kAvg, std::move(attribute), lower, upper};
}

Constraint Constraint::Sum(std::string attribute, double lower, double upper) {
  return Constraint{Aggregate::kSum, std::move(attribute), lower, upper};
}

Constraint Constraint::Count(double lower, double upper) {
  return Constraint{Aggregate::kCount, "", lower, upper};
}

Status Constraint::Validate() const {
  if (std::isnan(lower) || std::isnan(upper)) {
    return Status::InvalidArgument("constraint bound is NaN");
  }
  if (lower > upper) {
    return Status::InvalidArgument(
        "constraint lower bound exceeds upper bound: " + ToString());
  }
  if (lower == kNoLowerBound && upper == kNoUpperBound) {
    return Status::InvalidArgument(
        "constraint has no finite bound (always satisfied): " + ToString());
  }
  if (aggregate != Aggregate::kCount && attribute.empty()) {
    return Status::InvalidArgument("constraint is missing an attribute: " +
                                   ToString());
  }
  if (aggregate == Aggregate::kCount && upper < 1.0) {
    return Status::InvalidArgument(
        "COUNT upper bound below 1 forbids every region: " + ToString());
  }
  return Status::OK();
}

std::string Constraint::ToString() const {
  std::string attr =
      aggregate == Aggregate::kCount ? "*" : attribute;
  auto bound = [](double v) {
    if (v == kNoLowerBound) return std::string("-inf");
    if (v == kNoUpperBound) return std::string("inf");
    return FormatDouble(v, 6);
  };
  return std::string(AggregateName(aggregate)) + "(" + attr + ") in [" +
         bound(lower) + ", " + bound(upper) + "]";
}

bool operator==(const Constraint& a, const Constraint& b) {
  return a.aggregate == b.aggregate && a.attribute == b.attribute &&
         a.lower == b.lower && a.upper == b.upper;
}

}  // namespace emp
