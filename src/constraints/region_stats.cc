#include "constraints/region_stats.h"

#include <cassert>
#include <limits>

namespace emp {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

inline bool InBounds(double v, double lo, double hi) {
  // NaN fails both comparisons, matching Constraint::Contains.
  return (v >= lo) & (v <= hi);
}
}  // namespace

RegionStats::RegionStats(const BoundConstraints* bound) : bound_(bound) {
  const EvalPlan& plan = bound_->plan();
  sums_.assign(plan.num_sums(), 0.0);
  extrema_.assign(plan.num_extrema(), kNaN);
  values_.resize(plan.num_extrema());
}

void RegionStats::Add(int32_t area) {
  ++count_;
  const EvalPlan& plan = bound_->plan();
  const size_t a = static_cast<size_t>(area);
  const size_t nmin = plan.min.size();
  for (size_t p = 0; p < nmin; ++p) {
    auto& ms = values_[p];
    ms.insert(plan.min.col[p][a]);
    extrema_[p] = *ms.begin();
  }
  for (size_t p = 0; p < plan.max.size(); ++p) {
    auto& ms = values_[nmin + p];
    ms.insert(plan.max.col[p][a]);
    extrema_[nmin + p] = *ms.rbegin();
  }
  const size_t navg = plan.avg.size();
  for (size_t p = 0; p < navg; ++p) sums_[p] += plan.avg.col[p][a];
  for (size_t p = 0; p < plan.sum.size(); ++p) {
    sums_[navg + p] += plan.sum.col[p][a];
  }
}

void RegionStats::Remove(int32_t area) {
  assert(count_ > 0);
  --count_;
  const EvalPlan& plan = bound_->plan();
  const size_t a = static_cast<size_t>(area);
  const size_t nmin = plan.min.size();
  for (size_t p = 0; p < nmin; ++p) {
    auto& ms = values_[p];
    auto it = ms.find(plan.min.col[p][a]);
    assert(it != ms.end());
    ms.erase(it);
    extrema_[p] = ms.empty() ? kNaN : *ms.begin();
  }
  for (size_t p = 0; p < plan.max.size(); ++p) {
    auto& ms = values_[nmin + p];
    auto it = ms.find(plan.max.col[p][a]);
    assert(it != ms.end());
    ms.erase(it);
    extrema_[nmin + p] = ms.empty() ? kNaN : *ms.rbegin();
  }
  const size_t navg = plan.avg.size();
  for (size_t p = 0; p < navg; ++p) sums_[p] -= plan.avg.col[p][a];
  for (size_t p = 0; p < plan.sum.size(); ++p) {
    sums_[navg + p] -= plan.sum.col[p][a];
  }
}

void RegionStats::Merge(const RegionStats& other) {
  assert(bound_ == other.bound_);
  count_ += other.count_;
  for (size_t s = 0; s < sums_.size(); ++s) sums_[s] += other.sums_[s];
  const size_t nmin = bound_->plan().min.size();
  for (size_t s = 0; s < values_.size(); ++s) {
    auto& ms = values_[s];
    ms.insert(other.values_[s].begin(), other.values_[s].end());
    if (ms.empty()) continue;
    extrema_[s] = s < nmin ? *ms.begin() : *ms.rbegin();
  }
}

void RegionStats::Clear() {
  count_ = 0;
  sums_.assign(sums_.size(), 0.0);
  extrema_.assign(extrema_.size(), kNaN);
  for (auto& ms : values_) ms.clear();
}

double RegionStats::AggregateValue(int ci) const {
  const size_t s = static_cast<size_t>(bound_->plan().slot[
      static_cast<size_t>(ci)]);
  switch (bound_->constraint(ci).aggregate) {
    case Aggregate::kMin:
    case Aggregate::kMax:
      return extrema_[s];
    case Aggregate::kAvg:
      return count_ == 0 ? kNaN : sums_[s] / count_;
    case Aggregate::kSum:
      return sums_[s];
    case Aggregate::kCount:
      return static_cast<double>(count_);
  }
  return kNaN;
}

double RegionStats::AggregateAfterAdd(int ci, int32_t area) const {
  const EvalPlan& plan = bound_->plan();
  const size_t s =
      static_cast<size_t>(plan.slot[static_cast<size_t>(ci)]);
  const Aggregate agg = bound_->constraint(ci).aggregate;
  if (agg == Aggregate::kCount) return static_cast<double>(count_ + 1);
  const double v =
      plan.col_by_ci[static_cast<size_t>(ci)][static_cast<size_t>(area)];
  switch (agg) {
    case Aggregate::kMin: {
      const double cur = extrema_[s];
      return count_ == 0 ? v : (v < cur ? v : cur);
    }
    case Aggregate::kMax: {
      const double cur = extrema_[s];
      return count_ == 0 ? v : (v > cur ? v : cur);
    }
    case Aggregate::kAvg:
      return (sums_[s] + v) / (count_ + 1);
    case Aggregate::kSum:
      return sums_[s] + v;
    case Aggregate::kCount:
      break;  // Handled above.
  }
  return kNaN;
}

double RegionStats::AggregateAfterRemove(int ci, int32_t area) const {
  const EvalPlan& plan = bound_->plan();
  const size_t s =
      static_cast<size_t>(plan.slot[static_cast<size_t>(ci)]);
  const Aggregate agg = bound_->constraint(ci).aggregate;
  if (agg == Aggregate::kCount) return static_cast<double>(count_ - 1);
  const double v =
      plan.col_by_ci[static_cast<size_t>(ci)][static_cast<size_t>(area)];
  switch (agg) {
    case Aggregate::kMin:
    case Aggregate::kMax: {
      if (count_ <= 1) return kNaN;
      const auto& ms = values_[s];
      if (agg == Aggregate::kMin) {
        const double cur = extrema_[s];
        if (v > cur) return cur;
        // v is (one of) the minimum(s); the new min is the next element.
        auto it = ms.begin();
        ++it;
        return *it;
      }
      const double cur = extrema_[s];
      if (v < cur) return cur;
      auto it = ms.rbegin();
      ++it;
      return *it;
    }
    case Aggregate::kAvg:
      return count_ <= 1 ? kNaN : (sums_[s] - v) / (count_ - 1);
    case Aggregate::kSum:
      return sums_[s] - v;
    case Aggregate::kCount:
      break;  // Handled above.
  }
  return kNaN;
}

double RegionStats::AggregateAfterMerge(int ci,
                                        const RegionStats& other) const {
  assert(bound_ == other.bound_);
  const size_t s = static_cast<size_t>(bound_->plan().slot[
      static_cast<size_t>(ci)]);
  const int32_t total = count_ + other.count_;
  switch (bound_->constraint(ci).aggregate) {
    case Aggregate::kMin: {
      const double a = extrema_[s];
      const double b = other.extrema_[s];
      return count_ == 0 ? b : (other.count_ == 0 ? a : (a < b ? a : b));
    }
    case Aggregate::kMax: {
      const double a = extrema_[s];
      const double b = other.extrema_[s];
      return count_ == 0 ? b : (other.count_ == 0 ? a : (a > b ? a : b));
    }
    case Aggregate::kAvg:
      return total == 0 ? kNaN : (sums_[s] + other.sums_[s]) / total;
    case Aggregate::kSum:
      return sums_[s] + other.sums_[s];
    case Aggregate::kCount:
      return static_cast<double>(total);
  }
  return kNaN;
}

bool RegionStats::Satisfies(int ci) const {
  if (count_ == 0) return false;
  return bound_->constraint(ci).Contains(AggregateValue(ci));
}

bool RegionStats::SatisfiesAll() const {
  if (count_ == 0) return false;
  const EvalPlan& plan = bound_->plan();
  const size_t nmin = plan.min.size();
  bool ok = true;
  for (size_t p = 0; p < nmin; ++p) {
    ok &= InBounds(extrema_[p], plan.min.lo[p], plan.min.hi[p]);
  }
  for (size_t p = 0; p < plan.max.size(); ++p) {
    ok &= InBounds(extrema_[nmin + p], plan.max.lo[p], plan.max.hi[p]);
  }
  const size_t navg = plan.avg.size();
  for (size_t p = 0; p < navg; ++p) {
    ok &= InBounds(sums_[p] / count_, plan.avg.lo[p], plan.avg.hi[p]);
  }
  for (size_t p = 0; p < plan.sum.size(); ++p) {
    ok &= InBounds(sums_[navg + p], plan.sum.lo[p], plan.sum.hi[p]);
  }
  const double cnt = static_cast<double>(count_);
  for (size_t p = 0; p < plan.count_lo.size(); ++p) {
    ok &= InBounds(cnt, plan.count_lo[p], plan.count_hi[p]);
  }
  return ok;
}

bool RegionStats::SatisfiesAllAfterAdd(int32_t area) const {
  const EvalPlan& plan = bound_->plan();
  const size_t a = static_cast<size_t>(area);
  const bool was_empty = count_ == 0;
  const size_t nmin = plan.min.size();
  bool ok = true;
  for (size_t p = 0; p < nmin; ++p) {
    const double v = plan.min.col[p][a];
    const double cur = extrema_[p];
    const double cand = was_empty ? v : (v < cur ? v : cur);
    ok &= InBounds(cand, plan.min.lo[p], plan.min.hi[p]);
  }
  for (size_t p = 0; p < plan.max.size(); ++p) {
    const double v = plan.max.col[p][a];
    const double cur = extrema_[nmin + p];
    const double cand = was_empty ? v : (v > cur ? v : cur);
    ok &= InBounds(cand, plan.max.lo[p], plan.max.hi[p]);
  }
  const size_t navg = plan.avg.size();
  for (size_t p = 0; p < navg; ++p) {
    const double cand = (sums_[p] + plan.avg.col[p][a]) / (count_ + 1);
    ok &= InBounds(cand, plan.avg.lo[p], plan.avg.hi[p]);
  }
  for (size_t p = 0; p < plan.sum.size(); ++p) {
    const double cand = sums_[navg + p] + plan.sum.col[p][a];
    ok &= InBounds(cand, plan.sum.lo[p], plan.sum.hi[p]);
  }
  const double cnt = static_cast<double>(count_ + 1);
  for (size_t p = 0; p < plan.count_lo.size(); ++p) {
    ok &= InBounds(cnt, plan.count_lo[p], plan.count_hi[p]);
  }
  return ok;
}

bool RegionStats::SatisfiesAllAfterRemove(int32_t area) const {
  if (count_ <= 1) return false;  // Region would vanish.
  const EvalPlan& plan = bound_->plan();
  const size_t a = static_cast<size_t>(area);
  const size_t nmin = plan.min.size();
  bool ok = true;
  for (size_t p = 0; p < nmin; ++p) {
    const double v = plan.min.col[p][a];
    const double cur = extrema_[p];
    double cand;
    if (v > cur) {
      cand = cur;
    } else {
      // v is (one of) the minimum(s); the new min is the next element.
      auto it = values_[p].begin();
      ++it;
      cand = *it;
    }
    ok &= InBounds(cand, plan.min.lo[p], plan.min.hi[p]);
  }
  for (size_t p = 0; p < plan.max.size(); ++p) {
    const double v = plan.max.col[p][a];
    const double cur = extrema_[nmin + p];
    double cand;
    if (v < cur) {
      cand = cur;
    } else {
      auto it = values_[nmin + p].rbegin();
      ++it;
      cand = *it;
    }
    ok &= InBounds(cand, plan.max.lo[p], plan.max.hi[p]);
  }
  const size_t navg = plan.avg.size();
  for (size_t p = 0; p < navg; ++p) {
    const double cand = (sums_[p] - plan.avg.col[p][a]) / (count_ - 1);
    ok &= InBounds(cand, plan.avg.lo[p], plan.avg.hi[p]);
  }
  for (size_t p = 0; p < plan.sum.size(); ++p) {
    const double cand = sums_[navg + p] - plan.sum.col[p][a];
    ok &= InBounds(cand, plan.sum.lo[p], plan.sum.hi[p]);
  }
  const double cnt = static_cast<double>(count_ - 1);
  for (size_t p = 0; p < plan.count_lo.size(); ++p) {
    ok &= InBounds(cnt, plan.count_lo[p], plan.count_hi[p]);
  }
  return ok;
}

bool RegionStats::SatisfiesAllAfterMerge(const RegionStats& other) const {
  assert(bound_ == other.bound_);
  const int32_t total = count_ + other.count_;
  if (total == 0) return false;
  const EvalPlan& plan = bound_->plan();
  const size_t nmin = plan.min.size();
  const bool lhs_empty = count_ == 0;
  const bool rhs_empty = other.count_ == 0;
  bool ok = true;
  for (size_t p = 0; p < nmin; ++p) {
    const double a = extrema_[p];
    const double b = other.extrema_[p];
    const double cand = lhs_empty ? b : (rhs_empty ? a : (a < b ? a : b));
    ok &= InBounds(cand, plan.min.lo[p], plan.min.hi[p]);
  }
  for (size_t p = 0; p < plan.max.size(); ++p) {
    const double a = extrema_[nmin + p];
    const double b = other.extrema_[nmin + p];
    const double cand = lhs_empty ? b : (rhs_empty ? a : (a > b ? a : b));
    ok &= InBounds(cand, plan.max.lo[p], plan.max.hi[p]);
  }
  const size_t navg = plan.avg.size();
  for (size_t p = 0; p < navg; ++p) {
    const double cand = (sums_[p] + other.sums_[p]) / total;
    ok &= InBounds(cand, plan.avg.lo[p], plan.avg.hi[p]);
  }
  for (size_t p = 0; p < plan.sum.size(); ++p) {
    const double cand = sums_[navg + p] + other.sums_[navg + p];
    ok &= InBounds(cand, plan.sum.lo[p], plan.sum.hi[p]);
  }
  const double cnt = static_cast<double>(total);
  for (size_t p = 0; p < plan.count_lo.size(); ++p) {
    ok &= InBounds(cnt, plan.count_lo[p], plan.count_hi[p]);
  }
  return ok;
}

}  // namespace emp
