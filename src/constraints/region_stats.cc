#include "constraints/region_stats.h"

#include <cassert>
#include <limits>

namespace emp {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

RegionStats::RegionStats(const BoundConstraints* bound) : bound_(bound) {
  const size_t m = static_cast<size_t>(bound_->size());
  sums_.assign(m, 0.0);
  values_.resize(m);
}

void RegionStats::Add(int32_t area) {
  ++count_;
  for (int ci = 0; ci < bound_->size(); ++ci) {
    const Constraint& c = bound_->constraint(ci);
    const double v = bound_->ValueOf(ci, area);
    switch (c.family()) {
      case ConstraintFamily::kExtrema:
        values_[static_cast<size_t>(ci)].insert(v);
        break;
      case ConstraintFamily::kCentrality:
      case ConstraintFamily::kCounting:
        sums_[static_cast<size_t>(ci)] += v;
        break;
    }
  }
}

void RegionStats::Remove(int32_t area) {
  assert(count_ > 0);
  --count_;
  for (int ci = 0; ci < bound_->size(); ++ci) {
    const Constraint& c = bound_->constraint(ci);
    const double v = bound_->ValueOf(ci, area);
    switch (c.family()) {
      case ConstraintFamily::kExtrema: {
        auto& ms = values_[static_cast<size_t>(ci)];
        auto it = ms.find(v);
        assert(it != ms.end());
        ms.erase(it);
        break;
      }
      case ConstraintFamily::kCentrality:
      case ConstraintFamily::kCounting:
        sums_[static_cast<size_t>(ci)] -= v;
        break;
    }
  }
}

void RegionStats::Merge(const RegionStats& other) {
  assert(bound_ == other.bound_);
  count_ += other.count_;
  for (size_t ci = 0; ci < sums_.size(); ++ci) {
    sums_[ci] += other.sums_[ci];
    values_[ci].insert(other.values_[ci].begin(), other.values_[ci].end());
  }
}

void RegionStats::Clear() {
  count_ = 0;
  for (size_t ci = 0; ci < sums_.size(); ++ci) {
    sums_[ci] = 0.0;
    values_[ci].clear();
  }
}

double RegionStats::ExtremaValue(int ci) const {
  const auto& ms = values_[static_cast<size_t>(ci)];
  if (ms.empty()) return kNaN;
  return bound_->constraint(ci).aggregate == Aggregate::kMin ? *ms.begin()
                                                             : *ms.rbegin();
}

double RegionStats::AggregateValue(int ci) const {
  const Constraint& c = bound_->constraint(ci);
  switch (c.aggregate) {
    case Aggregate::kMin:
    case Aggregate::kMax:
      return ExtremaValue(ci);
    case Aggregate::kAvg:
      return count_ == 0 ? kNaN
                         : sums_[static_cast<size_t>(ci)] / count_;
    case Aggregate::kSum:
      return sums_[static_cast<size_t>(ci)];
    case Aggregate::kCount:
      return static_cast<double>(count_);
  }
  return kNaN;
}

double RegionStats::AggregateAfterAdd(int ci, int32_t area) const {
  const Constraint& c = bound_->constraint(ci);
  const double v = bound_->ValueOf(ci, area);
  switch (c.aggregate) {
    case Aggregate::kMin: {
      double cur = ExtremaValue(ci);
      return count_ == 0 ? v : (v < cur ? v : cur);
    }
    case Aggregate::kMax: {
      double cur = ExtremaValue(ci);
      return count_ == 0 ? v : (v > cur ? v : cur);
    }
    case Aggregate::kAvg:
      return (sums_[static_cast<size_t>(ci)] + v) / (count_ + 1);
    case Aggregate::kSum:
      return sums_[static_cast<size_t>(ci)] + v;
    case Aggregate::kCount:
      return static_cast<double>(count_ + 1);
  }
  return kNaN;
}

double RegionStats::AggregateAfterRemove(int ci, int32_t area) const {
  const Constraint& c = bound_->constraint(ci);
  const double v = bound_->ValueOf(ci, area);
  switch (c.aggregate) {
    case Aggregate::kMin:
    case Aggregate::kMax: {
      const auto& ms = values_[static_cast<size_t>(ci)];
      if (count_ <= 1) return kNaN;
      if (c.aggregate == Aggregate::kMin) {
        double cur = *ms.begin();
        if (v > cur) return cur;
        // v is (one of) the minimum(s); the new min is the next element.
        auto it = ms.begin();
        ++it;
        return *it;
      }
      double cur = *ms.rbegin();
      if (v < cur) return cur;
      auto it = ms.rbegin();
      ++it;
      return *it;
    }
    case Aggregate::kAvg:
      return count_ <= 1 ? kNaN
                         : (sums_[static_cast<size_t>(ci)] - v) / (count_ - 1);
    case Aggregate::kSum:
      return sums_[static_cast<size_t>(ci)] - v;
    case Aggregate::kCount:
      return static_cast<double>(count_ - 1);
  }
  return kNaN;
}

bool RegionStats::Satisfies(int ci) const {
  if (count_ == 0) return false;
  return bound_->constraint(ci).Contains(AggregateValue(ci));
}

bool RegionStats::SatisfiesAll() const {
  if (count_ == 0) return false;
  for (int ci = 0; ci < bound_->size(); ++ci) {
    if (!bound_->constraint(ci).Contains(AggregateValue(ci))) return false;
  }
  return true;
}

bool RegionStats::SatisfiesAllAfterAdd(int32_t area) const {
  for (int ci = 0; ci < bound_->size(); ++ci) {
    if (!bound_->constraint(ci).Contains(AggregateAfterAdd(ci, area))) {
      return false;
    }
  }
  return true;
}

bool RegionStats::SatisfiesAllAfterRemove(int32_t area) const {
  if (count_ <= 1) return false;  // Region would vanish.
  for (int ci = 0; ci < bound_->size(); ++ci) {
    if (!bound_->constraint(ci).Contains(AggregateAfterRemove(ci, area))) {
      return false;
    }
  }
  return true;
}

double RegionStats::AggregateAfterMerge(int ci,
                                        const RegionStats& other) const {
  assert(bound_ == other.bound_);
  const Constraint& c = bound_->constraint(ci);
  const int32_t total = count_ + other.count_;
  switch (c.aggregate) {
    case Aggregate::kMin: {
      double a = ExtremaValue(ci);
      double b = other.ExtremaValue(ci);
      return count_ == 0 ? b : (other.count_ == 0 ? a : (a < b ? a : b));
    }
    case Aggregate::kMax: {
      double a = ExtremaValue(ci);
      double b = other.ExtremaValue(ci);
      return count_ == 0 ? b : (other.count_ == 0 ? a : (a > b ? a : b));
    }
    case Aggregate::kAvg:
      return total == 0 ? kNaN
                        : (sums_[static_cast<size_t>(ci)] +
                           other.sums_[static_cast<size_t>(ci)]) /
                              total;
    case Aggregate::kSum:
      return sums_[static_cast<size_t>(ci)] +
             other.sums_[static_cast<size_t>(ci)];
    case Aggregate::kCount:
      return static_cast<double>(total);
  }
  return kNaN;
}

bool RegionStats::SatisfiesAllAfterMerge(const RegionStats& other) const {
  assert(bound_ == other.bound_);
  if (count_ + other.count_ == 0) return false;
  for (int ci = 0; ci < bound_->size(); ++ci) {
    if (!bound_->constraint(ci).Contains(AggregateAfterMerge(ci, other))) {
      return false;
    }
  }
  return true;
}

}  // namespace emp
