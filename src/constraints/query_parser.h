#ifndef EMP_CONSTRAINTS_QUERY_PARSER_H_
#define EMP_CONSTRAINTS_QUERY_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"

namespace emp {

/// Parses one constraint from the SQL-inspired textual form the paper's
/// motivation uses, e.g.:
///
///   SUM(TOTALPOP) >= 20000
///   AVG(EMPLOYED) IN [1500, 3500]
///   MIN(POP16UP) <= 3000
///   1500 <= AVG(EMPLOYED) <= 3500
///   COUNT(*) IN [2, 40]
///
/// Aggregate names and IN are case-insensitive; numbers accept an optional
/// `k`/`m` suffix (20k == 20000, 1.5m == 1500000) and `inf` / `-inf`.
/// COUNT takes `*` or an empty argument list.
Result<Constraint> ParseConstraint(std::string_view text);

/// Parses a multi-constraint query: constraints separated by `;`,
/// newlines, or the keyword `AND` (case-insensitive). Empty parts are
/// skipped; at least one constraint is required.
Result<std::vector<Constraint>> ParseConstraints(std::string_view text);

}  // namespace emp

#endif  // EMP_CONSTRAINTS_QUERY_PARSER_H_
