#include "constraints/constraint_set.h"

namespace emp {

Result<BoundConstraints> BoundConstraints::Create(
    const AreaSet* areas, std::vector<Constraint> constraints) {
  if (areas == nullptr) {
    return Status::InvalidArgument("BoundConstraints: null area set");
  }
  BoundConstraints out;
  out.areas_ = areas;
  out.columns_.reserve(constraints.size());
  for (size_t i = 0; i < constraints.size(); ++i) {
    const Constraint& c = constraints[i];
    EMP_RETURN_IF_ERROR(c.Validate());
    int col = -1;
    if (c.aggregate != Aggregate::kCount) {
      EMP_ASSIGN_OR_RETURN(col, areas->attributes().ColumnIndex(c.attribute));
    }
    out.columns_.push_back(col);
    switch (c.family()) {
      case ConstraintFamily::kExtrema:
        out.extrema_.push_back(static_cast<int>(i));
        break;
      case ConstraintFamily::kCentrality:
        out.centrality_.push_back(static_cast<int>(i));
        break;
      case ConstraintFamily::kCounting:
        out.counting_.push_back(static_cast<int>(i));
        break;
    }
  }
  out.constraints_ = std::move(constraints);
  out.BuildPlan();
  return out;
}

void BoundConstraints::BuildPlan() {
  plan_ = EvalPlan();
  const size_t m = constraints_.size();
  plan_.slot.assign(m, -1);
  plan_.col_by_ci.assign(m, nullptr);
  const auto& table = areas_->attributes();
  auto append = [&](EvalPlan::Group* g, size_t i) {
    const Constraint& c = constraints_[i];
    plan_.slot[i] = static_cast<int>(g->size());
    plan_.col_by_ci[i] = table.Column(columns_[i]).data();
    g->col.push_back(plan_.col_by_ci[i]);
    g->lo.push_back(c.lower);
    g->hi.push_back(c.upper);
    g->ci.push_back(static_cast<int>(i));
  };
  // One pass per aggregate so packed slots are contiguous per group even
  // when declarations interleave: extrema slots are [MINs..., MAXes...],
  // sum slots are [AVGs..., SUMs...].
  for (size_t i = 0; i < m; ++i) {
    if (constraints_[i].aggregate == Aggregate::kMin) append(&plan_.min, i);
  }
  for (size_t i = 0; i < m; ++i) {
    if (constraints_[i].aggregate != Aggregate::kMax) continue;
    append(&plan_.max, i);
    plan_.slot[i] += static_cast<int>(plan_.min.size());
  }
  for (size_t i = 0; i < m; ++i) {
    if (constraints_[i].aggregate == Aggregate::kAvg) append(&plan_.avg, i);
  }
  for (size_t i = 0; i < m; ++i) {
    if (constraints_[i].aggregate != Aggregate::kSum) continue;
    append(&plan_.sum, i);
    plan_.slot[i] += static_cast<int>(plan_.avg.size());
  }
  for (size_t i = 0; i < m; ++i) {
    if (constraints_[i].aggregate != Aggregate::kCount) continue;
    plan_.count_lo.push_back(constraints_[i].lower);
    plan_.count_hi.push_back(constraints_[i].upper);
  }
}

bool BoundConstraints::AreaIsInvalid(int32_t area) const {
  for (int ci = 0; ci < size(); ++ci) {
    const Constraint& c = constraints_[static_cast<size_t>(ci)];
    double v = ValueOf(ci, area);
    switch (c.aggregate) {
      case Aggregate::kMin:
        // Region min would drop below l if this area joined.
        if (v < c.lower) return true;
        break;
      case Aggregate::kMax:
        // Region max would exceed u if this area joined.
        if (v > c.upper) return true;
        break;
      case Aggregate::kSum:
        // The area alone already overshoots the sum cap.
        if (v > c.upper) return true;
        break;
      case Aggregate::kAvg:
      case Aggregate::kCount:
        break;  // No single-area invalidity rule (§V-A).
    }
  }
  return false;
}

bool BoundConstraints::AreaIsSeed(int32_t area) const {
  if (extrema_.empty()) return true;
  for (int ci : extrema_) {
    if (IsSeedFor(ci, area)) return true;
  }
  return false;
}

}  // namespace emp
