#ifndef EMP_CONSTRAINTS_CONSTRAINT_H_
#define EMP_CONSTRAINTS_CONSTRAINT_H_

#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/aggregate.h"

namespace emp {

/// Positive/negative infinity shorthands for open-ended bounds.
inline constexpr double kNoLowerBound =
    -std::numeric_limits<double>::infinity();
inline constexpr double kNoUpperBound =
    std::numeric_limits<double>::infinity();

/// A user-defined constraint c = (f, s, l, u): the aggregate f of spatially
/// extensive attribute s over every output region must lie in [l, u]
/// (Definition III.1). Open-ended bounds use +/- infinity.
struct Constraint {
  Aggregate aggregate = Aggregate::kSum;
  /// Attribute column name. Ignored for COUNT (SQL COUNT(*) semantics).
  std::string attribute;
  double lower = kNoLowerBound;
  double upper = kNoUpperBound;

  /// Factory helpers matching the paper's notation.
  static Constraint Min(std::string attribute, double lower, double upper);
  static Constraint Max(std::string attribute, double lower, double upper);
  static Constraint Avg(std::string attribute, double lower, double upper);
  static Constraint Sum(std::string attribute, double lower, double upper);
  static Constraint Count(double lower, double upper);

  ConstraintFamily family() const { return FamilyOf(aggregate); }

  /// True if `value` lies within [lower, upper].
  bool Contains(double value) const {
    return value >= lower && value <= upper;
  }

  /// Structural validation: lower <= upper, at least one finite bound,
  /// a non-empty attribute for non-COUNT aggregates, and COUNT bounds that
  /// admit a non-empty region.
  Status Validate() const;

  /// E.g. "MIN(POP16UP) in [-inf, 3000]".
  std::string ToString() const;
};

bool operator==(const Constraint& a, const Constraint& b);

}  // namespace emp

#endif  // EMP_CONSTRAINTS_CONSTRAINT_H_
