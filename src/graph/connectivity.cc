#include "graph/connectivity.h"

#include <algorithm>
#include <utility>

namespace emp {

ConnectivityChecker::ConnectivityChecker(const ContiguityGraph* graph)
    : graph_(graph) {
  const size_t n = static_cast<size_t>(graph_->num_nodes());
  membership_.assign(n, 0);
  visited_.assign(n, 0);
  disc_.assign(n, -1);
  low_.assign(n, -1);
  bfs_queue_.reserve(64);
}

void ConnectivityChecker::MarkMembers(const std::vector<int32_t>& members) {
  ++epoch_;
  if (epoch_ == 0) {
    // Wrapped around: reset tags once per ~4 billion calls.
    std::fill(membership_.begin(), membership_.end(), 0);
    std::fill(visited_.begin(), visited_.end(), 0);
    epoch_ = 1;
  }
  for (int32_t v : members) membership_[static_cast<size_t>(v)] = epoch_;
}

bool ConnectivityChecker::IsConnected(const std::vector<int32_t>& members) {
  if (members.size() <= 1) return true;
  MarkMembers(members);

  bfs_queue_.clear();
  bfs_queue_.push_back(members[0]);
  visited_[static_cast<size_t>(members[0])] = epoch_;
  size_t reached = 1;
  size_t head = 0;
  while (head < bfs_queue_.size()) {
    int32_t u = bfs_queue_[head++];
    for (int32_t v : graph_->NeighborsOf(u)) {
      if (IsMember(v) && visited_[static_cast<size_t>(v)] != epoch_) {
        visited_[static_cast<size_t>(v)] = epoch_;
        bfs_queue_.push_back(v);
        ++reached;
      }
    }
  }
  return reached == members.size();
}

bool ConnectivityChecker::IsConnectedWithout(
    const std::vector<int32_t>& members, int32_t removed) {
  if (members.size() <= 2) return true;  // 0 or 1 nodes remain.
  MarkMembers(members);
  membership_[static_cast<size_t>(removed)] = 0;  // Evict the removed node.

  // Start BFS from any remaining member.
  int32_t start = -1;
  for (int32_t v : members) {
    if (v != removed) {
      start = v;
      break;
    }
  }
  bfs_queue_.clear();
  bfs_queue_.push_back(start);
  visited_[static_cast<size_t>(start)] = epoch_;
  size_t reached = 1;
  size_t head = 0;
  while (head < bfs_queue_.size()) {
    int32_t u = bfs_queue_[head++];
    for (int32_t v : graph_->NeighborsOf(u)) {
      if (IsMember(v) && visited_[static_cast<size_t>(v)] != epoch_) {
        visited_[static_cast<size_t>(v)] = epoch_;
        bfs_queue_.push_back(v);
        ++reached;
      }
    }
  }
  return reached == members.size() - 1;
}

std::vector<int32_t> ConnectivityChecker::ArticulationPoints(
    const std::vector<int32_t>& members) {
  std::vector<int32_t> cuts;
  ArticulationPointsInto(members, &cuts);
  return cuts;
}

int32_t ConnectivityChecker::ArticulationPointsInto(
    const std::vector<int32_t>& members, std::vector<int32_t>* out) {
  std::vector<int32_t>& cuts = *out;
  cuts.clear();
  if (members.empty()) return 0;
  if (members.size() < 3) {
    // No articulation point is possible, but the component count still
    // matters to callers: deduplicate, then test adjacency for pairs.
    if (members.size() == 1 || members[0] == members[1]) return 1;
    for (int32_t nb : graph_->NeighborsOf(members[0])) {
      if (nb == members[1]) return 1;
    }
    return 2;
  }
  MarkMembers(members);
  for (int32_t v : members) {
    disc_[static_cast<size_t>(v)] = -1;
    low_[static_cast<size_t>(v)] = -1;
  }

  // Iterative Tarjan restricted to the induced subgraph. Handles each
  // connected component of `members` independently.
  struct Frame {
    int32_t node;
    int32_t parent;
    size_t next_neighbor;
    int32_t child_count;
    bool is_cut;
  };
  std::vector<Frame> stack;
  int32_t timer = 0;
  int32_t components = 0;

  for (int32_t root : members) {
    if (disc_[static_cast<size_t>(root)] != -1) continue;
    ++components;
    stack.push_back({root, -1, 0, 0, false});
    disc_[static_cast<size_t>(root)] = low_[static_cast<size_t>(root)] =
        timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& adj = graph_->NeighborsOf(f.node);
      if (f.next_neighbor < adj.size()) {
        int32_t v = adj[f.next_neighbor++];
        if (!IsMember(v) || v == f.parent) continue;
        if (disc_[static_cast<size_t>(v)] == -1) {
          disc_[static_cast<size_t>(v)] = low_[static_cast<size_t>(v)] =
              timer++;
          ++f.child_count;
          stack.push_back({v, f.node, 0, 0, false});
        } else {
          low_[static_cast<size_t>(f.node)] =
              std::min(low_[static_cast<size_t>(f.node)],
                       disc_[static_cast<size_t>(v)]);
        }
      } else {
        // Finished this node; propagate lowlink to the parent.
        Frame done = f;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent = stack.back();
          low_[static_cast<size_t>(parent.node)] =
              std::min(low_[static_cast<size_t>(parent.node)],
                       low_[static_cast<size_t>(done.node)]);
          if (parent.parent != -1 &&
              low_[static_cast<size_t>(done.node)] >=
                  disc_[static_cast<size_t>(parent.node)]) {
            parent.is_cut = true;
          }
          if (parent.parent == -1 && parent.child_count > 1) {
            parent.is_cut = true;
          }
          if (done.is_cut) cuts.push_back(done.node);
        } else {
          if (done.is_cut) cuts.push_back(done.node);
        }
      }
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return components;
}

}  // namespace emp
