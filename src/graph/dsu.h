#ifndef EMP_GRAPH_DSU_H_
#define EMP_GRAPH_DSU_H_

#include <cstdint>
#include <numeric>
#include <vector>

namespace emp {

/// Disjoint-set union (union-find) with path halving and union by size.
/// Used by the SKATER-style baseline's Kruskal MST construction.
class DisjointSetUnion {
 public:
  explicit DisjointSetUnion(int32_t n)
      : parent_(static_cast<size_t>(n)), size_(static_cast<size_t>(n), 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int32_t Find(int32_t x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  /// Merges the sets of a and b; returns false if already joined.
  bool Union(int32_t a, int32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[static_cast<size_t>(a)] < size_[static_cast<size_t>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<size_t>(b)] = a;
    size_[static_cast<size_t>(a)] += size_[static_cast<size_t>(b)];
    return true;
  }

  bool Connected(int32_t a, int32_t b) { return Find(a) == Find(b); }

  int32_t SizeOf(int32_t x) { return size_[static_cast<size_t>(Find(x))]; }

 private:
  std::vector<int32_t> parent_;
  std::vector<int32_t> size_;
};

}  // namespace emp

#endif  // EMP_GRAPH_DSU_H_
