#ifndef EMP_GRAPH_CONNECTIVITY_H_
#define EMP_GRAPH_CONNECTIVITY_H_

#include <cstdint>
#include <vector>

#include "graph/contiguity_graph.h"

namespace emp {

/// Hot-path connectivity queries used by FaCT's Step 3 swaps and Tabu moves:
/// "does this region stay connected if area X leaves?" Reuses scratch
/// buffers across calls so a check costs one bounded BFS with no
/// allocations after warm-up. Not thread-safe; use one checker per thread.
class ConnectivityChecker {
 public:
  explicit ConnectivityChecker(const ContiguityGraph* graph);

  /// True if the nodes of `members` form a single connected component in
  /// the underlying graph. Empty sets are vacuously connected.
  bool IsConnected(const std::vector<int32_t>& members);

  /// True if `members` minus `removed` is connected (and non-empty sets
  /// remain connected). `removed` must be an element of `members`.
  /// This is the donor-region check in the paper's Step 3 and Tabu phase.
  bool IsConnectedWithout(const std::vector<int32_t>& members,
                          int32_t removed);

  /// True if `node` is an articulation point of the subgraph induced by
  /// `members` — equivalent to !IsConnectedWithout but named for readers.
  bool IsCutVertex(const std::vector<int32_t>& members, int32_t node) {
    return !IsConnectedWithout(members, node);
  }

  /// Articulation points of the subgraph induced by `members` (Tarjan's
  /// lowlink algorithm). Useful to precompute all immovable areas of a
  /// region at once; returns sorted node ids.
  std::vector<int32_t> ArticulationPoints(const std::vector<int32_t>& members);

  /// Allocation-free variant for cache reuse: writes the sorted
  /// articulation points into `*out` (cleared first) and returns the
  /// number of connected components of the induced subgraph (0 for an
  /// empty member set). Duplicate ids in `members` are tolerated and
  /// counted once. The Tabu articulation cache calls this once per
  /// (region, mutation) to both learn the cut vertices and verify the
  /// region is connected.
  int32_t ArticulationPointsInto(const std::vector<int32_t>& members,
                                 std::vector<int32_t>* out);

 private:
  /// Marks `members` in membership_ with a fresh epoch; O(|members|).
  void MarkMembers(const std::vector<int32_t>& members);
  bool IsMember(int32_t v) const {
    return membership_[static_cast<size_t>(v)] == epoch_;
  }

  const ContiguityGraph* graph_;
  uint32_t epoch_ = 0;
  std::vector<uint32_t> membership_;  // epoch tag per node
  std::vector<uint32_t> visited_;     // epoch tag per node
  std::vector<int32_t> bfs_queue_;
  // Tarjan scratch.
  std::vector<int32_t> disc_;
  std::vector<int32_t> low_;
};

}  // namespace emp

#endif  // EMP_GRAPH_CONNECTIVITY_H_
