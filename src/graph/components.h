#ifndef EMP_GRAPH_COMPONENTS_H_
#define EMP_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/contiguity_graph.h"

namespace emp {

/// Connected-components labelling of a contiguity graph.
struct ComponentLabels {
  /// label[v] in [0, count) for every node v.
  std::vector<int32_t> label;
  int32_t count = 0;

  /// Node ids grouped by component, each group sorted ascending.
  std::vector<std::vector<int32_t>> Groups() const;
};

/// Computes connected components via BFS. The EMP formulation explicitly
/// supports maps with multiple connected components (paper §I feature (e)),
/// so construction operates per component.
ComponentLabels ConnectedComponents(const ContiguityGraph& graph);

/// Components of the subgraph induced by `members` (other nodes ignored).
/// Returned labels cover only nodes in `members`; label -1 elsewhere.
ComponentLabels ConnectedComponentsWithin(const ContiguityGraph& graph,
                                          const std::vector<int32_t>& members);

}  // namespace emp

#endif  // EMP_GRAPH_COMPONENTS_H_
