#ifndef EMP_GRAPH_GAL_H_
#define EMP_GRAPH_GAL_H_

#include <string>

#include "common/result.h"
#include "graph/contiguity_graph.h"

namespace emp {

/// GAL ("GeoDa/PySAL spatial weights") text format interop. The
/// regionalization community (PySAL's spopt max-p, GeoDa) exchanges
/// contiguity structure in GAL files:
///
///   <n>
///   <id> <degree>
///   <neighbor ids...>
///   ...
///
/// Ids here are 0-based area indices. A leading header line of the
/// 4-token GeoDa flavor ("0 <n> <shapefile> <key>") is also accepted on
/// read.

/// Serializes a contiguity graph as GAL text.
std::string ToGal(const ContiguityGraph& graph);

/// Parses GAL text into a contiguity graph. Tolerates blank lines and
/// both the bare-count and GeoDa 4-token headers; validates that every
/// listed neighbor is in range and symmetrizes missing reverse edges.
Result<ContiguityGraph> FromGal(const std::string& text);

/// File wrappers.
Status WriteGalFile(const std::string& path, const ContiguityGraph& graph);
Result<ContiguityGraph> ReadGalFile(const std::string& path);

}  // namespace emp

#endif  // EMP_GRAPH_GAL_H_
