#include "graph/components.h"

#include <deque>

namespace emp {

std::vector<std::vector<int32_t>> ComponentLabels::Groups() const {
  std::vector<std::vector<int32_t>> groups(static_cast<size_t>(count));
  for (size_t v = 0; v < label.size(); ++v) {
    if (label[v] >= 0) {
      groups[static_cast<size_t>(label[v])].push_back(
          static_cast<int32_t>(v));
    }
  }
  return groups;
}

ComponentLabels ConnectedComponents(const ContiguityGraph& graph) {
  const int32_t n = graph.num_nodes();
  ComponentLabels out;
  out.label.assign(static_cast<size_t>(n), -1);
  std::deque<int32_t> queue;
  for (int32_t start = 0; start < n; ++start) {
    if (out.label[static_cast<size_t>(start)] != -1) continue;
    const int32_t comp = out.count++;
    out.label[static_cast<size_t>(start)] = comp;
    queue.push_back(start);
    while (!queue.empty()) {
      int32_t u = queue.front();
      queue.pop_front();
      for (int32_t v : graph.NeighborsOf(u)) {
        if (out.label[static_cast<size_t>(v)] == -1) {
          out.label[static_cast<size_t>(v)] = comp;
          queue.push_back(v);
        }
      }
    }
  }
  return out;
}

ComponentLabels ConnectedComponentsWithin(
    const ContiguityGraph& graph, const std::vector<int32_t>& members) {
  const int32_t n = graph.num_nodes();
  ComponentLabels out;
  out.label.assign(static_cast<size_t>(n), -1);
  std::vector<char> in_set(static_cast<size_t>(n), 0);
  for (int32_t v : members) in_set[static_cast<size_t>(v)] = 1;

  std::deque<int32_t> queue;
  for (int32_t start : members) {
    if (out.label[static_cast<size_t>(start)] != -1) continue;
    const int32_t comp = out.count++;
    out.label[static_cast<size_t>(start)] = comp;
    queue.push_back(start);
    while (!queue.empty()) {
      int32_t u = queue.front();
      queue.pop_front();
      for (int32_t v : graph.NeighborsOf(u)) {
        if (in_set[static_cast<size_t>(v)] &&
            out.label[static_cast<size_t>(v)] == -1) {
          out.label[static_cast<size_t>(v)] = comp;
          queue.push_back(v);
        }
      }
    }
  }
  return out;
}

}  // namespace emp
