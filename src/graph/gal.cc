#include "graph/gal.h"

#include <sstream>
#include <vector>

#include "common/csv.h"
#include "common/str_util.h"

namespace emp {

std::string ToGal(const ContiguityGraph& graph) {
  std::string out = std::to_string(graph.num_nodes());
  out += '\n';
  for (int32_t v = 0; v < graph.num_nodes(); ++v) {
    out += std::to_string(v);
    out += ' ';
    out += std::to_string(graph.DegreeOf(v));
    out += '\n';
    const auto& neighbors = graph.NeighborsOf(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (i > 0) out += ' ';
      out += std::to_string(neighbors[i]);
    }
    out += '\n';
  }
  return out;
}

Result<ContiguityGraph> FromGal(const std::string& text) {
  // Tokenize everything; GAL is whitespace-separated.
  std::istringstream in(text);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  if (tokens.empty()) {
    return Status::IOError("empty GAL input");
  }

  size_t pos = 0;
  // Header: either "<n>" or the GeoDa flavor "0 <n> <shp> <key>".
  int64_t n = 0;
  {
    EMP_ASSIGN_OR_RETURN(int64_t first, ParseInt64(tokens[0]));
    if (first == 0 && tokens.size() >= 4) {
      EMP_ASSIGN_OR_RETURN(n, ParseInt64(tokens[1]));
      pos = 4;
    } else {
      n = first;
      pos = 1;
    }
  }
  if (n < 0) {
    return Status::IOError("negative node count in GAL header");
  }

  std::vector<std::vector<int32_t>> neighbors(static_cast<size_t>(n));
  while (pos < tokens.size()) {
    EMP_ASSIGN_OR_RETURN(int64_t id, ParseInt64(tokens[pos]));
    if (pos + 1 >= tokens.size()) {
      return Status::IOError("GAL record for node " + std::to_string(id) +
                             " is missing its degree");
    }
    EMP_ASSIGN_OR_RETURN(int64_t degree, ParseInt64(tokens[pos + 1]));
    pos += 2;
    if (id < 0 || id >= n) {
      return Status::IOError("GAL node id out of range: " +
                             std::to_string(id));
    }
    if (degree < 0 || pos + static_cast<size_t>(degree) > tokens.size()) {
      return Status::IOError("GAL node " + std::to_string(id) +
                             " lists degree " + std::to_string(degree) +
                             " but the file ends early");
    }
    for (int64_t k = 0; k < degree; ++k) {
      EMP_ASSIGN_OR_RETURN(int64_t nb, ParseInt64(tokens[pos]));
      ++pos;
      if (nb < 0 || nb >= n) {
        return Status::IOError("GAL neighbor out of range: " +
                               std::to_string(nb));
      }
      neighbors[static_cast<size_t>(id)].push_back(
          static_cast<int32_t>(nb));
    }
  }
  return ContiguityGraph::FromNeighborLists(std::move(neighbors));
}

Status WriteGalFile(const std::string& path, const ContiguityGraph& graph) {
  return WriteFile(path, ToGal(graph));
}

Result<ContiguityGraph> ReadGalFile(const std::string& path) {
  EMP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return FromGal(text);
}

}  // namespace emp
