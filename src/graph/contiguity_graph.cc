#include "graph/contiguity_graph.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

namespace emp {

const int64_t ContiguityGraph::kEmptyOffsets[1] = {0};

ContiguityGraph& ContiguityGraph::operator=(const ContiguityGraph& other) {
  if (this == &other) return *this;
  offsets_store_ = other.offsets_store_;
  neighbors_store_ = other.neighbors_store_;
  backing_ = other.backing_;
  num_nodes_ = other.num_nodes_;
  num_edges_ = other.num_edges_;
  if (other.offsets_ == other.offsets_store_.data()) {
    // Owned graph: re-point the views at our own copies of the stores.
    offsets_ = offsets_store_.data();
    neighbors_ = neighbors_store_.data();
  } else {
    // External (or empty) graph: share the backing and raw pointers.
    offsets_ = other.offsets_;
    neighbors_ = other.neighbors_;
  }
  return *this;
}

Result<ContiguityGraph> ContiguityGraph::FromNeighborLists(
    std::vector<std::vector<int32_t>> neighbors) {
  const int32_t n = static_cast<int32_t>(neighbors.size());
  // Validate endpoints first.
  for (int32_t u = 0; u < n; ++u) {
    for (int32_t v : neighbors[static_cast<size_t>(u)]) {
      if (v < 0 || v >= n) {
        return Status::InvalidArgument(
            "contiguity edge endpoint out of range: " + std::to_string(v));
      }
      if (v == u) {
        return Status::InvalidArgument("self-loop at node " +
                                       std::to_string(u));
      }
    }
  }
  // Symmetrize and dedupe.
  std::vector<std::set<int32_t>> adj(static_cast<size_t>(n));
  for (int32_t u = 0; u < n; ++u) {
    for (int32_t v : neighbors[static_cast<size_t>(u)]) {
      adj[static_cast<size_t>(u)].insert(v);
      adj[static_cast<size_t>(v)].insert(u);
    }
  }
  ContiguityGraph g;
  g.offsets_store_.resize(static_cast<size_t>(n) + 1);
  g.offsets_store_[0] = 0;
  int64_t degree_sum = 0;
  for (int32_t u = 0; u < n; ++u) {
    degree_sum += static_cast<int64_t>(adj[static_cast<size_t>(u)].size());
    g.offsets_store_[static_cast<size_t>(u) + 1] = degree_sum;
  }
  g.neighbors_store_.reserve(static_cast<size_t>(degree_sum));
  for (int32_t u = 0; u < n; ++u) {
    g.neighbors_store_.insert(g.neighbors_store_.end(),
                              adj[static_cast<size_t>(u)].begin(),
                              adj[static_cast<size_t>(u)].end());
  }
  g.offsets_ = g.offsets_store_.data();
  g.neighbors_ = g.neighbors_store_.data();
  g.num_nodes_ = n;
  g.num_edges_ = degree_sum / 2;
  return g;
}

Result<ContiguityGraph> ContiguityGraph::FromEdges(
    int32_t n, const std::vector<std::pair<int32_t, int32_t>>& edges) {
  if (n < 0) {
    return Status::InvalidArgument("negative node count");
  }
  std::vector<std::vector<int32_t>> neighbors(static_cast<size_t>(n));
  for (const auto& [a, b] : edges) {
    if (a < 0 || a >= n || b < 0 || b >= n) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    neighbors[static_cast<size_t>(a)].push_back(b);
  }
  return FromNeighborLists(std::move(neighbors));
}

Result<ContiguityGraph> ContiguityGraph::FromCsr(
    std::span<const int64_t> offsets, std::span<const int32_t> neighbors,
    std::shared_ptr<const void> backing) {
  if (offsets.empty()) {
    return Status::InvalidArgument("CSR offsets array is empty");
  }
  if (offsets.front() != 0) {
    return Status::InvalidArgument("CSR offsets must start at 0");
  }
  const size_t n = offsets.size() - 1;
  if (n > static_cast<size_t>(INT32_MAX)) {
    return Status::InvalidArgument("CSR node count exceeds int32 range");
  }
  if (offsets.back() != static_cast<int64_t>(neighbors.size())) {
    return Status::InvalidArgument(
        "CSR offsets end at " + std::to_string(offsets.back()) + " but " +
        std::to_string(neighbors.size()) + " neighbors were provided");
  }
  for (size_t u = 0; u < n; ++u) {
    const int64_t begin = offsets[u];
    const int64_t end = offsets[u + 1];
    if (begin > end) {
      return Status::InvalidArgument("CSR offsets not monotone at node " +
                                     std::to_string(u));
    }
    int32_t prev = -1;
    for (int64_t i = begin; i < end; ++i) {
      const int32_t v = neighbors[static_cast<size_t>(i)];
      if (v < 0 || v >= static_cast<int32_t>(n)) {
        return Status::InvalidArgument(
            "CSR neighbor out of range: " + std::to_string(v));
      }
      if (v == static_cast<int32_t>(u)) {
        return Status::InvalidArgument("CSR self-loop at node " +
                                       std::to_string(u));
      }
      if (v <= prev) {
        return Status::InvalidArgument(
            "CSR row not strictly sorted at node " + std::to_string(u));
      }
      prev = v;
    }
  }
  // Symmetry: every (u, v) needs its reverse edge. Rows are sorted, so
  // check via binary search; total cost O(E log d).
  for (size_t u = 0; u < n; ++u) {
    for (int64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      const int32_t v = neighbors[static_cast<size_t>(i)];
      const auto row = neighbors.subspan(
          static_cast<size_t>(offsets[static_cast<size_t>(v)]),
          static_cast<size_t>(offsets[static_cast<size_t>(v) + 1] -
                              offsets[static_cast<size_t>(v)]));
      if (!std::binary_search(row.begin(), row.end(),
                              static_cast<int32_t>(u))) {
        return Status::InvalidArgument(
            "CSR edge " + std::to_string(u) + "->" + std::to_string(v) +
            " missing its reverse edge");
      }
    }
  }
  ContiguityGraph g;
  g.backing_ = std::move(backing);
  g.offsets_ = offsets.data();
  g.neighbors_ = neighbors.data();
  g.num_nodes_ = static_cast<int32_t>(n);
  g.num_edges_ = offsets.back() / 2;
  return g;
}

bool ContiguityGraph::HasEdge(int32_t a, int32_t b) const {
  if (a < 0 || b < 0 || a >= num_nodes_ || b >= num_nodes_) return false;
  const auto adj = NeighborsOf(a);
  return std::binary_search(adj.begin(), adj.end(), b);
}

double ContiguityGraph::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(num_nodes_);
}

std::pair<ContiguityGraph, std::vector<int32_t>>
ContiguityGraph::InducedSubgraph(const std::vector<int32_t>& keep) const {
  std::unordered_map<int32_t, int32_t> old_to_new;
  old_to_new.reserve(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) {
    old_to_new[keep[i]] = static_cast<int32_t>(i);
  }
  std::vector<std::vector<int32_t>> neighbors(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) {
    for (int32_t v : NeighborsOf(keep[i])) {
      auto it = old_to_new.find(v);
      if (it != old_to_new.end()) {
        neighbors[i].push_back(it->second);
      }
    }
  }
  auto result = FromNeighborLists(std::move(neighbors));
  // Inputs come from a valid graph, so construction cannot fail.
  return {std::move(result).value(), keep};
}

}  // namespace emp
