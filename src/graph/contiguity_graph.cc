#include "graph/contiguity_graph.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>

namespace emp {

Result<ContiguityGraph> ContiguityGraph::FromNeighborLists(
    std::vector<std::vector<int32_t>> neighbors) {
  const int32_t n = static_cast<int32_t>(neighbors.size());
  // Validate endpoints first.
  for (int32_t u = 0; u < n; ++u) {
    for (int32_t v : neighbors[static_cast<size_t>(u)]) {
      if (v < 0 || v >= n) {
        return Status::InvalidArgument(
            "contiguity edge endpoint out of range: " + std::to_string(v));
      }
      if (v == u) {
        return Status::InvalidArgument("self-loop at node " +
                                       std::to_string(u));
      }
    }
  }
  // Symmetrize and dedupe.
  std::vector<std::set<int32_t>> adj(static_cast<size_t>(n));
  for (int32_t u = 0; u < n; ++u) {
    for (int32_t v : neighbors[static_cast<size_t>(u)]) {
      adj[static_cast<size_t>(u)].insert(v);
      adj[static_cast<size_t>(v)].insert(u);
    }
  }
  ContiguityGraph g;
  g.adjacency_.resize(static_cast<size_t>(n));
  int64_t degree_sum = 0;
  for (int32_t u = 0; u < n; ++u) {
    g.adjacency_[static_cast<size_t>(u)].assign(
        adj[static_cast<size_t>(u)].begin(), adj[static_cast<size_t>(u)].end());
    degree_sum += static_cast<int64_t>(adj[static_cast<size_t>(u)].size());
  }
  g.num_edges_ = degree_sum / 2;
  return g;
}

Result<ContiguityGraph> ContiguityGraph::FromEdges(
    int32_t n, const std::vector<std::pair<int32_t, int32_t>>& edges) {
  if (n < 0) {
    return Status::InvalidArgument("negative node count");
  }
  std::vector<std::vector<int32_t>> neighbors(static_cast<size_t>(n));
  for (const auto& [a, b] : edges) {
    if (a < 0 || a >= n || b < 0 || b >= n) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    neighbors[static_cast<size_t>(a)].push_back(b);
  }
  return FromNeighborLists(std::move(neighbors));
}

bool ContiguityGraph::HasEdge(int32_t a, int32_t b) const {
  if (a < 0 || b < 0 || a >= num_nodes() || b >= num_nodes()) return false;
  const auto& adj = adjacency_[static_cast<size_t>(a)];
  return std::binary_search(adj.begin(), adj.end(), b);
}

double ContiguityGraph::AverageDegree() const {
  if (adjacency_.empty()) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(adjacency_.size());
}

std::pair<ContiguityGraph, std::vector<int32_t>>
ContiguityGraph::InducedSubgraph(const std::vector<int32_t>& keep) const {
  std::unordered_map<int32_t, int32_t> old_to_new;
  old_to_new.reserve(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) {
    old_to_new[keep[i]] = static_cast<int32_t>(i);
  }
  std::vector<std::vector<int32_t>> neighbors(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) {
    for (int32_t v : NeighborsOf(keep[i])) {
      auto it = old_to_new.find(v);
      if (it != old_to_new.end()) {
        neighbors[i].push_back(it->second);
      }
    }
  }
  auto result = FromNeighborLists(std::move(neighbors));
  // Inputs come from a valid graph, so construction cannot fail.
  return {std::move(result).value(), keep};
}

}  // namespace emp
