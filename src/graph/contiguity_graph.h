#ifndef EMP_GRAPH_CONTIGUITY_GRAPH_H_
#define EMP_GRAPH_CONTIGUITY_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace emp {

/// Undirected graph over area ids [0, n) encoding spatial contiguity
/// ("rook" adjacency: areas sharing a border segment). This is the
/// representation the regionalization literature operates on (§II of the
/// paper); every FaCT phase consumes it rather than raw polygons.
class ContiguityGraph {
 public:
  ContiguityGraph() = default;

  /// Builds from per-node neighbor lists. Fails when an edge endpoint is out
  /// of range or a node lists itself. Missing reverse edges are added
  /// (the graph is symmetrized), duplicates are removed.
  static Result<ContiguityGraph> FromNeighborLists(
      std::vector<std::vector<int32_t>> neighbors);

  /// Builds from an explicit edge list over n nodes.
  static Result<ContiguityGraph> FromEdges(
      int32_t n, const std::vector<std::pair<int32_t, int32_t>>& edges);

  int32_t num_nodes() const { return static_cast<int32_t>(adjacency_.size()); }
  int64_t num_edges() const { return num_edges_; }

  /// Sorted neighbor ids of `node`.
  const std::vector<int32_t>& NeighborsOf(int32_t node) const {
    return adjacency_[static_cast<size_t>(node)];
  }

  /// Degree of `node`.
  int32_t DegreeOf(int32_t node) const {
    return static_cast<int32_t>(adjacency_[static_cast<size_t>(node)].size());
  }

  /// True if `a` and `b` are adjacent (binary search over sorted lists).
  bool HasEdge(int32_t a, int32_t b) const;

  /// Mean degree over all nodes (0 for the empty graph).
  double AverageDegree() const;

  /// Returns an induced subgraph over `keep` (a subset of node ids) plus
  /// the mapping new-id -> old-id. Ids are renumbered to [0, keep.size()).
  std::pair<ContiguityGraph, std::vector<int32_t>> InducedSubgraph(
      const std::vector<int32_t>& keep) const;

 private:
  std::vector<std::vector<int32_t>> adjacency_;
  int64_t num_edges_ = 0;
};

}  // namespace emp

#endif  // EMP_GRAPH_CONTIGUITY_GRAPH_H_
