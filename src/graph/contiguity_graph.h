#ifndef EMP_GRAPH_CONTIGUITY_GRAPH_H_
#define EMP_GRAPH_CONTIGUITY_GRAPH_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"

namespace emp {

/// Undirected graph over area ids [0, n) encoding spatial contiguity
/// ("rook" adjacency: areas sharing a border segment). This is the
/// representation the regionalization literature operates on (§II of the
/// paper); every FaCT phase consumes it rather than raw polygons.
///
/// Storage is CSR (compressed sparse row): `offsets` has n+1 entries and
/// `neighbors` holds all sorted adjacency lists back to back, so the whole
/// structure is two flat arrays. The arrays are either owned by the graph
/// (the build-from-lists path) or borrowed from external read-only memory —
/// typically an mmap'd compact instance image — kept alive by a shared
/// backing handle. Either way, accessors hand out `std::span` views.
class ContiguityGraph {
 public:
  ContiguityGraph() = default;

  ContiguityGraph(const ContiguityGraph& other) { *this = other; }
  ContiguityGraph& operator=(const ContiguityGraph& other);
  ContiguityGraph(ContiguityGraph&&) = default;
  ContiguityGraph& operator=(ContiguityGraph&&) = default;

  /// Builds from per-node neighbor lists. Fails when an edge endpoint is out
  /// of range or a node lists itself. Missing reverse edges are added
  /// (the graph is symmetrized), duplicates are removed.
  static Result<ContiguityGraph> FromNeighborLists(
      std::vector<std::vector<int32_t>> neighbors);

  /// Builds from an explicit edge list over n nodes.
  static Result<ContiguityGraph> FromEdges(
      int32_t n, const std::vector<std::pair<int32_t, int32_t>>& edges);

  /// Wraps a prebuilt CSR image without copying it. `offsets` must have
  /// n+1 monotone entries starting at 0; `neighbors` must hold sorted,
  /// in-range, self-loop-free rows whose reverse edges are present (the
  /// shape `FromNeighborLists` produces — validated here, since compact
  /// instance files are untrusted input). `backing` keeps the external
  /// storage alive for the lifetime of the graph and all copies of it;
  /// pass nullptr only when the arrays are guaranteed to outlive them.
  static Result<ContiguityGraph> FromCsr(std::span<const int64_t> offsets,
                                         std::span<const int32_t> neighbors,
                                         std::shared_ptr<const void> backing);

  int32_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return num_edges_; }

  /// Sorted neighbor ids of `node`.
  std::span<const int32_t> NeighborsOf(int32_t node) const {
    assert(node >= 0 && node < num_nodes_);
    const auto u = static_cast<size_t>(node);
    return {neighbors_ + offsets_[u],
            static_cast<size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Degree of `node`.
  int32_t DegreeOf(int32_t node) const {
    assert(node >= 0 && node < num_nodes_);
    const auto u = static_cast<size_t>(node);
    return static_cast<int32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// True if `a` and `b` are adjacent (binary search over sorted lists).
  bool HasEdge(int32_t a, int32_t b) const;

  /// Mean degree over all nodes (0 for the empty graph).
  double AverageDegree() const;

  /// Returns an induced subgraph over `keep` (a subset of node ids) plus
  /// the mapping new-id -> old-id. Ids are renumbered to [0, keep.size()).
  std::pair<ContiguityGraph, std::vector<int32_t>> InducedSubgraph(
      const std::vector<int32_t>& keep) const;

  /// Raw CSR arrays (num_nodes()+1 offsets, 2*num_edges() neighbors); the
  /// compact instance writer serializes these verbatim.
  std::span<const int64_t> csr_offsets() const {
    return {offsets_, static_cast<size_t>(num_nodes_) + 1};
  }
  std::span<const int32_t> csr_neighbors() const {
    return {neighbors_, static_cast<size_t>(2 * num_edges_)};
  }

 private:
  // Owned storage; empty when the graph views external (mmap'd) memory.
  std::vector<int64_t> offsets_store_;
  std::vector<int32_t> neighbors_store_;
  // Keeps external storage alive. Null for owned graphs.
  std::shared_ptr<const void> backing_;
  // Active views: into the stores (owned) or the backing (external). The
  // empty graph keeps offsets_ pointing at a static [0] so csr_offsets()
  // is always valid.
  const int64_t* offsets_ = kEmptyOffsets;
  const int32_t* neighbors_ = nullptr;
  int32_t num_nodes_ = 0;
  int64_t num_edges_ = 0;

  static const int64_t kEmptyOffsets[1];
};

}  // namespace emp

#endif  // EMP_GRAPH_CONTIGUITY_GRAPH_H_
