// Patrol sector design (the paper's third motivating example, after the
// multi-criteria police districting problem): carve a city into patrol
// sectors with balanced workload —
//   emergency calls per sector   SUM(CALLS)  in [800, 1600]   (balance)
//   beats per sector             COUNT(*)    in [4, 15]       (manageable)
//   no overloaded beat inside    MAX(CALLS)  <= 400           (filter)
// The dissimilarity attribute is the average response time, so the Tabu
// phase yields sectors with homogeneous response characteristics.
//
// Upper-bounded SUM/COUNT mean some beats may stay unassigned (U0); the
// example reports them so a dispatcher can review the leftovers.

#include <cmath>
#include <cstdio>

#include "core/fact_solver.h"
#include "data/synthetic/scenarios.h"



int main() {
  auto city = emp::synthetic::MakePatrolCity();
  if (!city.ok()) {
    std::fprintf(stderr, "map error: %s\n", city.status().ToString().c_str());
    return 1;
  }
  std::printf("city: %d beats\n", city->num_areas());

  std::vector<emp::Constraint> query = {
      emp::Constraint::Sum("CALLS", 800, 1600),
      emp::Constraint::Count(4, 15),
      emp::Constraint::Max("CALLS", emp::kNoLowerBound, 400),
  };
  for (const auto& c : query) {
    std::printf("constraint: %s\n", c.ToString().c_str());
  }

  emp::SolverOptions options;
  options.construction_iterations = 5;  // workload balance benefits from
                                        // more tries at a high p
  auto solution = emp::SolveEmp(*city, query, options);
  if (!solution.ok()) {
    std::fprintf(stderr, "solver: %s\n",
                 solution.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", solution->Summary().c_str());

  // Workload balance report.
  auto bound = emp::BoundConstraints::Create(&*city, query);
  if (!bound.ok()) return 1;
  double min_calls = 1e18;
  double max_calls = 0;
  for (const auto& sector : solution->regions) {
    emp::RegionStats stats(&*bound);
    for (int32_t a : sector) stats.Add(a);
    double calls = stats.AggregateValue(0);
    min_calls = std::min(min_calls, calls);
    max_calls = std::max(max_calls, calls);
  }
  std::printf("sectors: %d, calls per sector in [%.0f, %.0f] (ratio %.2f)\n",
              solution->p(), min_calls, max_calls,
              max_calls / std::max(1.0, min_calls));
  std::printf("unassigned beats for manual review: %lld\n",
              static_cast<long long>(solution->num_unassigned()));
  return 0;
}
