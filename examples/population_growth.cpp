// Population-growth study regions (the paper's second motivating example,
// after Fragoso et al. 2016): delineate regions controlling several growth
// factors at once with different aggregates —
//   minimum per-tract population   MIN(TOTALPOP)  >= 1,000
//   maximum school drop-out rate   MAX(DROPOUT)   <= 18 (%)
//   average age                    AVG(AVGAGE)    in [30, 45]
//   total unemployment             SUM(UNEMployed) >= 2,000
//
// Also demonstrates the feasibility phase as an exploration tool: the
// query is run with a deliberately impossible variant first, and the
// solver's diagnostics explain why before the corrected query runs.

#include <cmath>
#include <cstdio>

#include "core/fact_solver.h"
#include "data/synthetic/scenarios.h"

namespace {


void Run(const emp::AreaSet& state, std::vector<emp::Constraint> query,
         const char* label) {
  std::printf("\n--- %s ---\n", label);
  for (const auto& c : query) {
    std::printf("constraint: %s\n", c.ToString().c_str());
  }
  emp::SolverOptions options;
  // Demo-friendly local-search budget; lift for full-quality runs.
  options.tabu_max_no_improve = 500;
  options.tabu_max_iterations = 4000;
  auto solution = emp::SolveEmp(state, std::move(query), options);
  if (!solution.ok()) {
    std::printf("solver verdict: %s\n",
                solution.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", solution->Summary().c_str());
  for (const auto& line : solution->feasibility.diagnostics) {
    std::printf("diagnostic: %s\n", line.c_str());
  }
  std::printf("invalid areas filtered into U0: %zu\n",
              solution->feasibility.invalid_areas.size());
}

}  // namespace

int main() {
  auto state = emp::synthetic::MakeGrowthState();
  if (!state.ok()) {
    std::fprintf(stderr, "map error: %s\n",
                 state.status().ToString().c_str());
    return 1;
  }
  std::printf("state map: %d tracts\n", state->num_areas());

  // An impossible variant: no tract has an average age above 60, so the
  // feasibility phase rejects it up front with an explanation.
  Run(*state,
      {emp::Constraint::Avg("AVGAGE", 72, 90),
       emp::Constraint::Min("AVGAGE", 72, emp::kNoUpperBound)},
      "infeasible exploration query");

  // The corrected study query.
  Run(*state,
      {emp::Constraint::Min("TOTALPOP", 1000, emp::kNoUpperBound),
       emp::Constraint::Max("DROPOUT", emp::kNoLowerBound, 18),
       emp::Constraint::Avg("AVGAGE", 30, 45),
       emp::Constraint::Sum("UNEMPLOYED", 2000, emp::kNoUpperBound)},
      "population growth study query");
  return 0;
}
