// Quickstart: synthesize a small census-tract map, run FaCT with the
// paper's default constraint suite (Table II), and inspect the solution.
//
//   ./example_quickstart [dataset-name]      (default: "small")

#include <cstdio>
#include <string>

#include "common/csv.h"
#include "core/fact_solver.h"
#include "data/geojson.h"
#include "data/synthetic/dataset_catalog.h"

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "small";

  // 1. Load (synthesize) a dataset. Real deployments would build an
  //    AreaSet from shapefile-derived polygons + attribute tables instead.
  auto areas = emp::synthetic::MakeCatalogDataset(dataset);
  if (!areas.ok()) {
    std::fprintf(stderr, "dataset error: %s\n",
                 areas.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset %s: %d areas, avg degree %.2f\n",
              areas->name().c_str(), areas->num_areas(),
              areas->graph().AverageDegree());

  // 2. Express the regionalization query: three enriched constraints on
  //    three different attributes (the paper's defaults).
  std::vector<emp::Constraint> constraints = {
      emp::Constraint::Min("POP16UP", emp::kNoLowerBound, 3000),
      emp::Constraint::Avg("EMPLOYED", 1500, 3500),
      emp::Constraint::Sum("TOTALPOP", 20000, emp::kNoUpperBound),
  };
  for (const auto& c : constraints) {
    std::printf("constraint: %s\n", c.ToString().c_str());
  }

  // 3. Solve.
  auto solution = emp::SolveEmp(*areas, constraints);
  if (!solution.ok()) {
    std::fprintf(stderr, "solver: %s\n",
                 solution.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the result.
  std::printf("%s\n", solution->Summary().c_str());
  for (const auto& line : solution->feasibility.diagnostics) {
    std::printf("note: %s\n", line.c_str());
  }
  int shown = 0;
  for (const auto& region : solution->regions) {
    if (shown++ >= 5) break;
    std::printf("region %d: %zu areas\n", shown - 1, region.size());
  }

  // 5. Export for GIS tooling.
  auto geojson = emp::ToGeoJson(*areas, solution->region_of);
  if (geojson.ok()) {
    std::string path = "/tmp/emp_quickstart.geojson";
    if (emp::WriteFile(path, *geojson).ok()) {
      std::printf("wrote %s (%zu bytes)\n", path.c_str(), geojson->size());
    }
  }
  return 0;
}
