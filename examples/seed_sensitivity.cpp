// Monte-Carlo seed-sensitivity study: FaCT's construction is randomized
// (area pickup order), so analysts should know how stable p and the
// heterogeneity are across seeds before drawing conclusions from one run.
// Runs the paper's default query across N seeds and reports the
// distribution plus the overlap structure of the best two solutions.
//
//   ./example_seed_sensitivity [num-seeds]   (default 12)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/fact_solver.h"
#include "data/synthetic/dataset_catalog.h"

namespace {

struct RunStats {
  uint64_t seed;
  int32_t p;
  int64_t unassigned;
  double heterogeneity;
  std::vector<int32_t> region_of;
};

/// Adjusted Rand-ish agreement: fraction of area pairs (sampled) on which
/// two assignments agree about "same region vs different region".
double PairAgreement(const std::vector<int32_t>& a,
                     const std::vector<int32_t>& b) {
  int64_t agree = 0;
  int64_t total = 0;
  for (size_t i = 0; i < a.size(); i += 3) {
    for (size_t j = i + 1; j < a.size(); j += 7) {
      bool same_a = a[i] != -1 && a[i] == a[j];
      bool same_b = b[i] != -1 && b[i] == b[j];
      agree += (same_a == same_b) ? 1 : 0;
      ++total;
    }
  }
  return total > 0 ? static_cast<double>(agree) / total : 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_seeds = argc > 1 ? std::atoi(argv[1]) : 12;

  auto areas = emp::synthetic::MakeCatalogDataset("small");
  if (!areas.ok()) {
    std::fprintf(stderr, "dataset: %s\n", areas.status().ToString().c_str());
    return 1;
  }
  std::vector<emp::Constraint> query = {
      emp::Constraint::Min("POP16UP", emp::kNoLowerBound, 3000),
      emp::Constraint::Avg("EMPLOYED", 1500, 3500),
      emp::Constraint::Sum("TOTALPOP", 20000, emp::kNoUpperBound),
  };

  std::vector<RunStats> runs;
  for (int s = 0; s < num_seeds; ++s) {
    emp::SolverOptions options;
    options.seed = 1000 + static_cast<uint64_t>(s) * 7919;
    options.construction_iterations = 1;  // isolate seed sensitivity
    options.tabu_max_no_improve = 200;
    auto sol = emp::SolveEmp(*areas, query, options);
    if (!sol.ok()) {
      std::fprintf(stderr, "seed %d: %s\n", s,
                   sol.status().ToString().c_str());
      continue;
    }
    runs.push_back({options.seed, sol->p(), sol->num_unassigned(),
                    sol->heterogeneity, sol->region_of});
    std::printf("seed %-6llu p=%-4d unassigned=%-3lld H=%.0f\n",
                static_cast<unsigned long long>(options.seed), sol->p(),
                static_cast<long long>(sol->num_unassigned()),
                sol->heterogeneity);
  }
  if (runs.size() < 2) return 1;

  // Distribution summary.
  double mean_p = 0;
  for (const auto& r : runs) mean_p += r.p;
  mean_p /= static_cast<double>(runs.size());
  double var_p = 0;
  int32_t min_p = runs[0].p;
  int32_t max_p = runs[0].p;
  for (const auto& r : runs) {
    var_p += (r.p - mean_p) * (r.p - mean_p);
    min_p = std::min(min_p, r.p);
    max_p = std::max(max_p, r.p);
  }
  var_p /= static_cast<double>(runs.size());
  std::printf("\np over %zu seeds: min=%d mean=%.1f (sd %.1f) max=%d\n",
              runs.size(), min_p, mean_p, std::sqrt(var_p), max_p);

  // Solution overlap between the two best runs.
  std::sort(runs.begin(), runs.end(), [](const RunStats& a,
                                         const RunStats& b) {
    if (a.p != b.p) return a.p > b.p;
    return a.heterogeneity < b.heterogeneity;
  });
  double agreement = PairAgreement(runs[0].region_of, runs[1].region_of);
  std::printf("pairwise co-assignment agreement of best two runs: %.1f%%\n",
              agreement * 100.0);
  std::printf(
      "(best-of-k construction — SolverOptions::construction_iterations — "
      "exists precisely to absorb this variance)\n");
  return 0;
}
