// COVID policy regions (the paper's introduction example): identify
// reasonably populated regions for virus-spread policy making —
//   total population        >= 200,000
//   average monthly income  in [$3000, $5000]
//   transit ridership       >= 10,000
//
// The map carries custom INCOME and TRANSIT attributes on top of the
// census defaults, showing how to extend the synthetic attribute suite.

#include <cmath>
#include <cstdio>

#include "core/fact_solver.h"
#include "data/synthetic/scenarios.h"



int main() {
  auto city = emp::synthetic::MakeCovidCity();
  if (!city.ok()) {
    std::fprintf(stderr, "map error: %s\n", city.status().ToString().c_str());
    return 1;
  }
  std::printf("city map: %d tracts\n", city->num_areas());

  std::vector<emp::Constraint> policy_query = {
      emp::Constraint::Sum("TOTALPOP", 200000, emp::kNoUpperBound),
      emp::Constraint::Avg("INCOME", 3000, 5000),
      emp::Constraint::Sum("TRANSIT", 10000, emp::kNoUpperBound),
  };
  for (const auto& c : policy_query) {
    std::printf("constraint: %s\n", c.ToString().c_str());
  }

  auto solution = emp::SolveEmp(*city, policy_query);
  if (!solution.ok()) {
    std::fprintf(stderr, "solver: %s\n",
                 solution.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", solution->Summary().c_str());

  // Report per-region aggregates so a policymaker can sanity-check.
  auto bound = emp::BoundConstraints::Create(&*city, policy_query);
  if (!bound.ok()) return 1;
  std::printf("%-8s %-8s %12s %12s %12s\n", "region", "tracts", "TOTALPOP",
              "AVG(INCOME)", "TRANSIT");
  for (size_t rid = 0; rid < solution->regions.size(); ++rid) {
    emp::RegionStats stats(&*bound);
    for (int32_t a : solution->regions[rid]) stats.Add(a);
    std::printf("%-8zu %-8zu %12.0f %12.0f %12.0f\n", rid,
                solution->regions[rid].size(), stats.AggregateValue(0),
                stats.AggregateValue(1), stats.AggregateValue(2));
    if (rid >= 9) {
      std::printf("... (%zu more regions)\n", solution->regions.size() - 10);
      break;
    }
  }
  return 0;
}
