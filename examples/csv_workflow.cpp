// End-to-end file workflow: export a map to CSV (WKT geometry + attribute
// columns), reload it — adjacency is re-derived geometrically, exactly as
// a shapefile pipeline would — parse a textual constraint query, solve,
// and write the assignment plus a GeoJSON for GIS tools.
//
//   ./example_csv_workflow [query]
// Default query: the paper's Table II constraints in textual form.

#include <cstdio>
#include <string>

#include "common/csv.h"
#include "constraints/query_parser.h"
#include "core/fact_solver.h"
#include "core/metrics.h"
#include "data/geojson.h"
#include "data/loader.h"
#include "data/synthetic/dataset_catalog.h"

int main(int argc, char** argv) {
  const std::string query_text =
      argc > 1 ? argv[1]
               : "MIN(POP16UP) <= 3000; "
                 "AVG(EMPLOYED) IN [1.5k, 3.5k]; "
                 "SUM(TOTALPOP) >= 20k";

  // 1. Produce a CSV "shapefile" from the synthetic substrate.
  auto source = emp::synthetic::MakeCatalogDataset("small");
  if (!source.ok()) {
    std::fprintf(stderr, "dataset: %s\n", source.status().ToString().c_str());
    return 1;
  }
  auto csv = emp::AreaSetToCsvText(*source);
  if (!csv.ok()) return 1;
  const std::string csv_path = "/tmp/emp_tracts.csv";
  if (!emp::WriteFile(csv_path, *csv).ok()) return 1;
  std::printf("wrote %s (%zu bytes)\n", csv_path.c_str(), csv->size());

  // 2. Load it back; contiguity is rebuilt from shared borders.
  emp::LoaderOptions loader_options;
  loader_options.dissimilarity_attribute = "HOUSEHOLDS";
  loader_options.name = "tracts-from-csv";
  auto areas = emp::LoadAreaSetFromCsvFile(csv_path, loader_options);
  if (!areas.ok()) {
    std::fprintf(stderr, "load: %s\n", areas.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %d areas, %lld contiguity edges\n", areas->num_areas(),
              static_cast<long long>(areas->graph().num_edges()));

  // 3. Parse the textual query.
  auto constraints = emp::ParseConstraints(query_text);
  if (!constraints.ok()) {
    std::fprintf(stderr, "query: %s\n",
                 constraints.status().ToString().c_str());
    return 1;
  }
  for (const auto& c : *constraints) {
    std::printf("constraint: %s\n", c.ToString().c_str());
  }

  // 4. Solve and report.
  auto solution = emp::SolveEmp(*areas, *constraints);
  if (!solution.ok()) {
    std::fprintf(stderr, "solver: %s\n",
                 solution.status().ToString().c_str());
    return 1;
  }
  auto metrics = emp::ComputeMetrics(*areas, *solution);
  if (metrics.ok()) {
    std::printf("%s\n", metrics->ToString().c_str());
  }

  // 5. Export results.
  if (emp::WriteFile("/tmp/emp_assignment.csv",
                     emp::AssignmentToCsv(solution->region_of))
          .ok()) {
    std::printf("wrote /tmp/emp_assignment.csv\n");
  }
  auto geojson = emp::ToGeoJson(*areas, solution->region_of);
  if (geojson.ok() &&
      emp::WriteFile("/tmp/emp_regions.geojson", *geojson).ok()) {
    std::printf("wrote /tmp/emp_regions.geojson\n");
  }
  return 0;
}
