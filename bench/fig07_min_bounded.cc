// Fig. 7 — runtime for MIN with bounded [l, u] on the 2k dataset:
//   (a) midpoint fixed at 3k, range length in {1k, 2k, 3k, 4k};
//   (b) length fixed at 1k, midpoint in {1.5k, 2.5k, 3.5k, 4.5k}.
//
// Expected shape (paper): (a) longer ranges keep more areas and seed more
// regions -> p and construction time grow; (b) larger midpoints chop the
// map into scattered components -> both times fall.

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Fig. 7a", "MIN bounded ranges, varying length @ midpoint 3k (2k)");

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  SolverOptions options = DefaultBenchOptions();
  const std::vector<std::string> combos = {"M", "MS", "MA", "MAS"};

  TablePrinter a("", {"combo", "range", "p", "construction(s)", "tabu(s)",
                      "total(s)"});
  for (const auto& combo : combos) {
    for (double half : {500.0, 1000.0, 1500.0, 2000.0}) {
      ComboRanges cr;
      cr.min_lower = 3000 - half;
      cr.min_upper = 3000 + half;
      RunResult r = RunFact(areas, BuildCombo(combo, cr), options);
      a.AddRow({combo,
                "[" + FormatDouble(cr.min_lower, 0) + "," +
                    FormatDouble(cr.min_upper, 0) + "]",
                std::to_string(r.p), Secs(r.construction_seconds),
                Secs(r.tabu_seconds), Secs(r.total_seconds())});
    }
  }
  EmitTable("fig07_min_bounded", a);

  Banner("Fig. 7b", "MIN bounded ranges, length 1k, shifting midpoint (2k)");
  TablePrinter b("", {"combo", "range", "p", "construction(s)", "tabu(s)",
                      "total(s)", "het-improve"});
  for (const auto& combo : combos) {
    for (double mid : {1500.0, 2500.0, 3500.0, 4500.0}) {
      ComboRanges cr;
      cr.min_lower = mid - 500;
      cr.min_upper = mid + 500;
      RunResult r = RunFact(areas, BuildCombo(combo, cr), options);
      b.AddRow({combo,
                "[" + FormatDouble(cr.min_lower, 0) + "," +
                    FormatDouble(cr.min_upper, 0) + "]",
                std::to_string(r.p), Secs(r.construction_seconds),
                Secs(r.tabu_seconds), Secs(r.total_seconds()),
                Pct(r.heterogeneity_improvement)});
    }
  }
  EmitTable("fig07_min_bounded", b);
  return 0;
}
