// Micro-benchmarks for the multi-start solver portfolio (DESIGN.md §10):
// N independent FaCT replicas across a worker pool, reduced
// deterministically. Alongside the google-benchmark registrations, a
// scaling table solves a >= 900-area instance with a fixed replica count
// at 1/2/4/8 portfolio threads and exports BENCH_portfolio.json via the
// EMP_BENCH_JSON_DIR hook (acceptance: >= 3x wall-clock speedup at 8
// threads on >= 8 hardware cores; the table also cross-checks that every
// thread count returned the identical solution). Set EMP_BENCH_SMOKE=1
// for a CI-sized instance.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "constraints/constraint.h"
#include "core/portfolio.h"
#include "core/solution.h"
#include "data/area_set.h"
#include "data/synthetic/dataset_catalog.h"
#include "harness/table.h"

namespace {

using emp::AreaSet;
using emp::Constraint;
using emp::PortfolioSolver;
using emp::Solution;
using emp::SolverOptions;

AreaSet BenchAreas(int32_t num_areas) {
  auto areas = emp::synthetic::MakeDefaultDataset("portfolio_bench",
                                                  num_areas, /*seed=*/17);
  if (!areas.ok()) std::abort();
  return std::move(areas).value();
}

std::vector<Constraint> BenchConstraints() {
  return {Constraint::Sum("TOTALPOP", 20000, emp::kNoUpperBound)};
}

SolverOptions BenchOptions(int replicas, int threads) {
  SolverOptions options;
  options.seed = 4242;
  options.portfolio_replicas = replicas;
  options.portfolio_threads = threads;
  options.construction_iterations = 2;
  // Bound the local-search tail so one table run stays in seconds even on
  // a single core; the work per replica is identical at every thread
  // count, which is all the scaling measurement needs.
  options.tabu_max_iterations = 2000;
  return options;
}

void BM_PortfolioSolve(benchmark::State& state) {
  AreaSet areas = BenchAreas(300);
  std::vector<Constraint> cs = BenchConstraints();
  SolverOptions options =
      BenchOptions(/*replicas=*/4, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    PortfolioSolver solver(&areas, cs, options);
    auto sol = solver.Solve();
    if (!sol.ok()) std::abort();
    benchmark::DoNotOptimize(sol->p());
  }
}
BENCHMARK(BM_PortfolioSolve)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// The acceptance measurement: wall-clock for the same 8-replica
/// portfolio at 1/2/4/8 threads (best of kReps runs each), plus a
/// determinism cross-check — every row must report the same p and
/// heterogeneity or the reduction is broken.
void RunScalingTable() {
  const bool smoke = std::getenv("EMP_BENCH_SMOKE") != nullptr;
  const int32_t num_areas = smoke ? 441 : 961;
  const int replicas = 8;
  const int kReps = smoke ? 1 : 3;

  AreaSet areas = BenchAreas(num_areas);
  std::vector<Constraint> cs = BenchConstraints();

  emp::bench::TablePrinter table(
      "Portfolio scaling: " + std::to_string(replicas) + " replicas on " +
          std::to_string(num_areas) + " areas, wall-clock vs portfolio "
          "threads (identical solution required at every thread count)",
      {"threads", "replicas", "seconds", "speedup", "p", "heterogeneity"});

  double base_seconds = 0.0;
  int32_t reference_p = -1;
  double reference_het = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    double best_seconds = 0.0;
    Solution solution;
    for (int rep = 0; rep < kReps; ++rep) {
      PortfolioSolver solver(&areas, cs, BenchOptions(replicas, threads));
      emp::Stopwatch timer;
      auto sol = solver.Solve();
      const double seconds = timer.ElapsedSeconds();
      if (!sol.ok()) std::abort();
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
      solution = std::move(sol).value();
    }
    if (threads == 1) {
      base_seconds = best_seconds;
      reference_p = solution.p();
      reference_het = solution.heterogeneity;
    } else if (solution.p() != reference_p ||
               solution.heterogeneity != reference_het) {
      std::fprintf(stderr,
                   "FATAL: portfolio result changed at %d threads "
                   "(p %d vs %d)\n",
                   threads, solution.p(), reference_p);
      std::abort();
    }
    const double speedup =
        best_seconds > 0.0 ? base_seconds / best_seconds : 0.0;
    table.AddRow({std::to_string(threads), std::to_string(replicas),
                  emp::bench::Secs(best_seconds),
                  emp::FormatDouble(speedup, 2) + "x",
                  std::to_string(solution.p()),
                  emp::FormatDouble(solution.heterogeneity, 1)});
  }
  emp::bench::EmitTable("portfolio", table);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RunScalingTable();
  return 0;
}
