// Ablation — design choices DESIGN.md §5 calls out, on the default MAS
// query (2k dataset):
//   (1) construction iterations (best-of-k on p),
//   (2) AVG merge limit (round-2 coalition budget),
//   (3) area pickup order (random / ascending / descending),
//   (4) Tabu tenure.
// Not a paper figure; quantifies how much each knob buys.

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Ablation", "FaCT parameter sensitivity on the MAS query (2k)");

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  const std::vector<Constraint> query = BuildCombo("MAS", ComboRanges{});

  {
    TablePrinter table("construction iterations (best-of-k on p)",
                       {"iterations", "p", "construction(s)"});
    for (int iters : {1, 2, 3, 5}) {
      SolverOptions options = DefaultBenchOptions();
      options.construction_iterations = iters;
      options.run_local_search = false;
      RunResult r = RunFact(areas, query, options);
      table.AddRow({std::to_string(iters), std::to_string(r.p),
                    Secs(r.construction_seconds)});
    }
    EmitTable("ablation_construction", table);
  }

  {
    // The merge limit matters most when AVG is tight; use 3k±1k.
    ComboRanges tight;
    tight.avg_lower = 2000;
    tight.avg_upper = 4000;
    TablePrinter table("AVG merge limit (range 3k±1k)",
                       {"merge-limit", "p", "UA", "construction(s)"});
    for (int limit : {0, 1, 3, 5}) {
      SolverOptions options = DefaultBenchOptions();
      options.avg_merge_limit = limit;
      options.run_local_search = false;
      RunResult r = RunFact(areas, BuildCombo("MAS", tight), options);
      table.AddRow({std::to_string(limit), std::to_string(r.p),
                    std::to_string(r.unassigned),
                    Secs(r.construction_seconds)});
    }
    EmitTable("ablation_construction", table);
  }

  {
    TablePrinter table("area pickup order",
                       {"order", "p", "UA", "construction(s)"});
    const std::pair<PickupOrder, const char*> orders[] = {
        {PickupOrder::kRandom, "random"},
        {PickupOrder::kAscending, "ascending"},
        {PickupOrder::kDescending, "descending"},
    };
    for (const auto& [order, label] : orders) {
      SolverOptions options = DefaultBenchOptions();
      options.pickup_order = order;
      options.run_local_search = false;
      RunResult r = RunFact(areas, query, options);
      table.AddRow({label, std::to_string(r.p),
                    std::to_string(r.unassigned),
                    Secs(r.construction_seconds)});
    }
    EmitTable("ablation_construction", table);
  }

  {
    TablePrinter table("Tabu tenure",
                       {"tenure", "p", "tabu(s)", "het-improve"});
    for (int tenure : {1, 5, 10, 25}) {
      SolverOptions options = DefaultBenchOptions();
      options.tabu_tenure = tenure;
      RunResult r = RunFact(areas, query, options);
      table.AddRow({std::to_string(tenure), std::to_string(r.p),
                    Secs(r.tabu_seconds),
                    Pct(r.heterogeneity_improvement)});
    }
    EmitTable("ablation_construction", table);
  }
  return 0;
}
