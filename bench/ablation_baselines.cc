// Ablation — construction-strategy comparison on the classic single-SUM
// max-p query (the only query all three solvers support): the MP-regions
// greedy grower, the SKATER-style MST partitioner, and FaCT's generic
// pipeline, across thresholds on the 2k dataset. Reports p, runtime, and
// solution-quality metrics (heterogeneity, size balance, compactness).

#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/solver.h"
#include "harness/experiment.h"
#include "harness/table.h"

namespace {

struct NamedRun {
  std::string name;
  emp::Result<emp::Solution> solution;
};

/// Runs a registered baseline by name on the single-SUM query.
emp::Result<emp::Solution> RunBaseline(const emp::AreaSet& areas,
                                       const std::string& solver_name,
                                       double threshold,
                                       const emp::SolverOptions& options) {
  emp::SolverSpec spec;
  spec.solver = solver_name;
  spec.areas = &areas;
  spec.attribute = "TOTALPOP";
  spec.threshold = threshold;
  spec.options = options;
  auto solver = emp::CreateSolver(spec);
  if (!solver.ok()) return solver.status();
  return (*solver)->Solve();
}

}  // namespace

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Ablation", "construction strategies on single SUM >= l (2k)");

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  SolverOptions options = DefaultBenchOptions();

  TablePrinter table("", {"solver", "l", "p", "unassigned", "total(s)",
                          "het", "size-gini", "compactness"});
  for (double l : {10000.0, 20000.0, 40000.0}) {
    std::vector<NamedRun> runs;
    runs.push_back({"MP", RunBaseline(areas, "maxp", l, options)});
    runs.push_back({"SKATER", RunBaseline(areas, "skater", l, options)});
    runs.push_back(
        {"FaCT",
         SolveEmp(areas, {Constraint::Sum("TOTALPOP", l, kNoUpperBound)},
                  options)});
    for (NamedRun& run : runs) {
      if (!run.solution.ok()) {
        table.AddRow({run.name, FormatDouble(l, 0), "infeasible", "-", "-",
                      "-", "-", "-"});
        continue;
      }
      const Solution& sol = *run.solution;
      auto metrics = ComputeMetrics(areas, sol);
      table.AddRow({
          run.name,
          FormatDouble(l, 0),
          std::to_string(sol.p()),
          std::to_string(sol.num_unassigned()),
          Secs(sol.construction_seconds + sol.local_search_seconds),
          FormatDouble(sol.heterogeneity, 0),
          metrics.ok() ? FormatDouble(metrics->size_gini, 3) : "-",
          metrics.ok() ? FormatDouble(metrics->mean_compactness, 3) : "-",
      });
    }
  }
  EmitTable("ablation_baselines", table);
  return 0;
}
