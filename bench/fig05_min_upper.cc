// Fig. 5 — runtime for MIN with l = -inf, u in {2k, 3.5k, 5k}, combos
// {M, MS, MA, MAS} on the 2k dataset, split into construction vs Tabu.
//
// Expected shape (paper): construction time decreases as u grows for M/MA
// (more seeds, fewer iterations); SUM-bearing combos stay flat or rise
// slightly; heterogeneity improvement grows with u (6.96% @2k -> 40.2% @5k
// in the paper, driven by higher p).

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Fig. 5", "runtime for MIN with l=-inf (2k)");

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  SolverOptions options = DefaultBenchOptions();

  TablePrinter table("", {"combo", "u", "p", "construction(s)", "tabu(s)",
                          "total(s)", "het-improve"});
  for (const std::string& combo : {"M", "MS", "MA", "MAS"}) {
    for (double u : {2000.0, 3500.0, 5000.0}) {
      ComboRanges cr;
      cr.min_lower = kNoLowerBound;
      cr.min_upper = u;
      RunResult r = RunFact(areas, BuildCombo(combo, cr), options);
      table.AddRow({combo, FormatDouble(u, 0), std::to_string(r.p),
                    Secs(r.construction_seconds), Secs(r.tabu_seconds),
                    Secs(r.total_seconds()),
                    Pct(r.heterogeneity_improvement)});
    }
  }
  EmitTable("fig05_min_upper", table);
  return 0;
}
