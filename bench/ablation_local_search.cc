// Ablation — Phase-3 engine and objective choice, on the default MAS
// query (2k dataset):
//   (1) Tabu vs simulated annealing minimizing heterogeneity, from the
//       same construction output;
//   (2) Tabu minimizing geometric compactness instead (the alternative
//       objective the paper's §III mentions).

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/construction/monotonic_adjust.h"
#include "core/construction/region_growing.h"
#include "core/construction/seeding.h"
#include "core/feasibility.h"
#include "core/local_search/objective.h"
#include "core/local_search/simulated_annealing.h"
#include "core/local_search/tabu.h"
#include "core/partition.h"
#include "graph/connectivity.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Ablation", "local-search engine and objective (MAS, 2k)");

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  const std::vector<Constraint> query = BuildCombo("MAS", ComboRanges{});
  auto bound_or = BoundConstraints::Create(&areas, query);
  if (!bound_or.ok()) return 1;
  const BoundConstraints& bound = *bound_or;

  // One shared construction output, rebuilt per engine run.
  auto construct = [&](Partition* partition) -> bool {
    auto feasibility = CheckFeasibility(bound);
    if (!feasibility.ok()) return false;
    SeedingResult seeding = SelectSeeds(bound, *feasibility);
    for (int32_t a : feasibility->invalid_areas) partition->Deactivate(a);
    SolverOptions options = DefaultBenchOptions();
    Rng rng(options.seed);
    if (!GrowRegions(seeding, options, &rng, partition).ok()) return false;
    ConnectivityChecker connectivity(&areas.graph());
    return AdjustForCounting(&connectivity, partition).ok();
  };

  TablePrinter table("", {"engine", "objective", "initial", "final",
                          "improve", "moves/accepts", "time(s)"});

  {
    Partition partition(&bound);
    if (!construct(&partition)) return 1;
    ConnectivityChecker connectivity(&areas.graph());
    SolverOptions options = DefaultBenchOptions();
    Stopwatch timer;
    auto tabu = TabuSearch(options, &connectivity, &partition);
    if (!tabu.ok()) return 1;
    table.AddRow({"tabu", "heterogeneity",
                  FormatDouble(tabu->initial_heterogeneity, 0),
                  FormatDouble(tabu->final_heterogeneity, 0),
                  Pct(tabu->ImprovementRatio()),
                  std::to_string(tabu->moves_applied),
                  Secs(timer.ElapsedSeconds())});
  }

  {
    Partition partition(&bound);
    if (!construct(&partition)) return 1;
    ConnectivityChecker connectivity(&areas.graph());
    AnnealOptions options;
    options.iterations = 60000;
    Stopwatch timer;
    auto sa = SimulatedAnnealing(options, &connectivity, &partition);
    if (!sa.ok()) return 1;
    table.AddRow({"anneal", "heterogeneity",
                  FormatDouble(sa->initial_objective, 0),
                  FormatDouble(sa->final_objective, 0),
                  Pct(sa->ImprovementRatio()),
                  std::to_string(sa->accepted),
                  Secs(timer.ElapsedSeconds())});
  }

  {
    Partition partition(&bound);
    if (!construct(&partition)) return 1;
    ConnectivityChecker connectivity(&areas.graph());
    auto objective = CompactnessObjective::Create(partition);
    if (!objective.ok()) return 1;
    SolverOptions options = DefaultBenchOptions();
    Stopwatch timer;
    auto tabu =
        TabuSearch(options, &connectivity, &partition, objective->get());
    if (!tabu.ok()) return 1;
    table.AddRow({"tabu", "compactness",
                  FormatDouble(tabu->initial_heterogeneity, 0),
                  FormatDouble(tabu->final_heterogeneity, 0),
                  Pct(tabu->ImprovementRatio()),
                  std::to_string(tabu->moves_applied),
                  Secs(timer.ElapsedSeconds())});
  }

  EmitTable("ablation_local_search", table);
  return 0;
}
