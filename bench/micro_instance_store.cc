// Micro-benchmark for the compact instance store (DESIGN.md §13): how
// fast and how memory-hungry is mmap-loading a packed instance compared
// with the in-memory path (catalog synthesis — what the solve service
// does for a dataset reference)? Emits BENCH_instance_store.json via the
// EMP_BENCH_JSON_DIR hook.
//
// RSS is measured as the VmRSS delta around each load with the loaded
// instance still alive, after a malloc_trim(0) so the allocator's free
// pages from the previous phase do not mask the next one. The mmap path
// is measured first so its delta is not absorbed by heap already grown
// by the builder. VmHWM (true peak) is reported once per dataset for
// context. Datasets >= 10k areas are built at EMP_BENCH_SCALE (default
// 0.2) to keep the default sweep fast; EMP_BENCH_SMOKE=1 runs "tiny"
// only (the CI hook).

#include <malloc.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "data/compact/loader.h"
#include "data/compact/writer.h"
#include "data/synthetic/dataset_catalog.h"
#include "harness/experiment.h"
#include "harness/table.h"

namespace {

/// Reads a kB-valued field ("VmRSS", "VmHWM") from /proc/self/status.
/// Returns -1 when unavailable (non-procfs platforms).
int64_t ProcStatusKb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int64_t value = -1;
  const size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 &&
        line[field_len] == ':') {
      value = std::strtoll(line + field_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return value;
}

struct LoadMeasure {
  double millis = 0.0;
  int64_t rss_delta_kb = 0;
  uint64_t digest = 0;
  int64_t num_areas = 0;
  int64_t num_edges = 0;
};

/// Runs `load` (a callable returning emp::Result<emp::AreaSet>) between
/// RSS snapshots, keeping the instance alive for the "after" reading.
template <typename Fn>
LoadMeasure Measure(Fn&& load) {
  malloc_trim(0);
  const int64_t before = ProcStatusKb("VmRSS");
  emp::Stopwatch timer;
  auto areas = load();
  LoadMeasure m;
  m.millis = timer.ElapsedMillis();
  if (!areas.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 areas.status().ToString().c_str());
    std::abort();
  }
  const int64_t after = ProcStatusKb("VmRSS");
  m.rss_delta_kb = (before >= 0 && after >= 0) ? after - before : -1;
  m.digest = areas->InstanceDigest();
  m.num_areas = areas->num_areas();
  m.num_edges = areas->graph().num_edges();
  return m;
}

}  // namespace

int main() {
  emp::bench::Banner("instance_store",
                     "compact mmap load vs in-memory synthesis");
  emp::bench::TablePrinter table(
      "Instance load paths: in-memory catalog build vs compact mmap "
      "(RSS = VmRSS delta with the instance alive)",
      {"dataset", "areas", "edges", "file_kb", "build_ms", "mmap_ms",
       "build_rss_kb", "mmap_rss_kb", "peak_rss_kb", "digest_match"});

  const bool smoke = std::getenv("EMP_BENCH_SMOKE") != nullptr;
  const std::vector<std::string> datasets =
      smoke ? std::vector<std::string>{"tiny"}
            : std::vector<std::string>{"1k", "10k", "50k", "250k"};

  for (const std::string& name : datasets) {
    auto info = emp::synthetic::FindDataset(name);
    if (!info.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   info.status().ToString().c_str());
      return 1;
    }
    const double scale = info->num_areas >= 10000 ? emp::bench::EnvScale(0.2)
                                                  : emp::bench::EnvScale(1.0);

    // Pack once up front, then drop the builder's instance so neither
    // path's measurement starts with the map already resident.
    char path[] = "/tmp/emp_instance_store_XXXXXX";
    const int fd = mkstemp(path);
    if (fd < 0) {
      std::perror("mkstemp");
      return 1;
    }
    close(fd);
    {
      auto areas = emp::synthetic::MakeCatalogDataset(name, scale);
      if (!areas.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(),
                     areas.status().ToString().c_str());
        return 1;
      }
      auto write = emp::compact::WriteCompactFile(*areas, path);
      if (!write.ok()) {
        std::fprintf(stderr, "pack %s: %s\n", name.c_str(),
                     write.ToString().c_str());
        return 1;
      }
    }
    int64_t file_kb = 0;
    if (std::FILE* f = std::fopen(path, "rb")) {
      std::fseek(f, 0, SEEK_END);
      file_kb = std::ftell(f) / 1024;
      std::fclose(f);
    }

    // mmap first: measured against a heap the builder has not yet grown.
    const LoadMeasure mapped = Measure(
        [&] { return emp::compact::LoadCompactAreaSet(path); });
    const LoadMeasure built = Measure(
        [&] { return emp::synthetic::MakeCatalogDataset(name, scale); });
    std::remove(path);

    table.AddRow({
        name,
        std::to_string(built.num_areas),
        std::to_string(built.num_edges),
        std::to_string(file_kb),
        emp::FormatDouble(built.millis, 1),
        emp::FormatDouble(mapped.millis, 1),
        std::to_string(built.rss_delta_kb),
        std::to_string(mapped.rss_delta_kb),
        std::to_string(ProcStatusKb("VmHWM")),
        mapped.digest == built.digest ? "yes" : "NO",
    });
    if (mapped.digest != built.digest) {
      std::fprintf(stderr, "%s: digest mismatch between paths\n",
                   name.c_str());
      return 1;
    }
  }

  emp::bench::EmitTable("instance_store", table);
  return 0;
}
