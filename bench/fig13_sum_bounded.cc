// Fig. 13 — runtime for SUM with bounded ranges [15k,25k], [10k,30k],
// [5k,35k], combos {S, MS, AS, MAS} on the 2k dataset.
//
// Expected shape (paper): longer ranges -> higher p and more runtime;
// upper-bounded SUM can leave up to ~25% of areas unassigned for the
// multi-constraint combos (areas evicted to respect u).

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Fig. 13", "runtime for bounded SUM ranges (2k)");

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  SolverOptions options = DefaultBenchOptions();
  const int32_t n = areas.num_areas();

  struct Range {
    double lower, upper;
  };
  const std::vector<Range> ranges = {{15000, 25000}, {10000, 30000},
                                     {5000, 35000}};

  TablePrinter table("", {"combo", "range", "p", "UA%", "construction(s)",
                          "tabu(s)", "total(s)", "het-improve"});
  for (const std::string& combo : {"S", "MS", "AS", "MAS"}) {
    for (const Range& range : ranges) {
      ComboRanges cr;
      cr.sum_lower = range.lower;
      cr.sum_upper = range.upper;
      RunResult r = RunFact(areas, BuildCombo(combo, cr), options);
      table.AddRow({combo,
                    "[" + FormatDouble(range.lower, 0) + "," +
                        FormatDouble(range.upper, 0) + "]",
                    std::to_string(r.p),
                    Pct(static_cast<double>(r.unassigned) / n),
                    Secs(r.construction_seconds), Secs(r.tabu_seconds),
                    Secs(r.total_seconds()),
                    Pct(r.heterogeneity_improvement)});
    }
  }
  EmitTable("fig13_sum_bounded", table);
  return 0;
}
