// Fig. 8 — distribution of the AVG attribute (EMPLOYED) on the default 2k
// dataset. The paper shows a positively skewed distribution with most
// values below 4k and outliers up to 6149; the synthetic marginal is
// calibrated to match (DESIGN.md §3). Prints a bucketed histogram.

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Fig. 8", "distribution of EMPLOYED on the 2k dataset");

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  auto column = areas.attributes().ColumnByName("EMPLOYED");
  if (!column.ok()) return 1;
  const std::span<const double> v = *column;

  const double bucket = 500.0;
  std::vector<int> counts;
  for (double x : v) {
    size_t b = static_cast<size_t>(x / bucket);
    if (counts.size() <= b) counts.resize(b + 1, 0);
    counts[b]++;
  }
  int max_count = *std::max_element(counts.begin(), counts.end());

  TablePrinter table("", {"range", "areas", "histogram"});
  for (size_t b = 0; b < counts.size(); ++b) {
    int bar_len = max_count > 0 ? counts[b] * 40 / max_count : 0;
    table.AddRow({
        "[" + FormatDouble(b * bucket, 0) + "," +
            FormatDouble((b + 1) * bucket, 0) + ")",
        std::to_string(counts[b]),
        std::string(static_cast<size_t>(bar_len), '#'),
    });
  }
  EmitTable("fig08_avg_distribution", table);

  auto stats = areas.attributes().Stats("EMPLOYED");
  std::printf("min=%.0f max=%.0f mean=%.1f (paper: skewed, max ~6149)\n",
              stats->min, stats->max, stats->mean);
  double below_4k = 0;
  for (double x : v) {
    if (x < 4000) ++below_4k;
  }
  std::printf("share below 4k: %.1f%% (paper: 'most of the areas')\n",
              100.0 * below_4k / static_cast<double>(v.size()));
  return 0;
}
