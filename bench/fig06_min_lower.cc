// Fig. 6 — runtime for MIN with u = inf, l in {2k, 3.5k, 5k}, combos
// {M, MS, MA, MAS} on the 2k dataset.
//
// Expected shape (paper): raising l filters more invalid areas, scatters
// the remainder, and p and runtime both fall significantly.

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Fig. 6", "runtime for MIN with u=inf (2k)");

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  SolverOptions options = DefaultBenchOptions();

  TablePrinter table("", {"combo", "l", "p", "filtered", "construction(s)",
                          "tabu(s)", "total(s)", "het-improve"});
  for (const std::string& combo : {"M", "MS", "MA", "MAS"}) {
    for (double l : {2000.0, 3500.0, 5000.0}) {
      ComboRanges cr;
      cr.min_lower = l;
      cr.min_upper = kNoUpperBound;
      RunResult r = RunFact(areas, BuildCombo(combo, cr), options);
      table.AddRow({combo, FormatDouble(l, 0), std::to_string(r.p),
                    std::to_string(r.unassigned),
                    Secs(r.construction_seconds), Secs(r.tabu_seconds),
                    Secs(r.total_seconds()),
                    Pct(r.heterogeneity_improvement)});
    }
  }
  EmitTable("fig06_min_lower", table);
  return 0;
}
