// Micro-benchmarks for the Tabu neighborhood engine (DESIGN.md §8): the
// per-iteration cost of maintaining the candidate-move set is what the
// incremental engine exists to cut. Alongside the google-benchmark
// registrations, a table compares full-rebuild vs incremental per-move
// cost on block-partitioned grids and exports BENCH_tabu.json via the
// EMP_BENCH_JSON_DIR hook (acceptance: >= 3x at n >= 900 areas).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "core/local_search/heterogeneity.h"
#include "core/local_search/move.h"
#include "core/local_search/neighborhood.h"
#include "core/local_search/objective.h"
#include "core/partition.h"
#include "data/area_set.h"
#include "data/attribute_table.h"
#include "graph/connectivity.h"
#include "harness/table.h"

namespace {

using emp::AreaSet;
using emp::ArticulationCache;
using emp::BoundConstraints;
using emp::CandidateMove;
using emp::ConnectivityChecker;
using emp::Constraint;
using emp::ContiguityGraph;
using emp::HeterogeneityObjective;
using emp::Partition;
using emp::TabuNeighborhood;

/// Rook-adjacency side x side grid with a deterministic value pattern.
AreaSet GridAreaSet(int32_t side) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t r = 0; r < side; ++r) {
    for (int32_t c = 0; c < side; ++c) {
      int32_t id = r * side + c;
      if (c + 1 < side) edges.push_back({id, id + 1});
      if (r + 1 < side) edges.push_back({id, id + side});
    }
  }
  auto graph = ContiguityGraph::FromEdges(side * side, edges);
  if (!graph.ok()) std::abort();
  std::vector<double> values;
  values.reserve(static_cast<size_t>(side) * side);
  for (int32_t a = 0; a < side * side; ++a) {
    values.push_back(static_cast<double>((a * 37 + 11) % 23));
  }
  emp::AttributeTable table(side * side);
  if (!table.AddColumn("s", std::move(values)).ok()) std::abort();
  auto areas = AreaSet::CreateWithoutGeometry(
      "bench_grid", std::move(*graph), std::move(table), "s");
  if (!areas.ok()) std::abort();
  return std::move(areas).value();
}

/// One bench instance: side x side grid partitioned into block_rows x
/// block_cols rectangular regions. Max-P solutions have MANY regions (the
/// objective maximizes p), so small blocks are the representative regime:
/// a move mutates 2 of ~p regions and the incremental engine skips the
/// rest. Two-row stripes (block_rows=2, block_cols=side) model the
/// opposite extreme of few, elongated regions.
struct Instance {
  Instance(int32_t side, int32_t block_rows, int32_t block_cols)
      : areas(GridAreaSet(side)),
        bound(std::move(BoundConstraints::Create(
                            &areas, {Constraint::Count(1, side * side)}))
                  .value()),
        partition(&bound),
        connectivity(&areas.graph()) {
    for (int32_t r = 0; r < side; r += block_rows) {
      for (int32_t c = 0; c < side; c += block_cols) {
        int32_t rid = partition.CreateRegion();
        for (int32_t row = r; row < r + block_rows && row < side; ++row) {
          for (int32_t col = c; col < c + block_cols && col < side; ++col) {
            partition.Assign(row * side + col, rid);
          }
        }
      }
    }
  }

  AreaSet areas;
  BoundConstraints bound;
  Partition partition;
  ConnectivityChecker connectivity;
};

void BM_NeighborhoodFullRebuild(benchmark::State& state) {
  Instance inst(static_cast<int32_t>(state.range(0)), 2,
                static_cast<int32_t>(state.range(0)));
  HeterogeneityObjective objective(inst.partition);
  TabuNeighborhood nbhd(&inst.partition, &objective);
  int64_t scored = 0;
  for (auto _ : state) {
    scored = nbhd.Rebuild();
    benchmark::DoNotOptimize(scored);
  }
  state.SetItemsProcessed(state.iterations() * scored);
}
BENCHMARK(BM_NeighborhoodFullRebuild)->Arg(20)->Arg(30)->Arg(40);

void BM_NeighborhoodIncrementalUpdate(benchmark::State& state) {
  // Ping-pongs one stripe-corner area between its two adjacent stripes;
  // each iteration times apply + OnMoveApplied, the whole per-move cost of
  // keeping the candidate set current.
  const int32_t side = static_cast<int32_t>(state.range(0));
  Instance inst(side, 2, side);
  HeterogeneityObjective objective(inst.partition);
  TabuNeighborhood nbhd(&inst.partition, &objective);
  nbhd.Rebuild();
  const int32_t area = 2 * side;  // first area of stripe 1, column 0
  const int32_t r0 = inst.partition.RegionOf(0);
  const int32_t r1 = inst.partition.RegionOf(area);
  int32_t from = r1;
  int32_t to = r0;
  for (auto _ : state) {
    objective.ApplyMove(area, from, to);
    inst.partition.Move(area, to);
    benchmark::DoNotOptimize(nbhd.OnMoveApplied(area, from, to));
    std::swap(from, to);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NeighborhoodIncrementalUpdate)->Arg(20)->Arg(30)->Arg(40);

void BM_DonorCheckBfs(benchmark::State& state) {
  Instance inst(30, 2, 30);
  const int32_t rid = inst.partition.RegionOf(0);
  const auto& members = inst.partition.region(rid).areas;
  int32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.connectivity.IsConnectedWithout(
        members, members[static_cast<size_t>(i)]));
    i = (i + 1) % static_cast<int32_t>(members.size());
  }
}
BENCHMARK(BM_DonorCheckBfs);

void BM_DonorCheckArticulationCache(benchmark::State& state) {
  Instance inst(30, 2, 30);
  ArticulationCache cache(&inst.partition, &inst.connectivity);
  const int32_t rid = inst.partition.RegionOf(0);
  const auto& members = inst.partition.region(rid).areas;
  int32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.DonorKeepsContiguity(
        rid, members[static_cast<size_t>(i)]));
    i = (i + 1) % static_cast<int32_t>(members.size());
  }
}
BENCHMARK(BM_DonorCheckArticulationCache);

/// Walks a realistic Tabu move sequence and times, per applied move, the
/// incremental update against a from-scratch rebuild of a second engine
/// tracking the same partition. This is the acceptance measurement:
/// speedup = full_rebuild_cost / incremental_cost per iteration. Rows
/// report the MEDIAN of kReps independent walks so one scheduler hiccup
/// cannot shift the committed-baseline comparison.
void RunSpeedupTable() {
  const bool smoke = std::getenv("EMP_BENCH_SMOKE") != nullptr;
  emp::bench::TablePrinter table(
      "Tabu neighborhood maintenance: full rebuild vs incremental "
      "(per applied move, 3x3-block regions, median of reps)",
      {"areas", "regions", "moves", "full_us", "incremental_us", "speedup"});
  // -1 is a warm-up pass (caches, page faults) whose row is discarded.
  // side=500 is the 250k-area catalog entry for local/full runs.
  for (int32_t side : {-1, 21, 30, 42, 500}) {
    const bool warmup = side < 0;
    if (!warmup && smoke && side >= 500) {
      // The large row is skipped under EMP_BENCH_SMOKE but still emitted,
      // with "-" cells, so the table keeps its full shape: the regression
      // ratchet treats "-" as "missing measurement" (skip with warning),
      // never as a zero to compare against.
      table.AddRow({std::to_string(side * side), "-", "-", "-", "-", "-"});
      continue;
    }
    Instance inst(warmup ? 21 : side, 3, 3);
    HeterogeneityObjective objective(inst.partition);
    TabuNeighborhood incremental(&inst.partition, &objective);
    TabuNeighborhood full(&inst.partition, &objective);
    incremental.Rebuild();

    // The big grid pays ~ms per full rebuild; fewer moves and reps keep
    // the local run in seconds while the medians stay stable.
    const int32_t kMoves = side >= 500 ? 40 : 200;
    const int kReps = warmup ? 1 : (side >= 500 ? 3 : 5);
    std::vector<double> full_us_reps;
    std::vector<double> incr_us_reps;
    int32_t applied_total = 0;
    int32_t last_area = -1;
    emp::Stopwatch timer;
    for (int rep = 0; rep < kReps; ++rep) {
      // Reps continue walking the same evolving partition: each walk is a
      // fresh sample of per-move cost on a realistic trajectory.
      int32_t applied = 0;
      double incr_seconds = 0.0;
      double full_seconds = 0.0;
      while (applied < kMoves) {
        // First admissible candidate that is not an immediate ping-pong.
        std::vector<CandidateMove> pick;
        incremental.VisitInOrder([&](const CandidateMove& mv) {
          if (mv.area == last_area) return true;
          if (!ConstraintPreservingMove(inst.partition, &inst.connectivity,
                                        mv.area, mv.from, mv.to)) {
            return true;
          }
          pick.push_back(mv);
          return false;
        });
        if (pick.empty()) break;
        const CandidateMove mv = pick.front();
        objective.ApplyMove(mv.area, mv.from, mv.to);
        inst.partition.Move(mv.area, mv.to);
        timer.Reset();
        incremental.OnMoveApplied(mv.area, mv.from, mv.to);
        incr_seconds += timer.ElapsedSeconds();
        timer.Reset();
        full.Rebuild();
        full_seconds += timer.ElapsedSeconds();
        last_area = mv.area;
        ++applied;
      }
      if (applied == 0) break;
      full_us_reps.push_back(full_seconds * 1e6 / applied);
      incr_us_reps.push_back(incr_seconds * 1e6 / applied);
      applied_total += applied;
    }
    if (warmup) continue;
    const double full_us = emp::bench::Median(full_us_reps);
    const double incr_us = emp::bench::Median(incr_us_reps);
    const double speedup = incr_us > 0 ? full_us / incr_us : 0;
    table.AddRow({std::to_string(side * side),
                  std::to_string(inst.partition.NumRegions()),
                  std::to_string(applied_total),
                  emp::FormatDouble(full_us, 2),
                  emp::FormatDouble(incr_us, 2),
                  emp::FormatDouble(speedup, 1) + "x"});
  }
  emp::bench::EmitTable("tabu", table);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RunSpeedupTable();
  return 0;
}
