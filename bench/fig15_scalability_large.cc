// Fig. 15 — scalability over the multi-state datasets {10k..50k} with the
// default constraint ranges, combos {M, MS, MA, MAS}.
//
// The paper's 50k dataset is 17x the largest prior evaluation; to keep the
// default bench sweep fast these datasets are built at EMP_BENCH_SCALE
// (default 0.2). Set EMP_BENCH_SCALE=1 for full paper sizes.
//
// Expected shape (paper): same trends as Fig. 14 at 10-25x the size —
// near-linear growth for M, steeper for SUM-bearing combos; construction
// scales better than Tabu.

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Fig. 15", "scalability on 10k-50k datasets, default constraints");

  DatasetCache cache(EnvScale(0.2));
  SolverOptions options = DefaultBenchOptions();

  TablePrinter table("", {"dataset", "areas", "combo", "p",
                          "construction(s)", "tabu(s)", "total(s)"});
  for (const std::string& dataset : {"10k", "20k", "30k", "40k", "50k"}) {
    const AreaSet& areas = cache.Get(dataset);
    for (const std::string& combo : {"M", "MS", "MA", "MAS"}) {
      RunResult r = RunFact(areas, BuildCombo(combo, ComboRanges{}), options);
      table.AddRow({dataset, std::to_string(areas.num_areas()), combo,
                    std::to_string(r.p), Secs(r.construction_seconds),
                    Secs(r.tabu_seconds), Secs(r.total_seconds())});
    }
  }
  EmitTable("fig15_scalability_large", table);
  return 0;
}
