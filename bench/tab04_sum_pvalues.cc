// Table IV — p values for SUM-constraint combinations vs the MP-regions
// baseline on the 2k dataset. Rows: MP, S, MS, AS, MAS; columns: SUM
// thresholds [l, inf) for l in {1k, 10k, 20k, 30k, 40k} plus the bounded
// ranges [15k,25k], [10k,30k], [5k,35k] (N/A for MP, which supports only
// lower bounds).
//
// Expected shape (paper): S tracks MP closely; adding constraints lowers
// p (MAS < AS/MS < S); p falls as l rises; bounded ranges sit between.

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

namespace {

struct Range {
  const char* label;
  double lower;
  double upper;
};

}  // namespace

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Table IV", "p values for SUM constraint combinations vs MP (2k)");

  const std::vector<Range> ranges = {
      {"[1k,inf)", 1000, kNoUpperBound},
      {"[10k,inf)", 10000, kNoUpperBound},
      {"[20k,inf)", 20000, kNoUpperBound},
      {"[30k,inf)", 30000, kNoUpperBound},
      {"[40k,inf)", 40000, kNoUpperBound},
      {"[15k,25k]", 15000, 25000},
      {"[10k,30k]", 10000, 30000},
      {"[5k,35k]", 5000, 35000},
  };

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  SolverOptions options = DefaultBenchOptions();
  options.run_local_search = false;  // Table IV reports p only.

  std::vector<std::string> header = {"combo"};
  for (const auto& r : ranges) header.push_back(r.label);
  TablePrinter table("", header);

  // MP baseline (open upper bounds only).
  {
    std::vector<std::string> row = {"MP"};
    for (const auto& r : ranges) {
      if (r.upper != kNoUpperBound) {
        row.push_back("N/A");
        continue;
      }
      RunResult result = RunMaxP(areas, r.lower, options);
      row.push_back(result.infeasible ? "inf" : std::to_string(result.p));
    }
    table.AddRow(row);
  }

  for (const std::string& combo : {"S", "MS", "AS", "MAS"}) {
    std::vector<std::string> row = {combo};
    for (const auto& r : ranges) {
      ComboRanges cr;
      cr.sum_lower = r.lower;
      cr.sum_upper = r.upper;
      RunResult result = RunFact(areas, BuildCombo(combo, cr), options);
      row.push_back(result.infeasible ? "inf" : std::to_string(result.p));
    }
    table.AddRow(row);
  }
  EmitTable("tab04_sum_pvalues", table);
  return 0;
}
