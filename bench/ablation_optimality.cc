// Ablation — heuristic optimality gap on tiny instances: the exact
// enumerator (standing in for the paper's Gurobi MIP study, §I) vs FaCT,
// across constraint shapes and random 3x3/3x4 synthetic maps. The paper
// reports Gurobi needing hours beyond 16 areas; here both p values and the
// exact solver's search effort are shown.

#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/exact.h"
#include "core/fact_solver.h"
#include "data/synthetic/dataset_catalog.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Ablation", "FaCT vs exact enumeration on tiny instances");

  TablePrinter table("", {"areas", "constraints", "exact-p", "fact-p",
                          "gap", "exact-evals", "exact(s)"});

  struct Shape {
    const char* label;
    std::vector<Constraint> constraints;
  };
  const Shape shapes[] = {
      {"SUM>=9k", {Constraint::Sum("TOTALPOP", 9000, kNoUpperBound)}},
      {"AVG in [3k,5k]", {Constraint::Avg("TOTALPOP", 3000, 5000)}},
      {"MIN<=4k & COUNT<=4",
       {Constraint::Min("TOTALPOP", kNoLowerBound, 4000),
        Constraint::Count(1, 4)}},
  };

  for (int32_t n : {9, 12}) {
    for (const Shape& shape : shapes) {
      auto areas = synthetic::MakeDefaultDataset(
          "tiny-" + std::to_string(n), n, 1000 + static_cast<uint64_t>(n));
      if (!areas.ok()) return 1;

      Stopwatch exact_timer;
      auto exact = SolveExact(*areas, shape.constraints);
      double exact_seconds = exact_timer.ElapsedSeconds();

      SolverOptions options;
      options.construction_iterations = 8;
      auto fact = SolveEmp(*areas, shape.constraints, options);

      std::string exact_p = exact.ok() ? std::to_string(exact->p) : "inf";
      std::string fact_p = fact.ok() ? std::to_string(fact->p()) : "inf";
      std::string gap = "-";
      if (exact.ok() && fact.ok()) {
        gap = std::to_string(exact->p - fact->p());
      }
      table.AddRow({std::to_string(n), shape.label, exact_p, fact_p, gap,
                    exact.ok() ? std::to_string(exact->assignments_evaluated)
                               : "-",
                    Secs(exact_seconds)});
    }
  }
  EmitTable("ablation_optimality", table);
  return 0;
}
