// Table III — p values for MIN-constraint combinations over 14 threshold
// ranges on the default (2k) dataset. Rows: M, MS, MA, MAS; columns: the
// paper's range sweep for MIN(POP16UP).
//
// Expected shape (paper): p grows with u for open-lower ranges, shrinks as
// l grows for open-upper ranges; M >= MA >= MS >= MAS within a column.

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

namespace {

struct Range {
  const char* label;
  double lower;
  double upper;
};

}  // namespace

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Table III", "p values for MIN constraint combinations (2k)");

  const std::vector<Range> ranges = {
      {"(-inf,2k]", kNoLowerBound, 2000},
      {"(-inf,3.5k]", kNoLowerBound, 3500},
      {"(-inf,5k]", kNoLowerBound, 5000},
      {"[2k,inf)", 2000, kNoUpperBound},
      {"[3.5k,inf)", 3500, kNoUpperBound},
      {"[5k,inf)", 5000, kNoUpperBound},
      {"[2.5k,3.5k]", 2500, 3500},
      {"[2k,4k]", 2000, 4000},
      {"[1.5k,4.5k]", 1500, 4500},
      {"[1k,5k]", 1000, 5000},
      {"[1k,2k]", 1000, 2000},
      {"[2k,3k]", 2000, 3000},
      {"[3k,4k]", 3000, 4000},
      {"[4k,5k]", 4000, 5000},
  };
  const std::vector<std::string> combos = {"M", "MS", "MA", "MAS"};

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  SolverOptions options = DefaultBenchOptions();
  options.run_local_search = false;  // Table III reports p only.

  std::vector<std::string> header = {"combo"};
  for (const auto& r : ranges) header.push_back(r.label);
  TablePrinter table("", header);

  for (const auto& combo : combos) {
    std::vector<std::string> row = {combo};
    for (const auto& r : ranges) {
      ComboRanges cr;
      cr.min_lower = r.lower;
      cr.min_upper = r.upper;
      RunResult result = RunFact(areas, BuildCombo(combo, cr), options);
      row.push_back(result.infeasible ? "inf" : std::to_string(result.p));
    }
    table.AddRow(row);
  }
  EmitTable("tab03_min_pvalues", table);
  return 0;
}
