// Micro-benchmarks for the FaCT construction pipeline stages on a 2000-
// area synthetic map with the paper's default constraint suite.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/construction/monotonic_adjust.h"
#include "core/construction/region_growing.h"
#include "core/construction/seeding.h"
#include "core/feasibility.h"
#include "core/local_search/heterogeneity.h"
#include "core/local_search/tabu.h"
#include "core/partition.h"
#include "data/synthetic/dataset_catalog.h"
#include "graph/connectivity.h"

namespace {

const emp::AreaSet& Map() {
  static const emp::AreaSet* kMap = [] {
    auto areas = emp::synthetic::MakeDefaultDataset("bench", 2000, 21);
    if (!areas.ok()) std::abort();
    return new emp::AreaSet(std::move(areas).value());
  }();
  return *kMap;
}

const emp::BoundConstraints& Bound() {
  static const emp::BoundConstraints* kBound = [] {
    auto bc = emp::BoundConstraints::Create(
        &Map(), {
                    emp::Constraint::Min("POP16UP", emp::kNoLowerBound, 3000),
                    emp::Constraint::Avg("EMPLOYED", 1500, 3500),
                    emp::Constraint::Sum("TOTALPOP", 20000,
                                         emp::kNoUpperBound),
                });
    if (!bc.ok()) std::abort();
    return new emp::BoundConstraints(std::move(bc).value());
  }();
  return *kBound;
}

const emp::FeasibilityReport& Feasibility() {
  static const emp::FeasibilityReport* kReport = [] {
    auto r = emp::CheckFeasibility(Bound());
    if (!r.ok()) std::abort();
    return new emp::FeasibilityReport(std::move(r).value());
  }();
  return *kReport;
}

void BM_FeasibilityPhase(benchmark::State& state) {
  for (auto _ : state) {
    auto report = emp::CheckFeasibility(Bound());
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report->num_seed_areas);
  }
  state.SetItemsProcessed(state.iterations() * Map().num_areas());
}
BENCHMARK(BM_FeasibilityPhase);

void BM_RegionGrowing(benchmark::State& state) {
  emp::SeedingResult seeding = emp::SelectSeeds(Bound(), Feasibility());
  for (auto _ : state) {
    emp::Partition partition(&Bound());
    for (int32_t a : Feasibility().invalid_areas) partition.Deactivate(a);
    emp::Rng rng(1);
    if (!emp::GrowRegions(seeding, {}, &rng, &partition).ok()) std::abort();
    benchmark::DoNotOptimize(partition.NumRegions());
  }
}
BENCHMARK(BM_RegionGrowing)->Unit(benchmark::kMillisecond);

void BM_FullConstruction(benchmark::State& state) {
  emp::SeedingResult seeding = emp::SelectSeeds(Bound(), Feasibility());
  emp::ConnectivityChecker connectivity(&Map().graph());
  for (auto _ : state) {
    emp::Partition partition(&Bound());
    for (int32_t a : Feasibility().invalid_areas) partition.Deactivate(a);
    emp::Rng rng(1);
    if (!emp::GrowRegions(seeding, {}, &rng, &partition).ok()) std::abort();
    if (!emp::AdjustForCounting(&connectivity, &partition).ok()) std::abort();
    benchmark::DoNotOptimize(partition.NumRegions());
  }
}
BENCHMARK(BM_FullConstruction)->Unit(benchmark::kMillisecond);

void BM_TabuSearch(benchmark::State& state) {
  const int64_t iterations = state.range(0);
  emp::SeedingResult seeding = emp::SelectSeeds(Bound(), Feasibility());
  emp::ConnectivityChecker connectivity(&Map().graph());
  for (auto _ : state) {
    state.PauseTiming();
    emp::Partition partition(&Bound());
    for (int32_t a : Feasibility().invalid_areas) partition.Deactivate(a);
    emp::Rng rng(1);
    if (!emp::GrowRegions(seeding, {}, &rng, &partition).ok()) std::abort();
    if (!emp::AdjustForCounting(&connectivity, &partition).ok()) std::abort();
    emp::SolverOptions options;
    options.tabu_max_iterations = iterations;
    options.tabu_max_no_improve = iterations;
    state.ResumeTiming();
    auto result = emp::TabuSearch(options, &connectivity, &partition);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->final_heterogeneity);
  }
  state.SetItemsProcessed(state.iterations() * iterations);
}
BENCHMARK(BM_TabuSearch)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_HeterogeneityBuild(benchmark::State& state) {
  emp::SeedingResult seeding = emp::SelectSeeds(Bound(), Feasibility());
  emp::Partition partition(&Bound());
  for (int32_t a : Feasibility().invalid_areas) partition.Deactivate(a);
  emp::Rng rng(1);
  if (!emp::GrowRegions(seeding, {}, &rng, &partition).ok()) std::abort();
  for (auto _ : state) {
    emp::HeterogeneityTracker tracker(partition);
    benchmark::DoNotOptimize(tracker.total());
  }
}
BENCHMARK(BM_HeterogeneityBuild);

}  // namespace
