// Micro-benchmarks for the FaCT construction pipeline stages on a 2000-
// area synthetic map with the paper's default constraint suite. After the
// google-benchmark suite, a throughput table times each stage (with the
// epoch-tagged GrowthScratch arena the solver path uses) and exports
// BENCH_construction.json via the EMP_BENCH_JSON_DIR hook. EMP_BENCH_SMOKE=1
// keeps the sweep CI-sized: the 10k-area row is emitted with "-" cells so
// the table shape is stable for the regression ratchet.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "core/construction/monotonic_adjust.h"
#include "core/construction/region_growing.h"
#include "core/construction/seeding.h"
#include "core/feasibility.h"
#include "core/local_search/heterogeneity.h"
#include "core/local_search/tabu.h"
#include "core/partition.h"
#include "data/synthetic/dataset_catalog.h"
#include "graph/connectivity.h"
#include "harness/table.h"

namespace {

const emp::AreaSet& Map() {
  static const emp::AreaSet* kMap = [] {
    auto areas = emp::synthetic::MakeDefaultDataset("bench", 2000, 21);
    if (!areas.ok()) std::abort();
    return new emp::AreaSet(std::move(areas).value());
  }();
  return *kMap;
}

const emp::BoundConstraints& Bound() {
  static const emp::BoundConstraints* kBound = [] {
    auto bc = emp::BoundConstraints::Create(
        &Map(), {
                    emp::Constraint::Min("POP16UP", emp::kNoLowerBound, 3000),
                    emp::Constraint::Avg("EMPLOYED", 1500, 3500),
                    emp::Constraint::Sum("TOTALPOP", 20000,
                                         emp::kNoUpperBound),
                });
    if (!bc.ok()) std::abort();
    return new emp::BoundConstraints(std::move(bc).value());
  }();
  return *kBound;
}

const emp::FeasibilityReport& Feasibility() {
  static const emp::FeasibilityReport* kReport = [] {
    auto r = emp::CheckFeasibility(Bound());
    if (!r.ok()) std::abort();
    return new emp::FeasibilityReport(std::move(r).value());
  }();
  return *kReport;
}

void BM_FeasibilityPhase(benchmark::State& state) {
  for (auto _ : state) {
    auto report = emp::CheckFeasibility(Bound());
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report->num_seed_areas);
  }
  state.SetItemsProcessed(state.iterations() * Map().num_areas());
}
BENCHMARK(BM_FeasibilityPhase);

void BM_RegionGrowing(benchmark::State& state) {
  emp::SeedingResult seeding = emp::SelectSeeds(Bound(), Feasibility());
  for (auto _ : state) {
    emp::Partition partition(&Bound());
    for (int32_t a : Feasibility().invalid_areas) partition.Deactivate(a);
    emp::Rng rng(1);
    if (!emp::GrowRegions(seeding, {}, &rng, &partition).ok()) std::abort();
    benchmark::DoNotOptimize(partition.NumRegions());
  }
}
BENCHMARK(BM_RegionGrowing)->Unit(benchmark::kMillisecond);

void BM_FullConstruction(benchmark::State& state) {
  emp::SeedingResult seeding = emp::SelectSeeds(Bound(), Feasibility());
  emp::ConnectivityChecker connectivity(&Map().graph());
  for (auto _ : state) {
    emp::Partition partition(&Bound());
    for (int32_t a : Feasibility().invalid_areas) partition.Deactivate(a);
    emp::Rng rng(1);
    if (!emp::GrowRegions(seeding, {}, &rng, &partition).ok()) std::abort();
    if (!emp::AdjustForCounting(&connectivity, &partition).ok()) std::abort();
    benchmark::DoNotOptimize(partition.NumRegions());
  }
}
BENCHMARK(BM_FullConstruction)->Unit(benchmark::kMillisecond);

void BM_TabuSearch(benchmark::State& state) {
  const int64_t iterations = state.range(0);
  emp::SeedingResult seeding = emp::SelectSeeds(Bound(), Feasibility());
  emp::ConnectivityChecker connectivity(&Map().graph());
  for (auto _ : state) {
    state.PauseTiming();
    emp::Partition partition(&Bound());
    for (int32_t a : Feasibility().invalid_areas) partition.Deactivate(a);
    emp::Rng rng(1);
    if (!emp::GrowRegions(seeding, {}, &rng, &partition).ok()) std::abort();
    if (!emp::AdjustForCounting(&connectivity, &partition).ok()) std::abort();
    emp::SolverOptions options;
    options.tabu_max_iterations = iterations;
    options.tabu_max_no_improve = iterations;
    state.ResumeTiming();
    auto result = emp::TabuSearch(options, &connectivity, &partition);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->final_heterogeneity);
  }
  state.SetItemsProcessed(state.iterations() * iterations);
}
BENCHMARK(BM_TabuSearch)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_HeterogeneityBuild(benchmark::State& state) {
  emp::SeedingResult seeding = emp::SelectSeeds(Bound(), Feasibility());
  emp::Partition partition(&Bound());
  for (int32_t a : Feasibility().invalid_areas) partition.Deactivate(a);
  emp::Rng rng(1);
  if (!emp::GrowRegions(seeding, {}, &rng, &partition).ok()) std::abort();
  for (auto _ : state) {
    emp::HeterogeneityTracker tracker(partition);
    benchmark::DoNotOptimize(tracker.total());
  }
}
BENCHMARK(BM_HeterogeneityBuild);

/// Stage-by-stage construction throughput on catalog-sized maps: the
/// feasibility filter, region growing (Step 2), and the monotonic adjust
/// (Step 3), each as the median of kReps runs sharing one GrowthScratch —
/// the same arena reuse the solver attempt loop gets.
void RunThroughputTable() {
  const bool smoke = std::getenv("EMP_BENCH_SMOKE") != nullptr;
  emp::bench::TablePrinter table(
      "FaCT construction throughput by stage "
      "(median of reps, reusable GrowthScratch arena)",
      {"areas", "feasibility_ms", "grow_ms", "adjust_ms", "regions"});
  for (int32_t num_areas : {2000, 10000}) {
    if (smoke && num_areas > 2000) {
      // Skipped under EMP_BENCH_SMOKE; "-" means "missing" to the ratchet.
      table.AddRow({std::to_string(num_areas), "-", "-", "-", "-"});
      continue;
    }
    auto areas_or =
        emp::synthetic::MakeDefaultDataset("bench_ct", num_areas, 21);
    if (!areas_or.ok()) std::abort();
    emp::AreaSet areas = std::move(areas_or).value();
    auto bc = emp::BoundConstraints::Create(
        &areas, {
                    emp::Constraint::Min("POP16UP", emp::kNoLowerBound, 3000),
                    emp::Constraint::Avg("EMPLOYED", 1500, 3500),
                    emp::Constraint::Sum("TOTALPOP", 20000,
                                         emp::kNoUpperBound),
                });
    if (!bc.ok()) std::abort();
    const emp::BoundConstraints bound = std::move(bc).value();
    auto feas = emp::CheckFeasibility(bound);
    if (!feas.ok()) std::abort();
    emp::SeedingResult seeding = emp::SelectSeeds(bound, *feas);
    emp::ConnectivityChecker connectivity(&areas.graph());
    emp::GrowthScratch scratch;

    const int kReps = 5;
    std::vector<double> feas_ms, grow_ms, adjust_ms;
    int32_t regions = 0;
    emp::Stopwatch timer;
    for (int rep = 0; rep < kReps + 1; ++rep) {
      // Rep 0 warms caches and sizes the arena; it is discarded.
      timer.Reset();
      auto report = emp::CheckFeasibility(bound);
      if (!report.ok()) std::abort();
      const double f = timer.ElapsedSeconds();
      emp::Partition partition(&bound);
      for (int32_t a : feas->invalid_areas) partition.Deactivate(a);
      emp::Rng rng(1);
      timer.Reset();
      if (!emp::GrowRegions(seeding, {}, &rng, &partition, nullptr, nullptr,
                            &scratch)
               .ok()) {
        std::abort();
      }
      const double g = timer.ElapsedSeconds();
      timer.Reset();
      if (!emp::AdjustForCounting(&connectivity, &partition, nullptr,
                                  nullptr, &scratch)
               .ok()) {
        std::abort();
      }
      const double adj = timer.ElapsedSeconds();
      regions = partition.NumRegions();
      if (rep == 0) continue;
      feas_ms.push_back(f * 1e3);
      grow_ms.push_back(g * 1e3);
      adjust_ms.push_back(adj * 1e3);
    }
    table.AddRow({std::to_string(num_areas),
                  emp::FormatDouble(emp::bench::Median(feas_ms), 2),
                  emp::FormatDouble(emp::bench::Median(grow_ms), 2),
                  emp::FormatDouble(emp::bench::Median(adjust_ms), 2),
                  std::to_string(regions)});
  }
  emp::bench::EmitTable("construction", table);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RunThroughputTable();
  return 0;
}
