// Ablation — FaCT's three-step construction vs single-step unified
// violation-descent growth on increasingly rich constraint sets (2k
// dataset, construction only). Measured trade-off: the unified baseline
// reaches comparable (even slightly higher) p by growing exactly-feasible
// regions with minimal overshoot, but strands several percent of the map
// in U0 on multi-constraint queries; FaCT's enclave machinery covers
// nearly everything (§V-B objective (c)).

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Ablation", "FaCT 3-step vs unified single-step construction (2k)");

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");

  TablePrinter table("", {"combo", "strategy", "p", "unassigned",
                          "construction(s)"});
  for (const std::string& combo : {"S", "M", "MA", "MAS"}) {
    const std::vector<Constraint> query = BuildCombo(combo, ComboRanges{});
    for (int unified = 0; unified <= 1; ++unified) {
      SolverOptions options = DefaultBenchOptions();
      options.run_local_search = false;
      options.construction_strategy =
          unified ? ConstructionStrategy::kUnifiedGrowth
                  : ConstructionStrategy::kFact;
      RunResult r = RunFact(areas, query, options);
      table.AddRow({combo, unified ? "unified" : "fact",
                    std::to_string(r.p), std::to_string(r.unassigned),
                    Secs(r.construction_seconds)});
    }
  }
  EmitTable("ablation_strategy", table);
  return 0;
}
