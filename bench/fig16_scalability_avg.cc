// Fig. 16 — scalability when the AVG constraint is the bottleneck: range
// 3k±1k (the hardest setting found in Fig. 9-11), combos {A, MA, AS, MAS},
// datasets {1k, 2k, 4k, 8k}.
//
// Expected shape (paper): runtime grows much faster with input size than
// the default-range sweep (Fig. 14); construction time is NOT strictly
// monotone in n (more areas can make AVG coalitions easier, e.g. the 4k
// dataset can beat 2k); construction scales better than Tabu.

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Fig. 16", "scalability with AVG range 3k±1k (bottleneck case)");

  DatasetCache cache;
  SolverOptions options = DefaultBenchOptions();

  TablePrinter table("", {"dataset", "areas", "combo", "p", "UA%",
                          "construction(s)", "tabu(s)", "total(s)"});
  for (const std::string& dataset : {"1k", "2k", "4k", "8k"}) {
    const AreaSet& areas = cache.Get(dataset);
    for (const std::string& combo : {"A", "MA", "AS", "MAS"}) {
      ComboRanges cr;
      cr.avg_lower = 2000;
      cr.avg_upper = 4000;
      RunResult r = RunFact(areas, BuildCombo(combo, cr), options);
      table.AddRow({dataset, std::to_string(areas.num_areas()), combo,
                    std::to_string(r.p),
                    Pct(static_cast<double>(r.unassigned) /
                        areas.num_areas()),
                    Secs(r.construction_seconds), Secs(r.tabu_seconds),
                    Secs(r.total_seconds())});
    }
  }
  EmitTable("fig16_scalability_avg", table);
  return 0;
}
