// Table I — the nine evaluation datasets (synthetic reproductions with the
// paper's exact area counts). Prints size, contiguity-graph statistics, and
// attribute summaries so the substitution (DESIGN.md §3) is auditable.
// Multi-state datasets (>= 10k areas) are built at EMP_BENCH_SCALE
// (default 0.2 here) to keep the sweep fast; set EMP_BENCH_SCALE=1 for the
// full sizes.

#include <cstdio>

#include "data/synthetic/dataset_catalog.h"
#include "graph/components.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using emp::bench::TablePrinter;
  emp::bench::Banner("Table I", "evaluation datasets (synthetic)");

  TablePrinter table(
      "",
      {"name", "areas(paper)", "areas(built)", "edges", "avg-degree",
       "components", "mean TOTALPOP", "mean EMPLOYED"});

  for (const auto& info : emp::synthetic::DatasetCatalog()) {
    if (info.name == "tiny" || info.name == "small") continue;
    double scale = info.num_areas >= 10000 ? emp::bench::EnvScale(0.2)
                                           : emp::bench::EnvScale(1.0);
    auto areas = emp::synthetic::MakeCatalogDataset(info.name, scale);
    if (!areas.ok()) {
      std::fprintf(stderr, "%s: %s\n", info.name.c_str(),
                   areas.status().ToString().c_str());
      return 1;
    }
    auto pop = areas->attributes().Stats("TOTALPOP");
    auto employed = areas->attributes().Stats("EMPLOYED");
    table.AddRow({
        info.name,
        std::to_string(info.num_areas),
        std::to_string(areas->num_areas()),
        std::to_string(areas->graph().num_edges()),
        emp::FormatDouble(areas->graph().AverageDegree(), 2),
        std::to_string(emp::ConnectedComponents(areas->graph()).count),
        emp::FormatDouble(pop->mean, 0),
        emp::FormatDouble(employed->mean, 0),
    });
  }
  emp::bench::EmitTable("tab01_datasets", table);
  return 0;
}
