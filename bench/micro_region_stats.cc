// Micro-benchmarks for RegionStats — the innermost data structure on the
// solver hot path (every swap/move evaluation hits it).

#include <benchmark/benchmark.h>

#include "constraints/region_stats.h"
#include "data/synthetic/dataset_catalog.h"

namespace {

const emp::AreaSet& Map() {
  static const emp::AreaSet* kMap = [] {
    auto areas = emp::synthetic::MakeDefaultDataset("bench", 2000, 7);
    if (!areas.ok()) std::abort();
    return new emp::AreaSet(std::move(areas).value());
  }();
  return *kMap;
}

const emp::BoundConstraints& Bound() {
  static const emp::BoundConstraints* kBound = [] {
    auto bc = emp::BoundConstraints::Create(
        &Map(), {
                    emp::Constraint::Min("POP16UP", emp::kNoLowerBound, 3000),
                    emp::Constraint::Avg("EMPLOYED", 1500, 3500),
                    emp::Constraint::Sum("TOTALPOP", 20000,
                                         emp::kNoUpperBound),
                });
    if (!bc.ok()) std::abort();
    return new emp::BoundConstraints(std::move(bc).value());
  }();
  return *kBound;
}

void BM_RegionStatsAdd(benchmark::State& state) {
  const int64_t region_size = state.range(0);
  for (auto _ : state) {
    emp::RegionStats stats(&Bound());
    for (int32_t a = 0; a < region_size; ++a) stats.Add(a);
    benchmark::DoNotOptimize(stats.count());
  }
  state.SetItemsProcessed(state.iterations() * region_size);
}
BENCHMARK(BM_RegionStatsAdd)->Arg(8)->Arg(64)->Arg(512);

void BM_RegionStatsSatisfiesAllAfterAdd(benchmark::State& state) {
  emp::RegionStats stats(&Bound());
  for (int32_t a = 0; a < 128; ++a) stats.Add(a);
  int32_t probe = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats.SatisfiesAllAfterAdd(probe));
    probe = (probe + 1) % 2000;
  }
}
BENCHMARK(BM_RegionStatsSatisfiesAllAfterAdd);

void BM_RegionStatsAddRemoveCycle(benchmark::State& state) {
  emp::RegionStats stats(&Bound());
  for (int32_t a = 0; a < 256; ++a) stats.Add(a);
  int32_t probe = 1000;
  for (auto _ : state) {
    stats.Add(probe);
    stats.Remove(probe);
    probe = 1000 + (probe + 1) % 512;
  }
}
BENCHMARK(BM_RegionStatsAddRemoveCycle);

void BM_RegionStatsMergePreview(benchmark::State& state) {
  emp::RegionStats a(&Bound());
  emp::RegionStats b(&Bound());
  for (int32_t i = 0; i < 128; ++i) a.Add(i);
  for (int32_t i = 128; i < 256; ++i) b.Add(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.SatisfiesAllAfterMerge(b));
  }
}
BENCHMARK(BM_RegionStatsMergePreview);

}  // namespace
