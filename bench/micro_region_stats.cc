// Micro-benchmarks for RegionStats — the innermost data structure on the
// solver hot path (every swap/move evaluation hits it). Alongside the
// google-benchmark registrations, a layout table races the packed SoA
// evaluation plan (constraints/constraint_set.h EvalPlan) against the
// pre-refactor per-constraint AoS layout (kept verbatim below as
// LegacyRegionStats) on catalog-sized maps, and exports
// BENCH_region_stats.json via the EMP_BENCH_JSON_DIR hook. The two
// implementations are cross-checked for agreement on every probe before
// timing; a disagreement aborts the binary. EMP_BENCH_SMOKE=1 keeps the
// sweep CI-sized: the 250k-area row is emitted with "-" cells so the
// table keeps its shape and the regression ratchet treats the row as
// "missing", never as zero.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "constraints/region_stats.h"
#include "data/synthetic/dataset_catalog.h"
#include "harness/table.h"

namespace {

const emp::AreaSet& Map() {
  static const emp::AreaSet* kMap = [] {
    auto areas = emp::synthetic::MakeDefaultDataset("bench", 2000, 7);
    if (!areas.ok()) std::abort();
    return new emp::AreaSet(std::move(areas).value());
  }();
  return *kMap;
}

std::vector<emp::Constraint> BenchConstraints() {
  return {
      emp::Constraint::Min("POP16UP", emp::kNoLowerBound, 3000),
      emp::Constraint::Avg("EMPLOYED", 1500, 3500),
      emp::Constraint::Sum("TOTALPOP", 20000, emp::kNoUpperBound),
  };
}

const emp::BoundConstraints& Bound() {
  static const emp::BoundConstraints* kBound = [] {
    auto bc = emp::BoundConstraints::Create(&Map(), BenchConstraints());
    if (!bc.ok()) std::abort();
    return new emp::BoundConstraints(std::move(bc).value());
  }();
  return *kBound;
}

void BM_RegionStatsAdd(benchmark::State& state) {
  const int64_t region_size = state.range(0);
  for (auto _ : state) {
    emp::RegionStats stats(&Bound());
    for (int32_t a = 0; a < region_size; ++a) stats.Add(a);
    benchmark::DoNotOptimize(stats.count());
  }
  state.SetItemsProcessed(state.iterations() * region_size);
}
BENCHMARK(BM_RegionStatsAdd)->Arg(8)->Arg(64)->Arg(512);

void BM_RegionStatsSatisfiesAllAfterAdd(benchmark::State& state) {
  emp::RegionStats stats(&Bound());
  for (int32_t a = 0; a < 128; ++a) stats.Add(a);
  int32_t probe = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats.SatisfiesAllAfterAdd(probe));
    probe = (probe + 1) % 2000;
  }
}
BENCHMARK(BM_RegionStatsSatisfiesAllAfterAdd);

void BM_RegionStatsAddRemoveCycle(benchmark::State& state) {
  emp::RegionStats stats(&Bound());
  for (int32_t a = 0; a < 256; ++a) stats.Add(a);
  int32_t probe = 1000;
  for (auto _ : state) {
    stats.Add(probe);
    stats.Remove(probe);
    probe = 1000 + (probe + 1) % 512;
  }
}
BENCHMARK(BM_RegionStatsAddRemoveCycle);

void BM_RegionStatsMergePreview(benchmark::State& state) {
  emp::RegionStats a(&Bound());
  emp::RegionStats b(&Bound());
  for (int32_t i = 0; i < 128; ++i) a.Add(i);
  for (int32_t i = 128; i < 256; ++i) b.Add(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.SatisfiesAllAfterMerge(b));
  }
}
BENCHMARK(BM_RegionStatsMergePreview);

// ---------------------------------------------------------------------------
// LegacyRegionStats: the pre-SoA layout, verbatim from the repo history —
// running sums and multisets indexed per constraint, with a per-call
// switch on the aggregate kind and an AttributeTable lookup through
// BoundConstraints::ValueOf for every constraint. This is the baseline
// the EvalPlan layout is ratcheted against.
// ---------------------------------------------------------------------------

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

class LegacyRegionStats {
 public:
  explicit LegacyRegionStats(const emp::BoundConstraints* bound)
      : bound_(bound) {
    const size_t m = static_cast<size_t>(bound_->size());
    sums_.assign(m, 0.0);
    values_.resize(m);
  }

  void Add(int32_t area) {
    ++count_;
    for (int ci = 0; ci < bound_->size(); ++ci) {
      const emp::Constraint& c = bound_->constraint(ci);
      const double v = bound_->ValueOf(ci, area);
      switch (c.family()) {
        case emp::ConstraintFamily::kExtrema:
          values_[static_cast<size_t>(ci)].insert(v);
          break;
        case emp::ConstraintFamily::kCentrality:
        case emp::ConstraintFamily::kCounting:
          sums_[static_cast<size_t>(ci)] += v;
          break;
      }
    }
  }

  int32_t count() const { return count_; }

  double AggregateAfterAdd(int ci, int32_t area) const {
    const emp::Constraint& c = bound_->constraint(ci);
    const double v = bound_->ValueOf(ci, area);
    switch (c.aggregate) {
      case emp::Aggregate::kMin: {
        double cur = ExtremaValue(ci);
        return count_ == 0 ? v : (v < cur ? v : cur);
      }
      case emp::Aggregate::kMax: {
        double cur = ExtremaValue(ci);
        return count_ == 0 ? v : (v > cur ? v : cur);
      }
      case emp::Aggregate::kAvg:
        return (sums_[static_cast<size_t>(ci)] + v) / (count_ + 1);
      case emp::Aggregate::kSum:
        return sums_[static_cast<size_t>(ci)] + v;
      case emp::Aggregate::kCount:
        return static_cast<double>(count_ + 1);
    }
    return kNaN;
  }

  bool SatisfiesAllAfterAdd(int32_t area) const {
    for (int ci = 0; ci < bound_->size(); ++ci) {
      if (!bound_->constraint(ci).Contains(AggregateAfterAdd(ci, area))) {
        return false;
      }
    }
    return true;
  }

 private:
  double ExtremaValue(int ci) const {
    const auto& ms = values_[static_cast<size_t>(ci)];
    if (ms.empty()) return kNaN;
    return bound_->constraint(ci).aggregate == emp::Aggregate::kMin
               ? *ms.begin()
               : *ms.rbegin();
  }

  const emp::BoundConstraints* bound_;
  int32_t count_ = 0;
  std::vector<double> sums_;
  std::vector<std::multiset<double>> values_;
};

/// Times SatisfiesAllAfterAdd — the delta evaluation every construction
/// swap and Tabu candidate issues — over a probe sweep of the whole map,
/// for both layouts on the same region contents. Median of kReps passes.
void RunLayoutTable() {
  const bool smoke = std::getenv("EMP_BENCH_SMOKE") != nullptr;
  emp::bench::TablePrinter table(
      "RegionStats delta evaluation: packed SoA plan vs legacy AoS layout "
      "(SatisfiesAllAfterAdd, median of reps; agree = identical verdicts)",
      {"areas", "region", "ops", "legacy_ns", "soa_ns", "legacy/soa",
       "agree"});
  for (int32_t num_areas : {10000, 250000}) {
    if (smoke && num_areas > 10000) {
      table.AddRow({std::to_string(num_areas), "-", "-", "-", "-", "-",
                    "-"});
      continue;
    }
    auto areas_or =
        emp::synthetic::MakeDefaultDataset("bench_layout", num_areas, 7);
    if (!areas_or.ok()) std::abort();
    emp::AreaSet areas = std::move(areas_or).value();
    // All five aggregate kinds — the enriched suite the EvalPlan groups
    // are laid out for (legacy pays one switch + table lookup per kind).
    auto bc = emp::BoundConstraints::Create(
        &areas, {
                    emp::Constraint::Min("POP16UP", emp::kNoLowerBound, 3000),
                    emp::Constraint::Max("POP16UP", 10, emp::kNoUpperBound),
                    emp::Constraint::Avg("EMPLOYED", 1500, 3500),
                    emp::Constraint::Sum("TOTALPOP", 20000,
                                         emp::kNoUpperBound),
                    emp::Constraint::Count(1, 1 << 28),
                });
    if (!bc.ok()) std::abort();
    const emp::BoundConstraints bound = std::move(bc).value();

    // Same region contents in both layouts: every 8th area.
    emp::RegionStats soa(&bound);
    LegacyRegionStats legacy(&bound);
    for (int32_t a = 0; a < num_areas; a += 8) {
      soa.Add(a);
      legacy.Add(a);
    }

    // Cross-check before timing: both layouts must agree on every probe.
    bool agree = true;
    for (int32_t a = 0; a < num_areas; ++a) {
      if (soa.SatisfiesAllAfterAdd(a) != legacy.SatisfiesAllAfterAdd(a)) {
        agree = false;
        break;
      }
    }
    if (!agree) {
      std::fprintf(stderr,
                   "FATAL: SoA and legacy RegionStats disagree at %d areas\n",
                   num_areas);
      std::abort();
    }

    // Enough sweeps over the map that one rep is far above timer noise.
    const int kReps = 5;
    const int32_t sweeps = std::max(1, 400000 / num_areas);
    const int32_t kOps = sweeps * num_areas;
    std::vector<double> legacy_ns;
    std::vector<double> soa_ns;
    emp::Stopwatch timer;
    for (int rep = 0; rep < kReps + 1; ++rep) {
      // Rep 0 is a warm-up pass (page faults, caches); it is discarded.
      int64_t sink = 0;
      timer.Reset();
      for (int32_t s = 0; s < sweeps; ++s) {
        for (int32_t a = 0; a < num_areas; ++a) {
          sink += legacy.SatisfiesAllAfterAdd(a) ? 1 : 0;
        }
      }
      const double legacy_s = timer.ElapsedSeconds();
      timer.Reset();
      for (int32_t s = 0; s < sweeps; ++s) {
        for (int32_t a = 0; a < num_areas; ++a) {
          sink += soa.SatisfiesAllAfterAdd(a) ? 1 : 0;
        }
      }
      const double soa_s = timer.ElapsedSeconds();
      benchmark::DoNotOptimize(sink);
      if (rep == 0) continue;
      legacy_ns.push_back(legacy_s * 1e9 / kOps);
      soa_ns.push_back(soa_s * 1e9 / kOps);
    }
    const double legacy_med = emp::bench::Median(legacy_ns);
    const double soa_med = emp::bench::Median(soa_ns);
    const double ratio = soa_med > 0 ? legacy_med / soa_med : 0.0;
    table.AddRow({std::to_string(num_areas), std::to_string(soa.count()),
                  std::to_string(kOps), emp::FormatDouble(legacy_med, 1),
                  emp::FormatDouble(soa_med, 1),
                  emp::FormatDouble(ratio, 2) + "x", "yes"});
  }
  emp::bench::EmitTable("region_stats", table);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RunLayoutTable();
  return 0;
}
