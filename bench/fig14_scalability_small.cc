// Fig. 14 — scalability over the single-state datasets {1k, 2k, 4k, 8k}
// with the default constraint ranges (Table II), combos {M, MS, MA, MAS}.
//
// Expected shape (paper): runtime grows roughly linearly for M and
// superlinearly (near-quadratic worst case) for the SUM-bearing combos;
// all runs complete in "very acceptable" time.

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Fig. 14", "scalability on 1k-8k datasets, default constraints");

  DatasetCache cache;
  SolverOptions options = DefaultBenchOptions();

  TablePrinter table("", {"dataset", "areas", "combo", "p",
                          "construction(s)", "tabu(s)", "total(s)"});
  for (const std::string& dataset : {"1k", "2k", "4k", "8k"}) {
    const AreaSet& areas = cache.Get(dataset);
    for (const std::string& combo : {"M", "MS", "MA", "MAS"}) {
      RunResult r = RunFact(areas, BuildCombo(combo, ComboRanges{}), options);
      table.AddRow({dataset, std::to_string(areas.num_areas()), combo,
                    std::to_string(r.p), Secs(r.construction_seconds),
                    Secs(r.tabu_seconds), Secs(r.total_seconds())});
    }
  }
  EmitTable("fig14_scalability_small", table);
  return 0;
}
