// Fig. 9 — AVG-only queries with fixed range length 2k and midpoint
// shifting 1k..4.5k (step 0.5k) on the 2k dataset:
//   (a) p and unassigned areas (UA);
//   (b) construction + Tabu runtime.
//
// Expected shape (paper): low midpoints leave ~0 unassigned and run in
// seconds; the 3k midpoint is the runtime bottleneck (many merge rounds);
// midpoints >= 3.5k leave most areas unassigned and terminate quickly with
// negligible Tabu time.

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Fig. 9", "AVG with fixed length 2k, shifting midpoint (2k)");

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  SolverOptions options = DefaultBenchOptions();

  TablePrinter table("", {"range", "p", "UA", "UA%", "construction(s)",
                          "tabu(s)", "het-improve"});
  const int32_t n = areas.num_areas();
  for (double mid = 1000; mid <= 4500; mid += 500) {
    ComboRanges cr;
    cr.avg_lower = mid - 1000;
    cr.avg_upper = mid + 1000;
    RunResult r = RunFact(areas, BuildCombo("A", cr), options);
    table.AddRow({
        "[" + FormatDouble(cr.avg_lower, 0) + "," +
            FormatDouble(cr.avg_upper, 0) + "]",
        std::to_string(r.p),
        std::to_string(r.unassigned),
        Pct(static_cast<double>(r.unassigned) / n),
        Secs(r.construction_seconds),
        Secs(r.tabu_seconds),
        Pct(r.heterogeneity_improvement),
    });
  }
  EmitTable("fig09_avg_midpoint", table);
  return 0;
}
