// Fig. 11 — runtime for the Fig. 10 sweep (AVG @ midpoint 3k, half-length
// {0.5k, 1k, 1.5k, 2k}, combos {A, MA, AS, MAS}) including the Tabu phase.
//
// Expected shape (paper): range length dominates runtime — the tight
// 3k±0.5k terminates early (most areas unassigned), 3k±1k is the
// bottleneck, wide ranges are fast; constraint combos with the same range
// differ far less than different ranges do.

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Fig. 11", "runtime for AVG range lengths @ midpoint 3k (2k)");

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  SolverOptions options = DefaultBenchOptions();

  TablePrinter table("", {"combo", "range", "p", "construction(s)",
                          "tabu(s)", "total(s)", "het-improve"});
  for (const std::string& combo : {"A", "MA", "AS", "MAS"}) {
    for (double half : {500.0, 1000.0, 1500.0, 2000.0}) {
      ComboRanges cr;
      cr.avg_lower = 3000 - half;
      cr.avg_upper = 3000 + half;
      RunResult r = RunFact(areas, BuildCombo(combo, cr), options);
      table.AddRow({combo,
                    "[" + FormatDouble(cr.avg_lower, 0) + "," +
                        FormatDouble(cr.avg_upper, 0) + "]",
                    std::to_string(r.p), Secs(r.construction_seconds),
                    Secs(r.tabu_seconds), Secs(r.total_seconds()),
                    Pct(r.heterogeneity_improvement)});
    }
  }
  EmitTable("fig11_avg_length_runtime", table);
  return 0;
}
