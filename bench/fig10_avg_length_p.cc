// Fig. 10 — AVG ranges with fixed midpoint 3k (the hardest setting) and
// varying half-lengths {0.5k, 1k, 1.5k, 2k}, combos {A, MA, AS, MAS}:
//   (a) p values; (b) unassigned-area percentage.
//
// Expected shape (paper): p grows with range length; the tight 3k±0.5k
// range leaves ~60% unassigned; wide ranges assign everything.

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Fig. 10", "p and unassigned % for AVG @ midpoint 3k (2k)");

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  SolverOptions options = DefaultBenchOptions();
  options.run_local_search = false;  // Fig. 10 reports p/UA only.
  const int32_t n = areas.num_areas();

  TablePrinter table("", {"combo", "range", "p", "UA", "UA%"});
  for (const std::string& combo : {"A", "MA", "AS", "MAS"}) {
    for (double half : {500.0, 1000.0, 1500.0, 2000.0}) {
      ComboRanges cr;
      cr.avg_lower = 3000 - half;
      cr.avg_upper = 3000 + half;
      RunResult r = RunFact(areas, BuildCombo(combo, cr), options);
      table.AddRow({combo,
                    "[" + FormatDouble(cr.avg_lower, 0) + "," +
                        FormatDouble(cr.avg_upper, 0) + "]",
                    std::to_string(r.p), std::to_string(r.unassigned),
                    Pct(static_cast<double>(r.unassigned) / n)});
    }
  }
  EmitTable("fig10_avg_length_p", table);
  return 0;
}
