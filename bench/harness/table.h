#ifndef EMP_BENCH_HARNESS_TABLE_H_
#define EMP_BENCH_HARNESS_TABLE_H_

#include <string>
#include <vector>

#include "common/str_util.h"  // FormatDouble, used by every bench report

namespace emp {
namespace bench {

/// Minimal fixed-width table printer for experiment reports: the bench
/// binaries print the same rows/series the paper's tables and figures
/// show, so EXPERIMENTS.md can compare shapes side by side.
class TablePrinter {
 public:
  /// `title` prints above the header; `columns` define the header row.
  TablePrinter(std::string title, std::vector<std::string> columns);

  /// Adds a row (stringified cells, same arity as the header).
  void AddRow(std::vector<std::string> cells);

  /// Renders everything to stdout.
  void Print() const;

  /// Serializes the table via JsonWriter:
  ///   {"title": ..., "columns": [...], "rows": [[...], ...]}
  /// Cells stay strings — bench cells mix numbers with annotations like
  /// "40.2%" or "1.2x", and consumers parse what they need.
  std::string ToJson() const;

  const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints `table` and, when the EMP_BENCH_JSON_DIR environment variable is
/// set, also writes it to $EMP_BENCH_JSON_DIR/BENCH_<experiment_id>.json
/// (appending _2, _3, ... when one binary emits several tables). This is
/// how every fig*/tab*/ablation_* binary exports machine-readable results
/// next to its stdout report.
void EmitTable(const std::string& experiment_id, const TablePrinter& table);

/// Formats seconds with 3 decimals, e.g. "1.234".
std::string Secs(double seconds);

/// Median of a sample (by value; the copy is sorted). 0.0 when empty.
/// Bench tables report medians, not means: one scheduler hiccup on the CI
/// runner must not shift a committed-baseline comparison.
double Median(std::vector<double> samples);

/// Formats a ratio as a percentage with 1 decimal, e.g. "40.2%".
std::string Pct(double ratio);

/// Prints the standard bench banner (figure/table id + what it shows).
void Banner(const std::string& experiment_id, const std::string& what);

}  // namespace bench
}  // namespace emp

#endif  // EMP_BENCH_HARNESS_TABLE_H_
