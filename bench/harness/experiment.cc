#include "harness/experiment.h"

#include <cstdio>
#include <cstdlib>

#include "core/solver.h"
#include "data/synthetic/dataset_catalog.h"

namespace emp {
namespace bench {

std::vector<Constraint> BuildCombo(const std::string& combo,
                                   const ComboRanges& ranges) {
  std::vector<Constraint> cs;
  for (char c : combo) {
    switch (c) {
      case 'M':
        cs.push_back(
            Constraint::Min("POP16UP", ranges.min_lower, ranges.min_upper));
        break;
      case 'A':
        cs.push_back(
            Constraint::Avg("EMPLOYED", ranges.avg_lower, ranges.avg_upper));
        break;
      case 'S':
        cs.push_back(
            Constraint::Sum("TOTALPOP", ranges.sum_lower, ranges.sum_upper));
        break;
      default:
        std::fprintf(stderr, "unknown combo code '%c' in '%s'\n", c,
                     combo.c_str());
        std::abort();
    }
  }
  return cs;
}

RunResult RunFact(const AreaSet& areas, const std::vector<Constraint>& cs,
                  const SolverOptions& options) {
  RunResult out;
  auto sol = SolveEmp(areas, cs, options);
  if (!sol.ok()) {
    out.infeasible = true;
    return out;
  }
  out.p = sol->p();
  out.unassigned = sol->num_unassigned();
  out.construction_seconds = sol->construction_seconds;
  out.tabu_seconds = sol->local_search_seconds;
  out.heterogeneity_improvement = sol->HeterogeneityImprovement();
  return out;
}

RunResult RunMaxP(const AreaSet& areas, double threshold,
                  const SolverOptions& options) {
  RunResult out;
  SolverSpec spec;
  spec.solver = "maxp";
  spec.areas = &areas;
  spec.attribute = "TOTALPOP";
  spec.threshold = threshold;
  spec.options = options;
  auto solver = CreateSolver(spec);
  if (!solver.ok()) {
    out.infeasible = true;
    return out;
  }
  auto sol = (*solver)->Solve();
  if (!sol.ok()) {
    out.infeasible = true;
    return out;
  }
  out.p = sol->p();
  out.unassigned = sol->num_unassigned();
  out.construction_seconds = sol->construction_seconds;
  out.tabu_seconds = sol->local_search_seconds;
  out.heterogeneity_improvement = sol->HeterogeneityImprovement();
  return out;
}

SolverOptions DefaultBenchOptions() {
  SolverOptions options;
  options.construction_iterations = 1;
  options.tabu_max_no_improve = 300;
  options.tabu_max_iterations = 1500;
  options.seed = 20220101;
  return options;
}

double EnvScale(double fallback) {
  const char* env = std::getenv("EMP_BENCH_SCALE");
  if (env == nullptr) return fallback;
  double v = std::atof(env);
  if (v <= 0.0 || v > 1.0) {
    std::fprintf(stderr, "ignoring invalid EMP_BENCH_SCALE=%s\n", env);
    return fallback;
  }
  return v;
}

DatasetCache::DatasetCache(double scale)
    : scale_(scale > 0 ? scale : EnvScale(1.0)) {}

const AreaSet& DatasetCache::Get(const std::string& name) {
  auto it = cache_.find(name);
  if (it != cache_.end()) return *it->second;
  auto areas = synthetic::MakeCatalogDataset(name, scale_);
  if (!areas.ok()) {
    std::fprintf(stderr, "dataset '%s' failed: %s\n", name.c_str(),
                 areas.status().ToString().c_str());
    std::abort();
  }
  auto [pos, inserted] = cache_.emplace(
      name, std::make_unique<AreaSet>(std::move(areas).value()));
  (void)inserted;
  return *pos->second;
}

}  // namespace bench
}  // namespace emp
