#include "harness/table.h"

#include <algorithm>
#include <cstdio>

#include "common/str_util.h"

namespace emp {
namespace bench {

TablePrinter::TablePrinter(std::string title,
                           std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title_.empty()) std::printf("%s\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::string rule;
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
}

std::string Secs(double seconds) { return FormatDouble(seconds, 3); }

std::string Pct(double ratio) {
  return FormatDouble(ratio * 100.0, 1) + "%";
}

void Banner(const std::string& experiment_id, const std::string& what) {
  std::printf("==============================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), what.c_str());
  std::printf("==============================================\n");
}

}  // namespace bench
}  // namespace emp
