#include "harness/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/csv.h"  // WriteFile
#include "common/json_writer.h"
#include "common/str_util.h"

namespace emp {
namespace bench {

TablePrinter::TablePrinter(std::string title,
                           std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title_.empty()) std::printf("%s\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::string rule;
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
}

std::string TablePrinter::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("title");
  w.String(title_);
  w.Key("columns");
  w.BeginInlineArray();
  for (const std::string& c : columns_) w.String(c);
  w.EndArray();
  w.Key("rows");
  w.BeginArray();
  for (const auto& row : rows_) {
    w.BeginInlineArray();
    for (const std::string& cell : row) w.String(cell);
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).TakeString();
}

void EmitTable(const std::string& experiment_id, const TablePrinter& table) {
  table.Print();
  const char* dir = std::getenv("EMP_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  // One file per table; a binary emitting several tables for the same
  // experiment id gets _2, _3, ... suffixes in emission order.
  static std::map<std::string, int> emitted;
  const int n = ++emitted[experiment_id];
  std::string path = std::string(dir) + "/BENCH_" + experiment_id;
  if (n > 1) path += "_" + std::to_string(n);
  path += ".json";
  Status status = WriteFile(path, table.ToJson() + "\n");
  if (!status.ok()) {
    std::fprintf(stderr, "warning: could not write %s: %s\n", path.c_str(),
                 std::string(status.message()).c_str());
  }
}

std::string Secs(double seconds) { return FormatDouble(seconds, 3); }

double Median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return (samples[mid - 1] + samples[mid]) / 2.0;
}

std::string Pct(double ratio) {
  return FormatDouble(ratio * 100.0, 1) + "%";
}

void Banner(const std::string& experiment_id, const std::string& what) {
  std::printf("==============================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), what.c_str());
  std::printf("==============================================\n");
}

}  // namespace bench
}  // namespace emp
