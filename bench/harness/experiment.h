#ifndef EMP_BENCH_HARNESS_EXPERIMENT_H_
#define EMP_BENCH_HARNESS_EXPERIMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/fact_solver.h"
#include "data/area_set.h"

namespace emp {
namespace bench {

/// Constraint-combination codes used throughout the paper's evaluation:
/// M (MIN), A (AVG), S (SUM), and their combinations MS, MA, MAS, AS;
/// plus MP for the max-p-regions baseline (single SUM >= l, no U0).
///
/// Default attributes/ranges mirror Table II:
///   MIN(POP16UP)  in (-inf, 3000]
///   AVG(EMPLOYED) in [1500, 3500]
///   SUM(TOTALPOP) in [20000, inf)
struct ComboRanges {
  double min_lower = kNoLowerBound;
  double min_upper = 3000;
  double avg_lower = 1500;
  double avg_upper = 3500;
  double sum_lower = 20000;
  double sum_upper = kNoUpperBound;
};

/// Builds the constraint set for a combo code ("M", "MS", "MA", "MAS",
/// "S", "AS", "A") with the given ranges. Aborts on unknown codes.
std::vector<Constraint> BuildCombo(const std::string& combo,
                                   const ComboRanges& ranges);

/// One experiment run's measurements, matching the paper's reported
/// metrics.
struct RunResult {
  int32_t p = 0;
  int64_t unassigned = 0;
  double construction_seconds = 0.0;
  double tabu_seconds = 0.0;
  double total_seconds() const { return construction_seconds + tabu_seconds; }
  double heterogeneity_improvement = 0.0;  // |H0 - H1| / H0
  bool infeasible = false;
};

/// Runs FaCT on `areas` with the combo's constraints. `options` defaults
/// to DefaultBenchOptions().
RunResult RunFact(const AreaSet& areas, const std::vector<Constraint>& cs,
                  const SolverOptions& options);

/// Runs the MP-regions baseline (single SUM(TOTALPOP) >= threshold).
RunResult RunMaxP(const AreaSet& areas, double threshold,
                  const SolverOptions& options);

/// Solver options used by the harness: fewer construction iterations and a
/// capped Tabu budget so the full `build/bench/*` sweep finishes in
/// minutes. The caps preserve every trend the paper reports; lift them
/// with SolverOptions defaults for full-fidelity runs.
SolverOptions DefaultBenchOptions();

/// Dataset cache: synthesizes catalog datasets on first use, scaled by
/// EMP_BENCH_SCALE (see below). Keyed by name.
class DatasetCache {
 public:
  /// Scale applied to every dataset this cache serves (default from env).
  explicit DatasetCache(double scale);
  DatasetCache() : DatasetCache(-1.0) {}

  /// Synthesize (or return cached) dataset by catalog name.
  const AreaSet& Get(const std::string& name);

 private:
  double scale_;
  std::map<std::string, std::unique_ptr<AreaSet>> cache_;
};

/// Reads EMP_BENCH_SCALE (a float in (0, 1], default `fallback`), the
/// global dataset shrink factor for quick benchmark runs.
double EnvScale(double fallback = 1.0);

}  // namespace bench
}  // namespace emp

#endif  // EMP_BENCH_HARNESS_EXPERIMENT_H_
