// Micro-benchmarks for the geometry substrate: Voronoi tessellation is the
// dataset-synthesis cost, kNN queries drive cell construction.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "geometry/spatial_index.h"
#include "geometry/voronoi.h"

namespace {

std::vector<emp::Point> RandomSites(int n, uint64_t seed) {
  emp::Rng rng(seed);
  std::vector<emp::Point> sites;
  sites.reserve(static_cast<size_t>(n));
  double side = std::sqrt(static_cast<double>(n));
  for (int i = 0; i < n; ++i) {
    sites.push_back({rng.Uniform(0.01, side), rng.Uniform(0.01, side)});
  }
  return sites;
}

void BM_VoronoiBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto sites = RandomSites(n, 5);
  emp::Box frame;
  frame.Extend(emp::Point{0, 0});
  double side = std::sqrt(static_cast<double>(n));
  frame.Extend(emp::Point{side + 0.02, side + 0.02});
  for (auto _ : state) {
    auto d = emp::ComputeVoronoi(sites, frame);
    if (!d.ok()) std::abort();
    benchmark::DoNotOptimize(d->cells.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_VoronoiBuild)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_KNearest(benchmark::State& state) {
  auto sites = RandomSites(20000, 9);
  emp::SpatialGridIndex index(sites);
  emp::Rng rng(13);
  for (auto _ : state) {
    emp::Point q{rng.Uniform(0, 140), rng.Uniform(0, 140)};
    benchmark::DoNotOptimize(index.KNearest(q, 16));
  }
}
BENCHMARK(BM_KNearest);

void BM_PolygonCentroid(benchmark::State& state) {
  auto sites = RandomSites(2000, 3);
  emp::Box frame;
  frame.Extend(emp::Point{0, 0});
  frame.Extend(emp::Point{45.0, 45.0});
  auto d = emp::ComputeVoronoi(sites, frame);
  if (!d.ok()) std::abort();
  for (auto _ : state) {
    double sum = 0;
    for (const auto& cell : d->cells) sum += cell.Centroid().x;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_PolygonCentroid);

}  // namespace
