// Micro-benchmarks for the contiguity-graph substrate: connectivity checks
// are the per-move cost driver in Step 3 swaps and Tabu moves.

#include <benchmark/benchmark.h>

#include <numeric>

#include "data/synthetic/dataset_catalog.h"
#include "graph/components.h"
#include "graph/connectivity.h"

namespace {

const emp::AreaSet& Map() {
  static const emp::AreaSet* kMap = [] {
    auto areas = emp::synthetic::MakeDefaultDataset("bench", 5000, 11);
    if (!areas.ok()) std::abort();
    return new emp::AreaSet(std::move(areas).value());
  }();
  return *kMap;
}

/// A BFS ball of `size` areas around node 0 — a realistic region shape.
std::vector<int32_t> RegionBall(int32_t size) {
  const auto& graph = Map().graph();
  std::vector<int32_t> members = {0};
  std::vector<char> in(static_cast<size_t>(graph.num_nodes()), 0);
  in[0] = 1;
  for (size_t head = 0;
       head < members.size() && static_cast<int32_t>(members.size()) < size;
       ++head) {
    for (int32_t nb : graph.NeighborsOf(members[head])) {
      if (!in[static_cast<size_t>(nb)]) {
        in[static_cast<size_t>(nb)] = 1;
        members.push_back(nb);
        if (static_cast<int32_t>(members.size()) >= size) break;
      }
    }
  }
  return members;
}

void BM_IsConnectedWithout(benchmark::State& state) {
  const std::vector<int32_t> region = RegionBall(
      static_cast<int32_t>(state.range(0)));
  emp::ConnectivityChecker check(&Map().graph());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check.IsConnectedWithout(region, region[i % region.size()]));
    ++i;
  }
}
BENCHMARK(BM_IsConnectedWithout)->Arg(16)->Arg(128)->Arg(1024);

void BM_ArticulationPoints(benchmark::State& state) {
  const std::vector<int32_t> region = RegionBall(
      static_cast<int32_t>(state.range(0)));
  emp::ConnectivityChecker check(&Map().graph());
  for (auto _ : state) {
    benchmark::DoNotOptimize(check.ArticulationPoints(region));
  }
}
BENCHMARK(BM_ArticulationPoints)->Arg(128)->Arg(1024);

void BM_ConnectedComponents(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(emp::ConnectedComponents(Map().graph()).count);
  }
}
BENCHMARK(BM_ConnectedComponents);

void BM_NeighborScan(benchmark::State& state) {
  const auto& graph = Map().graph();
  for (auto _ : state) {
    int64_t sum = 0;
    for (int32_t v = 0; v < graph.num_nodes(); ++v) {
      for (int32_t nb : graph.NeighborsOf(v)) sum += nb;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_NeighborScan);

}  // namespace
