// Fig. 12 — runtime for SUM with u = inf, l in {1k, 10k, 20k, 30k, 40k},
// FaCT combos {S, MS, AS, MAS} vs the MP-regions baseline (2k dataset).
//
// Expected shape (paper): p falls with l while runtime changes little;
// FaCT construction is slightly slower than MP (feasibility + extra
// machinery) but its Tabu phase is shorter at high l, making totals
// competitive.

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace emp;
  using namespace emp::bench;
  Banner("Fig. 12", "runtime for SUM with u=inf, FaCT vs MP (2k)");

  DatasetCache cache;
  const AreaSet& areas = cache.Get("2k");
  SolverOptions options = DefaultBenchOptions();
  const std::vector<double> thresholds = {1000, 10000, 20000, 30000, 40000};

  TablePrinter table("", {"combo", "l", "p", "construction(s)", "tabu(s)",
                          "total(s)", "het-improve"});
  for (double l : thresholds) {
    RunResult mp = RunMaxP(areas, l, options);
    table.AddRow({"MP", FormatDouble(l, 0), std::to_string(mp.p),
                  Secs(mp.construction_seconds), Secs(mp.tabu_seconds),
                  Secs(mp.total_seconds()),
                  Pct(mp.heterogeneity_improvement)});
  }
  for (const std::string& combo : {"S", "MS", "AS", "MAS"}) {
    for (double l : thresholds) {
      ComboRanges cr;
      cr.sum_lower = l;
      cr.sum_upper = kNoUpperBound;
      RunResult r = RunFact(areas, BuildCombo(combo, cr), options);
      table.AddRow({combo, FormatDouble(l, 0), std::to_string(r.p),
                    Secs(r.construction_seconds), Secs(r.tabu_seconds),
                    Secs(r.total_seconds()),
                    Pct(r.heterogeneity_improvement)});
    }
  }
  EmitTable("fig12_sum_lower", table);
  return 0;
}
