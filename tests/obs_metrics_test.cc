#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace emp {
namespace obs {
namespace {

TEST(CounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(HistogramTest, BucketsObservationsByBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(1.0);    // bucket 0 (le is inclusive)
  h.Observe(5.0);    // bucket 1
  h.Observe(50.0);   // bucket 2
  h.Observe(500.0);  // +Inf bucket
  std::vector<int64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 556.5);
}

TEST(HistogramTest, EmptyBoundsGiveSingleInfBucket) {
  Histogram h({});
  h.Observe(123.0);
  std::vector<int64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 1);
}

TEST(MetricRegistryTest, HandlesAreStableAndSharedByName) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("emp_x_total");
  Counter* b = registry.GetCounter("emp_x_total");
  EXPECT_EQ(a, b);
  a->Add(7);
  EXPECT_EQ(b->value(), 7);
  EXPECT_NE(static_cast<void*>(registry.GetGauge("emp_x_total")),
            static_cast<void*>(a));  // separate namespace per metric kind
}

TEST(MetricRegistryTest, SnapshotIsNameSorted) {
  MetricRegistry registry;
  registry.GetCounter("emp_zeta_total")->Add(1);
  registry.GetCounter("emp_alpha_total")->Add(2);
  registry.GetGauge("emp_mid")->Set(0.5);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "emp_alpha_total");
  EXPECT_EQ(snap.counters[0].second, 2);
  EXPECT_EQ(snap.counters[1].first, "emp_zeta_total");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "emp_mid");
}

TEST(MetricRegistryTest, NullSafeHelpersNoOpOnNullRegistry) {
  EXPECT_EQ(GetCounter(nullptr, "x"), nullptr);
  EXPECT_EQ(GetGauge(nullptr, "x"), nullptr);
  EXPECT_EQ(GetHistogram(nullptr, "x"), nullptr);
  // Null handles must be ignorable too.
  Add(nullptr);
  Set(nullptr, 1.0);
  Observe(static_cast<Histogram*>(nullptr), 1.0);
  Observe(static_cast<Summary*>(nullptr), 1.0);
}

// The acceptance property for telemetry under parallel construction:
// counters written from many threads lose nothing.
TEST(MetricRegistryTest, ConcurrentCountersSumExactly) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Half the increments resolve the handle every time (exercising the
      // registry mutex), half reuse a resolved handle (the hot path).
      Counter* hot = registry.GetCounter("emp_test_hot_total");
      Histogram* h = registry.GetHistogram("emp_test_seconds");
      for (int64_t i = 0; i < kPerThread; ++i) {
        registry.GetCounter("emp_test_cold_total")->Add();
        hot->Add();
        h->Observe(0.001);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(registry.GetCounter("emp_test_cold_total")->value(),
            kThreads * kPerThread);
  EXPECT_EQ(registry.GetCounter("emp_test_hot_total")->value(),
            kThreads * kPerThread);
  Histogram* h = registry.GetHistogram("emp_test_seconds");
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  EXPECT_NEAR(h->sum(), 0.001 * kThreads * kPerThread, 1e-6);
}

}  // namespace
}  // namespace obs
}  // namespace emp
