#include "core/local_search/objective.h"

#include <gtest/gtest.h>

#include "data/synthetic/dataset_catalog.h"
#include "test_util.h"

namespace emp {
namespace {

/// Brute-force exterior perimeter of a region for cross-checking.
double NaiveRegionPerimeter(const AreaSet& areas,
                            const std::vector<int32_t>& members) {
  std::vector<char> in(static_cast<size_t>(areas.num_areas()), 0);
  for (int32_t a : members) in[static_cast<size_t>(a)] = 1;
  double total = 0;
  for (int32_t a : members) {
    total += areas.polygon(a).Perimeter();
    for (int32_t nb : areas.graph().NeighborsOf(a)) {
      if (in[static_cast<size_t>(nb)]) {
        total -= SharedBorderLength(areas.polygon(a), areas.polygon(nb));
      }
    }
  }
  return total;
}

class CompactnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto areas = synthetic::MakeCatalogDataset("tiny");
    ASSERT_TRUE(areas.ok());
    areas_ = new AreaSet(std::move(areas).value());
    bound_ = new BoundConstraints(
        std::move(BoundConstraints::Create(areas_, {Constraint::Count(1, 200)}))
            .value());
  }
  static void TearDownTestSuite() {
    delete bound_;
    delete areas_;
    bound_ = nullptr;
    areas_ = nullptr;
  }

  /// Splits the map into two halves by area id.
  Partition HalfSplit() {
    Partition p(bound_);
    int32_t r1 = p.CreateRegion();
    int32_t r2 = p.CreateRegion();
    for (int32_t a = 0; a < areas_->num_areas(); ++a) {
      p.Assign(a, a < areas_->num_areas() / 2 ? r1 : r2);
    }
    return p;
  }

  static AreaSet* areas_;
  static BoundConstraints* bound_;
};

AreaSet* CompactnessTest::areas_ = nullptr;
BoundConstraints* CompactnessTest::bound_ = nullptr;

TEST_F(CompactnessTest, RequiresGeometry) {
  AreaSet flat = test::PathAreaSet({1, 2});
  auto bc = BoundConstraints::Create(&flat, {});
  ASSERT_TRUE(bc.ok());
  Partition p(&*bc);
  EXPECT_FALSE(CompactnessObjective::Create(p).ok());
}

TEST_F(CompactnessTest, TotalMatchesNaivePerimeterSum) {
  Partition p = HalfSplit();
  auto obj = CompactnessObjective::Create(p);
  ASSERT_TRUE(obj.ok());
  double expected = 0;
  for (int32_t rid : p.AliveRegionIds()) {
    expected += NaiveRegionPerimeter(*areas_, p.region(rid).areas);
  }
  EXPECT_NEAR((*obj)->total(), expected, 1e-6);
}

TEST_F(CompactnessTest, MoveDeltaMatchesRecompute) {
  Partition p = HalfSplit();
  auto obj = CompactnessObjective::Create(p);
  ASSERT_TRUE(obj.ok());
  // Pick a boundary area of region 0 adjacent to region 1.
  int32_t mover = -1;
  for (int32_t a : p.BoundaryAreas(0)) {
    for (int32_t nb : areas_->graph().NeighborsOf(a)) {
      if (p.RegionOf(nb) == 1) {
        mover = a;
        break;
      }
    }
    if (mover != -1) break;
  }
  ASSERT_NE(mover, -1);
  double before = (*obj)->total();
  double delta = (*obj)->MoveDelta(mover, 0, 1);
  (*obj)->ApplyMove(mover, 0, 1);
  p.Move(mover, 1);
  double expected_after = 0;
  for (int32_t rid : p.AliveRegionIds()) {
    expected_after += NaiveRegionPerimeter(*areas_, p.region(rid).areas);
  }
  EXPECT_NEAR((*obj)->total(), before + delta, 1e-6);
  EXPECT_NEAR((*obj)->total(), expected_after, 1e-6);
}

TEST_F(CompactnessTest, HeterogeneityObjectiveDelegatesToTracker) {
  Partition p = HalfSplit();
  HeterogeneityObjective obj(p);
  EXPECT_NEAR(obj.total(), ComputeHeterogeneity(p), 1e-6);
  EXPECT_EQ(obj.name(), "heterogeneity");
}

TEST_F(CompactnessTest, ObjectiveNamesDiffer) {
  Partition p = HalfSplit();
  auto obj = CompactnessObjective::Create(p);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*obj)->name(), "compactness");
}

TEST_F(CompactnessTest, WeightedObjectiveCombinesComponents) {
  Partition p = HalfSplit();
  HeterogeneityObjective het(p);
  auto compact = CompactnessObjective::Create(p);
  ASSERT_TRUE(compact.ok());
  WeightedObjective combined;
  combined.Add(&het, 1.0);
  combined.Add(compact->get(), 10.0);
  EXPECT_NEAR(combined.total(), het.total() + 10.0 * (*compact)->total(),
              1e-6);
  EXPECT_EQ(combined.name(), "weighted(heterogeneity+compactness)");

  // Deltas combine linearly and ApplyMove keeps components in sync.
  int32_t mover = -1;
  for (int32_t a : p.BoundaryAreas(0)) {
    for (int32_t nb : areas_->graph().NeighborsOf(a)) {
      if (p.RegionOf(nb) == 1) {
        mover = a;
        break;
      }
    }
    if (mover != -1) break;
  }
  ASSERT_NE(mover, -1);
  double delta = combined.MoveDelta(mover, 0, 1);
  EXPECT_NEAR(delta,
              het.MoveDelta(mover, 0, 1) +
                  10.0 * (*compact)->MoveDelta(mover, 0, 1),
              1e-6);
  double before = combined.total();
  combined.ApplyMove(mover, 0, 1);
  p.Move(mover, 1);
  EXPECT_NEAR(combined.total(), before + delta, 1e-6);
}

}  // namespace
}  // namespace emp
