// PortfolioSolver: the multi-start portfolio extends the construction
// pool's thread-count-invariance guarantee to the whole solve. For a
// fixed (seed, portfolio_replicas) the deterministic reduction — highest
// p, then lowest heterogeneity, then lowest replica index — must return
// a bit-identical solution at 1, 2, and 8 threads. Timing fields differ
// between runs, so the JSON comparison strips *_seconds lines.

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fact_solver.h"
#include "core/portfolio.h"
#include "core/report.h"
#include "core/validate.h"
#include "data/synthetic/dataset_catalog.h"
#include "obs/metrics.h"

namespace emp {
namespace {

std::string StripTimingLines(const std::string& json) {
  std::istringstream in(json);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("_seconds") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<Constraint> SumConstraint() {
  return {Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};
}

TEST(ReductionRuleTest, OrdersByPThenHeterogeneityThenIndex) {
  // Higher p always wins, regardless of heterogeneity or index.
  EXPECT_TRUE(BeatsInReduction({5, 99.0, 7}, {4, 1.0, 0}));
  EXPECT_FALSE(BeatsInReduction({4, 1.0, 0}, {5, 99.0, 7}));
  // Equal p: lower heterogeneity wins.
  EXPECT_TRUE(BeatsInReduction({5, 1.0, 7}, {5, 2.0, 0}));
  EXPECT_FALSE(BeatsInReduction({5, 2.0, 0}, {5, 1.0, 7}));
  // Equal p and heterogeneity: lower replica index wins.
  EXPECT_TRUE(BeatsInReduction({5, 1.0, 2}, {5, 1.0, 3}));
  EXPECT_FALSE(BeatsInReduction({5, 1.0, 3}, {5, 1.0, 2}));
  // Nothing beats itself.
  EXPECT_FALSE(BeatsInReduction({5, 1.0, 2}, {5, 1.0, 2}));
}

TEST(PortfolioTest, SameSeedSameSolutionAcrossThreadCounts) {
  auto areas = synthetic::MakeDefaultDataset("pf", 300, /*seed=*/7);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = SumConstraint();

  std::string reference_json;
  Solution reference;
  int32_t reference_winner = -1;
  std::vector<int32_t> reference_replica_p;
  for (int threads : {1, 2, 8}) {
    SolverOptions options;
    options.seed = 1234;
    options.portfolio_replicas = 6;
    options.portfolio_threads = threads;
    auto solver = PortfolioSolver::Create(&*areas, cs, options);
    ASSERT_TRUE(solver.ok()) << solver.status().ToString();
    auto sol = solver->Solve();
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    auto json = SolutionToJson(*areas, cs, *sol);
    ASSERT_TRUE(json.ok()) << json.status().ToString();
    const std::string stripped = StripTimingLines(*json);
    if (threads == 1) {
      reference_json = stripped;
      reference = *sol;
      reference_winner = solver->stats().winning_replica;
      reference_replica_p = solver->stats().replica_p;
      continue;
    }
    EXPECT_EQ(stripped, reference_json) << "threads=" << threads;
    EXPECT_EQ(sol->p(), reference.p()) << "threads=" << threads;
    EXPECT_EQ(sol->region_of, reference.region_of) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(sol->heterogeneity, reference.heterogeneity)
        << "threads=" << threads;
    EXPECT_EQ(solver->stats().winning_replica, reference_winner)
        << "threads=" << threads;
    EXPECT_EQ(solver->stats().replica_p, reference_replica_p)
        << "replica_p should itself be thread-count invariant";
  }
}

TEST(PortfolioTest, FactSolverDelegatesWhenReplicasRequested) {
  auto areas = synthetic::MakeDefaultDataset("pf-delegate", 200, /*seed=*/3);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = SumConstraint();
  SolverOptions options;
  options.seed = 99;
  options.portfolio_replicas = 4;
  options.portfolio_threads = 2;

  auto direct = PortfolioSolver::Create(&*areas, cs, options);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  auto via_portfolio = direct->Solve();
  ASSERT_TRUE(via_portfolio.ok()) << via_portfolio.status().ToString();

  auto fact = FactSolver::Create(&*areas, cs, options);
  ASSERT_TRUE(fact.ok()) << fact.status().ToString();
  auto via_fact = fact->Solve();
  ASSERT_TRUE(via_fact.ok()) << via_fact.status().ToString();

  EXPECT_EQ(via_fact->p(), via_portfolio->p());
  EXPECT_EQ(via_fact->region_of, via_portfolio->region_of);
  EXPECT_DOUBLE_EQ(via_fact->heterogeneity, via_portfolio->heterogeneity);
}

TEST(PortfolioTest, ShareIncumbentNeverChangesTheWinner) {
  // The incumbent cutoff may skip local search for provably-losing
  // replicas; the returned solution must be unchanged either way.
  auto areas = synthetic::MakeDefaultDataset("pf-share", 250, /*seed=*/11);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = SumConstraint();
  SolverOptions options;
  options.seed = 77;
  options.portfolio_replicas = 5;
  options.portfolio_threads = 1;

  options.portfolio_share_incumbent = true;
  auto with_share = PortfolioSolver::Create(&*areas, cs, options);
  ASSERT_TRUE(with_share.ok());
  auto a = with_share->Solve();
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  options.portfolio_share_incumbent = false;
  auto without_share = PortfolioSolver::Create(&*areas, cs, options);
  ASSERT_TRUE(without_share.ok());
  auto b = without_share->Solve();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_EQ(a->p(), b->p());
  EXPECT_EQ(a->region_of, b->region_of);
  EXPECT_DOUBLE_EQ(a->heterogeneity, b->heterogeneity);
  EXPECT_EQ(without_share->stats().tabu_skipped, 0);
}

TEST(PortfolioTest, TargetPStopsTheQueueAfterTheFirstHit) {
  auto areas = synthetic::MakeDefaultDataset("pf-target", 200, /*seed=*/5);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = SumConstraint();
  SolverOptions options;
  options.portfolio_replicas = 8;
  options.portfolio_threads = 1;  // deterministic completion order
  options.portfolio_target_p = 1;
  auto solver = PortfolioSolver::Create(&*areas, cs, options);
  ASSERT_TRUE(solver.ok());
  auto sol = solver->Solve();
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_GE(sol->p(), 1);
  // Replica 0 reaches the (trivial) target, so no further replica starts.
  EXPECT_EQ(solver->stats().replicas_started, 1);
  EXPECT_EQ(solver->stats().winning_replica, 0);
  auto report = ValidateAssignment(*areas, cs, sol->region_of);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->valid) << report->ToString();
}

// Mirrors FactSolverSupervisionTest.FiftyMsBudgetOnLargeInstanceDegrades:
// a tight wall-clock budget over many replicas still returns kOk with a
// feasible, contiguous best-so-far solution.
TEST(PortfolioTest, FiftyMsBudgetOnLargeInstanceDegrades) {
  auto areas = synthetic::MakeDefaultDataset("pf-budget", 3000, 4242);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = SumConstraint();
  SolverOptions options;
  // Enough requested work that 50ms cannot possibly cover it.
  options.portfolio_replicas = 8;
  options.portfolio_threads = 2;
  options.construction_iterations = 100;
  options.tabu_max_iterations = 1000000;
  options.time_budget_ms = 50;
  auto solver = PortfolioSolver::Create(&*areas, cs, options);
  ASSERT_TRUE(solver.ok());
  auto sol = solver->Solve();
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->termination_reason, TerminationReason::kDeadlineExceeded);
  auto report = ValidateAssignment(*areas, cs, sol->region_of);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->valid) << report->ToString();
}

TEST(PortfolioTest, CallerCancellationDegradesEveryReplica) {
  auto areas = synthetic::MakeDefaultDataset("pf-cancel", 300, /*seed=*/9);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = SumConstraint();
  SolverOptions options;
  options.portfolio_replicas = 4;
  options.portfolio_threads = 2;
  auto solver = PortfolioSolver::Create(&*areas, cs, options);
  ASSERT_TRUE(solver.ok());
  RunContext ctx;
  ctx.cancel.Cancel();  // already cancelled: replicas trip immediately
  auto sol = solver->Solve(ctx);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->termination_reason, TerminationReason::kCancelled);
  EXPECT_EQ(solver->stats().replicas_cancelled,
            solver->stats().replicas_started);
}

TEST(PortfolioTest, MetricsCoverThePortfolioPhase) {
  auto areas = synthetic::MakeDefaultDataset("pf-metrics", 200, /*seed=*/13);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = SumConstraint();
  SolverOptions options;
  options.portfolio_replicas = 3;
  options.portfolio_threads = 2;

  obs::MetricRegistry registry;
  auto solver = PortfolioSolver::Create(&*areas, cs, options);
  ASSERT_TRUE(solver.ok());
  RunContext ctx = MakeRunContext(options);
  ctx.metrics = &registry;
  auto sol = solver->Solve(ctx);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();

  EXPECT_EQ(
      registry.GetCounter("emp_portfolio_replicas_started_total")->value(), 3);
  EXPECT_EQ(
      registry.GetCounter("emp_portfolio_replicas_cancelled_total")->value(),
      0);
  EXPECT_GE(
      registry.GetCounter("emp_portfolio_replicas_improved_total")->value(),
      1);
  EXPECT_EQ(registry.GetHistogram("emp_portfolio_replica_p")->count(), 3);
  EXPECT_EQ(registry.GetGauge("emp_portfolio_threads")->value(), 2.0);
  EXPECT_EQ(registry.GetGauge("emp_portfolio_best_p")->value(),
            static_cast<double>(sol->p()));
  // Replica solves feed the shared registry too.
  EXPECT_EQ(registry.GetCounter("emp_construction_iterations_total")->value(),
            3 * options.construction_iterations);
}

TEST(PortfolioTest, CreateRejectsBadOptions) {
  auto areas = synthetic::MakeDefaultDataset("pf-bad", 50, /*seed=*/1);
  ASSERT_TRUE(areas.ok());
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 1000, kNoUpperBound)};

  EXPECT_FALSE(PortfolioSolver::Create(nullptr, cs).ok());

  SolverOptions bad;
  bad.portfolio_replicas = 0;
  EXPECT_FALSE(PortfolioSolver::Create(&*areas, cs, bad).ok());
  bad = SolverOptions{};
  bad.portfolio_threads = 0;
  EXPECT_FALSE(PortfolioSolver::Create(&*areas, cs, bad).ok());
  bad = SolverOptions{};
  bad.portfolio_target_p = -2;
  EXPECT_FALSE(PortfolioSolver::Create(&*areas, cs, bad).ok());

  std::vector<Constraint> bad_attr = {
      Constraint::Sum("NO_SUCH_ATTRIBUTE", 1000, kNoUpperBound)};
  EXPECT_FALSE(PortfolioSolver::Create(&*areas, bad_attr).ok());

  EXPECT_TRUE(PortfolioSolver::Create(&*areas, cs).ok());
}

}  // namespace
}  // namespace emp
