#include "service/service_stats.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/json.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace emp {
namespace service {
namespace {

struct FakeClock {
  int64_t now_ms = 0;
  std::function<int64_t()> Fn() {
    return [this] { return now_ms; };
  }
};

ServiceStats::Options WithClock(FakeClock& clock,
                                obs::MetricRegistry* metrics = nullptr) {
  ServiceStats::Options options;
  options.metrics = metrics;
  options.now_ms = clock.Fn();
  return options;
}

TEST(ServiceStatsTest, EmptyDocumentHasZeroCountersAndRates) {
  FakeClock clock;
  ServiceStats stats(WithClock(clock));
  auto doc = json::Parse(stats.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* jobs = doc->Find("jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(jobs->Find("recorded")->AsNumber(), 0);
  EXPECT_EQ(doc->Find("rates")->Find("rejection")->AsNumber(), 0.0);
  EXPECT_EQ(
      doc->Find("throughput_jobs_per_min")->Find("window_1m")->AsNumber(),
      0.0);
  EXPECT_TRUE(doc->Find("latency_ms")->AsObject().empty());
}

TEST(ServiceStatsTest, CountersRatesAndQuantilesPerKind) {
  FakeClock clock;
  ServiceStats stats(WithClock(clock));
  for (int i = 0; i < 8; ++i) {
    stats.RecordTerminal("fact", ServiceStats::Outcome::kDone,
                         /*queue_wait_ms=*/10 + i, /*solve_ms=*/100 + i,
                         /*e2e_ms=*/110 + 2 * i);
  }
  stats.RecordTerminal("fact", ServiceStats::Outcome::kFailed, 5, 50, 55);
  stats.RecordTerminal("", ServiceStats::Outcome::kRejected,
                       /*queue_wait_ms=*/-1, /*solve_ms=*/-1, /*e2e_ms=*/0);
  stats.RecordTerminal("maxp", ServiceStats::Outcome::kCancelled, 7, -1, 7);
  EXPECT_EQ(stats.recorded_jobs(), 11);

  auto doc = json::Parse(stats.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* jobs = doc->Find("jobs");
  EXPECT_EQ(jobs->Find("done")->AsNumber(), 8);
  EXPECT_EQ(jobs->Find("failed")->AsNumber(), 1);
  EXPECT_EQ(jobs->Find("cancelled")->AsNumber(), 1);
  EXPECT_EQ(jobs->Find("rejected")->AsNumber(), 1);
  // The JSON writer rounds doubles to nine significant digits.
  EXPECT_NEAR(doc->Find("rates")->Find("rejection")->AsNumber(), 1.0 / 11.0,
              1e-6);
  EXPECT_NEAR(doc->Find("rates")->Find("cancellation")->AsNumber(),
              1.0 / 11.0, 1e-6);

  // All eleven terminals land in the same fake-clock instant, so both
  // windows see them all.
  EXPECT_DOUBLE_EQ(
      doc->Find("throughput_jobs_per_min")->Find("window_1m")->AsNumber(),
      11.0);
  EXPECT_DOUBLE_EQ(
      doc->Find("throughput_jobs_per_min")->Find("window_5m")->AsNumber(),
      11.0 / 5.0);

  // Per-kind blocks: "fact" has 9 solve samples, the empty kind maps to
  // "unknown" with its skipped dimensions absent from the counts.
  const json::Value* fact = doc->Find("latency_ms")->Find("fact");
  ASSERT_NE(fact, nullptr);
  EXPECT_EQ(fact->Find("solve")->Find("all_time")->Find("count")->AsNumber(),
            9);
  EXPECT_GT(fact->Find("solve")
                ->Find("all_time")
                ->Find("rank_error_bound")
                ->AsNumber(),
            0.0);
  const json::Value* unknown = doc->Find("latency_ms")->Find("unknown");
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(
      unknown->Find("solve")->Find("all_time")->Find("count")->AsNumber(),
      0);
  EXPECT_TRUE(unknown->Find("solve")
                  ->Find("all_time")
                  ->Find("p50")
                  ->is_null());
  EXPECT_EQ(unknown->Find("e2e")->Find("all_time")->Find("count")->AsNumber(),
            1);
  const json::Value* maxp = doc->Find("latency_ms")->Find("maxp");
  ASSERT_NE(maxp, nullptr);
  EXPECT_EQ(
      maxp->Find("queue_wait")->Find("all_time")->Find("count")->AsNumber(),
      1);
}

TEST(ServiceStatsTest, WindowsExpireButAllTimeSurvives) {
  FakeClock clock;
  ServiceStats stats(WithClock(clock));
  stats.RecordTerminal("fact", ServiceStats::Outcome::kDone, 1, 2, 3);
  // Ten minutes later the default 10 x 30s ring has fully rotated.
  clock.now_ms += 10 * 60 * 1000;
  auto doc = json::Parse(stats.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_DOUBLE_EQ(
      doc->Find("throughput_jobs_per_min")->Find("window_1m")->AsNumber(),
      0.0);
  const json::Value* solve = doc->Find("latency_ms")->Find("fact")->Find(
      "solve");
  EXPECT_EQ(solve->Find("window_5m")->Find("count")->AsNumber(), 0);
  EXPECT_EQ(solve->Find("all_time")->Find("count")->AsNumber(), 1);
  EXPECT_EQ(solve->Find("all_time")->Find("p50")->AsNumber(), 2.0);
}

TEST(ServiceStatsTest, MirrorsAggregateSummariesIntoRegistry) {
  FakeClock clock;
  obs::MetricRegistry registry;
  ServiceStats stats(WithClock(clock, &registry));
  stats.RecordTerminal("fact", ServiceStats::Outcome::kDone, 10, 100, 110);
  stats.RecordTerminal("maxp", ServiceStats::Outcome::kDone, 20, 200, 220);
  stats.RecordTerminal("fact", ServiceStats::Outcome::kRejected, -1, -1, 0);

  obs::MetricsSnapshot snap = registry.Snapshot();
  bool queue_wait = false, solve = false, e2e = false;
  for (const auto& [name, data] : snap.summaries) {
    if (name == "emp_service_queue_wait_ms") {
      queue_wait = true;
      EXPECT_EQ(data.count, 2);
    }
    if (name == "emp_service_solve_ms") {
      solve = true;
      EXPECT_EQ(data.count, 2);
      EXPECT_DOUBLE_EQ(data.sum, 300.0);
    }
    if (name == "emp_service_e2e_ms") {
      e2e = true;
      EXPECT_EQ(data.count, 3);  // rejected jobs still have an e2e
    }
  }
  EXPECT_TRUE(queue_wait);
  EXPECT_TRUE(solve);
  EXPECT_TRUE(e2e);

  // And the summaries render in both exposition formats.
  const std::string prom = obs::MetricsToPrometheus(snap);
  EXPECT_NE(prom.find("# TYPE emp_service_solve_ms summary"),
            std::string::npos);
  EXPECT_NE(prom.find("emp_service_solve_ms{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("emp_service_solve_ms_count 2"), std::string::npos);
  auto json_doc = json::Parse(obs::MetricsToJson(snap));
  ASSERT_TRUE(json_doc.ok()) << json_doc.status().ToString();
  const json::Value* summaries = json_doc->Find("summaries");
  ASSERT_NE(summaries, nullptr);
  ASSERT_NE(summaries->Find("emp_service_solve_ms"), nullptr);
  EXPECT_EQ(summaries->Find("emp_service_solve_ms")
                ->Find("count")
                ->AsNumber(),
            2);
}

TEST(ServiceStatsTest, DefaultClockWorks) {
  ServiceStats stats;  // steady-clock default, no registry
  stats.RecordTerminal("fact", ServiceStats::Outcome::kDone, 1, 2, 3);
  EXPECT_EQ(stats.recorded_jobs(), 1);
  auto doc = json::Parse(stats.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("jobs")->Find("done")->AsNumber(), 1);
}

}  // namespace
}  // namespace service
}  // namespace emp
