#include "constraints/constraint.h"

#include <gtest/gtest.h>

#include <cmath>

namespace emp {
namespace {

TEST(ConstraintTest, FactoriesSetFields) {
  Constraint c = Constraint::Min("POP", 2000, 4000);
  EXPECT_EQ(c.aggregate, Aggregate::kMin);
  EXPECT_EQ(c.attribute, "POP");
  EXPECT_DOUBLE_EQ(c.lower, 2000);
  EXPECT_DOUBLE_EQ(c.upper, 4000);

  EXPECT_EQ(Constraint::Max("x", 0, 1).aggregate, Aggregate::kMax);
  EXPECT_EQ(Constraint::Avg("x", 0, 1).aggregate, Aggregate::kAvg);
  EXPECT_EQ(Constraint::Sum("x", 0, 1).aggregate, Aggregate::kSum);
  EXPECT_EQ(Constraint::Count(1, 5).aggregate, Aggregate::kCount);
  EXPECT_TRUE(Constraint::Count(1, 5).attribute.empty());
}

TEST(ConstraintTest, FamilyClassification) {
  EXPECT_EQ(Constraint::Min("x", 0, 1).family(), ConstraintFamily::kExtrema);
  EXPECT_EQ(Constraint::Max("x", 0, 1).family(), ConstraintFamily::kExtrema);
  EXPECT_EQ(Constraint::Avg("x", 0, 1).family(),
            ConstraintFamily::kCentrality);
  EXPECT_EQ(Constraint::Sum("x", 0, 1).family(), ConstraintFamily::kCounting);
  EXPECT_EQ(Constraint::Count(0, 1).family(), ConstraintFamily::kCounting);
}

TEST(ConstraintTest, ContainsChecksClosedRange) {
  Constraint c = Constraint::Avg("x", 10, 20);
  EXPECT_TRUE(c.Contains(10));
  EXPECT_TRUE(c.Contains(20));
  EXPECT_TRUE(c.Contains(15));
  EXPECT_FALSE(c.Contains(9.999));
  EXPECT_FALSE(c.Contains(20.001));
}

TEST(ConstraintTest, OpenEndedBounds) {
  Constraint lower_only = Constraint::Sum("x", 100, kNoUpperBound);
  EXPECT_TRUE(lower_only.Contains(1e18));
  EXPECT_FALSE(lower_only.Contains(99));
  Constraint upper_only = Constraint::Min("x", kNoLowerBound, 100);
  EXPECT_TRUE(upper_only.Contains(-1e18));
  EXPECT_FALSE(upper_only.Contains(101));
}

TEST(ConstraintTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(Constraint::Sum("x", 10, kNoUpperBound).Validate().ok());
  EXPECT_TRUE(Constraint::Min("x", kNoLowerBound, 10).Validate().ok());
  EXPECT_TRUE(Constraint::Count(2, 8).Validate().ok());
}

TEST(ConstraintTest, ValidateRejectsInvertedBounds) {
  EXPECT_FALSE(Constraint::Sum("x", 10, 5).Validate().ok());
}

TEST(ConstraintTest, ValidateRejectsFullyOpenRange) {
  EXPECT_FALSE(
      Constraint::Sum("x", kNoLowerBound, kNoUpperBound).Validate().ok());
}

TEST(ConstraintTest, ValidateRejectsMissingAttribute) {
  Constraint c = Constraint::Sum("", 1, 2);
  EXPECT_FALSE(c.Validate().ok());
}

TEST(ConstraintTest, ValidateRejectsImpossibleCount) {
  EXPECT_FALSE(Constraint::Count(0, 0.5).Validate().ok());
}

TEST(ConstraintTest, ValidateRejectsNanBounds) {
  Constraint c = Constraint::Sum("x", std::nan(""), 5);
  EXPECT_FALSE(c.Validate().ok());
}

TEST(ConstraintTest, ToStringFormatsBounds) {
  EXPECT_EQ(Constraint::Min("POP", kNoLowerBound, 3000).ToString(),
            "MIN(POP) in [-inf, 3000]");
  EXPECT_EQ(Constraint::Sum("TOTALPOP", 20000, kNoUpperBound).ToString(),
            "SUM(TOTALPOP) in [20000, inf]");
  EXPECT_EQ(Constraint::Count(2, 4).ToString(), "COUNT(*) in [2, 4]");
}

TEST(ConstraintTest, Equality) {
  EXPECT_EQ(Constraint::Avg("x", 1, 2), Constraint::Avg("x", 1, 2));
  EXPECT_FALSE(Constraint::Avg("x", 1, 2) == Constraint::Avg("y", 1, 2));
  EXPECT_FALSE(Constraint::Avg("x", 1, 2) == Constraint::Sum("x", 1, 2));
}

TEST(AggregateTest, NamesAreSqlLike) {
  EXPECT_EQ(AggregateName(Aggregate::kMin), "MIN");
  EXPECT_EQ(AggregateName(Aggregate::kCount), "COUNT");
}

}  // namespace
}  // namespace emp
