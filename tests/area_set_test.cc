#include "data/area_set.h"

#include <gtest/gtest.h>

namespace emp {
namespace {

AttributeTable MakeTable(int64_t n) {
  AttributeTable t(n);
  std::vector<double> pop(static_cast<size_t>(n));
  std::vector<double> d(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    pop[static_cast<size_t>(i)] = 100.0 * static_cast<double>(i + 1);
    d[static_cast<size_t>(i)] = static_cast<double>(i);
  }
  EXPECT_TRUE(t.AddColumn("POP", pop).ok());
  EXPECT_TRUE(t.AddColumn("D", d).ok());
  return t;
}

ContiguityGraph MakePath(int32_t n) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return std::move(ContiguityGraph::FromEdges(n, edges)).value();
}

TEST(AreaSetTest, CreateWithoutGeometry) {
  auto a = AreaSet::CreateWithoutGeometry("t", MakePath(4), MakeTable(4), "D");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->num_areas(), 4);
  EXPECT_FALSE(a->has_geometry());
  EXPECT_EQ(a->name(), "t");
  EXPECT_EQ(a->dissimilarity_attribute(), "D");
  EXPECT_DOUBLE_EQ(a->dissimilarity()[2], 2.0);
}

TEST(AreaSetTest, CreateWithGeometry) {
  std::vector<Polygon> polys;
  for (int i = 0; i < 3; ++i) {
    double x = i;
    polys.push_back(Polygon({{x, 0}, {x + 1, 0}, {x + 1, 1}, {x, 1}}));
  }
  auto a = AreaSet::Create("g", polys, MakePath(3), MakeTable(3), "D");
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->has_geometry());
  EXPECT_DOUBLE_EQ(a->polygon(1).Area(), 1.0);
}

TEST(AreaSetTest, RejectsPolygonCountMismatch) {
  std::vector<Polygon> polys(2);
  EXPECT_FALSE(
      AreaSet::Create("x", polys, MakePath(3), MakeTable(3), "D").ok());
}

TEST(AreaSetTest, RejectsAttributeRowMismatch) {
  EXPECT_FALSE(
      AreaSet::CreateWithoutGeometry("x", MakePath(3), MakeTable(4), "D").ok());
}

TEST(AreaSetTest, RejectsUnknownDissimilarityAttribute) {
  auto a =
      AreaSet::CreateWithoutGeometry("x", MakePath(3), MakeTable(3), "NOPE");
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kNotFound);
}

TEST(AreaSetTest, DissimilarityStableAfterMove) {
  auto a = AreaSet::CreateWithoutGeometry("t", MakePath(3), MakeTable(3), "D");
  ASSERT_TRUE(a.ok());
  AreaSet moved = std::move(a).value();
  EXPECT_DOUBLE_EQ(moved.dissimilarity()[1], 1.0);
}

}  // namespace
}  // namespace emp
