#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/csv.h"
#include "core/fact_solver.h"
#include "data/compact/format.h"
#include "data/compact/loader.h"
#include "data/compact/varint.h"
#include "data/compact/writer.h"
#include "data/loader.h"
#include "data/synthetic/dataset_catalog.h"
#include "service/job_manager.h"
#include "test_util.h"

namespace emp {
namespace {

using compact::CompactInfo;
using compact::DeltaDecode;
using compact::DeltaEncode;
using compact::InspectCompactFile;
using compact::IsCompactFile;
using compact::LoadCompactAreaSet;
using compact::LoadOptions;
using compact::PackAreaSet;
using compact::PackOptions;
using compact::WriteCompactFile;

/// Self-cleaning temp path for one packed instance.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    path_ = testing::TempDir() + "/" + stem;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(VarintTest, RoundTripsMixedSequences) {
  const std::vector<int64_t> values = {0,    1,     -1,   127,  128,
                                       -128, 40000, -1,   0,    INT64_MAX,
                                       INT64_MIN,   1,    1,    1};
  const std::string bytes = DeltaEncode(values);
  auto decoded = DeltaDecode(
      {reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()},
      values.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, values);
}

TEST(VarintTest, SortedSequencesStaySmall) {
  std::vector<int64_t> values(1000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i) * 3;
  }
  const std::string bytes = DeltaEncode(values);
  // Deltas of 3 zigzag to 6: one byte per value.
  EXPECT_EQ(bytes.size(), values.size());
}

TEST(VarintTest, RejectsNonCanonicalTenByteEncodings) {
  // Ten-byte varints have one payload bit left at shift 63. A canonical
  // final byte is 0x00 or 0x01; anything else silently loses bits in a
  // lenient decoder, so the strict one must reject it.
  const std::vector<uint8_t> overlong = {0x80, 0x80, 0x80, 0x80, 0x80,
                                         0x80, 0x80, 0x80, 0x80, 0x02};
  EXPECT_FALSE(DeltaDecode({overlong.data(), overlong.size()}, 1).ok());

  // The canonical encoding of the extreme values stays accepted: zigzagged
  // INT64_MIN is UINT64_MAX, whose tenth byte is exactly 0x01.
  const std::vector<int64_t> extremes = {INT64_MIN, INT64_MAX};
  const std::string bytes = DeltaEncode(extremes);
  auto decoded = DeltaDecode(
      {reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()},
      extremes.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, extremes);
}

TEST(VarintTest, RejectsTruncatedAndTrailingInput) {
  const std::vector<int64_t> values = {1, 2, 300000};
  const std::string bytes = DeltaEncode(values);
  const auto* data = reinterpret_cast<const uint8_t*>(bytes.data());
  EXPECT_FALSE(DeltaDecode({data, bytes.size() - 1}, values.size()).ok());
  EXPECT_FALSE(DeltaDecode({data, bytes.size()}, values.size() - 1).ok());
}

TEST(CompactStoreTest, RoundTripsCatalogInstanceWithGeometry) {
  auto original = synthetic::MakeCatalogDataset("small");
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(original->has_geometry());

  TempFile file("compact_roundtrip.emp");
  ASSERT_TRUE(WriteCompactFile(*original, file.path()).ok());
  ASSERT_TRUE(IsCompactFile(file.path()));

  auto loaded = LoadCompactAreaSet(file.path());
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->name(), original->name());
  EXPECT_EQ(loaded->num_areas(), original->num_areas());
  EXPECT_EQ(loaded->graph().num_edges(), original->graph().num_edges());
  EXPECT_EQ(loaded->dissimilarity_attribute(),
            original->dissimilarity_attribute());
  EXPECT_EQ(loaded->InstanceDigest(), original->InstanceDigest());
  for (int32_t a = 0; a < original->num_areas(); ++a) {
    ASSERT_TRUE(std::ranges::equal(loaded->graph().NeighborsOf(a),
                                   original->graph().NeighborsOf(a)));
  }
  ASSERT_EQ(loaded->attributes().column_names(),
            original->attributes().column_names());
  for (int c = 0; c < original->attributes().num_columns(); ++c) {
    ASSERT_TRUE(std::ranges::equal(loaded->attributes().Column(c),
                                   original->attributes().Column(c)));
  }
  ASSERT_TRUE(loaded->has_geometry());
  for (int32_t a = 0; a < original->num_areas(); ++a) {
    ASSERT_EQ(loaded->polygon(a).vertices(), original->polygon(a).vertices());
  }

  // Digest verification decodes the instance and recomputes; it must agree
  // with the seeded header value.
  LoadOptions verify;
  verify.verify_digest = true;
  EXPECT_TRUE(LoadCompactAreaSet(file.path(), verify).ok());
}

TEST(CompactStoreTest, IntegralColumnsUseVarintEncoding) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(4, 4),
      {{"counts", {5, 9, 12, 5, 7, 8, 15, 3, 4, 9, 9, 2, 11, 6, 7, 10}},
       {"ratio",
        {0.5, 1.25, 3.5, 0.5, 2.0, 1.5, 0.25, 3.0, 1.0, 0.75, 2.25, 1.5, 0.5,
         2.75, 3.25, 1.0}}});

  TempFile file("compact_varint.emp");
  ASSERT_TRUE(WriteCompactFile(areas, file.path()).ok());
  auto info = InspectCompactFile(file.path());
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->column_encodings.size(), 2u);
  EXPECT_EQ(info->column_encodings[0], "delta_varint");
  EXPECT_EQ(info->column_encodings[1], "raw_f64");
  EXPECT_FALSE(info->has_geometry);

  auto loaded = LoadCompactAreaSet(file.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->InstanceDigest(), areas.InstanceDigest());
  for (int c = 0; c < areas.attributes().num_columns(); ++c) {
    ASSERT_TRUE(std::ranges::equal(loaded->attributes().Column(c),
                                   areas.attributes().Column(c)));
  }
}

TEST(CompactStoreTest, StripGeometryKeepsDigestAndDropsPolygons) {
  auto original = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(original.ok());
  TempFile file("compact_nogeo.emp");
  PackOptions options;
  options.strip_geometry = true;
  ASSERT_TRUE(WriteCompactFile(*original, file.path(), options).ok());

  auto loaded = LoadCompactAreaSet(file.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->has_geometry());
  // Geometry does not enter the digest, so stripping preserves it.
  EXPECT_EQ(loaded->InstanceDigest(), original->InstanceDigest());
}

TEST(CompactStoreTest, SolveIsBitIdenticalToInMemoryPath) {
  auto in_memory = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(in_memory.ok());
  TempFile file("compact_solve.emp");
  ASSERT_TRUE(WriteCompactFile(*in_memory, file.path()).ok());
  auto mapped = LoadCompactAreaSet(file.path());
  ASSERT_TRUE(mapped.ok());

  const std::vector<Constraint> constraints = {
      Constraint::Sum("TOTALPOP", 40000, kNoUpperBound)};
  SolverOptions options;
  options.seed = 7;
  auto a = SolveEmp(*in_memory, constraints, options);
  auto b = SolveEmp(*mapped, constraints, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->p(), b->p());
  EXPECT_EQ(a->region_of, b->region_of);
  EXPECT_DOUBLE_EQ(a->heterogeneity, b->heterogeneity);
}

TEST(CompactStoreTest, RejectsCorruptedFiles) {
  EXPECT_FALSE(IsCompactFile(testing::TempDir() + "/does_not_exist.emp"));
  EXPECT_FALSE(LoadCompactAreaSet("/does/not/exist.emp").ok());

  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  // Strip geometry so the file ends in attribute data: the tamper test
  // below must flip a byte the digest covers (geometry is not in it).
  PackOptions no_geo;
  no_geo.strip_geometry = true;
  auto bytes = PackAreaSet(*areas, no_geo);
  ASSERT_TRUE(bytes.ok());

  TempFile not_compact("compact_bad_magic.emp");
  ASSERT_TRUE(WriteFile(not_compact.path(), "area_id,region_id\n0,0\n").ok());
  EXPECT_FALSE(IsCompactFile(not_compact.path()));
  auto bad_magic = LoadCompactAreaSet(not_compact.path());
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.status().code(), StatusCode::kInvalidArgument);

  TempFile truncated("compact_truncated.emp");
  ASSERT_TRUE(
      WriteFile(truncated.path(), bytes->substr(0, bytes->size() / 2)).ok());
  EXPECT_FALSE(LoadCompactAreaSet(truncated.path()).ok());

  // A flipped attribute byte passes structural checks but fails digest
  // verification.
  std::string tampered_bytes = *bytes;
  tampered_bytes[tampered_bytes.size() - 9] ^= 0x40;
  TempFile tampered("compact_tampered.emp");
  ASSERT_TRUE(WriteFile(tampered.path(), tampered_bytes).ok());
  LoadOptions verify;
  verify.verify_digest = true;
  auto verified = LoadCompactAreaSet(tampered.path(), verify);
  ASSERT_FALSE(verified.ok());
  EXPECT_NE(verified.status().message().find("digest mismatch"),
            std::string::npos);
}

/// Writes `bytes` with the header rewritten through `mutate`, returning
/// the temp path for a load attempt. The crafted-header tests below all
/// expect a clean InvalidArgument, never a crash or a giant allocation.
Status WriteWithHeader(const std::string& bytes, const TempFile& file,
                       void (*mutate)(compact::CompactHeader*)) {
  std::string crafted = bytes;
  compact::CompactHeader header;
  std::memcpy(&header, crafted.data(), sizeof(header));
  mutate(&header);
  std::memcpy(crafted.data(), &header, sizeof(header));
  return WriteFile(file.path(), crafted);
}

TEST(CompactStoreTest, RejectsCraftedHeaderCounts) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  auto bytes = PackAreaSet(*areas);
  ASSERT_TRUE(bytes.ok());

  // num_edges near 2^61 makes 2 * num_edges * sizeof(int32_t) wrap to 0
  // mod 2^64; the loader must reject it from the file-size bound instead
  // of matching a zero-length section and reading past the mapping.
  TempFile edges("compact_huge_edges.emp");
  ASSERT_TRUE(WriteWithHeader(*bytes, edges, [](compact::CompactHeader* h) {
                h->num_edges = int64_t{1} << 61;
              }).ok());
  auto edge_result = LoadCompactAreaSet(edges.path());
  ASSERT_FALSE(edge_result.ok());
  EXPECT_EQ(edge_result.status().code(), StatusCode::kInvalidArgument);

  // A huge num_columns must not reach the string-blob reserve.
  TempFile columns("compact_huge_columns.emp");
  ASSERT_TRUE(WriteWithHeader(*bytes, columns, [](compact::CompactHeader* h) {
                h->num_columns = UINT32_MAX;
              }).ok());
  auto column_result = LoadCompactAreaSet(columns.path());
  ASSERT_FALSE(column_result.ok());
  EXPECT_EQ(column_result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(InspectCompactFile(columns.path()).ok());
}

TEST(CompactStoreTest, RejectsGeometryPointCountOverflow) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  ASSERT_TRUE(areas->has_geometry());
  auto bytes = PackAreaSet(*areas);
  ASSERT_TRUE(bytes.ok());
  std::string crafted = *bytes;

  compact::CompactHeader header;
  std::memcpy(&header, crafted.data(), sizeof(header));
  std::vector<compact::SectionEntry> sections(header.num_sections);
  std::memcpy(sections.data(), crafted.data() + sizeof(header),
              sections.size() * sizeof(compact::SectionEntry));
  const auto geometry =
      std::ranges::find_if(sections, [](const compact::SectionEntry& s) {
        return s.kind == static_cast<uint32_t>(compact::SectionKind::kGeometry);
      });
  ASSERT_NE(geometry, sections.end());

  // prefix[num_nodes] = 2^60 makes `total_points * sizeof(Point)` wrap to
  // 0 mod 2^64: an equality check against the payload size would pass
  // while per-polygon slices index far out of bounds.
  const uint64_t huge = uint64_t{1} << 60;
  const size_t last_prefix =
      geometry->offset + static_cast<size_t>(header.num_nodes) * sizeof(uint64_t);
  std::memcpy(crafted.data() + last_prefix, &huge, sizeof(huge));

  TempFile file("compact_huge_points.emp");
  ASSERT_TRUE(WriteFile(file.path(), crafted).ok());
  auto result = LoadCompactAreaSet(file.path());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("geometry size mismatch"),
            std::string::npos);
}

TEST(CompactStoreTest, LoadAreaSetAutoDispatchesOnContent) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());

  TempFile packed("compact_auto.emp");
  ASSERT_TRUE(WriteCompactFile(*areas, packed.path()).ok());
  auto from_compact = LoadAreaSetAuto(packed.path());
  ASSERT_TRUE(from_compact.ok());
  EXPECT_EQ(from_compact->InstanceDigest(), areas->InstanceDigest());

  auto csv = AreaSetToCsvText(*areas);
  ASSERT_TRUE(csv.ok());
  TempFile csv_file("compact_auto.csv");
  ASSERT_TRUE(WriteFile(csv_file.path(), *csv).ok());
  auto from_csv = LoadAreaSetAuto(csv_file.path());
  ASSERT_TRUE(from_csv.ok());
  EXPECT_EQ(from_csv->num_areas(), areas->num_areas());
}

TEST(CompactStoreTest, JobManagerSharesOneImageAcrossReferences) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  TempFile packed("compact_jobs.emp");
  ASSERT_TRUE(WriteCompactFile(*areas, packed.path()).ok());

  service::JobManager::Options options;
  options.workers = 2;
  auto manager = service::JobManager::Create(options);
  ASSERT_TRUE(manager.ok());

  service::JobRequest by_name;
  by_name.instance = "tiny";
  by_name.query = "SUM(TOTALPOP) >= 40k";
  service::JobRequest by_file = by_name;
  by_file.instance = packed.path();

  auto a = (*manager)->Submit(by_name);
  auto b = (*manager)->Submit(by_file);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Different references, same data: the digest-keyed cache must bind both
  // jobs to the same instance fingerprint.
  EXPECT_EQ(a->instance_digest, b->instance_digest);
  ASSERT_TRUE((*manager)->WaitTerminal(a->id, 30000).ok());
  ASSERT_TRUE((*manager)->WaitTerminal(b->id, 30000).ok());
  EXPECT_EQ(*(*manager)->WaitTerminal(a->id), service::JobState::kDone);
  EXPECT_EQ(*(*manager)->WaitTerminal(b->id), service::JobState::kDone);
  (*manager)->Shutdown();
}

TEST(CompactStoreTest, JobManagerRejectsInstanceWithStaleDigest) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  PackOptions no_geo;
  no_geo.strip_geometry = true;
  auto bytes = PackAreaSet(*areas, no_geo);
  ASSERT_TRUE(bytes.ok());

  // Flip an attribute byte without updating the header digest. The service
  // dedupes instances by digest, so it must verify on load rather than
  // trust the header and bind jobs to the wrong cached image.
  std::string tampered_bytes = *bytes;
  tampered_bytes[tampered_bytes.size() - 9] ^= 0x40;
  TempFile tampered("compact_job_tampered.emp");
  ASSERT_TRUE(WriteFile(tampered.path(), tampered_bytes).ok());

  service::JobManager::Options options;
  options.workers = 1;
  auto manager = service::JobManager::Create(options);
  ASSERT_TRUE(manager.ok());
  service::JobRequest request;
  request.instance = tampered.path();
  request.query = "SUM(TOTALPOP) >= 40k";
  auto submitted = (*manager)->Submit(request);
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kNotFound);
  EXPECT_NE(submitted.status().message().find("digest mismatch"),
            std::string::npos);
  (*manager)->Shutdown();
}

TEST(AreaSetDigestTest, MemoizationSurvivesCopyAndMove) {
  AreaSet areas = test::PathAreaSet({1, 2, 3, 4, 5});
  const uint64_t digest = areas.InstanceDigest();

  AreaSet copy = areas;
  EXPECT_EQ(copy.InstanceDigest(), digest);
  AreaSet moved = std::move(copy);
  EXPECT_EQ(moved.InstanceDigest(), digest);

  AreaSet seeded = test::PathAreaSet({1, 2, 3, 4, 5});
  seeded.SeedInstanceDigest(0xDEADBEEFULL);
  EXPECT_EQ(seeded.InstanceDigest(), 0xDEADBEEFULL);
}

}  // namespace
}  // namespace emp
