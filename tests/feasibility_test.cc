#include "core/feasibility.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace emp {
namespace {

class FeasibilityTest : public ::testing::Test {
 protected:
  // Path with s = {1, 2, 4, 6, 8, 10}: sum = 31, avg = 31/6 ≈ 5.17.
  FeasibilityTest() : areas_(test::PathAreaSet({1, 2, 4, 6, 8, 10})) {}

  FeasibilityReport Check(std::vector<Constraint> cs) {
    auto bc = BoundConstraints::Create(&areas_, std::move(cs));
    EXPECT_TRUE(bc.ok()) << bc.status().ToString();
    auto report = CheckFeasibility(*bc);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(report).value();
  }

  AreaSet areas_;
};

TEST_F(FeasibilityTest, NoConstraintsIsTriviallyFeasible) {
  FeasibilityReport r = Check({});
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.full_partition_possible);
  EXPECT_TRUE(r.invalid_areas.empty());
  EXPECT_EQ(r.num_valid_areas, 6);
  EXPECT_EQ(r.num_seed_areas, 6);  // all seed when no extrema
}

TEST_F(FeasibilityTest, MinConstraintFiltersBelowLower) {
  FeasibilityReport r = Check({Constraint::Min("s", 4, 8)});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.invalid_areas, (std::vector<int32_t>{0, 1}));  // s=1,2 < 4
  EXPECT_EQ(r.num_valid_areas, 4);
  // Seeds: s in [4, 8] -> areas 2, 3, 4.
  EXPECT_EQ(r.num_seed_areas, 3);
  EXPECT_TRUE(r.is_seed[2]);
  EXPECT_FALSE(r.is_seed[5]);  // s=10 valid but not a seed
}

TEST_F(FeasibilityTest, MinInfeasibleWhenAllAreasAboveUpper) {
  FeasibilityReport r = Check({Constraint::Min("s", 0, 0.5)});
  EXPECT_FALSE(r.feasible);  // no area has s <= 0.5 to anchor the MIN
  EXPECT_FALSE(r.diagnostics.empty());
}

TEST_F(FeasibilityTest, MinInfeasibleWhenAllAreasBelowLower) {
  FeasibilityReport r = Check({Constraint::Min("s", 100, 200)});
  EXPECT_FALSE(r.feasible);  // every area filtered out
  EXPECT_EQ(r.num_valid_areas, 0);
}

TEST_F(FeasibilityTest, MaxConstraintFiltersAboveUpper) {
  FeasibilityReport r = Check({Constraint::Max("s", 6, 8)});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.invalid_areas, (std::vector<int32_t>{5}));  // s=10 > 8
  // Seeds: s in [6, 8] -> areas 3, 4.
  EXPECT_EQ(r.num_seed_areas, 2);
}

TEST_F(FeasibilityTest, MaxInfeasibleWithDisjointLowRange) {
  // All areas have s >= 1 but none within [0.1, 0.5]; s > 0.5 all invalid.
  FeasibilityReport r = Check({Constraint::Max("s", 0.1, 0.5)});
  EXPECT_FALSE(r.feasible);
}

TEST_F(FeasibilityTest, MixedExtremaGapInfeasible) {
  // No area within [4.5, 5.5]: areas below are invalid? No — for MIN, areas
  // with s < 4.5 are invalid; remaining {6, 8, 10} has no seed <= 5.5.
  FeasibilityReport r = Check({Constraint::Min("s", 4.5, 5.5)});
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.num_seed_areas, 0);
}

TEST_F(FeasibilityTest, SumInfeasibleWhenTotalBelowLower) {
  FeasibilityReport r = Check({Constraint::Sum("s", 100, kNoUpperBound)});
  EXPECT_FALSE(r.feasible);
}

TEST_F(FeasibilityTest, SumInfeasibleWhenEveryAreaAboveUpper) {
  FeasibilityReport r = Check({Constraint::Sum("s", 0, 0.5)});
  EXPECT_FALSE(r.feasible);
}

TEST_F(FeasibilityTest, SumFiltersAreasAboveUpper) {
  FeasibilityReport r = Check({Constraint::Sum("s", 0, 7)});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.invalid_areas, (std::vector<int32_t>{4, 5}));  // 8, 10 > 7
}

TEST_F(FeasibilityTest, CountInfeasibleWhenTooFewAreas) {
  FeasibilityReport r = Check({Constraint::Count(10, kNoUpperBound)});
  EXPECT_FALSE(r.feasible);
}

TEST_F(FeasibilityTest, CountFeasibleWithinSize) {
  FeasibilityReport r = Check({Constraint::Count(2, 4)});
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.invalid_areas.empty());
}

TEST_F(FeasibilityTest, AvgOutsideRangeBlocksFullPartitionOnly) {
  // Dataset avg ≈ 5.17; range [100, 200] is unreachable for a full
  // partition (Theorem 3) but regions leaving areas out may still exist.
  FeasibilityReport r = Check({Constraint::Avg("s", 100, 200)});
  EXPECT_TRUE(r.feasible);
  EXPECT_FALSE(r.full_partition_possible);
  EXPECT_FALSE(r.diagnostics.empty());
}

TEST_F(FeasibilityTest, AvgInsideRangeAllowsFullPartition) {
  FeasibilityReport r = Check({Constraint::Avg("s", 5, 6)});
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.full_partition_possible);
}

TEST_F(FeasibilityTest, MultipleConstraintsUnionInvalidAreas) {
  FeasibilityReport r = Check({
      Constraint::Min("s", 2, 6),              // s=1 invalid
      Constraint::Max("s", 4, 8),              // s=10 invalid
      Constraint::Sum("s", 5, kNoUpperBound),  // no upper -> no invalids
  });
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.invalid_areas, (std::vector<int32_t>{0, 5}));
  // seeds_per_extrema aligned with extrema order (MIN first, MAX second).
  ASSERT_EQ(r.seeds_per_extrema_constraint.size(), 2u);
  EXPECT_EQ(r.seeds_per_extrema_constraint[0], 3);  // s in [2,6]: 2,4,6
  EXPECT_EQ(r.seeds_per_extrema_constraint[1], 3);  // s in [4,8]: 4,6,8
}

TEST_F(FeasibilityTest, EmptyAreaSetRejected) {
  // Constructing an empty AreaSet requires an empty graph and table.
  AttributeTable t(0);
  ASSERT_TRUE(t.AddColumn("s", {}).ok());
  auto graph = ContiguityGraph::FromEdges(0, {});
  auto areas = AreaSet::CreateWithoutGeometry("empty", std::move(graph).value(),
                                              std::move(t), "s");
  ASSERT_TRUE(areas.ok());
  auto bc = BoundConstraints::Create(&*areas, {});
  ASSERT_TRUE(bc.ok());
  EXPECT_FALSE(CheckFeasibility(*bc).ok());
}

}  // namespace
}  // namespace emp
