#include "render/svg.h"

#include <gtest/gtest.h>

#include "data/synthetic/dataset_catalog.h"
#include "test_util.h"

namespace emp {
namespace {

AreaSet TwoSquares() {
  std::vector<Polygon> polys = {
      Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}}),
      Polygon({{1, 0}, {2, 0}, {2, 1}, {1, 1}}),
  };
  auto graph = ContiguityGraph::FromEdges(2, {{0, 1}});
  AttributeTable t(2);
  EXPECT_TRUE(t.AddColumn("POP", {100, 200}).ok());
  return std::move(AreaSet::Create("two", polys, std::move(graph).value(),
                                   std::move(t), "POP"))
      .value();
}

TEST(SvgTest, EmitsWellFormedDocument) {
  AreaSet areas = TwoSquares();
  auto svg = RenderSvg(areas);
  ASSERT_TRUE(svg.ok());
  EXPECT_EQ(svg->find("<svg"), 0u);
  EXPECT_NE(svg->find("</svg>"), std::string::npos);
  // One <polygon> element per area.
  size_t count = 0;
  for (size_t pos = 0; (pos = svg->find("<polygon", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(SvgTest, AssignmentControlsFill) {
  AreaSet areas = TwoSquares();
  auto svg = RenderSvg(areas, {0, -1});
  ASSERT_TRUE(svg.ok());
  // Region 0's color and the unassigned fill both appear.
  EXPECT_NE(svg->find(RegionColor(0)), std::string::npos);
  EXPECT_NE(svg->find("#dddddd"), std::string::npos);
}

TEST(SvgTest, HeightFollowsAspectRatio) {
  AreaSet areas = TwoSquares();  // 2 x 1 map
  SvgOptions options;
  options.width = 500;
  auto svg = RenderSvg(areas, {}, options);
  ASSERT_TRUE(svg.ok());
  EXPECT_NE(svg->find("width=\"500\""), std::string::npos);
  EXPECT_NE(svg->find("height=\"250\""), std::string::npos);
}

TEST(SvgTest, LabelsRenderedWhenRequested) {
  AreaSet areas = TwoSquares();
  SvgOptions options;
  options.label_regions = true;
  auto svg = RenderSvg(areas, {0, 1}, options);
  ASSERT_TRUE(svg.ok());
  EXPECT_NE(svg->find("<text"), std::string::npos);
}

TEST(SvgTest, RejectsBadInputs) {
  AreaSet areas = TwoSquares();
  EXPECT_FALSE(RenderSvg(areas, {0}).ok());  // wrong assignment size
  SvgOptions bad;
  bad.width = -5;
  EXPECT_FALSE(RenderSvg(areas, {}, bad).ok());
  AreaSet flat = test::PathAreaSet({1, 2});
  EXPECT_FALSE(RenderSvg(flat).ok());  // no geometry
}

TEST(SvgTest, RegionColorsAreDeterministicAndDistinct) {
  EXPECT_EQ(RegionColor(7), RegionColor(7));
  // First 50 ids should be pairwise distinct.
  std::set<std::string> colors;
  for (int32_t i = 0; i < 50; ++i) colors.insert(RegionColor(i));
  EXPECT_EQ(colors.size(), 50u);
  // Format sanity.
  EXPECT_EQ(RegionColor(0).size(), 7u);
  EXPECT_EQ(RegionColor(0)[0], '#');
}

TEST(SvgTest, RendersSyntheticMap) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  auto svg = RenderSvg(*areas);
  ASSERT_TRUE(svg.ok());
  EXPECT_GT(svg->size(), 10000u);  // 120 polygons with coordinates
}

}  // namespace
}  // namespace emp
