#include "graph/contiguity_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/components.h"

namespace emp {
namespace {

/// 0-1-2
/// |   |
/// 3-4-5   (a 2x3 grid, rook adjacency)
ContiguityGraph Grid2x3() {
  auto g = ContiguityGraph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 3}, {2, 5}, {3, 4}, {4, 5}, {1, 4}});
  return std::move(g).value();
}

TEST(GraphTest, FromEdgesBuildsSymmetricAdjacency) {
  ContiguityGraph g = Grid2x3();
  EXPECT_EQ(g.num_nodes(), 6);
  EXPECT_EQ(g.num_edges(), 7);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 5));
}

TEST(GraphTest, NeighborListsAreSortedAndDeduped) {
  auto g = ContiguityGraph::FromNeighborLists({{1, 1, 2}, {0}, {0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 3);
  std::vector<int32_t> expected = {1, 2};
  EXPECT_TRUE(std::ranges::equal(g->NeighborsOf(0), expected));
}

TEST(GraphTest, MissingReverseEdgesAreAdded) {
  auto g = ContiguityGraph::FromNeighborLists({{1}, {}, {}});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasEdge(1, 0));
}

TEST(GraphTest, RejectsSelfLoops) {
  EXPECT_FALSE(ContiguityGraph::FromNeighborLists({{0}}).ok());
}

TEST(GraphTest, RejectsOutOfRangeEndpoints) {
  EXPECT_FALSE(ContiguityGraph::FromNeighborLists({{5}}).ok());
  EXPECT_FALSE(ContiguityGraph::FromEdges(2, {{0, 2}}).ok());
  EXPECT_FALSE(ContiguityGraph::FromEdges(-1, {}).ok());
}

TEST(GraphTest, DegreeAndAverageDegree) {
  ContiguityGraph g = Grid2x3();
  EXPECT_EQ(g.DegreeOf(4), 3);
  EXPECT_EQ(g.DegreeOf(0), 2);
  EXPECT_NEAR(g.AverageDegree(), 14.0 / 6.0, 1e-12);
}

TEST(GraphTest, EmptyGraph) {
  auto g = ContiguityGraph::FromNeighborLists({});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 0);
  EXPECT_DOUBLE_EQ(g->AverageDegree(), 0.0);
}

TEST(GraphTest, InducedSubgraphRenumbers) {
  ContiguityGraph g = Grid2x3();
  auto [sub, mapping] = g.InducedSubgraph({0, 1, 4});
  EXPECT_EQ(sub.num_nodes(), 3);
  // Edges kept: 0-1 and 1-4 (old), renumbered 0-1, 1-2.
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(1, 2));
  EXPECT_FALSE(sub.HasEdge(0, 2));
  EXPECT_EQ(mapping[2], 4);
}

TEST(ComponentsTest, SingleComponentGrid) {
  ComponentLabels labels = ConnectedComponents(Grid2x3());
  EXPECT_EQ(labels.count, 1);
  for (int32_t l : labels.label) EXPECT_EQ(l, 0);
}

TEST(ComponentsTest, TwoIslands) {
  auto g = ContiguityGraph::FromEdges(5, {{0, 1}, {2, 3}, {3, 4}});
  ASSERT_TRUE(g.ok());
  ComponentLabels labels = ConnectedComponents(*g);
  EXPECT_EQ(labels.count, 2);
  EXPECT_EQ(labels.label[0], labels.label[1]);
  EXPECT_EQ(labels.label[2], labels.label[3]);
  EXPECT_NE(labels.label[0], labels.label[2]);
  auto groups = labels.Groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<int32_t>{2, 3, 4}));
}

TEST(ComponentsTest, IsolatedNodesAreSingletonComponents) {
  auto g = ContiguityGraph::FromEdges(3, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(ConnectedComponents(*g).count, 3);
}

TEST(ComponentsTest, WithinSubsetIgnoresOutsideNodes) {
  // Path 0-1-2-3; members {0, 1, 3}: removing 2 splits them.
  auto g = ContiguityGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(g.ok());
  ComponentLabels labels = ConnectedComponentsWithin(*g, {0, 1, 3});
  EXPECT_EQ(labels.count, 2);
  EXPECT_EQ(labels.label[0], labels.label[1]);
  EXPECT_NE(labels.label[0], labels.label[3]);
  EXPECT_EQ(labels.label[2], -1);  // not a member
}

}  // namespace
}  // namespace emp
