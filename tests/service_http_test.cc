#include "service/solve_service.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "service/job_manager.h"

namespace emp {
namespace service {
namespace {

/// Sends one raw request (optionally split into `chunks` sends with small
/// pauses, to exercise the server's partial-recv handling) and reads the
/// response to EOF.
std::string RawRequest(int port, const std::string& request,
                       int chunks = 1) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const size_t chunk_size =
      (request.size() + static_cast<size_t>(chunks) - 1) /
      static_cast<size_t>(chunks);
  size_t sent = 0;
  while (sent < request.size()) {
    const size_t len = std::min(chunk_size, request.size() - sent);
    size_t sent_in_chunk = 0;
    while (sent_in_chunk < len) {
      ssize_t n = ::send(fd, request.data() + sent + sent_in_chunk,
                         len - sent_in_chunk, 0);
      if (n <= 0) {
        ::close(fd);
        return "";
      }
      sent_in_chunk += static_cast<size_t>(n);
    }
    sent += len;
    if (sent < request.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpCall(int port, const std::string& method,
                     const std::string& target, const std::string& body = "",
                     int chunks = 1) {
  std::ostringstream request;
  request << method << " " << target << " HTTP/1.1\r\n"
          << "Host: localhost\r\nConnection: close\r\n";
  if (!body.empty()) {
    request << "Content-Type: application/json\r\n"
            << "Content-Length: " << body.size() << "\r\n";
  }
  request << "\r\n" << body;
  return RawRequest(port, request.str(), chunks);
}

std::string StatusLineOf(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

std::string HeadersOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? response : response.substr(0, pos);
}

/// A service + server pair wired together with the right teardown order.
struct Stack {
  std::unique_ptr<SolveService> service;
  std::unique_ptr<obs::HttpServer> server;
  int port = 0;

  Stack() = default;
  Stack(Stack&&) = default;
  Stack& operator=(Stack&&) = default;

  ~Stack() {
    if (server != nullptr) server->Stop();  // before the service dies
  }
};

Stack StartStack(JobManager::Options options = {}) {
  Stack stack;
  auto service = SolveService::Create(std::move(options));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  if (!service.ok()) return stack;
  stack.service = std::move(*service);
  obs::HttpServer::Options server_options;
  server_options.handler = stack.service->Handler();
  auto server = obs::HttpServer::Start(server_options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  if (!server.ok()) return stack;
  stack.server = std::move(*server);
  stack.port = stack.server->port();
  return stack;
}

constexpr char kTinyBody[] =
    "{\"instance\": \"tiny\", \"query\": \"SUM(TOTALPOP) >= 20000\", "
    "\"options\": {\"seed\": 123}}";

int64_t JobIdOf(const std::string& body) {
  auto doc = json::Parse(body);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << body;
  if (!doc.ok()) return -1;
  return static_cast<int64_t>(doc->Find("job_id")->AsNumber());
}

/// Polls GET /jobs/<id> until the state is terminal; returns the last doc.
Result<json::Value> PollTerminal(int port, int64_t id) {
  for (int i = 0; i < 600; ++i) {
    auto doc =
        json::Parse(BodyOf(HttpCall(port, "GET",
                                    "/jobs/" + std::to_string(id))));
    if (!doc.ok()) return doc.status();
    const std::string state = doc->Find("state")->AsString();
    if (state != "queued" && state != "running") return doc;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Status::Internal("job never reached a terminal state");
}

TEST(SolveServiceHttpTest, SolveRunsToDoneOverHttp) {
  Stack stack = StartStack();
  ASSERT_NE(stack.server, nullptr);

  const std::string response =
      HttpCall(stack.port, "POST", "/solve", kTinyBody);
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 202 Accepted");
  auto accepted = json::Parse(BodyOf(response));
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(accepted->Find("solver")->AsString(), "fact");
  EXPECT_EQ(accepted->Find("instance")->AsString(), "tiny");
  const int64_t id = JobIdOf(BodyOf(response));
  ASSERT_GE(id, 0);

  auto doc = PollTerminal(stack.port, id);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("state")->AsString(), "done");
  EXPECT_EQ(doc->Find("termination")->AsString(), "converged");
  ASSERT_NE(doc->Find("result"), nullptr);
  EXPECT_GE(doc->Find("result")->Find("p")->AsNumber(), 1);
  ASSERT_NE(doc->Find("progress"), nullptr);

  // The jobs index lists it without payloads.
  auto jobs = json::Parse(BodyOf(HttpCall(stack.port, "GET", "/jobs")));
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();
  ASSERT_EQ(jobs->Find("jobs")->AsArray().size(), 1u);
  EXPECT_EQ(jobs->Find("jobs")->AsArray()[0].Find("state")->AsString(),
            "done");

  // The journal endpoint serves the per-job audit trail.
  const std::string journal_response = HttpCall(
      stack.port, "GET", "/jobs/" + std::to_string(id) + "/journal");
  EXPECT_EQ(StatusLineOf(journal_response), "HTTP/1.1 200 OK");
  EXPECT_NE(HeadersOf(journal_response).find("application/x-ndjson"),
            std::string::npos);
  EXPECT_NE(BodyOf(journal_response).find("job_start"), std::string::npos);
  EXPECT_NE(BodyOf(journal_response).find("job_end"), std::string::npos);
}

/// The fixed-seed solution served over HTTP is the library's own report —
/// bit-identical to the direct JobManager path against the same request.
TEST(SolveServiceHttpTest, HttpResultMatchesDirectSubmission) {
  Stack stack = StartStack();
  ASSERT_NE(stack.server, nullptr);
  const std::string response =
      HttpCall(stack.port, "POST", "/solve", kTinyBody);
  ASSERT_EQ(StatusLineOf(response), "HTTP/1.1 202 Accepted");
  const int64_t id = JobIdOf(BodyOf(response));
  auto doc = PollTerminal(stack.port, id);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  auto via_http = stack.service->jobs().Get(id);
  ASSERT_TRUE(via_http.ok());

  JobRequest request;
  request.instance = "tiny";
  request.query = "SUM(TOTALPOP) >= 20000";
  request.options.seed = 123;
  auto direct_manager = JobManager::Create({});
  ASSERT_TRUE(direct_manager.ok());
  auto direct = (*direct_manager)->Submit(request);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  auto state = (*direct_manager)->WaitTerminal(direct->id);
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(*state, JobState::kDone);
  auto direct_snapshot = (*direct_manager)->Get(direct->id);
  ASSERT_TRUE(direct_snapshot.ok());

  // Scrub the wall-clock timing lines, then demand byte equality.
  auto scrub = [](const std::string& json) {
    std::istringstream in(json);
    std::string out, line;
    while (std::getline(in, line)) {
      if (line.find("_seconds") != std::string::npos) continue;
      out += line;
      out += '\n';
    }
    return out;
  };
  EXPECT_EQ(scrub(via_http->result_json),
            scrub(direct_snapshot->result_json));
}

TEST(SolveServiceHttpTest, WrongMethodsAnswer405WithAllow) {
  Stack stack = StartStack();
  ASSERT_NE(stack.server, nullptr);

  const std::string get_solve = HttpCall(stack.port, "GET", "/solve");
  EXPECT_EQ(StatusLineOf(get_solve), "HTTP/1.1 405 Method Not Allowed");
  EXPECT_NE(HeadersOf(get_solve).find("Allow: POST"), std::string::npos);
  auto doc = json::Parse(BodyOf(get_solve));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("error")->Find("code")->AsString(),
            "method_not_allowed");

  const std::string post_jobs = HttpCall(stack.port, "POST", "/jobs", "{}");
  EXPECT_EQ(StatusLineOf(post_jobs), "HTTP/1.1 405 Method Not Allowed");
  EXPECT_NE(HeadersOf(post_jobs).find("Allow: GET"), std::string::npos);
}

TEST(SolveServiceHttpTest, BadRequestsAnswer400WithExactMessages) {
  Stack stack = StartStack();
  ASSERT_NE(stack.server, nullptr);

  // Not JSON at all.
  const std::string not_json =
      HttpCall(stack.port, "POST", "/solve", "this is not json");
  EXPECT_EQ(StatusLineOf(not_json), "HTTP/1.1 400 Bad Request");

  // Empty body.
  const std::string empty = HttpCall(stack.port, "POST", "/solve");
  EXPECT_EQ(StatusLineOf(empty), "HTTP/1.1 400 Bad Request");
  EXPECT_NE(BodyOf(empty).find("empty body"), std::string::npos);

  // Unknown top-level field: a typo must not become a default.
  const std::string typo = HttpCall(stack.port, "POST", "/solve",
                                    "{\"instance\": \"tiny\", \"querry\": "
                                    "\"SUM(TOTALPOP) >= 1\"}");
  EXPECT_EQ(StatusLineOf(typo), "HTTP/1.1 400 Bad Request");
  EXPECT_NE(BodyOf(typo).find("unknown field 'querry'"), std::string::npos);

  // The S17 parser's exact message crosses the wire.
  const std::string bad_query =
      HttpCall(stack.port, "POST", "/solve",
               "{\"instance\": \"tiny\", \"query\": \"FOO(X) >= 1\"}");
  EXPECT_EQ(StatusLineOf(bad_query), "HTTP/1.1 400 Bad Request");
  auto doc = json::Parse(BodyOf(bad_query));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("error")->Find("message")->AsString(),
            "unknown aggregate 'FOO'");

  // Unknown instances and attribute bindings are 404s.
  const std::string bad_instance =
      HttpCall(stack.port, "POST", "/solve",
               "{\"instance\": \"atlantis\", \"query\": \"COUNT >= 1\"}");
  EXPECT_EQ(StatusLineOf(bad_instance), "HTTP/1.1 404 Not Found");
  const std::string bad_attribute = HttpCall(
      stack.port, "POST", "/solve",
      "{\"instance\": \"tiny\", \"query\": \"SUM(NO_SUCH) >= 1\"}");
  EXPECT_EQ(StatusLineOf(bad_attribute), "HTTP/1.1 404 Not Found");
  EXPECT_NE(BodyOf(bad_attribute).find("no attribute column named"),
            std::string::npos);

  // Unknown option key.
  const std::string bad_option =
      HttpCall(stack.port, "POST", "/solve",
               "{\"instance\": \"tiny\", \"query\": \"COUNT >= 1\", "
               "\"options\": {\"sede\": 1}}");
  EXPECT_EQ(StatusLineOf(bad_option), "HTTP/1.1 400 Bad Request");
  EXPECT_NE(BodyOf(bad_option).find("unknown option 'sede'"),
            std::string::npos);

  // None of these were admitted.
  auto jobs = json::Parse(BodyOf(HttpCall(stack.port, "GET", "/jobs")));
  ASSERT_TRUE(jobs.ok());
  EXPECT_TRUE(jobs->Find("jobs")->AsArray().empty());
}

TEST(SolveServiceHttpTest, UnknownJobsAnswer404) {
  Stack stack = StartStack();
  ASSERT_NE(stack.server, nullptr);
  EXPECT_EQ(StatusLineOf(HttpCall(stack.port, "GET", "/jobs/999")),
            "HTTP/1.1 404 Not Found");
  EXPECT_EQ(StatusLineOf(HttpCall(stack.port, "GET", "/jobs/abc")),
            "HTTP/1.1 404 Not Found");
  EXPECT_EQ(
      StatusLineOf(HttpCall(stack.port, "GET", "/jobs/7/confetti")),
      "HTTP/1.1 404 Not Found");
  // Unclaimed targets still fall through to the obs built-ins.
  EXPECT_EQ(StatusLineOf(HttpCall(stack.port, "GET", "/healthz")),
            "HTTP/1.1 200 OK");
}

TEST(SolveServiceHttpTest, MalformedJobIdsAnswer404WithExactMessages) {
  Stack stack = StartStack();
  ASSERT_NE(stack.server, nullptr);

  // Trailing garbage after digits: strtoll would stop at the 'x' and
  // report job 5; the strict parser must refuse the whole token.
  std::string response = HttpCall(stack.port, "GET", "/jobs/5x");
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 404 Not Found");
  EXPECT_NE(BodyOf(response).find("malformed job id '5x'"),
            std::string::npos);

  // Negative ids are never issued; "-5" must not reach the job table.
  response = HttpCall(stack.port, "GET", "/jobs/-5");
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 404 Not Found");
  EXPECT_NE(BodyOf(response).find("malformed job id '-5'"),
            std::string::npos);

  // Explicit sign and embedded space are rejected, not partially parsed.
  response = HttpCall(stack.port, "GET", "/jobs/+5");
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 404 Not Found");
  EXPECT_NE(BodyOf(response).find("malformed job id '+5'"),
            std::string::npos);

  // Overflow: strtoll would clamp to LLONG_MAX and 404 as "unknown job
  // 9223372036854775807" — the parser must call out the range instead.
  response = HttpCall(stack.port, "GET", "/jobs/99999999999999999999");
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 404 Not Found");
  EXPECT_NE(
      BodyOf(response).find("job id '99999999999999999999' out of range"),
      std::string::npos);

  // The uniform error envelope carries all of these.
  auto body = json::Parse(BodyOf(response));
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Find("error")->Find("code")->AsString(), "not_found");

  // A well-formed id for a job that does not exist still routes to the
  // manager's NotFound.
  response = HttpCall(stack.port, "GET", "/jobs/12345/journal");
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 404 Not Found");
}

TEST(SolveServiceHttpTest, CancelOverHttpGoesTerminal) {
  Stack stack = StartStack();
  ASSERT_NE(stack.server, nullptr);

  // A long-running job on the 2k instance; cancel it right away.
  const std::string response = HttpCall(
      stack.port, "POST", "/solve",
      "{\"instance\": \"2k\", \"query\": \"SUM(TOTALPOP) >= 10000\"}");
  ASSERT_EQ(StatusLineOf(response), "HTTP/1.1 202 Accepted");
  const int64_t id = JobIdOf(BodyOf(response));

  const std::string cancel = HttpCall(
      stack.port, "POST", "/jobs/" + std::to_string(id) + "/cancel");
  EXPECT_EQ(StatusLineOf(cancel), "HTTP/1.1 200 OK");

  auto doc = PollTerminal(stack.port, id);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("state")->AsString(), "cancelled");
}

TEST(SolveServiceHttpTest, RequestSplitAcrossManySendsStillParses) {
  Stack stack = StartStack();
  ASSERT_NE(stack.server, nullptr);
  // 8 chunks: the request line, headers, and body all arrive fragmented.
  const std::string response =
      HttpCall(stack.port, "POST", "/solve", kTinyBody, /*chunks=*/8);
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 202 Accepted");
  const int64_t id = JobIdOf(BodyOf(response));
  auto doc = PollTerminal(stack.port, id);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("state")->AsString(), "done");
}

/// The acceptance scenario over the wire: 8 concurrent clients against a
/// worker pool with queue capacity 4 and a held worker. Every client gets
/// a definite verdict — 202 then done, or 429 — and nothing hangs.
TEST(SolveServiceHttpTest, ConcurrentClientsAllGetTerminalVerdicts) {
  JobManager::Options options;
  options.workers = 2;
  options.queue_capacity = 4;
  Stack stack = StartStack(std::move(options));
  ASSERT_NE(stack.server, nullptr);

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> status_lines(kClients);
  std::vector<int64_t> accepted_ids(kClients, -1);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      std::string body =
          "{\"instance\": \"tiny\", \"query\": \"SUM(TOTALPOP) >= "
          "20000\", \"options\": {\"seed\": " +
          std::to_string(1000 + i) + "}}";
      const std::string response =
          HttpCall(stack.port, "POST", "/solve", body);
      status_lines[i] = StatusLineOf(response);
      if (status_lines[i] == "HTTP/1.1 202 Accepted") {
        accepted_ids[i] = JobIdOf(BodyOf(response));
      }
    });
  }
  for (auto& t : clients) t.join();

  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < kClients; ++i) {
    if (status_lines[i] == "HTTP/1.1 202 Accepted") {
      ASSERT_GE(accepted_ids[i], 0);
      auto doc = PollTerminal(stack.port, accepted_ids[i]);
      ASSERT_TRUE(doc.ok()) << doc.status().ToString();
      EXPECT_EQ(doc->Find("state")->AsString(), "done");
      ++accepted;
    } else {
      ASSERT_EQ(status_lines[i], "HTTP/1.1 429 Too Many Requests")
          << "client " << i << " got no definite verdict";
      ++rejected;
    }
  }
  EXPECT_EQ(accepted + rejected, kClients);
  EXPECT_GE(accepted, 1);

  // Every request — including refusals — left an audit record.
  auto jobs = json::Parse(BodyOf(HttpCall(stack.port, "GET", "/jobs")));
  ASSERT_TRUE(jobs.ok());
  EXPECT_EQ(jobs->Find("jobs")->AsArray().size(),
            static_cast<size_t>(kClients));
}

TEST(SolveServiceHttpTest, TraceCurveAndStatsEndpoints) {
  Stack stack = StartStack();
  ASSERT_NE(stack.server, nullptr);
  const std::string response =
      HttpCall(stack.port, "POST", "/solve", kTinyBody);
  ASSERT_EQ(StatusLineOf(response), "HTTP/1.1 202 Accepted");
  const int64_t id = JobIdOf(BodyOf(response));
  auto doc = PollTerminal(stack.port, id);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->Find("state")->AsString(), "done");

  // The job document carries its 16-hex trace id from admission on.
  ASSERT_NE(doc->Find("trace_id"), nullptr);
  const std::string trace_id = doc->Find("trace_id")->AsString();
  EXPECT_EQ(trace_id.size(), 16u);

  // GET /jobs/<id>/trace: a Chrome-trace timeline holding the queue-wait
  // span and the same trace id, both as metadata and top-level.
  const std::string trace_response = HttpCall(
      stack.port, "GET", "/jobs/" + std::to_string(id) + "/trace");
  EXPECT_EQ(StatusLineOf(trace_response), "HTTP/1.1 200 OK");
  EXPECT_NE(HeadersOf(trace_response).find("application/json"),
            std::string::npos);
  auto trace = json::Parse(BodyOf(trace_response));
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace->Find("traceId")->AsString(), trace_id);
  const auto& events = trace->Find("traceEvents")->AsArray();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].Find("name")->AsString(), "trace_id");
  EXPECT_EQ(events[0].Find("ph")->AsString(), "M");
  EXPECT_EQ(events[0].Find("args")->Find("trace_id")->AsString(),
            trace_id);
  bool queue_wait = false, instance_bind = false;
  for (const json::Value& event : events) {
    const std::string name = event.Find("name")->AsString();
    if (name == "queue.wait") {
      queue_wait = true;
      EXPECT_EQ(event.Find("ph")->AsString(), "X");
      EXPECT_GE(event.Find("dur")->AsNumber(), 0);
    }
    if (name == "instance.bind") instance_bind = true;
  }
  EXPECT_TRUE(queue_wait);
  EXPECT_TRUE(instance_bind);

  // GET /jobs/<id>/curve: the anytime-quality samples, terminal best_p
  // matching the served result.
  const std::string curve_response = HttpCall(
      stack.port, "GET", "/jobs/" + std::to_string(id) + "/curve");
  EXPECT_EQ(StatusLineOf(curve_response), "HTTP/1.1 200 OK");
  auto curve = json::Parse(BodyOf(curve_response));
  ASSERT_TRUE(curve.ok()) << curve.status().ToString();
  const auto& samples = curve->Find("samples")->AsArray();
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples.back().Find("best_p")->AsNumber(),
            doc->Find("result")->Find("p")->AsNumber());

  // GET /stats: the job is in the terminal counters and the "fact"
  // latency block, with all three dimensions populated.
  const std::string stats_response =
      HttpCall(stack.port, "GET", "/stats");
  EXPECT_EQ(StatusLineOf(stats_response), "HTTP/1.1 200 OK");
  auto stats = json::Parse(BodyOf(stats_response));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->Find("jobs")->Find("done")->AsNumber(), 1);
  const json::Value* fact = stats->Find("latency_ms")->Find("fact");
  ASSERT_NE(fact, nullptr);
  for (const char* dimension : {"queue_wait", "solve", "e2e"}) {
    EXPECT_GE(fact->Find(dimension)
                  ->Find("all_time")
                  ->Find("count")
                  ->AsNumber(),
              1)
        << dimension;
  }

  // The new routes are GET-only and 404 for unknown jobs.
  EXPECT_EQ(StatusLineOf(HttpCall(stack.port, "POST", "/stats", "{}")),
            "HTTP/1.1 405 Method Not Allowed");
  EXPECT_EQ(StatusLineOf(HttpCall(
                stack.port, "POST",
                "/jobs/" + std::to_string(id) + "/trace", "{}")),
            "HTTP/1.1 405 Method Not Allowed");
  EXPECT_EQ(StatusLineOf(HttpCall(stack.port, "GET", "/jobs/999/trace")),
            "HTTP/1.1 404 Not Found");
  EXPECT_EQ(StatusLineOf(HttpCall(stack.port, "GET", "/jobs/999/curve")),
            "HTTP/1.1 404 Not Found");
}

TEST(SolveServiceHttpTest, StatsCountsRejectionsAndCancellations) {
  JobManager::Options options;
  options.workers = 1;
  options.queue_capacity = 1;
  Stack stack = StartStack(std::move(options));
  ASSERT_NE(stack.server, nullptr);

  // One long job occupies the worker, one sits in the queue; the next
  // submission overflows and is rejected.
  const std::string long_body =
      "{\"instance\": \"2k\", \"query\": \"SUM(TOTALPOP) >= 10000\"}";
  const std::string first =
      HttpCall(stack.port, "POST", "/solve", long_body);
  ASSERT_EQ(StatusLineOf(first), "HTTP/1.1 202 Accepted");
  const int64_t first_id = JobIdOf(BodyOf(first));
  const std::string second =
      HttpCall(stack.port, "POST", "/solve", long_body);
  ASSERT_EQ(StatusLineOf(second), "HTTP/1.1 202 Accepted");
  const int64_t second_id = JobIdOf(BodyOf(second));
  const std::string third =
      HttpCall(stack.port, "POST", "/solve", long_body);
  // The first job may have finished before the third arrived, in which
  // case it was admitted rather than refused — drain it like the others.
  const bool saw_reject =
      StatusLineOf(third) == "HTTP/1.1 429 Too Many Requests";
  const int64_t third_id = saw_reject ? -1 : JobIdOf(BodyOf(third));

  // Cancel every accepted job and drain.
  for (int64_t id : {first_id, second_id, third_id}) {
    if (id < 0) continue;
    HttpCall(stack.port, "POST",
             "/jobs/" + std::to_string(id) + "/cancel");
    ASSERT_TRUE(PollTerminal(stack.port, id).ok());
  }

  auto stats =
      json::Parse(BodyOf(HttpCall(stack.port, "GET", "/stats")));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const json::Value* jobs = stats->Find("jobs");
  // Every admitted or refused job is recorded exactly once.
  EXPECT_EQ(jobs->Find("recorded")->AsNumber(), 3);
  if (saw_reject) {
    EXPECT_GE(jobs->Find("rejected")->AsNumber(), 1);
    EXPECT_GT(stats->Find("rates")->Find("rejection")->AsNumber(), 0.0);
  }
  EXPECT_GE(jobs->Find("cancelled")->AsNumber() +
                jobs->Find("done")->AsNumber(),
            2.0);
}

TEST(SolveServiceHttpTest, ParseSolveRequestMapsAllFields) {
  auto parsed = ParseSolveRequest(
      "{\"instance\": \"2k\", \"solver\": \"maxp\", \"attribute\": "
      "\"TOTALPOP\", \"threshold\": 20000, \"options\": {\"seed\": 9, "
      "\"time_budget_ms\": 50, \"run_local_search\": false}}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->instance, "2k");
  EXPECT_EQ(parsed->solver, "maxp");
  EXPECT_EQ(parsed->attribute, "TOTALPOP");
  EXPECT_EQ(parsed->threshold, 20000);
  EXPECT_EQ(parsed->options.seed, 9u);
  EXPECT_EQ(parsed->options.time_budget_ms, 50);
  EXPECT_FALSE(parsed->options.run_local_search);

  auto missing = ParseSolveRequest("{\"query\": \"COUNT >= 1\"}");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("'instance' is required"),
            std::string::npos);

  auto fractional = ParseSolveRequest(
      "{\"instance\": \"tiny\", \"options\": {\"seed\": 1.5}}");
  ASSERT_FALSE(fractional.ok());
  EXPECT_NE(fractional.status().message().find("must be an integer"),
            std::string::npos);
}

}  // namespace
}  // namespace service
}  // namespace emp
