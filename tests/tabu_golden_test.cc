#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/local_search/heterogeneity.h"
#include "core/local_search/tabu.h"
#include "core/solver.h"
#include "data/synthetic/dataset_catalog.h"
#include "test_util.h"

namespace emp {
namespace {

// The incremental neighborhood engine must be a pure optimization: for any
// instance and options, the (move, delta) trajectory it produces is
// bit-identical to the full-rebuild engine's. These tests pin that
// guarantee (DESIGN.md §8) on tie-heavy instances where any ordering
// nondeterminism would immediately diverge.

struct GoldenSetup {
  GoldenSetup(const AreaSet* areas_in, std::vector<Constraint> cs)
      : areas(areas_in),
        bound(std::move(BoundConstraints::Create(areas_in, std::move(cs)))
                  .value()),
        partition(&bound),
        connectivity(&areas_in->graph()) {}

  const AreaSet* areas;
  BoundConstraints bound;
  Partition partition;
  ConnectivityChecker connectivity;
};

/// Runs TabuSearch with the given engine, recording the trajectory and
/// cross-checking the articulation cache against BFS on every candidate.
TabuResult RunEngine(const AreaSet& areas, std::vector<Constraint> cs,
                     const std::vector<std::pair<int32_t, int32_t>>& seed_plan,
                     int32_t num_regions, TabuEngine engine) {
  GoldenSetup setup(&areas, std::move(cs));
  std::vector<int32_t> rids;
  for (int32_t i = 0; i < num_regions; ++i) {
    rids.push_back(setup.partition.CreateRegion());
  }
  for (const auto& [area, region_index] : seed_plan) {
    setup.partition.Assign(area, rids[static_cast<size_t>(region_index)]);
  }
  SolverOptions options;
  options.tabu_max_no_improve = 64;
  options.tabu_engine = engine;
  options.tabu_record_trajectory = true;
  options.tabu_verify_connectivity_cache = true;
  auto result = TabuSearch(options, &setup.connectivity, &setup.partition);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(ComputeHeterogeneity(setup.partition),
              result->final_heterogeneity, 1e-9);
  return std::move(result).value();
}

void ExpectIdenticalTrajectories(const TabuResult& full,
                                 const TabuResult& incremental) {
  EXPECT_EQ(incremental.iterations, full.iterations);
  EXPECT_EQ(incremental.moves_applied, full.moves_applied);
  EXPECT_EQ(incremental.moves_tried, full.moves_tried);
  EXPECT_EQ(incremental.improving_moves, full.improving_moves);
  // Bit-identical objective, not NEAR: both engines apply the same deltas
  // in the same order to the same incremental totals.
  EXPECT_EQ(incremental.final_heterogeneity, full.final_heterogeneity);
  ASSERT_EQ(incremental.trajectory.size(), full.trajectory.size());
  for (size_t i = 0; i < full.trajectory.size(); ++i) {
    EXPECT_EQ(incremental.trajectory[i].area, full.trajectory[i].area)
        << "move " << i;
    EXPECT_EQ(incremental.trajectory[i].from, full.trajectory[i].from)
        << "move " << i;
    EXPECT_EQ(incremental.trajectory[i].to, full.trajectory[i].to)
        << "move " << i;
    EXPECT_EQ(incremental.trajectory[i].delta, full.trajectory[i].delta)
        << "move " << i;
  }
}

TEST(TabuGoldenTest, PathInstancePinnedMovePrefix) {
  // Hand-computed golden prefix for s = {1,1,1,9,9,9}, initial split
  // {0,1} | {2,3,4,5} (H = 24):
  //   move 0: area 2, r1 -> r0, delta -24  (splits become {1,1,1}|{9,9,9})
  //   move 1: area 3, r1 -> r0, delta +24  (area 2's return is tabu)
  //   move 2: area 4, r1 -> r0, delta +24  (area 3's return is tabu)
  AreaSet areas = test::PathAreaSet({1, 1, 1, 9, 9, 9});
  std::vector<std::pair<int32_t, int32_t>> seed = {
      {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 1}, {5, 1}};
  TabuResult full = RunEngine(areas, {Constraint::Count(1, 6)}, seed, 2,
                              TabuEngine::kFullRebuild);
  TabuResult incremental = RunEngine(areas, {Constraint::Count(1, 6)}, seed,
                                     2, TabuEngine::kIncremental);
  ExpectIdenticalTrajectories(full, incremental);

  ASSERT_GE(incremental.trajectory.size(), 3u);
  EXPECT_EQ(incremental.trajectory[0].area, 2);
  EXPECT_EQ(incremental.trajectory[0].from, 1);
  EXPECT_EQ(incremental.trajectory[0].to, 0);
  EXPECT_DOUBLE_EQ(incremental.trajectory[0].delta, -24.0);
  EXPECT_EQ(incremental.trajectory[1].area, 3);
  EXPECT_EQ(incremental.trajectory[1].from, 1);
  EXPECT_EQ(incremental.trajectory[1].to, 0);
  EXPECT_DOUBLE_EQ(incremental.trajectory[1].delta, 24.0);
  EXPECT_EQ(incremental.trajectory[2].area, 4);
  EXPECT_EQ(incremental.trajectory[2].from, 1);
  EXPECT_EQ(incremental.trajectory[2].to, 0);
  EXPECT_DOUBLE_EQ(incremental.trajectory[2].delta, 24.0);
  EXPECT_DOUBLE_EQ(incremental.final_heterogeneity, 0.0);
}

TEST(TabuGoldenTest, TieHeavyGridTrajectoriesIdentical) {
  // Many duplicate attribute values = many candidates with equal deltas;
  // the canonical (delta, area, to) tie-break must make both engines pick
  // identically anyway.
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(5, 5),
      {{"s", {2, 2, 2, 5, 5, 2, 2, 5, 5, 5, 2, 5, 5, 5, 8,
              2, 5, 5, 8, 8, 5, 5, 8, 8, 8}}});
  std::vector<std::pair<int32_t, int32_t>> seed;
  for (int32_t a = 0; a < 25; ++a) seed.push_back({a, a % 5 < 2 ? 0 : 1});
  TabuResult full = RunEngine(areas, {Constraint::Count(1, 25)}, seed, 2,
                              TabuEngine::kFullRebuild);
  TabuResult incremental = RunEngine(areas, {Constraint::Count(1, 25)}, seed,
                                     2, TabuEngine::kIncremental);
  EXPECT_GT(full.moves_applied, 0);
  ExpectIdenticalTrajectories(full, incremental);
}

TEST(TabuGoldenTest, SumConstrainedThreeRegionTrajectoriesIdentical) {
  // A binding SUM constraint makes many candidates inadmissible, so both
  // engines must also agree on which candidates they tried and rejected.
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(6, 6),
      {{"s", {4, 9, 1, 7, 2, 8, 5, 3, 9, 1, 6, 4, 7, 3, 8, 2, 5, 9,
              1, 6, 4, 7, 2, 8, 3, 5, 9, 1, 6, 4, 2, 7, 8, 3, 5, 9}}});
  std::vector<std::pair<int32_t, int32_t>> seed;
  for (int32_t a = 0; a < 36; ++a) seed.push_back({a, a / 12});
  TabuResult full =
      RunEngine(areas, {Constraint::Sum("s", 30, kNoUpperBound)}, seed, 3,
                TabuEngine::kFullRebuild);
  TabuResult incremental =
      RunEngine(areas, {Constraint::Sum("s", 30, kNoUpperBound)}, seed, 3,
                TabuEngine::kIncremental);
  EXPECT_GT(full.moves_applied, 0);
  ExpectIdenticalTrajectories(full, incremental);
}

TEST(TabuGoldenTest, IncrementalEngineIsTheDefault) {
  SolverOptions defaults;
  EXPECT_EQ(defaults.tabu_engine, TabuEngine::kIncremental);
  EXPECT_FALSE(defaults.tabu_verify_connectivity_cache);
  EXPECT_FALSE(defaults.tabu_record_trajectory);
}

TEST(TabuGoldenTest, CandidateAccountingDiffersButMovesDoNot) {
  // The incremental engine re-scores strictly fewer candidates; the
  // trajectory must not change. (Budget-supervised runs may therefore trip
  // at different points between engines — golden runs use no supervisor.)
  // Savings require frontiers away from the mutated pair, so use an 8x8
  // grid with four quadrant regions: a move between two quadrants leaves
  // most of the other quadrants' frontier candidates untouched.
  std::vector<double> values;
  for (int32_t a = 0; a < 64; ++a) {
    values.push_back(static_cast<double>((a * 37) % 11));
  }
  AreaSet areas = test::MakeAreaSet(test::GridGraph(8, 8), {{"s", values}});
  std::vector<std::pair<int32_t, int32_t>> seed;
  for (int32_t a = 0; a < 64; ++a) {
    const int32_t row = a / 8;
    const int32_t col = a % 8;
    seed.push_back({a, (row / 4) * 2 + (col / 4)});
  }
  TabuResult full = RunEngine(areas, {Constraint::Count(1, 64)}, seed, 4,
                              TabuEngine::kFullRebuild);
  TabuResult incremental = RunEngine(areas, {Constraint::Count(1, 64)}, seed,
                                     4, TabuEngine::kIncremental);
  ExpectIdenticalTrajectories(full, incremental);
  EXPECT_GT(full.candidates_scored, 0);
  EXPECT_GT(incremental.candidates_scored, 0);
  EXPECT_LT(incremental.candidates_scored, full.candidates_scored);
  // The full engine never touches the articulation cache.
  EXPECT_EQ(full.cut_cache_hits + full.cut_cache_misses, 0);
  EXPECT_GT(incremental.cut_cache_hits + incremental.cut_cache_misses, 0);
}

// --- Construction-path golden pins ---------------------------------------
//
// The SoA RegionStats layout, the construction arena scratch, and the
// batched candidate rescoring are pure data-layout optimizations: a fixed
// seed must produce the bit-identical solution before and after. These pins
// freeze the full solve (feasibility -> construction -> tabu) for all three
// registered solvers on a 300-area synthetic instance. If a refactor
// changes any byte of the assignment or any bit of the final
// heterogeneity, the fingerprint string changes and the test names the
// divergence directly.

uint64_t Fnv1aAssignment(const Solution& s) {
  uint64_t h = 1469598103934665603ULL;
  for (int32_t r : s.region_of) {
    uint64_t x = static_cast<uint32_t>(r);
    for (int b = 0; b < 4; ++b) {
      h ^= (x >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

std::string SolveFingerprint(const std::string& solver_name) {
  auto areas = synthetic::MakeDefaultDataset("golden9", 300, /*seed=*/17);
  EXPECT_TRUE(areas.ok());
  SolverSpec spec;
  spec.solver = solver_name;
  spec.areas = &*areas;
  if (solver_name == "fact") {
    // One constraint per evaluation family (extrema / centrality /
    // counting) so every SoA group participates in the pinned solve.
    spec.constraints = {Constraint::Min("POP16UP", kNoLowerBound, 3000),
                        Constraint::Avg("EMPLOYED", 1500, 3500),
                        Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};
  } else {
    spec.attribute = "TOTALPOP";
    spec.threshold = 20000.0;
  }
  spec.options.seed = 1234;
  auto solver = CreateSolver(spec);
  if (!solver.ok()) return "create-error: " + solver.status().ToString();
  auto sol = (*solver)->Solve();
  if (!sol.ok()) return "solve-error: " + sol.status().ToString();
  char buf[128];
  std::snprintf(buf, sizeof buf, "p=%d u=%lld hash=%016llx het=%.17g",
                sol->p(), static_cast<long long>(sol->num_unassigned()),
                static_cast<unsigned long long>(Fnv1aAssignment(*sol)),
                sol->heterogeneity);
  return buf;
}

TEST(ConstructionGoldenTest, FactFixedSeedSolutionPinned) {
  EXPECT_EQ(SolveFingerprint("fact"), "p=32 u=0 hash=a6d8ceeab99800be het=485642.03758292162");
}

TEST(ConstructionGoldenTest, MaxpFixedSeedSolutionPinned) {
  EXPECT_EQ(SolveFingerprint("maxp"), "p=47 u=0 hash=4ccef91757c425e9 het=239130.23636412367");
}

TEST(ConstructionGoldenTest, SkaterFixedSeedSolutionPinned) {
  EXPECT_EQ(SolveFingerprint("skater"), "p=50 u=0 hash=32f1c416700cb1b7 het=219945.6657012068");
}

}  // namespace
}  // namespace emp
