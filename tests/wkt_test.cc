#include "geometry/wkt.h"

#include <gtest/gtest.h>

namespace emp {
namespace {

TEST(WktTest, PolygonToWktRepeatsClosingVertex) {
  Polygon sq({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(ToWkt(sq), "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
}

TEST(WktTest, PointToWkt) {
  EXPECT_EQ(ToWkt(Point{1.5, -2}), "POINT (1.5 -2)");
}

TEST(WktTest, ParsePolygonDropsClosingVertex) {
  auto p = PolygonFromWkt("POLYGON ((0 0, 2 0, 2 2, 0 0))");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 3u);
  EXPECT_DOUBLE_EQ(p->Area(), 2.0);
}

TEST(WktTest, ParsePolygonWithoutClosingVertex) {
  auto p = PolygonFromWkt("POLYGON((0 0,2 0,0 2))");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 3u);
}

TEST(WktTest, ParseIsCaseInsensitiveOnKeyword) {
  auto p = PolygonFromWkt("polygon ((0 0, 1 0, 0 1, 0 0))");
  EXPECT_TRUE(p.ok());
}

TEST(WktTest, PolygonRoundTrip) {
  Polygon orig({{0.25, 0.5}, {3, 0}, {2.5, 4.125}});
  auto parsed = PolygonFromWkt(ToWkt(orig));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), orig.size());
  for (size_t i = 0; i < orig.size(); ++i) {
    EXPECT_NEAR(parsed->vertices()[i].x, orig.vertices()[i].x, 1e-9);
    EXPECT_NEAR(parsed->vertices()[i].y, orig.vertices()[i].y, 1e-9);
  }
}

TEST(WktTest, PointRoundTrip) {
  auto p = PointFromWkt(ToWkt(Point{-7.5, 3.25}));
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->x, -7.5);
  EXPECT_DOUBLE_EQ(p->y, 3.25);
}

TEST(WktTest, RejectsMissingKeyword) {
  EXPECT_FALSE(PolygonFromWkt("LINESTRING (0 0, 1 1)").ok());
  EXPECT_FALSE(PointFromWkt("((1 2))").ok());
}

TEST(WktTest, RejectsMalformedCoordinates) {
  EXPECT_FALSE(PolygonFromWkt("POLYGON ((0 0, 1, 1 1, 0 0))").ok());
  EXPECT_FALSE(PolygonFromWkt("POLYGON ((0 0 9, 1 0, 1 1))").ok());
  EXPECT_FALSE(PointFromWkt("POINT (1)").ok());
}

TEST(WktTest, RejectsTooFewVertices) {
  EXPECT_FALSE(PolygonFromWkt("POLYGON ((0 0, 1 1, 0 0))").ok());
}

TEST(WktTest, RejectsMissingParens) {
  EXPECT_FALSE(PolygonFromWkt("POLYGON 0 0, 1 0, 1 1").ok());
  EXPECT_FALSE(PolygonFromWkt("POLYGON (0 0, 1 0, 1 1)").ok());
}

}  // namespace
}  // namespace emp
