#include "core/local_search/neighborhood.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/local_search/heterogeneity.h"
#include "core/local_search/move.h"
#include "core/local_search/objective.h"
#include "test_util.h"

namespace emp {
namespace {

struct NeighborhoodSetup {
  NeighborhoodSetup(const AreaSet* areas_in, std::vector<Constraint> cs)
      : areas(areas_in),
        bound(std::move(BoundConstraints::Create(areas_in, std::move(cs)))
                  .value()),
        partition(&bound),
        connectivity(&areas_in->graph()) {}

  const AreaSet* areas;
  BoundConstraints bound;
  Partition partition;
  ConnectivityChecker connectivity;
};

/// Drains a neighborhood in canonical order into a vector.
std::vector<CandidateMove> Dump(TabuNeighborhood* nbhd) {
  std::vector<CandidateMove> out;
  nbhd->VisitInOrder([&](const CandidateMove& mv) {
    out.push_back(mv);
    return true;
  });
  return out;
}

/// Candidate sets must agree exactly: same moves in the same canonical
/// order with bit-identical deltas.
void ExpectSameCandidates(const std::vector<CandidateMove>& incremental,
                          const std::vector<CandidateMove>& fresh) {
  ASSERT_EQ(incremental.size(), fresh.size());
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(incremental[i].area, fresh[i].area) << "candidate " << i;
    EXPECT_EQ(incremental[i].from, fresh[i].from) << "candidate " << i;
    EXPECT_EQ(incremental[i].to, fresh[i].to) << "candidate " << i;
    // Bit-identical, not approximately equal: unaffected candidates must
    // keep their previously computed deltas verbatim.
    EXPECT_EQ(incremental[i].delta, fresh[i].delta) << "candidate " << i;
  }
}

TEST(TabuNeighborhoodTest, RebuildYieldsCanonicalOrder) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(3, 3), {{"s", {4, 4, 1, 4, 2, 2, 7, 7, 2}}});
  NeighborhoodSetup setup(&areas, {Constraint::Count(1, 9)});
  int32_t r0 = setup.partition.CreateRegion();
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a : {0, 1, 2}) setup.partition.Assign(a, r0);
  for (int32_t a : {3, 4, 5}) setup.partition.Assign(a, r1);
  for (int32_t a : {6, 7, 8}) setup.partition.Assign(a, r2);

  HeterogeneityObjective objective(setup.partition);
  TabuNeighborhood nbhd(&setup.partition, &objective);
  const int64_t scored = nbhd.Rebuild();
  std::vector<CandidateMove> dump = Dump(&nbhd);
  EXPECT_EQ(static_cast<int64_t>(dump.size()), scored);
  EXPECT_EQ(nbhd.live_candidates(), scored);
  for (size_t i = 1; i < dump.size(); ++i) {
    EXPECT_TRUE(CandidateOrderLess(dump[i - 1], dump[i]))
        << "out of order at " << i;
  }
  // Every boundary area of every (size > 1) region contributes one
  // candidate per distinct adjacent foreign region.
  for (const CandidateMove& mv : dump) {
    EXPECT_EQ(setup.partition.RegionOf(mv.area), mv.from);
    EXPECT_NE(mv.from, mv.to);
    EXPECT_DOUBLE_EQ(mv.delta,
                     objective.MoveDelta(mv.area, mv.from, mv.to));
  }
}

TEST(TabuNeighborhoodTest, VisitingDoesNotConsumeCandidates) {
  AreaSet areas = test::PathAreaSet({1, 1, 1, 9, 9, 9});
  NeighborhoodSetup setup(&areas, {Constraint::Count(1, 6)});
  int32_t r0 = setup.partition.CreateRegion();
  int32_t r1 = setup.partition.CreateRegion();
  for (int32_t a : {0, 1, 2}) setup.partition.Assign(a, r0);
  for (int32_t a : {3, 4, 5}) setup.partition.Assign(a, r1);

  HeterogeneityObjective objective(setup.partition);
  TabuNeighborhood nbhd(&setup.partition, &objective);
  nbhd.Rebuild();
  std::vector<CandidateMove> first = Dump(&nbhd);
  std::vector<CandidateMove> second = Dump(&nbhd);
  ExpectSameCandidates(second, first);

  // An early-stopping visit also leaves the structure intact.
  int visited = 0;
  nbhd.VisitInOrder([&](const CandidateMove&) { return ++visited < 1; });
  EXPECT_EQ(visited, 1);
  ExpectSameCandidates(Dump(&nbhd), first);
}

TEST(TabuNeighborhoodTest, IncrementalMatchesFreshRebuildAfterEachMove) {
  // Random-walk a 5x5 grid partition; after every applied move the
  // incrementally maintained candidate set must equal a from-scratch
  // rebuild, deltas bit-for-bit.
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(5, 5),
      {{"s", {12, 7, 9, 14, 6, 8, 11, 5, 13, 9, 10, 7, 12,
              6, 9, 11, 8, 14, 5, 10, 7, 13, 9, 6, 12}}});
  NeighborhoodSetup setup(&areas, {Constraint::Count(1, 25)});
  int32_t r0 = setup.partition.CreateRegion();
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a = 0; a < 25; ++a) {
    setup.partition.Assign(a, a % 5 < 2 ? r0 : (a < 13 ? r1 : r2));
  }

  HeterogeneityObjective objective(setup.partition);
  TabuNeighborhood nbhd(&setup.partition, &objective);
  nbhd.Rebuild();

  Rng rng(123);
  int applied = 0;
  for (int step = 0; step < 200 && applied < 40; ++step) {
    // Sample any candidate, keep it only if it is a legal Tabu move.
    std::vector<CandidateMove> all = Dump(&nbhd);
    ASSERT_FALSE(all.empty());
    const CandidateMove mv = all[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(all.size()) - 1))];
    if (!ConstraintPreservingMove(setup.partition, &setup.connectivity,
                                  mv.area, mv.from, mv.to)) {
      continue;
    }
    objective.ApplyMove(mv.area, mv.from, mv.to);
    setup.partition.Move(mv.area, mv.to);
    nbhd.OnMoveApplied(mv.area, mv.from, mv.to);
    ++applied;

    TabuNeighborhood fresh(&setup.partition, &objective);
    fresh.Rebuild();
    ExpectSameCandidates(Dump(&nbhd), Dump(&fresh));
    EXPECT_EQ(nbhd.live_candidates(), fresh.live_candidates());
  }
  EXPECT_GE(applied, 20);
}

TEST(TabuNeighborhoodTest, DonorCapabilityTransitions) {
  // Moving the donor's penultimate member away kills the last member's
  // candidates (size-1 regions cannot donate); moving one back revives
  // them. Both transitions must match a fresh rebuild. 2x2 grid
  // (0 1 / 2 3): area 0 always borders r1 through area 2.
  AreaSet areas = test::MakeAreaSet(test::GridGraph(2, 2),
                                    {{"s", {1, 2, 3, 4}}});
  NeighborhoodSetup setup(&areas, {Constraint::Count(1, 4)});
  int32_t r0 = setup.partition.CreateRegion();
  int32_t r1 = setup.partition.CreateRegion();
  for (int32_t a : {0, 1}) setup.partition.Assign(a, r0);
  for (int32_t a : {2, 3}) setup.partition.Assign(a, r1);

  HeterogeneityObjective objective(setup.partition);
  TabuNeighborhood nbhd(&setup.partition, &objective);
  nbhd.Rebuild();

  auto apply = [&](int32_t area, int32_t from, int32_t to) {
    objective.ApplyMove(area, from, to);
    setup.partition.Move(area, to);
    nbhd.OnMoveApplied(area, from, to);
    TabuNeighborhood fresh(&setup.partition, &objective);
    fresh.Rebuild();
    ExpectSameCandidates(Dump(&nbhd), Dump(&fresh));
  };

  apply(1, r0, r1);  // r0 = {0}: area 0 must lose its candidate.
  for (const CandidateMove& mv : Dump(&nbhd)) EXPECT_NE(mv.area, 0);
  apply(1, r1, r0);  // r0 = {0, 1}: area 0's candidate returns.
  bool area0_present = false;
  for (const CandidateMove& mv : Dump(&nbhd)) {
    if (mv.area == 0) area0_present = true;
  }
  EXPECT_TRUE(area0_present);
}

TEST(ArticulationCacheTest, AgreesWithBfsOnEveryQuery) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(4, 4),
      {{"s", {4, 9, 1, 7, 2, 8, 5, 3, 9, 1, 6, 4, 7, 3, 8, 2}}});
  NeighborhoodSetup setup(&areas, {Constraint::Count(1, 16)});
  // An L-shaped region (articulated at the corner) plus the rest.
  int32_t r0 = setup.partition.CreateRegion();
  int32_t r1 = setup.partition.CreateRegion();
  for (int32_t a : {0, 4, 8, 12, 13, 14}) setup.partition.Assign(a, r0);
  for (int32_t a : {1, 2, 3, 5, 6, 7, 9, 10, 11, 15}) {
    setup.partition.Assign(a, r1);
  }

  ArticulationCache cache(&setup.partition, &setup.connectivity);
  for (int32_t rid : setup.partition.AliveRegionIds()) {
    for (int32_t member : setup.partition.region(rid).areas) {
      EXPECT_EQ(cache.DonorKeepsContiguity(rid, member),
                setup.connectivity.IsConnectedWithout(
                    setup.partition.region(rid).areas, member))
          << "region " << rid << " area " << member;
    }
  }
  // One Tarjan pass per region; every further query is a cache hit.
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.hits(), 16 - 2);
}

TEST(ArticulationCacheTest, InvalidateForcesRecomputation) {
  AreaSet areas = test::PathAreaSet({1, 2, 3, 4});
  NeighborhoodSetup setup(&areas, {Constraint::Count(1, 4)});
  int32_t r0 = setup.partition.CreateRegion();
  int32_t r1 = setup.partition.CreateRegion();
  for (int32_t a : {0, 1, 2}) setup.partition.Assign(a, r0);
  setup.partition.Assign(3, r1);

  ArticulationCache cache(&setup.partition, &setup.connectivity);
  // Middle of a path is a cut vertex; the ends are not.
  EXPECT_TRUE(cache.DonorKeepsContiguity(r0, 0));
  EXPECT_FALSE(cache.DonorKeepsContiguity(r0, 1));
  EXPECT_TRUE(cache.DonorKeepsContiguity(r0, 2));
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 2);

  // Mutate r0 (2 leaves for r1) and invalidate: the stale answer for
  // area 1 (a cut vertex of {0,1,2} but not of {0,1}) must be recomputed.
  setup.partition.Move(2, r1);
  cache.Invalidate(r0);
  cache.Invalidate(r1);
  EXPECT_TRUE(cache.DonorKeepsContiguity(r0, 1));
  EXPECT_EQ(cache.misses(), 2);
}

TEST(ArticulationCacheTest, TwoMemberRegionsAlwaysSurviveDonation) {
  AreaSet areas = test::PathAreaSet({1, 2, 3});
  NeighborhoodSetup setup(&areas, {Constraint::Count(1, 3)});
  int32_t r0 = setup.partition.CreateRegion();
  int32_t r1 = setup.partition.CreateRegion();
  for (int32_t a : {0, 1}) setup.partition.Assign(a, r0);
  setup.partition.Assign(2, r1);

  ArticulationCache cache(&setup.partition, &setup.connectivity);
  EXPECT_TRUE(cache.DonorKeepsContiguity(r0, 0));
  EXPECT_TRUE(cache.DonorKeepsContiguity(r0, 1));
  EXPECT_TRUE(cache.DonorKeepsContiguity(r1, 2));  // singleton -> empty
}

TEST(ArticulationCacheTest, RandomizedAgreementUnderMutation) {
  // Random walk with invalidation after every move; every (region, member)
  // query must keep matching the exact BFS throughout.
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(5, 5),
      {{"s", {12, 7, 9, 14, 6, 8, 11, 5, 13, 9, 10, 7, 12,
              6, 9, 11, 8, 14, 5, 10, 7, 13, 9, 6, 12}}});
  NeighborhoodSetup setup(&areas, {Constraint::Count(1, 25)});
  int32_t r0 = setup.partition.CreateRegion();
  int32_t r1 = setup.partition.CreateRegion();
  for (int32_t a = 0; a < 25; ++a) {
    setup.partition.Assign(a, a < 13 ? r0 : r1);
  }

  HeterogeneityObjective objective(setup.partition);
  TabuNeighborhood nbhd(&setup.partition, &objective);
  nbhd.Rebuild();
  ArticulationCache cache(&setup.partition, &setup.connectivity);
  Rng rng(7);
  for (int step = 0; step < 60; ++step) {
    for (int32_t rid : setup.partition.AliveRegionIds()) {
      for (int32_t member : setup.partition.region(rid).areas) {
        ASSERT_EQ(cache.DonorKeepsContiguity(rid, member),
                  setup.connectivity.IsConnectedWithout(
                      setup.partition.region(rid).areas, member))
            << "step " << step << " region " << rid << " area " << member;
      }
    }
    std::vector<CandidateMove> all = Dump(&nbhd);
    if (all.empty()) break;
    const CandidateMove mv = all[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(all.size()) - 1))];
    if (!ConstraintPreservingMove(setup.partition, &setup.connectivity,
                                  mv.area, mv.from, mv.to)) {
      continue;
    }
    objective.ApplyMove(mv.area, mv.from, mv.to);
    setup.partition.Move(mv.area, mv.to);
    nbhd.OnMoveApplied(mv.area, mv.from, mv.to);
    cache.Invalidate(mv.from);
    cache.Invalidate(mv.to);
  }
}

}  // namespace
}  // namespace emp
