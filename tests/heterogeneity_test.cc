#include "core/local_search/heterogeneity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "test_util.h"

namespace emp {
namespace {

double NaivePairwise(const std::vector<double>& vals) {
  double total = 0;
  for (size_t i = 0; i < vals.size(); ++i) {
    for (size_t j = i + 1; j < vals.size(); ++j) {
      total += std::fabs(vals[i] - vals[j]);
    }
  }
  return total;
}

TEST(RegionDissimilarityTest, TotalMatchesNaive) {
  RegionDissimilarity rd;
  std::vector<double> vals = {3, 1, 4, 1, 5, 9, 2, 6};
  for (double v : vals) rd.Add(v);
  EXPECT_NEAR(rd.TotalPairwise(), NaivePairwise(vals), 1e-9);
}

TEST(RegionDissimilarityTest, ContributionMatchesNaive) {
  RegionDissimilarity rd;
  std::vector<double> vals = {2, 7, 7, 10};
  for (double v : vals) rd.Add(v);
  for (double probe : {0.0, 2.0, 5.0, 7.0, 11.0}) {
    double expect = 0;
    for (double v : vals) expect += std::fabs(probe - v);
    EXPECT_NEAR(rd.ContributionOf(probe), expect, 1e-9) << probe;
  }
}

TEST(RegionDissimilarityTest, RemoveUndoesAdd) {
  RegionDissimilarity rd;
  rd.Add(5);
  rd.Add(2);
  rd.Add(8);
  double before = rd.TotalPairwise();
  rd.Add(3);
  rd.Remove(3);
  EXPECT_NEAR(rd.TotalPairwise(), before, 1e-9);
  EXPECT_EQ(rd.size(), 3);
}

TEST(RegionDissimilarityTest, RandomTraceMatchesNaive) {
  Rng rng(31);
  RegionDissimilarity rd;
  std::vector<double> vals;
  for (int step = 0; step < 300; ++step) {
    if (vals.empty() || rng.Bernoulli(0.6)) {
      double v = std::floor(rng.Uniform(0, 50));  // duplicates likely
      vals.push_back(v);
      rd.Add(v);
    } else {
      size_t idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(vals.size()) - 1));
      rd.Remove(vals[idx]);
      vals.erase(vals.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_NEAR(rd.TotalPairwise(), NaivePairwise(vals), 1e-6);
  }
}

class TrackerTest : public ::testing::Test {
 protected:
  TrackerTest()
      : areas_(test::MakeAreaSet(test::GridGraph(3, 3),
                                 {{"s", {5, 1, 9, 3, 7, 2, 8, 4, 6}}})),
        bound_(std::move(BoundConstraints::Create(
                             &areas_, {Constraint::Count(1, 9)}))
                   .value()) {}

  AreaSet areas_;
  BoundConstraints bound_;
};

TEST_F(TrackerTest, InitialTotalMatchesComputeHeterogeneity) {
  Partition p(&bound_);
  int32_t r1 = p.CreateRegion();
  int32_t r2 = p.CreateRegion();
  for (int32_t a : {0, 1, 3, 4}) p.Assign(a, r1);
  for (int32_t a : {2, 5, 8}) p.Assign(a, r2);
  HeterogeneityTracker tracker(p);
  EXPECT_NEAR(tracker.total(), ComputeHeterogeneity(p), 1e-9);
}

TEST_F(TrackerTest, MoveDeltaMatchesRecomputation) {
  Partition p(&bound_);
  int32_t r1 = p.CreateRegion();
  int32_t r2 = p.CreateRegion();
  for (int32_t a : {0, 1, 3, 4}) p.Assign(a, r1);
  for (int32_t a : {2, 5, 8}) p.Assign(a, r2);
  HeterogeneityTracker tracker(p);
  double before = ComputeHeterogeneity(p);
  double delta = tracker.MoveDelta(1, r1, r2);
  p.Move(1, r2);
  tracker.ApplyMove(1, r1, r2);
  double after = ComputeHeterogeneity(p);
  EXPECT_NEAR(after - before, delta, 1e-9);
  EXPECT_NEAR(tracker.total(), after, 1e-9);
}

TEST_F(TrackerTest, LongMoveSequenceStaysExact) {
  Partition p(&bound_);
  int32_t r1 = p.CreateRegion();
  int32_t r2 = p.CreateRegion();
  int32_t r3 = p.CreateRegion();
  for (int32_t a : {0, 1, 2}) p.Assign(a, r1);
  for (int32_t a : {3, 4, 5}) p.Assign(a, r2);
  for (int32_t a : {6, 7, 8}) p.Assign(a, r3);
  HeterogeneityTracker tracker(p);
  Rng rng(17);
  std::vector<int32_t> rids = {r1, r2, r3};
  for (int step = 0; step < 200; ++step) {
    int32_t area = static_cast<int32_t>(rng.UniformInt(0, 8));
    int32_t from = p.RegionOf(area);
    if (p.region(from).size() <= 1) continue;
    int32_t to = rids[static_cast<size_t>(rng.UniformInt(0, 2))];
    if (to == from) continue;
    p.Move(area, to);
    tracker.ApplyMove(area, from, to);
    ASSERT_NEAR(tracker.total(), ComputeHeterogeneity(p), 1e-6);
  }
}

TEST_F(TrackerTest, UnassignedAreasExcluded) {
  Partition p(&bound_);
  int32_t r = p.CreateRegion();
  for (int32_t a : {0, 1}) p.Assign(a, r);
  // Areas 2..8 unassigned and must not count.
  HeterogeneityTracker tracker(p);
  EXPECT_NEAR(tracker.total(), std::fabs(5.0 - 1.0), 1e-12);
}

}  // namespace
}  // namespace emp
