#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"
#include "core/fact_solver.h"
#include "data/synthetic/dataset_catalog.h"
#include "obs/progress.h"

// Real ITIMER_PROF traffic is noisy under TSan/ASan interceptors; the
// deterministic slot-accounting tests below run everywhere and the
// live-timer solve test skips itself on sanitizer builds.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define EMP_SANITIZER_BUILD 1
#endif
#if !defined(EMP_SANITIZER_BUILD) && defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define EMP_SANITIZER_BUILD 1
#endif
#endif

namespace emp {
namespace obs {
namespace {

/// Resets the profiler's accumulated table: Start() zeroes all state,
/// and at 1 Hz of *CPU time* no real tick can land before the immediate
/// Stop(). Leaves the profiler disabled.
void ResetProfilerState() {
  ASSERT_TRUE(PhaseProfiler::Start(1).ok());
  PhaseProfiler::Stop();
}

TEST(PhaseProfilerTest, StartValidatesRate) {
  EXPECT_EQ(PhaseProfiler::Start(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(PhaseProfiler::Start(1001).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(PhaseProfiler::enabled());
}

TEST(PhaseProfilerTest, StartStopLifecycle) {
  ASSERT_TRUE(PhaseProfiler::Start(97).ok());
  EXPECT_TRUE(PhaseProfiler::enabled());
  EXPECT_EQ(PhaseProfiler::Start(50).code(),
            StatusCode::kFailedPrecondition);
  PhaseProfiler::Stop();
  EXPECT_FALSE(PhaseProfiler::enabled());
  PhaseProfiler::Stop();  // idempotent
  EXPECT_FALSE(PhaseProfiler::enabled());
}

TEST(PhaseProfilerTest, TicksAttributeToPhasesSortedByWeight) {
  ResetProfilerState();
  static const char* const kTabu = "tabu";
  static const char* const kConstruction = "construction";
  PhaseProfiler::RecordTickForTest(kTabu);
  PhaseProfiler::RecordTickForTest(kTabu);
  PhaseProfiler::RecordTickForTest(kTabu);
  PhaseProfiler::RecordTickForTest(kConstruction);
  PhaseProfiler::RecordTickForTest(nullptr);  // pre-publish thread

  auto doc = json::Parse(PhaseProfiler::ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("enabled")->AsBool(), false);
  EXPECT_EQ(doc->Find("total_ticks")->AsNumber(), 5);
  EXPECT_EQ(doc->Find("overflow_ticks")->AsNumber(), 0);
  const auto& phases = doc->Find("phases")->AsArray();
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].Find("phase")->AsString(), "tabu");
  EXPECT_EQ(phases[0].Find("ticks")->AsNumber(), 3);
  EXPECT_DOUBLE_EQ(phases[0].Find("fraction")->AsNumber(), 0.6);
  // Tied counts order by name: "construction" < "unattributed".
  EXPECT_EQ(phases[1].Find("phase")->AsString(), "construction");
  EXPECT_EQ(phases[2].Find("phase")->AsString(), "unattributed");
}

TEST(PhaseProfilerTest, SlotOverflowIsCountedNotLost) {
  ResetProfilerState();
  // More distinct names than the 32-slot table holds. The names must
  // outlive ToJson(), hence the static pool.
  static std::vector<std::string> pool;
  if (pool.empty()) {
    for (int i = 0; i < 40; ++i) {
      pool.push_back("phase_" + std::to_string(i));
    }
  }
  for (const std::string& name : pool) {
    PhaseProfiler::RecordTickForTest(name.c_str());
  }
  auto doc = json::Parse(PhaseProfiler::ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("total_ticks")->AsNumber(), 40);
  EXPECT_EQ(doc->Find("overflow_ticks")->AsNumber(), 8);
  EXPECT_EQ(doc->Find("phases")->AsArray().size(), 32u);
}

TEST(PhaseProfilerTest, SetThreadPhaseIsNoOpSafeWhileDisabled) {
  // The board calls this only while enabled, but the contract is that a
  // stray publish never crashes.
  PhaseProfiler::SetThreadPhase("tabu");
  PhaseProfiler::SetThreadPhase(nullptr);
}

/// The PR-5 discipline check with a *live* timer: a fixed-seed solve
/// sampled by SIGPROF must produce the same solution as an unsampled
/// one — the handler only reads solver state.
TEST(PhaseProfilerTest, LiveSamplingDoesNotPerturbFixedSeedSolve) {
#ifdef EMP_SANITIZER_BUILD
  GTEST_SKIP() << "real ITIMER_PROF traffic is not sanitizer-friendly";
#endif
  auto areas = synthetic::MakeDefaultDataset("prof", 250, /*seed=*/7);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};
  SolverOptions options;
  options.seed = 4321;
  options.construction_iterations = 6;

  FactSolver solver(&*areas, cs, options);
  RunContext plain_ctx = MakeRunContext(options);
  auto plain = solver.Solve(plain_ctx);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  ProgressBoard board;
  ASSERT_TRUE(PhaseProfiler::Start(997).ok());
  RunContext sampled_ctx = MakeRunContext(options);
  sampled_ctx.progress_board = &board;
  auto sampled = solver.Solve(sampled_ctx);
  PhaseProfiler::Stop();
  ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();

  EXPECT_EQ(sampled->p(), plain->p());
  EXPECT_EQ(sampled->region_of, plain->region_of);
  EXPECT_DOUBLE_EQ(sampled->heterogeneity, plain->heterogeneity);

  // The dump is valid JSON whether or not any tick landed (CPU-time
  // delivery makes counts load-dependent; shape is what we can pin).
  auto doc = json::Parse(PhaseProfiler::ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_NE(doc->Find("phases"), nullptr);
}

}  // namespace
}  // namespace obs
}  // namespace emp
