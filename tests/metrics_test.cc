#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fact_solver.h"
#include "data/synthetic/dataset_catalog.h"
#include "test_util.h"

namespace emp {
namespace {

TEST(GiniTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({5}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0, 0, 0}), 0.0);
}

TEST(GiniTest, PerfectEqualityIsZero) {
  EXPECT_NEAR(GiniCoefficient({3, 3, 3, 3}), 0.0, 1e-12);
}

TEST(GiniTest, ExtremeInequalityApproachesOne) {
  double g = GiniCoefficient({0, 0, 0, 0, 0, 0, 0, 0, 0, 100});
  EXPECT_GT(g, 0.85);
  EXPECT_LT(g, 1.0);
}

TEST(GiniTest, KnownValue) {
  // For {1, 3}: gini = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
  EXPECT_NEAR(GiniCoefficient({1, 3}), 0.25, 1e-12);
}

TEST(RegionCompactnessTest, SquareBlockValue) {
  // A unit square region: IPQ = 4*pi*1 / 16 ≈ 0.785.
  const char* unused = nullptr;
  (void)unused;
  std::vector<Polygon> polys = {Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}})};
  auto graph = ContiguityGraph::FromEdges(1, {});
  AttributeTable t(1);
  ASSERT_TRUE(t.AddColumn("X", {1}).ok());
  auto areas = AreaSet::Create("sq", polys, std::move(graph).value(),
                               std::move(t), "X");
  ASSERT_TRUE(areas.ok());
  auto q = RegionCompactness(*areas, {0});
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(*q, 3.14159265 / 4.0, 1e-6);
}

TEST(RegionCompactnessTest, MergedSquaresLessCompactThanSquare) {
  // Two unit squares side by side: 2x1 rectangle, IPQ = 8*pi/36 ≈ 0.698.
  std::vector<Polygon> polys = {
      Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}}),
      Polygon({{1, 0}, {2, 0}, {2, 1}, {1, 1}}),
  };
  auto graph = ContiguityGraph::FromEdges(2, {{0, 1}});
  AttributeTable t(2);
  ASSERT_TRUE(t.AddColumn("X", {1, 1}).ok());
  auto areas = AreaSet::Create("rect", polys, std::move(graph).value(),
                               std::move(t), "X");
  ASSERT_TRUE(areas.ok());
  auto q = RegionCompactness(*areas, {0, 1});
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(*q, 4.0 * 3.14159265 * 2.0 / 36.0, 1e-6);
}

TEST(RegionCompactnessTest, RequiresGeometryAndNonEmpty) {
  AreaSet flat = test::PathAreaSet({1, 2});
  EXPECT_FALSE(RegionCompactness(flat, {0}).ok());
}

TEST(MetricsTest, EndToEndOnSyntheticSolution) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  auto sol =
      SolveEmp(*areas, {Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)});
  ASSERT_TRUE(sol.ok());
  auto metrics = ComputeMetrics(*areas, *sol);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->p, sol->p());
  EXPECT_EQ(metrics->unassigned, sol->num_unassigned());
  EXPECT_GT(metrics->mean_region_size, 0.0);
  EXPECT_GE(metrics->min_region_size, 1);
  EXPECT_LE(metrics->min_region_size, metrics->max_region_size);
  EXPECT_GE(metrics->size_gini, 0.0);
  EXPECT_LT(metrics->size_gini, 1.0);
  EXPECT_GT(metrics->mean_compactness, 0.0);
  EXPECT_LE(metrics->mean_compactness, 1.0);
  EXPECT_DOUBLE_EQ(metrics->heterogeneity, sol->heterogeneity);
  // The report mentions the headline numbers.
  std::string report = metrics->ToString();
  EXPECT_NE(report.find("p="), std::string::npos);
  EXPECT_NE(report.find("gini="), std::string::npos);
}

TEST(MetricsTest, GeometrylessMapReportsZeroCompactness) {
  AreaSet areas = test::PathAreaSet({5, 6, 7, 8});
  auto sol = SolveEmp(areas, {Constraint::Sum("s", 10, kNoUpperBound)});
  ASSERT_TRUE(sol.ok());
  auto metrics = ComputeMetrics(areas, *sol);
  ASSERT_TRUE(metrics.ok());
  EXPECT_DOUBLE_EQ(metrics->mean_compactness, 0.0);
}

TEST(MetricsTest, EmptySolutionHandled) {
  AreaSet areas = test::PathAreaSet({1, 1, 1});
  Solution sol;
  sol.region_of.assign(3, -1);
  sol.unassigned = {0, 1, 2};
  auto metrics = ComputeMetrics(areas, sol);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->p, 0);
  EXPECT_DOUBLE_EQ(metrics->unassigned_fraction, 1.0);
  EXPECT_EQ(metrics->min_region_size, 0);
}

}  // namespace
}  // namespace emp
