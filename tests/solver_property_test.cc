// Property-based sweeps (parameterized gtest): for a grid of constraint
// combinations, threshold ranges, seeds, and solver options, every FaCT
// output must satisfy the EMP output invariants (§III):
//   - regions are disjoint and cover exactly A \ U0,
//   - each region is spatially contiguous,
//   - each region satisfies every user-defined constraint,
//   - local search never worsens heterogeneity,
//   - the solver is deterministic for a fixed seed.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "core/fact_solver.h"
#include "data/synthetic/dataset_catalog.h"
#include "graph/connectivity.h"

namespace emp {
namespace {

const AreaSet& SharedMap() {
  static const AreaSet* kMap = [] {
    auto areas = synthetic::MakeDefaultDataset("prop", 250, 1234);
    if (!areas.ok()) std::abort();
    return new AreaSet(std::move(areas).value());
  }();
  return *kMap;
}

/// Builds the constraint set named by a combo code, mirroring the paper's
/// notation: M (MIN), A (AVG), S (SUM), C (COUNT), X (MAX).
std::vector<Constraint> BuildCombo(const std::string& combo, double scale) {
  std::vector<Constraint> cs;
  for (char c : combo) {
    switch (c) {
      case 'M':
        cs.push_back(Constraint::Min("POP16UP", kNoLowerBound, 3000 * scale));
        break;
      case 'X':
        cs.push_back(
            Constraint::Max("POP16UP", 2500 / scale, kNoUpperBound));
        break;
      case 'A':
        cs.push_back(Constraint::Avg("EMPLOYED", 1200, 2200 * scale));
        break;
      case 'S':
        cs.push_back(
            Constraint::Sum("TOTALPOP", 15000 * scale, kNoUpperBound));
        break;
      case 'C':
        cs.push_back(Constraint::Count(1, 20 * scale));
        break;
    }
  }
  return cs;
}

using ComboParam = std::tuple<std::string, double, uint64_t>;

class SolverPropertyTest : public ::testing::TestWithParam<ComboParam> {};

TEST_P(SolverPropertyTest, OutputInvariantsHold) {
  const auto& [combo, scale, seed] = GetParam();
  const AreaSet& areas = SharedMap();
  std::vector<Constraint> cs = BuildCombo(combo, scale);

  SolverOptions options;
  options.seed = seed;
  options.construction_iterations = 2;
  options.tabu_max_no_improve = 60;  // keep the sweep fast

  auto sol = SolveEmp(areas, cs, options);
  if (!sol.ok()) {
    // Infeasibility is an acceptable verdict, but only with that code.
    EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible)
        << sol.status().ToString();
    return;
  }

  // --- Partition invariants.
  std::set<int32_t> seen;
  for (size_t rid = 0; rid < sol->regions.size(); ++rid) {
    ASSERT_FALSE(sol->regions[rid].empty());
    for (int32_t a : sol->regions[rid]) {
      EXPECT_TRUE(seen.insert(a).second);
      EXPECT_EQ(sol->region_of[static_cast<size_t>(a)],
                static_cast<int32_t>(rid));
    }
  }
  for (int32_t a : sol->unassigned) {
    EXPECT_TRUE(seen.insert(a).second);
    EXPECT_EQ(sol->region_of[static_cast<size_t>(a)], -1);
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(areas.num_areas()));

  // --- Contiguity + constraint satisfaction.
  auto bc = BoundConstraints::Create(&areas, cs);
  ASSERT_TRUE(bc.ok());
  ConnectivityChecker connectivity(&areas.graph());
  for (const auto& region : sol->regions) {
    EXPECT_TRUE(connectivity.IsConnected(region));
    RegionStats stats(&*bc);
    for (int32_t a : region) stats.Add(a);
    EXPECT_TRUE(stats.SatisfiesAll())
        << "combo=" << combo << " scale=" << scale;
  }

  // --- Objective sanity.
  EXPECT_LE(sol->heterogeneity,
            sol->heterogeneity_before_local_search + 1e-6);

  // --- Determinism.
  auto again = SolveEmp(areas, cs, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->region_of, sol->region_of);
}

INSTANTIATE_TEST_SUITE_P(
    ConstraintCombos, SolverPropertyTest,
    ::testing::Combine(
        ::testing::Values("M", "A", "S", "C", "X", "MS", "MA", "MAS", "XA",
                          "SC", "MASC", "MXASC"),
        ::testing::Values(0.8, 1.0, 1.3),
        ::testing::Values(1u, 99u)),
    [](const ::testing::TestParamInfo<ComboParam>& info) {
      return std::get<0>(info.param) + "_scale" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_seed" + std::to_string(std::get<2>(info.param));
    });

/// Pickup-order ablation: every order must produce valid output.
class PickupOrderPropertyTest
    : public ::testing::TestWithParam<PickupOrder> {};

TEST_P(PickupOrderPropertyTest, ValidUnderAllOrders) {
  const AreaSet& areas = SharedMap();
  std::vector<Constraint> cs = {
      Constraint::Min("POP16UP", kNoLowerBound, 3000),
      Constraint::Avg("EMPLOYED", 1200, 2800),
      Constraint::Sum("TOTALPOP", 15000, kNoUpperBound),
  };
  SolverOptions options;
  options.pickup_order = GetParam();
  options.tabu_max_no_improve = 40;
  auto sol = SolveEmp(areas, cs, options);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  auto bc = BoundConstraints::Create(&areas, cs);
  ASSERT_TRUE(bc.ok());
  ConnectivityChecker connectivity(&areas.graph());
  for (const auto& region : sol->regions) {
    EXPECT_TRUE(connectivity.IsConnected(region));
    RegionStats stats(&*bc);
    for (int32_t a : region) stats.Add(a);
    EXPECT_TRUE(stats.SatisfiesAll());
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, PickupOrderPropertyTest,
                         ::testing::Values(PickupOrder::kRandom,
                                           PickupOrder::kAscending,
                                           PickupOrder::kDescending),
                         [](const ::testing::TestParamInfo<PickupOrder>& i) {
                           switch (i.param) {
                             case PickupOrder::kRandom:
                               return std::string("random");
                             case PickupOrder::kAscending:
                               return std::string("ascending");
                             case PickupOrder::kDescending:
                               return std::string("descending");
                           }
                           return std::string("unknown");
                         });

}  // namespace
}  // namespace emp
