#include <gtest/gtest.h>

#include <cmath>

#include "geometry/box.h"
#include "geometry/point.h"
#include "geometry/polygon.h"

namespace emp {
namespace {

Polygon UnitSquare() {
  return Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

TEST(PointTest, Arithmetic) {
  Point a{1, 2};
  Point b{3, -1};
  EXPECT_EQ((a + b), (Point{4, 1}));
  EXPECT_EQ((a - b), (Point{-2, 3}));
  EXPECT_EQ((a * 2.0), (Point{2, 4}));
  EXPECT_DOUBLE_EQ(Dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Cross(a, b), -7.0);
}

TEST(PointTest, DistanceAndMidpoint) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({0, 0}, {3, 4}), 25.0);
  EXPECT_EQ(Midpoint({0, 0}, {2, 4}), (Point{1, 2}));
}

TEST(PointTest, OrientationSign) {
  EXPECT_GT(Orientation({0, 0}, {1, 0}, {1, 1}), 0);  // CCW turn
  EXPECT_LT(Orientation({0, 0}, {1, 0}, {1, -1}), 0);  // CW turn
  EXPECT_DOUBLE_EQ(Orientation({0, 0}, {1, 1}, {2, 2}), 0);  // collinear
}

TEST(BoxTest, EmptyAndExtend) {
  Box b;
  EXPECT_TRUE(b.empty());
  b.Extend(Point{1, 2});
  EXPECT_FALSE(b.empty());
  b.Extend(Point{-1, 5});
  EXPECT_DOUBLE_EQ(b.Width(), 2.0);
  EXPECT_DOUBLE_EQ(b.Height(), 3.0);
  EXPECT_TRUE(b.Contains({0, 3}));
  EXPECT_FALSE(b.Contains({0, 6}));
}

TEST(BoxTest, IntersectsAndCenter) {
  Box a;
  a.Extend(Point{0, 0});
  a.Extend(Point{2, 2});
  Box b;
  b.Extend(Point{1, 1});
  b.Extend(Point{3, 3});
  Box c;
  c.Extend(Point{5, 5});
  c.Extend(Point{6, 6});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_EQ(a.Center(), (Point{1, 1}));
}

TEST(PolygonTest, AreaOfSquareAndTriangle) {
  EXPECT_DOUBLE_EQ(UnitSquare().Area(), 1.0);
  Polygon tri({{0, 0}, {4, 0}, {0, 3}});
  EXPECT_DOUBLE_EQ(tri.Area(), 6.0);
}

TEST(PolygonTest, SignedAreaDependsOnOrientation) {
  Polygon ccw = UnitSquare();
  Polygon cw({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
  EXPECT_GT(ccw.SignedArea(), 0);
  EXPECT_LT(cw.SignedArea(), 0);
  cw.MakeCounterClockwise();
  EXPECT_GT(cw.SignedArea(), 0);
}

TEST(PolygonTest, PerimeterOfSquare) {
  EXPECT_DOUBLE_EQ(UnitSquare().Perimeter(), 4.0);
}

TEST(PolygonTest, CentroidOfSquare) {
  Point c = UnitSquare().Centroid();
  EXPECT_NEAR(c.x, 0.5, 1e-12);
  EXPECT_NEAR(c.y, 0.5, 1e-12);
}

TEST(PolygonTest, CentroidOfAsymmetricTriangle) {
  Polygon tri({{0, 0}, {3, 0}, {0, 3}});
  Point c = tri.Centroid();
  EXPECT_NEAR(c.x, 1.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
}

TEST(PolygonTest, ContainsInteriorRejectsExterior) {
  Polygon sq = UnitSquare();
  EXPECT_TRUE(sq.Contains({0.5, 0.5}));
  EXPECT_FALSE(sq.Contains({1.5, 0.5}));
  EXPECT_FALSE(sq.Contains({-0.1, 0.1}));
}

TEST(PolygonTest, ContainsWorksForConcaveShape) {
  // An L-shape; the notch interior point is outside.
  Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(l.Contains({0.5, 1.5}));
  EXPECT_TRUE(l.Contains({1.5, 0.5}));
  EXPECT_FALSE(l.Contains({1.5, 1.5}));
}

TEST(PolygonTest, ConvexityDetection) {
  EXPECT_TRUE(UnitSquare().IsConvex());
  Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_FALSE(l.IsConvex());
}

TEST(PolygonTest, BoundingBoxCoversAllVertices) {
  Polygon tri({{-1, 0}, {4, 2}, {0, 7}});
  Box b = tri.BoundingBox();
  EXPECT_DOUBLE_EQ(b.min_x, -1);
  EXPECT_DOUBLE_EQ(b.max_y, 7);
}

TEST(SegmentsOverlapTest, CollinearOverlapDetected) {
  EXPECT_TRUE(SegmentsOverlap({0, 0}, {2, 0}, {1, 0}, {3, 0}, 0.5));
  EXPECT_FALSE(SegmentsOverlap({0, 0}, {2, 0}, {1, 0}, {3, 0}, 1.5));
}

TEST(SegmentsOverlapTest, NonCollinearRejected) {
  EXPECT_FALSE(SegmentsOverlap({0, 0}, {2, 0}, {0, 1}, {2, 1}, 0.1));
  EXPECT_FALSE(SegmentsOverlap({0, 0}, {2, 0}, {0, 0}, {1, 1}, 0.1));
}

TEST(SegmentsOverlapTest, TouchingAtPointIsNotOverlap) {
  EXPECT_FALSE(SegmentsOverlap({0, 0}, {1, 0}, {1, 0}, {2, 0}, 1e-6));
}

TEST(SharedBorderTest, AdjacentSquaresShareUnitEdge) {
  Polygon left({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Polygon right({{1, 0}, {2, 0}, {2, 1}, {1, 1}});
  EXPECT_NEAR(SharedBorderLength(left, right), 1.0, 1e-9);
}

TEST(SharedBorderTest, DiagonalNeighborsShareNothing) {
  Polygon a({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Polygon b({{1, 1}, {2, 1}, {2, 2}, {1, 2}});
  EXPECT_NEAR(SharedBorderLength(a, b), 0.0, 1e-9);
}

TEST(SharedBorderTest, PartialOverlapMeasured) {
  Polygon a({{0, 0}, {2, 0}, {2, 1}, {0, 1}});
  Polygon b({{1, 1}, {3, 1}, {3, 2}, {1, 2}});
  EXPECT_NEAR(SharedBorderLength(a, b), 1.0, 1e-9);
}

TEST(SimplifyTest, RemovesCollinearVertices) {
  // A square with redundant midpoints on every edge.
  Polygon noisy({{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}, {1, 2},
                 {0, 2}, {0, 1}});
  Polygon simple = SimplifyPolygon(noisy, 1e-6);
  EXPECT_EQ(simple.size(), 4u);
  EXPECT_NEAR(simple.Area(), noisy.Area(), 1e-9);
}

TEST(SimplifyTest, KeepsSignificantDetail) {
  // A square with a real bump: tolerance below the bump keeps it.
  Polygon bumpy({{0, 0}, {1, 0}, {1.5, 0.4}, {2, 0}, {2, 2}, {0, 2}});
  Polygon keep = SimplifyPolygon(bumpy, 0.1);
  EXPECT_EQ(keep.size(), 6u);
  Polygon drop = SimplifyPolygon(bumpy, 0.5);
  EXPECT_LT(drop.size(), 6u);
}

TEST(SimplifyTest, NeverBelowTriangle) {
  Polygon circleish;
  for (int i = 0; i < 32; ++i) {
    double t = 2.0 * 3.14159265358979 * i / 32;
    circleish.mutable_vertices().push_back({std::cos(t), std::sin(t)});
  }
  Polygon simple = SimplifyPolygon(circleish, 100.0);  // absurd tolerance
  EXPECT_GE(simple.size(), 3u);
}

TEST(SimplifyTest, NoOpOnTrianglesAndZeroTolerance) {
  Polygon tri({{0, 0}, {4, 0}, {0, 3}});
  EXPECT_EQ(SimplifyPolygon(tri, 10.0).size(), 3u);
  Polygon sq = UnitSquare();
  EXPECT_EQ(SimplifyPolygon(sq, 0.0).size(), 4u);
}

}  // namespace
}  // namespace emp
