#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace emp {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  EMP_ASSIGN_OR_RETURN(int h, Half(x));
  EMP_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
}

TEST(ResultTest, AssignOrReturnPropagatesInnerError) {
  Result<int> r = Quarter(6);  // 6/2 = 3, then Half(3) fails.
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, VectorValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace emp
