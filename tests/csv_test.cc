#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace emp {
namespace {

TEST(CsvTest, ParsesHeaderAndRows) {
  auto table = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header.size(), 3u);
  EXPECT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][2], "6");
}

TEST(CsvTest, SkipsBlankLinesAndCrLf) {
  auto table = ParseCsv("a,b\r\n\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvTest, RejectsRaggedRows) {
  auto table = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("\n\n").ok());
}

TEST(CsvTest, ColumnIndexLookup) {
  auto table = ParseCsv("id,pop,emp\n1,2,3\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->ColumnIndex("pop"), 1);
  EXPECT_EQ(table->ColumnIndex("missing"), -1);
}

TEST(CsvTest, RoundTripsThroughWriteCsv) {
  auto table = ParseCsv("x,y\n1,2\n3,4\n");
  ASSERT_TRUE(table.ok());
  std::string text = WriteCsv(*table);
  auto again = ParseCsv(text);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows, table->rows);
  EXPECT_EQ(again->header, table->header);
}

TEST(CsvFileTest, WriteAndReadBack) {
  std::string path = testing::TempDir() + "/emp_csv_test.csv";
  ASSERT_TRUE(WriteFile(path, "h1,h2\n9,8\n").ok());
  auto table = ReadCsvFile(path);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "9");
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  auto r = ReadCsvFile("/nonexistent/path/file.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace emp
